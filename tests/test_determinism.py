"""Cross-cutting determinism guarantees.

Reproducibility is a stated design goal (DESIGN.md §5): a single integer
seed pins the graph, the roots and every engine's result.  These tests
pin the guarantee at every layer.
"""

import numpy as np
import pytest

from repro.bfs import AlphaBetaPolicy, HybridBFS, SemiExternalBFS
from repro.core import DRAM_ONLY, DRAM_PCIE_FLASH, run_graph500
from repro.csr import BackwardGraph, ForwardGraph, build_csr
from repro.graph500 import EdgeList, Graph500Driver, generate_edges
from repro.numa import NumaTopology
from repro.perfmodel.cost import DramCostModel
from repro.semiext import NVMStore, PCIE_FLASH


class TestGeneratorDeterminism:
    def test_graph_identical_across_calls(self):
        a = generate_edges(scale=10, seed=77)
        b = generate_edges(scale=10, seed=77)
        assert np.array_equal(a, b)

    def test_roots_identical_across_driver_instances(self, edges):
        d1 = Graph500Driver(edges, n_roots=8, seed=5)
        d2 = Graph500Driver(edges, n_roots=8, seed=5)
        assert np.array_equal(d1.roots, d2.roots)

    def test_different_seeds_differ(self):
        a = generate_edges(scale=10, seed=1)
        b = generate_edges(scale=10, seed=2)
        assert not np.array_equal(a, b)


class TestEngineDeterminism:
    def test_fresh_engines_agree_bitwise(self, csr, topology, a_root):
        results = []
        for _ in range(2):
            fwd = ForwardGraph(csr, topology)
            bwd = BackwardGraph(csr, topology)
            eng = HybridBFS(
                fwd, bwd, AlphaBetaPolicy(50, 500), DramCostModel()
            )
            results.append(eng.run(a_root))
        assert np.array_equal(results[0].parent, results[1].parent)
        assert results[0].modeled_time_s == results[1].modeled_time_s
        # Everything but wall-clock is bit-reproducible.
        for a, b in zip(results[0].traces, results[1].traces):
            assert (
                a.direction, a.frontier_size, a.next_size,
                a.edges_scanned, a.modeled_time_s,
            ) == (
                b.direction, b.frontier_size, b.next_size,
                b.edges_scanned, b.modeled_time_s,
            )

    def test_semi_external_meters_agree(self, forward, backward, a_root, tmp_path):
        stats = []
        for tag in ("a", "b"):
            store = NVMStore(tmp_path / tag, PCIE_FLASH)
            SemiExternalBFS.offload(
                forward, backward, AlphaBetaPolicy(30, 30), store,
                cost_model=DramCostModel(),
            ).run(a_root)
            stats.append(
                (
                    store.iostats.n_requests,
                    store.iostats.total_bytes,
                    store.iostats.busy_time_s,
                    store.iostats.avgrq_sz,
                )
            )
        assert stats[0] == stats[1]

    def test_run_does_not_mutate_graphs(self, csr, forward, backward, a_root):
        adj_before = forward.shards[0].adj.copy()
        HybridBFS(forward, backward, AlphaBetaPolicy(50, 500)).run(a_root)
        assert np.array_equal(forward.shards[0].adj, adj_before)

    def test_consecutive_runs_independent(self, forward, backward, csr):
        # Running root A then root B must equal running root B fresh.
        deg = csr.degrees()
        roots = np.flatnonzero(deg > 0)[:2]
        engine = HybridBFS(
            forward, backward, AlphaBetaPolicy(50, 500), DramCostModel()
        )
        engine.run(int(roots[0]))
        chained = engine.run(int(roots[1]))
        fresh = HybridBFS(
            forward, backward, AlphaBetaPolicy(50, 500), DramCostModel()
        ).run(int(roots[1]))
        assert np.array_equal(chained.parent, fresh.parent)
        assert [t.edges_scanned for t in chained.traces] == [
            t.edges_scanned for t in fresh.traces
        ]


class TestPipelineDeterminism:
    def test_pipeline_median_teps_reproducible(self, tmp_path):
        a = run_graph500(
            DRAM_ONLY, scale=10, n_roots=3, seed=21, workdir=tmp_path / "a"
        )
        b = run_graph500(
            DRAM_ONLY, scale=10, n_roots=3, seed=21, workdir=tmp_path / "b"
        )
        assert a.median_teps == b.median_teps

    def test_semi_external_pipeline_reproducible(self, tmp_path):
        outs = [
            run_graph500(
                DRAM_PCIE_FLASH, scale=10, n_roots=2, seed=21,
                workdir=tmp_path / tag,
            )
            for tag in ("a", "b")
        ]
        assert outs[0].median_teps == outs[1].median_teps
        assert (
            outs[0].bfs_iostats.n_requests
            == outs[1].bfs_iostats.n_requests
        )
