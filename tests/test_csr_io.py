"""Unit tests for NVM-resident CSR files (ExternalCSR)."""

import numpy as np
import pytest

from repro.csr.builder import build_csr
from repro.csr.io import ExternalCSR, offload_csr
from repro.errors import StorageError


@pytest.fixture()
def small_csr():
    return build_csr(
        np.array([[0, 0, 1, 2, 3], [1, 2, 2, 3, 0]]), n_vertices=5
    )


class TestOffload:
    def test_creates_two_files(self, small_csr, store):
        offload_csr(small_csr, store, "g")
        assert "g.index" in store
        assert "g.value" in store

    def test_round_trip(self, small_csr, store):
        ext = offload_csr(small_csr, store, "g")
        assert ext.to_csr_uncharged() == small_csr

    def test_shape_metadata(self, small_csr, store):
        ext = offload_csr(small_csr, store, "g")
        assert ext.n_rows == small_csr.n_rows
        assert ext.n_directed_edges == small_csr.n_directed_edges
        assert ext.nbytes == small_csr.nbytes


class TestChargedReads:
    def test_row_extents_match(self, small_csr, store):
        ext = offload_csr(small_csr, store, "g")
        rows = np.array([0, 3])
        starts, counts = ext.row_extents(rows)
        estarts, ecounts = small_csr.row_extents(rows)
        assert np.array_equal(starts, estarts)
        assert np.array_equal(counts, ecounts)

    def test_row_extents_charge_index_file(self, small_csr, store):
        ext = offload_csr(small_csr, store, "g")
        before = store.iostats.n_requests
        ext.row_extents(np.array([0, 1, 2]))
        assert store.iostats.n_requests > before

    def test_gather_rows_values(self, small_csr, store):
        ext = offload_csr(small_csr, store, "g")
        rows = np.array([0, 2])
        values, counts = ext.gather_rows(rows)
        expected = np.concatenate(
            [small_csr.neighbors(0), small_csr.neighbors(2)]
        )
        assert np.array_equal(values, expected)
        assert counts.tolist() == [small_csr.degree(0), small_csr.degree(2)]

    def test_gather_empty(self, small_csr, store):
        ext = offload_csr(small_csr, store, "g")
        values, counts = ext.gather_rows(np.array([], dtype=np.int64))
        assert values.size == 0 and counts.size == 0

    def test_uncharged_degrees_do_not_meter(self, small_csr, store):
        ext = offload_csr(small_csr, store, "g")
        before = store.iostats.n_requests
        deg = ext.degrees_uncharged()
        assert store.iostats.n_requests == before
        assert np.array_equal(deg, small_csr.degrees())

    def test_large_graph_round_trip(self, csr, store):
        ext = offload_csr(csr, store, "big")
        rows = np.arange(0, csr.n_rows, 53)
        values, counts = ext.gather_rows(rows)
        expected = np.concatenate([csr.neighbors(int(r)) for r in rows])
        assert np.array_equal(values, expected)

    def test_empty_index_rejected(self, store):
        empty = store.put_array("idx", np.empty(0, dtype=np.int64))
        val = store.put_array("val", np.empty(0, dtype=np.int64))
        with pytest.raises(StorageError):
            ExternalCSR(empty, val, 1)
