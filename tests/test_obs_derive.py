"""Derived-metrics engine tests: estimators, report assembly, and
same-seed byte-identical output (mirrors test_obs_exporters.py)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs import DerivedReport, Observability, derive
from repro.obs.derive import (
    QUANTILES,
    ewma,
    exact_quantile,
    flag_anomalies,
    histogram_quantile,
    span_durations,
    windowed_rate,
)
from repro.obs.registry import MetricsRegistry


def _hist(values, buckets=(1.0, 2.0, 4.0, 8.0)):
    h = MetricsRegistry().histogram("x", buckets=buckets)
    h.observe_many([float(v) for v in values])
    return h


class TestHistogramQuantile:
    def test_interpolates_within_bucket(self):
        # 4 samples, p50 rank = 2: second sample sits in (1, 2].
        assert histogram_quantile(_hist([0.5, 1.5, 1.5, 3.0]), 0.5) == 1.5

    def test_p0_and_p100_bound_the_range(self):
        h = _hist([0.5, 3.0])
        assert histogram_quantile(h, 0.0) == 0.0
        assert histogram_quantile(h, 1.0) == 4.0

    def test_overflow_clamps_to_largest_finite_bound(self):
        assert histogram_quantile(_hist([100.0]), 0.99) == 8.0

    def test_empty_histogram_returns_zero(self):
        assert histogram_quantile(_hist([]), 0.9) == 0.0

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ConfigurationError):
            histogram_quantile(_hist([1.0]), 1.5)

    def test_estimate_stays_inside_containing_bucket(self):
        # All mass in (1, 2]: every estimate interpolates inside it.
        h = _hist([2.0, 2.0, 2.0, 2.0])
        for q in QUANTILES:
            assert 1.0 < histogram_quantile(h, q) <= 2.0
        assert histogram_quantile(h, 1.0) == pytest.approx(2.0)


class TestExactQuantile:
    def test_median_interpolates(self):
        assert exact_quantile([4.0, 1.0, 3.0, 2.0], 0.5) == 2.5

    def test_extremes(self):
        vals = [5.0, 1.0, 9.0]
        assert exact_quantile(vals, 0.0) == 1.0
        assert exact_quantile(vals, 1.0) == 9.0

    def test_single_value_and_empty(self):
        assert exact_quantile([7.0], 0.9) == 7.0
        assert exact_quantile([], 0.9) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            exact_quantile([1.0], -0.1)


class TestEwmaAndAnomalies:
    def test_ewma_seeds_with_first_value(self):
        assert ewma([1.0, 1.0, 5.0], alpha=0.5) == [1.0, 1.0, 3.0]

    def test_bad_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            ewma([1.0], alpha=0.0)

    def test_flat_series_never_flags(self):
        assert flag_anomalies("s", [3.0] * 10) == []

    def test_short_series_never_flags(self):
        assert flag_anomalies("s", [1.0, 100.0]) == []

    SPIKY = [1.0, 1.1, 0.9, 1.0, 1.05, 0.95, 1.0, 1.02] * 2 + [
        50.0, 1.0, 1.0, 0.98,
    ]

    def test_spike_is_flagged(self):
        flags = flag_anomalies("lvl", self.SPIKY)
        spike_index = self.SPIKY.index(50.0)
        assert spike_index in [f.index for f in flags]
        (flag,) = [f for f in flags if f.index == spike_index]
        assert flag.series == "lvl"
        assert flag.value == 50.0
        assert flag.zscore >= 3.0

    def test_zscore_rounded_in_dict(self):
        d = flag_anomalies("lvl", self.SPIKY)[0].to_dict()
        assert d["zscore"] == round(d["zscore"], 6)


class TestWindowedRate:
    def test_buckets_and_rates(self):
        points = windowed_rate([0.1, 0.2, 1.5], 1.0, t_end_s=2.0)
        assert [(p.t_start_s, p.t_end_s, p.count) for p in points] == [
            (0.0, 1.0, 2),
            (1.0, 2.0, 1),
        ]
        assert points[0].rate_per_s == pytest.approx(2.0)

    def test_final_window_truncated(self):
        (only,) = windowed_rate([0.1], 1.0, t_end_s=0.5)
        assert only.t_end_s == 0.5
        assert only.rate_per_s == pytest.approx(2.0)

    def test_empty_and_bad_window(self):
        assert windowed_rate([], 1.0) == []
        with pytest.raises(ConfigurationError):
            windowed_rate([1.0], 0.0)


def _session() -> Observability:
    from repro.semiext.clock import SimulatedClock

    obs = Observability()
    clock = SimulatedClock()
    obs.bind_clock(clock)
    obs.histogram("nvm.request_bytes", device="flash").observe_many(
        [512.0, 4096.0, 4096.0]
    )
    bounds = [(0.0, 1.0), (1.0, 1.5), (1.5, 4.0)]
    for level, (t0, t1) in enumerate(bounds):
        obs.record_span(
            "bfs.level", t0, t1, level=level,
            direction="top-down" if level != 1 else "bottom-up",
            frontier=10 * (level + 1), discovered=5, edges_scanned=100,
            degraded=False,
        )
    obs.record_span("nvm.charge", 0.2, 0.4, device="flash")
    for t in (0.5, 1.2, 3.1):
        clock.advance(t - clock.now())
        obs.event("cache.fill", admitted_bytes=64)
    return obs


class TestDerive:
    def test_report_sections_populated(self):
        report = derive(_session())
        assert isinstance(report, DerivedReport)
        assert report.duration_s == 4.0
        assert [r.series for r in report.histogram_quantiles] == [
            'nvm.request_bytes{device="flash"}'
        ]
        assert {s.name for s in report.span_stats} == {
            "bfs.level", "nvm.charge"
        }
        assert [p.level for p in report.level_series] == [0, 1, 2]
        assert [p.duration_s for p in report.level_series] == [1.0, 0.5, 2.5]
        assert dict(report.rates).keys() == {"cache.fill", "nvm.charge"}

    def test_level_points_carry_span_attrs(self):
        p = derive(_session()).level_series[1]
        assert p.direction == "bottom-up"
        assert p.frontier == 20
        assert p.ordinal == 1

    def test_span_durations_skip_open_spans(self):
        from repro.obs.spans import Span

        obs = _session()
        obs.tracer.spans.append(
            Span(span_id=999, parent_id=None, name="bfs.level",
                 t_start_s=5.0)  # left open
        )
        assert len(span_durations(obs, "bfs.level")) == 3

    def test_default_rate_window_is_tenth_of_run(self):
        report = derive(_session())
        points = dict(report.rates)["cache.fill"]
        assert points[0].t_end_s == pytest.approx(0.4)

    def test_to_json_deterministic_for_same_input(self):
        assert derive(_session()).to_json() == derive(_session()).to_json()

    def test_format_renders_tables(self):
        text = derive(_session()).format()
        assert "histogram quantiles" in text
        assert "span durations" in text
        assert "anomaly flags: none" in text

    def test_empty_session(self):
        report = derive(Observability())
        assert report.duration_s == 0.0
        assert report.histogram_quantiles == ()
        assert report.level_series == ()
        assert "anomaly flags: none" in report.format()
