"""Tests for the iostat-style interval table and the ASCII heatmap."""

import numpy as np
import pytest

from repro.analysis.report import ascii_heatmap
from repro.semiext.iostats import IoStats


class TestIostatFormat:
    def _stats(self):
        st = IoStats("dev0")
        for i in range(20):
            st.record_batch(
                t_start_s=i * 0.01,
                duration_s=0.005,
                request_sizes=np.full(10, 4096),
                mean_queue=30.0 + i,
            )
        return st

    def test_contains_header_and_rows(self):
        text = self._stats().format_iostat(n_intervals=5)
        assert "Device: dev0" in text
        assert "avgqu-sz" in text
        # 5 interval rows + 2 header lines.
        assert len(text.splitlines()) == 7

    def test_empty_stats(self):
        text = IoStats("x").format_iostat()
        assert "no I/O recorded" in text

    def test_queue_values_in_range(self):
        text = self._stats().format_iostat(n_intervals=4)
        rows = text.splitlines()[2:]
        queues = [float(r.split()[-1]) for r in rows]
        assert all(29 < q < 51 for q in queues)

    def test_single_interval_aggregates_everything(self):
        st = self._stats()
        text = st.format_iostat(n_intervals=1)
        row = text.splitlines()[-1]
        # avgrq-sz: all requests are 4096 B = 8 sectors.
        assert float(row.split()[-2]) == pytest.approx(8.0)


class TestAsciiHeatmap:
    def test_shape_checked(self):
        with pytest.raises(ValueError):
            ascii_heatmap([[1, 2]], ["r1", "r2"], ["c1"])

    def test_extremes_use_extreme_shades(self):
        out = ascii_heatmap(
            [[0.0, 10.0]], ["row"], ["lo", "hi"], shades=" @"
        )
        body = out.splitlines()[0]
        assert "@" in body

    def test_constant_grid_does_not_crash(self):
        out = ascii_heatmap([[5.0, 5.0]], ["r"], ["a", "b"])
        assert "r" in out

    def test_footer_carries_column_labels(self):
        out = ascii_heatmap(
            np.arange(6).reshape(2, 3),
            ["x", "y"],
            ["c1", "c2", "c3"],
        )
        assert out.splitlines()[-1].split("|")[1].split() == ["c1", "c2", "c3"]

    def test_title(self):
        assert ascii_heatmap([[1.0]], ["r"], ["c"], title="T").startswith("T\n")
