"""The dynamic engine and the mutation metamorphic relations.

The conformance registry's `dynamic` engine answers each query by
repairing a seeded predecessor graph's tree forward through a mutation
batch — the serving layer's repair path inverted into a standalone
oracle subject.  These tests pin the engine's differential byte-identity
against the reference, the mutation relations (idempotence and
sub-batch commutativity), and the `applies` filtering that keeps those
relations off the static engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.conformance import (
    ConformanceConfig,
    run_conformance,
)
from repro.conformance.oracles import differential_failures
from repro.conformance.registry import (
    GraphCase,
    TrialSetup,
    engine_names,
    get_engine,
    run_engine,
)
from repro.conformance.relations import (
    get_relation,
    relation_names,
    relations_for,
)
from repro.graph500 import generate_edges
from repro.graph500.edgelist import EdgeList


def _case(seed: int, scale: int = 6) -> GraphCase:
    endpoints = generate_edges(scale=scale, edge_factor=6, seed=seed)
    return GraphCase(EdgeList(endpoints, 1 << scale))


class TestRegistration:
    def test_dynamic_engine_registered_with_flag(self):
        assert "dynamic" in engine_names()
        assert get_engine("dynamic").dynamic
        for name in engine_names():
            if name != "dynamic":
                assert not get_engine(name).dynamic, name

    def test_mutation_relations_registered(self):
        assert "mutation_idempotence" in relation_names()
        assert "mutation_commute" in relation_names()


class TestDifferential:
    @pytest.mark.parametrize("seed", [7, 19, 101])
    def test_dynamic_engine_byte_equals_reference(self, seed, tmp_path):
        case = _case(seed)
        setup = TrialSetup()
        rng = np.random.default_rng(seed)
        for root in rng.integers(0, case.n_vertices, size=4):
            ref = run_engine("reference", case, setup, int(root), tmp_path)
            dyn = run_engine("dynamic", case, setup, int(root), tmp_path)
            assert np.array_equal(dyn.parent, ref.parent), (
                f"root {root}: repaired tree differs from reference"
            )
            assert differential_failures(
                case.edges, ref.parent, dyn, int(root)
            ) == []

    def test_dynamic_engine_handles_isolated_root(self, tmp_path):
        # A fragmented graph: the upper half of the id space is isolated,
        # so the predecessor/repair path must cope with unreachable roots.
        endpoints = generate_edges(scale=5, edge_factor=4, seed=3)
        case = GraphCase(EdgeList(endpoints, 64))
        setup = TrialSetup()
        root = 63
        ref = run_engine("reference", case, setup, root, tmp_path)
        dyn = run_engine("dynamic", case, setup, root, tmp_path)
        assert np.array_equal(dyn.parent, ref.parent)


class TestMutationRelations:
    @pytest.mark.parametrize(
        "relation", ["mutation_idempotence", "mutation_commute"]
    )
    @pytest.mark.parametrize("seed", [7, 19, 101])
    def test_relation_holds_on_random_cases(self, relation, seed, tmp_path):
        rel = get_relation(relation)
        spec = get_engine("dynamic")
        case = _case(seed, scale=5)
        rng = np.random.default_rng(seed)
        root = int(rng.integers(0, case.n_vertices))
        msg = rel.check(spec, case, TrialSetup(), root, seed, tmp_path)
        assert msg is None, msg

    def test_applies_filters_to_dynamic_engines_only(self):
        dynamic = get_engine("dynamic")
        static = get_engine("reference")
        for name in ("mutation_idempotence", "mutation_commute"):
            rel = get_relation(name)
            assert rel.applies(dynamic)
            assert not rel.applies(static)
        names = {r.name for r in relations_for(dynamic)}
        assert {"mutation_idempotence", "mutation_commute"} <= names
        assert not {"mutation_idempotence", "mutation_commute"} & {
            r.name for r in relations_for(static)
        }


class TestHarnessIntegration:
    def test_quick_dynamic_run_is_green(self, tmp_path):
        report = run_conformance(ConformanceConfig(
            seeds=(7,),
            trials=2,
            max_scale=5,
            engines=("reference", "dynamic"),
            relations=("mutation_idempotence", "mutation_commute"),
            artifact_dir=str(tmp_path),
            shrink=False,
        ))
        assert report.failures == ()
        assert "dynamic" in report.engines
