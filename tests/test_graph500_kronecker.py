"""Unit tests for repro.graph500.kronecker."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph500.kronecker import (
    KroneckerParams,
    generate_edge_batches,
    generate_edges,
    sample_roots,
)


class TestParams:
    def test_defaults_are_graph500(self):
        p = KroneckerParams(scale=10)
        assert (p.a, p.b, p.c) == (0.57, 0.19, 0.19)
        assert p.d == pytest.approx(0.05)
        assert p.edge_factor == 16
        assert p.n_vertices == 1024
        assert p.n_edges == 16384

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            KroneckerParams(scale=0)
        with pytest.raises(ConfigurationError):
            KroneckerParams(scale=5, edge_factor=0)
        with pytest.raises(ConfigurationError):
            KroneckerParams(scale=5, a=0.9, b=0.1, c=0.1)
        with pytest.raises(ConfigurationError):
            KroneckerParams(scale=5, a=-0.1)


class TestGenerate:
    def test_shape_and_range(self):
        edges = generate_edges(scale=8, edge_factor=4, seed=1)
        assert edges.shape == (2, 1024)
        assert edges.dtype == np.int64
        assert edges.min() >= 0
        assert edges.max() < 256

    def test_deterministic(self):
        a = generate_edges(scale=8, seed=5)
        b = generate_edges(scale=8, seed=5)
        assert np.array_equal(a, b)

    def test_seed_changes_output(self):
        a = generate_edges(scale=8, seed=5)
        b = generate_edges(scale=8, seed=6)
        assert not np.array_equal(a, b)

    def test_skew_present(self):
        # A Kronecker graph is heavy-tailed: the max degree far exceeds
        # the mean, and a sizable fraction of vertices is isolated.
        edges = generate_edges(scale=12, edge_factor=16, seed=2)
        deg = np.bincount(edges.ravel(), minlength=1 << 12)
        assert deg.max() > 20 * deg.mean()
        assert (deg == 0).sum() > (1 << 12) // 10

    def test_batches_same_count_and_range(self):
        full = generate_edges(scale=9, edge_factor=8, seed=3)
        batches = list(
            generate_edge_batches(scale=9, edge_factor=8, seed=3,
                                  batch_edges=1000)
        )
        assert sum(b.shape[1] for b in batches) == full.shape[1]
        got = np.concatenate(batches, axis=1)
        assert got.min() >= 0 and got.max() < (1 << 9)

    def test_batches_deterministic(self):
        a = np.concatenate(
            list(generate_edge_batches(scale=8, seed=4, batch_edges=500)),
            axis=1,
        )
        b = np.concatenate(
            list(generate_edge_batches(scale=8, seed=4, batch_edges=500)),
            axis=1,
        )
        assert np.array_equal(a, b)

    def test_batches_similar_degree_distribution(self):
        # Same distribution as the monolithic generator: compare the
        # number of isolated vertices and the max degree within 25%.
        full = generate_edges(scale=11, seed=3)
        batched = np.concatenate(
            list(generate_edge_batches(scale=11, seed=3, batch_edges=4096)),
            axis=1,
        )
        n = 1 << 11
        d_full = np.bincount(full.ravel(), minlength=n)
        d_batch = np.bincount(batched.ravel(), minlength=n)
        assert np.isclose(
            (d_full == 0).sum(), (d_batch == 0).sum(), rtol=0.25
        )
        assert np.isclose(d_full.max(), d_batch.max(), rtol=0.5)

    def test_batches_respect_batch_size(self):
        batches = list(
            generate_edge_batches(scale=8, edge_factor=4, seed=1,
                                  batch_edges=300)
        )
        assert all(b.shape[1] <= 300 for b in batches)

    def test_batch_size_invalid(self):
        with pytest.raises(ConfigurationError):
            list(generate_edge_batches(scale=8, batch_edges=0))


class TestSampleRoots:
    def test_only_connected_vertices(self):
        deg = np.array([0, 3, 0, 1, 5, 0])
        roots = sample_roots(deg, n_roots=3, seed=1)
        assert set(roots.tolist()) <= {1, 3, 4}

    def test_count(self):
        deg = np.ones(100)
        assert sample_roots(deg, n_roots=64, seed=1).size == 64

    def test_without_replacement_when_possible(self):
        deg = np.ones(100)
        roots = sample_roots(deg, n_roots=64, seed=1)
        assert np.unique(roots).size == 64

    def test_with_replacement_when_scarce(self):
        deg = np.array([0, 1, 1])
        roots = sample_roots(deg, n_roots=10, seed=1)
        assert roots.size == 10

    def test_deterministic(self):
        deg = np.ones(50)
        a = sample_roots(deg, 8, seed=3)
        b = sample_roots(deg, 8, seed=3)
        assert np.array_equal(a, b)

    def test_all_isolated_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_roots(np.zeros(10), 4)

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            sample_roots(np.ones(10), 0)
