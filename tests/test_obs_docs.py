"""docs/observability.md must document exactly the names the code emits.

The doc's metric tables carry rows of the form ``| `name` | kind | ... |``
and its span table rows ``| `name` | span-or-event | ... |``; this test
diffs those against :mod:`repro.obs.schema` in both directions, then runs
an instrumented faulty semi-external pipeline and checks that everything
it actually emitted is catalogued (and therefore documented)."""

from __future__ import annotations

import re
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core import DRAM_PCIE_FLASH, run_graph500
from repro.obs import Observability, metric_names, span_names
from repro.semiext.faults import FaultPlan

DOC = Path(__file__).resolve().parent.parent / "docs" / "observability.md"

_METRIC_ROW = re.compile(r"^\|\s*`([a-z0-9_.]+)`\s*\|\s*(counter|gauge|histogram)\s*\|")
_SPAN_ROW = re.compile(r"^\|\s*`([a-z0-9_.]+)`\s*\|\s*(span|event)\s*\|")


def _doc_names(pattern: re.Pattern) -> set[str]:
    return {
        m.group(1)
        for line in DOC.read_text().splitlines()
        if (m := pattern.match(line.strip()))
    }


@pytest.fixture(scope="module")
def observed_run() -> Observability:
    """One instrumented pcie+faults run (the richest emitter)."""
    obs = Observability()
    scenario = replace(
        DRAM_PCIE_FLASH,
        fault_plan=FaultPlan(seed=5, error_rate=0.05, gc_rate=0.05),
    )
    run_graph500(scenario, scale=10, n_roots=2, seed=3, obs=obs)
    return obs


class TestDocMatchesSchema:
    def test_every_catalogued_metric_is_documented(self):
        documented = _doc_names(_METRIC_ROW)
        missing = metric_names() - documented
        assert not missing, f"docs/observability.md lacks rows for {sorted(missing)}"

    def test_every_documented_metric_is_catalogued(self):
        stale = _doc_names(_METRIC_ROW) - metric_names()
        assert not stale, f"docs/observability.md documents unknown {sorted(stale)}"

    def test_documented_kinds_match_schema(self):
        from repro.obs.schema import spec_for

        for line in DOC.read_text().splitlines():
            m = _METRIC_ROW.match(line.strip())
            if m:
                assert spec_for(m.group(1)).kind == m.group(2), m.group(1)

    def test_every_span_name_is_documented(self):
        documented = _doc_names(_SPAN_ROW)
        missing = span_names() - documented
        assert not missing, f"docs/observability.md lacks rows for {sorted(missing)}"

    def test_every_documented_span_is_catalogued(self):
        stale = _doc_names(_SPAN_ROW) - span_names()
        assert not stale, f"docs/observability.md documents unknown {sorted(stale)}"


class TestEmittedNamesAreCovered:
    def test_emitted_metrics_are_catalogued(self, observed_run):
        emitted = set(observed_run.registry.names())
        assert emitted, "instrumented run recorded nothing"
        assert emitted <= metric_names(), sorted(emitted - metric_names())

    def test_emitted_spans_and_events_are_catalogued(self, observed_run):
        emitted = {s.name for s in observed_run.tracer.spans}
        emitted |= {e.name for e in observed_run.tracer.events}
        assert emitted <= span_names(), sorted(emitted - span_names())

    def test_emitted_metrics_are_documented(self, observed_run):
        documented = _doc_names(_METRIC_ROW)
        emitted = set(observed_run.registry.names())
        assert emitted <= documented, sorted(emitted - documented)

    def test_run_covers_most_of_the_catalogue(self, observed_run):
        """The faulty semi-external run should light up every family."""
        emitted = set(observed_run.registry.names())
        for family in ("bfs.", "graph500.", "nvm.", "cache.",
                       "resilience.", "health.", "pipeline."):
            assert any(n.startswith(family) for n in emitted), family
