"""Incremental BFS-tree repair (`repro.graphmut.repair` + `GraphMutator`).

The acceptance bar for the whole dynamic-graph subsystem: a repaired
tree is **byte-identical** to a full recomputation on the post-mutation
graph, at every version, across local and semi-external backends — and
the repair only reads rows in the affected region (zero rows when a
batch misses the BFS tree entirely).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bfs.reference import ReferenceBFS
from repro.core import DRAM_PCIE_FLASH
from repro.csr import build_csr
from repro.errors import ConfigurationError
from repro.graph500 import generate_edges
from repro.graph500.edgelist import EdgeList
from repro.graphmut import (
    DeltaOverlay,
    MutationBatch,
    draw_batch,
    repair_tree,
)
from repro.serve import GraphCatalog


def _path_csr(n=6):
    pairs = np.array([(i, i + 1) for i in range(n - 1)], dtype=np.int64).T
    return build_csr(EdgeList(pairs, n))


class TestRepairByteIdentity:
    @pytest.mark.parametrize("seed", [7, 19, 101, 3, 55])
    def test_random_streams_repair_exactly(self, seed):
        rng = np.random.default_rng(seed)
        scale = int(rng.integers(4, 8))
        endpoints = generate_edges(scale=scale, edge_factor=4, seed=seed)
        csr = build_csr(EdgeList(endpoints, 1 << scale))
        overlay = DeltaOverlay(csr)
        root = int(rng.integers(0, csr.n_rows))
        old = ReferenceBFS(csr).run(root).parent
        for _ in range(5):
            batch = draw_batch(overlay.to_csr(), rng,
                               int(rng.integers(0, 5)),
                               int(rng.integers(0, 5)))
            eff = overlay.apply(batch)
            out = repair_tree(overlay.row, csr.n_rows, root, old, eff,
                              max_dirty_frac=1.0)
            fresh = ReferenceBFS(overlay.to_csr()).run(root).parent
            assert out is not None
            assert np.array_equal(out.parent, fresh)
            old = fresh

    def test_reachability_changes_repair_exactly(self):
        # 0-1-2   3-4: deleting (1,2) strands {2}; inserting (2,4)
        # attaches it to the far component; both transitions repair.
        pairs = np.array([(0, 1), (1, 2), (3, 4)], dtype=np.int64).T
        csr = build_csr(EdgeList(pairs, 5))
        overlay = DeltaOverlay(csr)
        old = ReferenceBFS(csr).run(0).parent
        eff = overlay.apply(MutationBatch.make([], [(1, 2)], 5))
        out = repair_tree(overlay.row, 5, 0, old, eff, max_dirty_frac=1.0)
        fresh = ReferenceBFS(overlay.to_csr()).run(0).parent
        assert np.array_equal(out.parent, fresh)
        assert out.parent[2] == -1
        eff = overlay.apply(MutationBatch.make([(0, 2), (2, 4)], [], 5))
        out = repair_tree(overlay.row, 5, 0, out.parent, eff,
                          max_dirty_frac=1.0)
        fresh = ReferenceBFS(overlay.to_csr()).run(0).parent
        assert np.array_equal(out.parent, fresh)
        assert out.parent[4] == 2

    def test_canonical_min_parent_after_insert(self):
        # 0-1, 0-2, 1-3, 2-3: parent(3) is min(1, 2) = 1.  Inserting
        # (0, 3) moves 3 one level up with canonical parent 0.
        pairs = np.array([(0, 1), (0, 2), (1, 3), (2, 3)],
                         dtype=np.int64).T
        csr = build_csr(EdgeList(pairs, 4))
        overlay = DeltaOverlay(csr)
        old = ReferenceBFS(csr).run(0).parent
        assert old[3] == 1
        eff = overlay.apply(MutationBatch.make([(0, 3)], [], 4))
        out = repair_tree(overlay.row, 4, 0, old, eff, max_dirty_frac=1.0)
        assert out.parent[3] == 0
        assert np.array_equal(
            out.parent, ReferenceBFS(overlay.to_csr()).run(0).parent
        )


class TestAffectedRegionIO:
    def test_batch_missing_the_tree_reads_zero_rows(self):
        # A cycle 0-1-2-3-4-5-0: inserting the chord (1, 5) links two
        # level-1 vertices, so no level and no canonical parent moves —
        # the repair must touch no adjacency row at all.
        pairs = np.array([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)],
                         dtype=np.int64).T
        csr = build_csr(EdgeList(pairs, 6))
        overlay = DeltaOverlay(csr)
        old = ReferenceBFS(csr).run(0).parent
        eff = overlay.apply(MutationBatch.make([(1, 5)], [], 6))
        out = repair_tree(overlay.row, 6, 0, old, eff, max_dirty_frac=1.0)
        assert np.array_equal(
            out.parent, ReferenceBFS(overlay.to_csr()).run(0).parent
        )
        assert out.n_rows_read == 0
        assert out.n_dirty == 0
        # Deleting that same chord again is equally invisible.
        eff = overlay.apply(MutationBatch.make([], [(1, 5)], 6))
        out = repair_tree(overlay.row, 6, 0, old, eff, max_dirty_frac=1.0)
        assert out.n_rows_read == 0

    def test_non_tree_delete_with_level_gap_reads_zero_rows(self):
        # Path 0-1-2-3 plus chord (1, 3): vertex 3 sits at level 2 with
        # canonical parent 1 (the chord), so (2, 3) is a non-tree edge
        # between same-level-feasible endpoints.
        pairs = np.array([(0, 1), (1, 2), (2, 3), (1, 3)],
                         dtype=np.int64).T
        csr = build_csr(EdgeList(pairs, 4))
        old = ReferenceBFS(csr).run(0).parent
        assert old[3] == 1  # chord is the tree edge
        overlay = DeltaOverlay(csr)
        # Deleting the non-tree edge (2, 3) keeps levels AND parents.
        eff = overlay.apply(MutationBatch.make([], [(2, 3)], 4))
        out = repair_tree(overlay.row, 4, 0, old, eff, max_dirty_frac=1.0)
        assert np.array_equal(
            out.parent, ReferenceBFS(overlay.to_csr()).run(0).parent
        )
        assert out.n_rows_read == 0

    def test_tree_edge_delete_reads_only_affected_region(self):
        n = 40
        csr = _path_csr(n)
        overlay = DeltaOverlay(csr)
        old = ReferenceBFS(csr).run(0).parent
        # Deleting (5, 6) orphans the whole tail — every vertex past the
        # cut changes, but vertices 0..5 are never read beyond the cut's
        # own support check.
        eff = overlay.apply(MutationBatch.make([], [(5, 6)], n))
        out = repair_tree(overlay.row, n, 0, old, eff, max_dirty_frac=1.0)
        fresh = ReferenceBFS(overlay.to_csr()).run(0).parent
        assert np.array_equal(out.parent, fresh)
        assert out.n_dirty == n - 6
        assert out.n_rows_read <= n - 5


class TestFallback:
    def test_dirty_region_above_threshold_falls_back(self):
        n = 40
        csr = _path_csr(n)
        overlay = DeltaOverlay(csr)
        old = ReferenceBFS(csr).run(0).parent
        eff = overlay.apply(MutationBatch.make([], [(5, 6)], n))
        # 34 of 40 vertices change level: far beyond a 10% budget.
        assert repair_tree(overlay.row, n, 0, old, eff,
                           max_dirty_frac=0.1) is None
        # The same repair succeeds with the budget open.
        assert repair_tree(overlay.row, n, 0, old, eff,
                           max_dirty_frac=1.0) is not None

    def test_inconsistent_old_tree_refused(self):
        csr = _path_csr(6)
        overlay = DeltaOverlay(csr)
        bad = np.array([0, 0, 1, 99, 3, 4], dtype=np.int64)  # 99 invalid
        eff = overlay.apply(MutationBatch.make([(0, 2)], [], 6))
        assert repair_tree(overlay.row, 6, 0, bad, eff,
                           max_dirty_frac=1.0) is None


class TestGraphMutatorBackends:
    @pytest.fixture()
    def catalog(self, tmp_path):
        cat = GraphCatalog(workdir=tmp_path)
        yield cat
        cat.close()

    def test_semi_external_repair_is_byte_identical_and_charged(
        self, catalog
    ):
        from repro.graphmut.versioned import GraphMutator
        from repro.serve import BatchedBFS

        graph = catalog.build("g", DRAM_PCIE_FLASH, scale=8, edge_factor=8,
                              seed=7, alpha=2.0, beta=4.0)
        assert graph.semi_external
        mutator = GraphMutator(graph, compact_every=10**6)
        rng = np.random.default_rng(11)
        root = int(np.argmax(graph.degrees))
        old = BatchedBFS(graph).run_batch([root])[0].parent
        t0 = graph.clock.now()
        for _ in range(3):
            batch = draw_batch(mutator.effective_csr, rng, 2, 2)
            mutator.apply(batch)
            out = mutator.repair(old, root, mutator.version - 1)
            fresh = BatchedBFS(graph).run_batch([root])[0].parent
            assert out is not None
            assert np.array_equal(out.parent, fresh)
            old = fresh
        # Repair I/O ran on the simulated clock (device reads charged).
        assert graph.clock.now() > t0

    def test_dram_graph_mutates_and_repairs_without_a_store(self, catalog):
        from repro.core import DRAM_ONLY
        from repro.graphmut.versioned import GraphMutator
        from repro.serve import BatchedBFS

        graph = catalog.build("d", DRAM_ONLY, scale=7, edge_factor=8,
                              seed=7, alpha=2.0, beta=4.0)
        assert not graph.semi_external
        mutator = GraphMutator(graph, compact_every=0)  # never compacts
        rng = np.random.default_rng(13)
        root = int(np.argmax(graph.degrees))
        old = BatchedBFS(graph).run_batch([root])[0].parent
        mutator.apply(draw_batch(mutator.effective_csr, rng, 2, 2))
        assert mutator.n_compactions == 0
        out = mutator.repair(old, root, 0)
        fresh = ReferenceBFS(mutator.effective_csr).run(root).parent
        assert out is not None
        assert np.array_equal(out.parent, fresh)
        # The overlay serves single-row reads too (no device charge).
        assert np.array_equal(mutator._charged_row(root),
                              mutator.effective_csr.neighbors(root))
        assert "version=1" in repr(mutator)

    def test_repair_fallback_counted_at_tight_threshold(self, catalog):
        from repro.core import DRAM_ONLY
        from repro.graphmut.versioned import GraphMutator
        from repro.obs import Observability
        from repro.obs.schema import M_MUT_REPAIRS

        graph = catalog.build("d", DRAM_ONLY, scale=6, edge_factor=8,
                              seed=7, alpha=2.0, beta=4.0)
        # A zero dirty budget forces every non-trivial repair to fall
        # back; the mutator must count it rather than return a tree.
        obs = Observability()
        mutator = GraphMutator(graph, obs=obs, repair_threshold=0.0)
        rng = np.random.default_rng(3)
        root = int(np.argmax(graph.degrees))
        old = ReferenceBFS(mutator.effective_csr).run(root).parent
        while True:  # draw until the batch actually moves a level
            batch = draw_batch(mutator.effective_csr, rng, 2, 2)
            mutator.apply(batch)
            if mutator.repair(old, root, mutator.version - 1) is None:
                break
            old = ReferenceBFS(mutator.effective_csr).run(root).parent
        assert obs.registry.value(
            M_MUT_REPAIRS, graph="d", outcome="fallback"
        ) >= 1

    def test_invalid_threshold_and_window_queries_rejected(self, catalog):
        from repro.core import DRAM_ONLY
        from repro.graphmut.versioned import GraphMutator

        graph = catalog.build("d", DRAM_ONLY, scale=6, edge_factor=8,
                              seed=7, alpha=2.0, beta=4.0)
        with pytest.raises(ConfigurationError):
            GraphMutator(graph, repair_threshold=1.5)
        mutator = GraphMutator(graph)
        with pytest.raises(ConfigurationError):
            mutator.batches_since(-1)

    def test_delta_shard_uncharged_views_match_overlay(self, catalog):
        from repro.graphmut.versioned import GraphMutator

        graph = catalog.build("g", DRAM_PCIE_FLASH, scale=7, edge_factor=8,
                              seed=7, alpha=2.0, beta=4.0)
        mutator = GraphMutator(graph, compact_every=10**6)
        rng = np.random.default_rng(17)
        mutator.apply(draw_batch(mutator.effective_csr, rng, 3, 3))
        eff = mutator.effective_csr
        dirty = mutator.overlay.dirty_rows()
        rows = np.concatenate([dirty, [0]]).astype(np.int64)
        # Across all shards, every uncharged view must agree with the
        # overlay's effective graph row for row.
        n_cols = 0
        for shard in graph.external_shards:
            csr = shard.to_csr_uncharged()
            deg = shard.degrees_uncharged()
            _, counts = shard.row_extents(rows)
            for i, r in enumerate(rows.tolist()):
                want = eff.neighbors(r)
                want = want[(want >= shard.lo) & (want < shard.hi)]
                assert np.array_equal(csr.neighbors(r), want)
                assert deg[r] == want.size == counts[i]
            assert f"[{shard.lo}, {shard.hi})" in repr(shard)
            n_cols += shard.hi - shard.lo
        assert n_cols == graph.n_vertices

    def test_partitioned_graph_rejected(self, catalog):
        from repro.graphmut.versioned import GraphMutator

        graph = catalog.build_partitioned(
            "p", DRAM_PCIE_FLASH, scale=7, n_partitions=2, seed=7,
        )
        with pytest.raises(ConfigurationError):
            GraphMutator(graph)

    def test_repair_window_closes_after_compaction(self, catalog):
        from repro.graphmut.versioned import GraphMutator

        graph = catalog.build("g", DRAM_PCIE_FLASH, scale=7, edge_factor=8,
                              seed=7, alpha=2.0, beta=4.0)
        mutator = GraphMutator(graph, compact_every=2)
        rng = np.random.default_rng(5)
        for _ in range(2):
            mutator.apply(draw_batch(mutator.effective_csr, rng, 2, 1))
        assert mutator.n_compactions == 1
        assert mutator.min_repairable_version == 2
        assert not mutator.can_repair(0)
        parent = np.zeros(graph.n_vertices, dtype=np.int64)
        assert mutator.repair(parent, 0, 0) is None
