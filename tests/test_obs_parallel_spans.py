"""Span-tree integrity under the thread-pool path (repro.bfs.parallel).

The ``bfs.run`` → ``bfs.phase`` → ``bfs.level`` tree is synthesized
after the level loop from recorded boundaries, and ``bfs.shard`` /
``nvm.charge`` spans are recorded live during the serial charge-commit
— so the exported trace must be well-formed and byte-for-byte
deterministic no matter how the worker threads interleave the scans.
"""

import pytest

from repro.bfs import AlphaBetaPolicy, HybridBFS, SemiExternalBFS
from repro.bfs.parallel import ShardExecutor
from repro.obs import Observability
from repro.perfmodel.cost import DramCostModel
from repro.semiext import NVMStore, PCIE_FLASH

WORKERS = 4


def _span_key(span):
    return (
        span.span_id,
        span.parent_id,
        span.name,
        span.t_start_s,
        span.t_end_s,
        tuple(sorted(span.attrs.items())),
    )


def _run_hybrid(forward, backward, a_root):
    obs = Observability()
    engine = HybridBFS(
        forward, backward, AlphaBetaPolicy(50, 500), DramCostModel(),
        n_workers=WORKERS, obs=obs,
    )
    engine.run(a_root)
    engine.close()
    return obs


def _run_semi_external(forward, backward, a_root, workdir):
    obs = Observability()
    store = NVMStore(workdir, PCIE_FLASH, obs=obs)
    engine = SemiExternalBFS.offload(
        forward, backward, AlphaBetaPolicy(50, 500), store,
        cost_model=DramCostModel(),
    )
    engine.executor = ShardExecutor(WORKERS)
    engine.run(a_root)
    engine.close()
    return obs


class TestParallelSpanTree:
    @pytest.fixture(scope="class")
    def hybrid_obs(self, forward, backward, a_root):
        return _run_hybrid(forward, backward, a_root)

    @pytest.fixture(scope="class")
    def semiext_obs(self, forward, backward, a_root, tmp_path_factory):
        return _run_semi_external(
            forward, backward, a_root, tmp_path_factory.mktemp("semiext")
        )

    def test_run_phase_level_tree_well_formed(self, hybrid_obs):
        spans = hybrid_obs.tracer.spans
        by_id = {s.span_id: s for s in spans}
        names = [s.name for s in spans]
        assert names.count("bfs.run") == 1
        assert "bfs.phase" in names and "bfs.level" in names
        for span in spans:
            assert span.t_end_s is not None and span.t_end_s >= span.t_start_s
            if span.name == "bfs.run":
                assert span.parent_id is None
            elif span.name == "bfs.phase":
                assert by_id[span.parent_id].name == "bfs.run"
            elif span.name == "bfs.level":
                assert by_id[span.parent_id].name == "bfs.phase"

    def test_children_lie_within_parent_interval(self, hybrid_obs):
        spans = hybrid_obs.tracer.spans
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert span.t_start_s >= parent.t_start_s
            assert span.t_end_s <= parent.t_end_s

    def test_levels_cover_run_contiguously(self, hybrid_obs):
        levels = sorted(
            (s for s in hybrid_obs.tracer.spans if s.name == "bfs.level"),
            key=lambda s: s.attrs["level"],
        )
        assert [s.attrs["level"] for s in levels] == list(range(len(levels)))
        for prev, cur in zip(levels, levels[1:]):
            assert cur.t_start_s == pytest.approx(prev.t_end_s)

    def test_hybrid_tree_deterministic_across_pool_runs(
        self, forward, backward, a_root, hybrid_obs
    ):
        again = _run_hybrid(forward, backward, a_root)
        assert [_span_key(s) for s in again.tracer.spans] == [
            _span_key(s) for s in hybrid_obs.tracer.spans
        ]

    def test_shard_spans_recorded_under_executor(self, semiext_obs):
        shards = [
            s for s in semiext_obs.tracer.spans if s.name == "bfs.shard"
        ]
        assert shards, "external top-down commit should record shard spans"
        for span in shards:
            assert span.attrs["direction"] == "top-down"
            assert isinstance(span.attrs["shard"], int)
            assert span.attrs["edges"] >= 0
            assert span.t_end_s >= span.t_start_s

    def test_charges_nest_inside_shard_spans(self, semiext_obs):
        by_id = {s.span_id: s for s in semiext_obs.tracer.spans}
        charges = [
            s for s in semiext_obs.tracer.spans if s.name == "nvm.charge"
        ]
        assert charges, "offloaded forward scans should charge the device"
        for span in charges:
            assert span.parent_id is not None
            assert by_id[span.parent_id].name == "bfs.shard"

    def test_semiext_tree_deterministic_across_pool_runs(
        self, forward, backward, a_root, semiext_obs, tmp_path
    ):
        again = _run_semi_external(forward, backward, a_root, tmp_path)
        assert [_span_key(s) for s in again.tracer.spans] == [
            _span_key(s) for s in semiext_obs.tracer.spans
        ]
