"""Unit tests for repro.util.rng, units and timer."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.util.rng import DEFAULT_SEED, derive_rng, spawn_streams
from repro.util.timer import Timer, WallClock
from repro.util.units import GIB, KIB, MIB, TIB, format_bytes, parse_bytes


class TestRng:
    def test_deterministic_per_path(self):
        a = derive_rng(1, "x").integers(0, 1 << 30, 8)
        b = derive_rng(1, "x").integers(0, 1 << 30, 8)
        assert (a == b).all()

    def test_paths_independent(self):
        a = derive_rng(1, "x").integers(0, 1 << 30, 8)
        b = derive_rng(1, "y").integers(0, 1 << 30, 8)
        assert not (a == b).all()

    def test_seeds_independent(self):
        a = derive_rng(1, "x").integers(0, 1 << 30, 8)
        b = derive_rng(2, "x").integers(0, 1 << 30, 8)
        assert not (a == b).all()

    def test_none_uses_default_seed(self):
        a = derive_rng(None, "x").integers(0, 1 << 30, 4)
        b = derive_rng(DEFAULT_SEED, "x").integers(0, 1 << 30, 4)
        assert (a == b).all()

    def test_nested_paths(self):
        a = derive_rng(1, "a", "b").integers(0, 1 << 30, 4)
        b = derive_rng(1, "a", "c").integers(0, 1 << 30, 4)
        assert not (a == b).all()

    def test_spawn_streams_distinct(self):
        streams = spawn_streams(5, 4, "workers")
        draws = [s.integers(0, 1 << 30, 4).tolist() for s in streams]
        assert len({tuple(d) for d in draws}) == 4

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_streams(1, -1)


class TestUnits:
    def test_format_round_values(self):
        assert format_bytes(40.1 * GIB) == "40.1 GB"
        assert format_bytes(512) == "512 B"
        assert format_bytes(1.5 * TIB) == "1.5 TB"
        assert format_bytes(2 * MIB) == "2.0 MB"
        assert format_bytes(0) == "0 B"

    def test_format_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            format_bytes(-1)

    def test_parse_suffixes(self):
        assert parse_bytes("64 GB") == 64 * GIB
        assert parse_bytes("4KiB") == 4 * KIB
        assert parse_bytes("1.5tb") == int(1.5 * TIB)
        assert parse_bytes("512") == 512
        assert parse_bytes(4096) == 4096
        assert parse_bytes(10.7) == 10

    def test_parse_invalid(self):
        with pytest.raises(ConfigurationError):
            parse_bytes("lots")
        with pytest.raises(ConfigurationError):
            parse_bytes(-1)

    def test_round_trip(self):
        assert parse_bytes(format_bytes(64 * GIB, precision=0)) == 64 * GIB


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.001)
        first = t.elapsed
        with t:
            time.sleep(0.001)
        assert t.elapsed > first > 0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0

    def test_reset_while_running_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.reset()
        t.stop()

    def test_wall_clock_monotonic(self):
        a = WallClock.now()
        b = WallClock.now()
        assert b >= a
