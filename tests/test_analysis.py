"""Unit tests for the per-figure analysis modules."""

import numpy as np
import pytest

from repro.analysis import (
    alpha_beta_sweep,
    ascii_table,
    backward_offload_sweep,
    compare_scenarios,
    degradation_by_degree,
    format_float,
    scaled_alpha_grid,
    summarize_iostats,
    traversal_split,
)
from repro.analysis.perfcompare import build_engine
from repro.bfs import AlphaBetaPolicy, HybridBFS, SemiExternalBFS
from repro.core import DRAM_ONLY, DRAM_PCIE_FLASH, PAPER_SCENARIOS
from repro.errors import ConfigurationError
from repro.perfmodel.cost import DramCostModel
from repro.semiext import NVMStore, PCIE_FLASH


class TestReport:
    def test_ascii_table(self):
        text = ascii_table(["a", "b"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "22 | yy" in text

    def test_ascii_table_title(self):
        assert ascii_table(["a"], [[1]], title="T").startswith("T\n")

    def test_format_float(self):
        assert format_float(0) == "0"
        assert format_float(1234.5) == "1234"
        assert "e" in format_float(1.5e9)


class TestScaledAlphaGrid:
    def test_identity_at_paper_scale(self):
        assert scaled_alpha_grid(1 << 27) == (1e4, 1e5, 1e6)

    def test_threshold_preserved(self):
        n = 1 << 16
        for a_paper, a_scaled in zip((1e4, 1e5, 1e6), scaled_alpha_grid(n)):
            assert n / a_scaled == pytest.approx((1 << 27) / a_paper)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            scaled_alpha_grid(0)


class TestSweep:
    def test_grid_shape_and_best(self, edges, forward, backward, tmp_path):
        result = alpha_beta_sweep(
            lambda a, b: build_engine(
                DRAM_ONLY, forward, backward, a, b, tmp_path
            ),
            edges,
            "DRAM-only",
            alphas=(10.0, 100.0),
            beta_factors=(0.1, 10.0),
            n_roots=2,
            seed=1,
        )
        assert result.teps.shape == (2, 2)
        assert (result.teps > 0).all()
        a, b, t = result.best()
        assert t == result.teps.max()
        assert a in (10.0, 100.0)

    def test_format(self, edges, forward, backward, tmp_path):
        result = alpha_beta_sweep(
            lambda a, b: build_engine(
                DRAM_ONLY, forward, backward, a, b, tmp_path
            ),
            edges, "X", alphas=(50.0,), beta_factors=(1.0,), n_roots=1,
        )
        assert "alpha=50" in result.format()


class TestCompareScenarios:
    def test_series_complete(self, edges, csr, forward, backward, tmp_path):
        points = ((50.0, 500.0),)
        series = compare_scenarios(
            edges, csr, forward, backward, PAPER_SCENARIOS, points,
            tmp_path, n_roots=2, seed=1,
        )
        names = [s.name for s in series]
        assert names == [
            "DRAM-only", "DRAM+PCIeFlash", "DRAM+SSD",
            "Top-down only", "Bottom-up only", "Graph500 reference",
        ]
        for s in series:
            assert s.teps.shape == (1,)
            assert s.teps[0] > 0

    def test_paper_ordering(self, edges, csr, forward, backward, tmp_path):
        # At each scenario's best (alpha, beta): DRAM-only >= PCIeFlash >=
        # SSD, and every scenario beats the reference baseline — the
        # paper's Figure 8 ordering.
        n = edges.n_vertices
        points = ((50.0, 500.0), (float(n), float(n)))
        series = {
            s.name: s.best()[2]
            for s in compare_scenarios(
                edges, csr, forward, backward, PAPER_SCENARIOS, points,
                tmp_path, n_roots=3, seed=1,
            )
        }
        assert series["DRAM-only"] >= series["DRAM+PCIeFlash"]
        assert series["DRAM+PCIeFlash"] >= series["DRAM+SSD"]
        # The reference never beats a tuned hybrid scenario or top-down.
        assert series["Graph500 reference"] < series["DRAM-only"]
        assert series["Graph500 reference"] < series["DRAM+SSD"]
        assert series["Graph500 reference"] < series["Top-down only"]

    def test_best(self, edges, csr, forward, backward, tmp_path):
        points = ((50.0, 500.0), (100.0, 1000.0))
        series = compare_scenarios(
            edges, csr, forward, backward, (DRAM_ONLY,), points,
            tmp_path, n_roots=1, include_baselines=False,
        )
        a, b, t = series[0].best()
        assert (a, b) in points


class TestTraversalSplit:
    def test_split_sums(self, forward, backward, a_root):
        engine = HybridBFS(
            forward, backward, AlphaBetaPolicy(50, 500), DramCostModel()
        )
        results = [engine.run(a_root) for _ in range(2)]
        split = traversal_split(results, label="x")
        assert split.total == pytest.approx(
            sum(t.edges_scanned for t in results[0].traces)
        )
        assert 0 <= split.top_down_fraction <= 1

    def test_empty(self):
        split = traversal_split([])
        assert split.total == 0
        assert split.top_down_fraction == 0.0

    def test_bottom_up_dominates_with_large_alpha(
        self, forward, backward, a_root
    ):
        # The paper's semi-external tuning: most traffic bottom-up.
        engine = HybridBFS(
            forward, backward,
            AlphaBetaPolicy(forward.n_vertices, forward.n_vertices),
            DramCostModel(),
        )
        split = traversal_split([engine.run(a_root)])
        assert split.bottom_up > split.top_down


class TestDegradation:
    def _runs(self, forward, backward, a_root, tmp_path):
        alpha, beta = 30.0, 30.0  # forces early and late top-down levels
        dram = HybridBFS(
            forward, backward, AlphaBetaPolicy(alpha, beta), DramCostModel()
        ).run(a_root)
        store = NVMStore(tmp_path / "nvm", PCIE_FLASH)
        nvm = SemiExternalBFS.offload(
            forward, backward, AlphaBetaPolicy(alpha, beta), store,
            cost_model=DramCostModel(),
        ).run(a_root)
        return dram, nvm

    def test_points_only_top_down(self, forward, backward, a_root, tmp_path):
        dram, nvm = self._runs(forward, backward, a_root, tmp_path)
        points = degradation_by_degree(dram, nvm)
        assert points
        td_levels = [
            t.level for t in dram.traces if t.direction.value == "top-down"
        ]
        assert [p.level for p in points] == [
            l for l, t in zip(td_levels, [
                t for t in dram.traces if t.direction.value == "top-down"
            ]) if t.frontier_size > 0
        ]

    def test_ratios_above_one(self, forward, backward, a_root, tmp_path):
        dram, nvm = self._runs(forward, backward, a_root, tmp_path)
        for p in degradation_by_degree(dram, nvm):
            assert p.ratio > 1.0

    def test_mismatched_roots_rejected(self, forward, backward, tmp_path):
        import numpy as np

        deg = backward.global_degrees()
        roots = np.flatnonzero(deg > 0)[:2]
        engine = HybridBFS(
            forward, backward, AlphaBetaPolicy(30, 30), DramCostModel()
        )
        r1, r2 = engine.run(int(roots[0])), engine.run(int(roots[1]))
        with pytest.raises(ConfigurationError):
            degradation_by_degree(r1, r2)


class TestIoTrace:
    def test_summary(self, forward, backward, a_root, tmp_path):
        store = NVMStore(tmp_path / "nvm", PCIE_FLASH)
        SemiExternalBFS.offload(
            forward, backward, AlphaBetaPolicy(30, 30), store,
            cost_model=DramCostModel(),
        ).run(a_root)
        summary = summarize_iostats(store.iostats)
        assert summary.total_requests > 0
        assert summary.avgrq_sz >= 8.0
        assert summary.avgqu_sz > 0
        assert summary.times_s.size == summary.queue.size
        assert "avgqu-sz" in summary.format()

    def test_empty_meter(self):
        from repro.semiext.iostats import IoStats

        summary = summarize_iostats(IoStats("d"))
        assert summary.total_requests == 0
        assert summary.avgqu_sz == 0.0


class TestOffloadSweep:
    def test_both_strategies_swept(self, forward, backward, tmp_path):
        deg = backward.global_degrees()
        roots = np.flatnonzero(deg > 0)[:1]
        points = backward_offload_sweep(
            forward, backward, PCIE_FLASH, tmp_path, roots,
            ks=(2, 32), alpha=50.0, beta=500.0,
        )
        assert {p.strategy for p in points} == {"prefix", "degree-threshold"}
        assert len(points) == 4

    def test_prefix_access_ratio_decreases_with_k(
        self, forward, backward, tmp_path
    ):
        deg = backward.global_degrees()
        roots = np.flatnonzero(deg > 0)[:1]
        points = backward_offload_sweep(
            forward, backward, PCIE_FLASH, tmp_path, roots,
            ks=(2, 32), strategies=("prefix",),
            alpha=50.0, beta=500.0,
        )
        by_k = {p.k: p for p in points}
        assert by_k[2].nvm_access_ratio >= by_k[32].nvm_access_ratio

    def test_degree_threshold_size_increases_with_k(
        self, forward, backward, tmp_path
    ):
        deg = backward.global_degrees()
        roots = np.flatnonzero(deg > 0)[:1]
        points = backward_offload_sweep(
            forward, backward, PCIE_FLASH, tmp_path, roots,
            ks=(2, 32), strategies=("degree-threshold",),
            alpha=50.0, beta=500.0,
        )
        by_k = {p.k: p for p in points}
        assert by_k[32].dram_reduction >= by_k[2].dram_reduction

    def test_unknown_strategy_rejected(self, forward, backward, tmp_path):
        with pytest.raises(ConfigurationError):
            backward_offload_sweep(
                forward, backward, PCIE_FLASH, tmp_path,
                np.array([0]), strategies=("bogus",),
            )

    def test_no_roots_rejected(self, forward, backward, tmp_path):
        with pytest.raises(ConfigurationError):
            backward_offload_sweep(
                forward, backward, PCIE_FLASH, tmp_path, np.array([]),
            )
