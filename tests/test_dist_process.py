"""Process-backend tests: shared-memory CSR round-trips, forked workers
matching the in-process backend byte for byte, crash respawn."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bfs import AlphaBetaPolicy
from repro.csr import build_csr
from repro.csr.graph import CSRGraph
from repro.dist import ContiguousPartitioner, DistributedBFS, SharedCSR
from repro.graph500 import EdgeList, generate_edges
from repro.semiext import PCIE_FLASH
from repro.semiext.faults import FaultPlan

SCALE = 7


def _graph(seed=5):
    n = 1 << SCALE
    csr = build_csr(EdgeList(generate_edges(SCALE, seed=seed), n))
    return csr, int(np.flatnonzero(csr.degrees() > 0)[0])


def _policy():
    return AlphaBetaPolicy(alpha=50, beta=500)


class TestSharedCSR:
    def test_round_trip(self):
        csr, _ = _graph()
        shared = SharedCSR.create(csr)
        attached = SharedCSR.attach(shared.handle)
        try:
            view = attached.csr
            assert np.array_equal(view.indptr, csr.indptr)
            assert np.array_equal(view.adj, csr.adj)
            assert view.n_cols == csr.n_cols
            assert shared.nbytes >= csr.indptr.nbytes + csr.adj.nbytes
        finally:
            attached.close()
            shared.close()

    def test_attached_view_is_zero_copy(self):
        csr, _ = _graph()
        shared = SharedCSR.create(csr)
        attached = SharedCSR.attach(shared.handle)
        try:
            # A write on the owner side is visible through the attached
            # mapping — both sides alias the same segment.
            shared._adj_view()[0] = 99
            assert int(attached.csr.adj[0]) == 99
        finally:
            attached.close()
            shared.close()

    def test_empty_adjacency_padded(self):
        empty = CSRGraph(
            indptr=np.zeros(4, dtype=np.int64),
            adj=np.empty(0, dtype=np.int64),
            n_cols=3,
        )
        shared = SharedCSR.create(empty)
        try:
            assert shared.csr.adj.size == 0
            assert shared.csr.n_rows == 3
        finally:
            shared.close()

    def test_close_idempotent_and_unlinks(self):
        csr, _ = _graph()
        shared = SharedCSR.create(csr)
        handle = shared.handle
        shared.close()
        shared.close()
        with pytest.raises(FileNotFoundError):
            SharedCSR.attach(handle)


class TestProcessBackend:
    def test_forked_workers_match_local_backend(self, tmp_path):
        csr, root = _graph()
        local = DistributedBFS.build(
            csr, ContiguousPartitioner(2), _policy(),
            tmp_path / "local", PCIE_FLASH,
        )
        expected = local.run(root)
        local.close()

        engine = DistributedBFS.build(
            csr, ContiguousPartitioner(2), _policy(),
            tmp_path / "proc", PCIE_FLASH, backend="process",
        )
        try:
            result = engine.run(root)
            assert result.parent.tobytes() == expected.parent.tobytes()
            # Device accounting crosses the pipe too.
            assert engine._nvm_bytes() > 0
            assert all(b >= 0 for b in engine.nvm_bytes_per_worker())
        finally:
            engine.close()

    def test_crashed_process_respawns_and_finishes(self, tmp_path):
        csr, root = _graph()
        clean = DistributedBFS.build(
            csr, ContiguousPartitioner(2), _policy(),
            tmp_path / "clean", PCIE_FLASH,
        )
        expected = clean.run(root)
        clean.close()

        plans = [FaultPlan(seed=7, crash_at_level=1), None]
        engine = DistributedBFS.build(
            csr, ContiguousPartitioner(2), _policy(),
            tmp_path / "crashy", PCIE_FLASH,
            backend="process", fault_plans=plans,
        )
        try:
            result = engine.run(root)
            assert engine.restarts == 1
            assert engine.workers[0].generation == 1
            assert np.array_equal(result.parent, expected.parent)
        finally:
            engine.close()

    def test_close_idempotent(self, tmp_path):
        csr, _ = _graph()
        engine = DistributedBFS.build(
            csr, ContiguousPartitioner(2), _policy(),
            tmp_path / "close", PCIE_FLASH, backend="process",
        )
        engine.close()
        engine.close()
