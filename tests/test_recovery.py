"""Crash-recovery subsystem: checkpoint format, crash injection, resume.

The acceptance bar for the subsystem is bit-identity: a traversal that
crashes mid-run and resumes from its newest valid checkpoint must produce
the *same parent array, byte for byte*, as an uninterrupted run.  These
tests pin that for every external engine, plus the checkpoint file format
(CRC framing, delta chain, torn-epoch fallback), the clock accounting of
durability writes, and the stale-read guards around recovery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bfs import (
    AlphaBetaPolicy,
    FullyExternalBFS,
    HybridBFS,
    SemiExternalBFS,
)
from repro.errors import (
    ConfigurationError,
    ProcessCrashError,
    StorageError,
    TruncatedFileError,
)
from repro.graph500.validate import validate_bfs_tree
from repro.recovery import (
    CheckpointManager,
    QuerySnapshot,
    RecoverableBFS,
    load_run,
)
from repro.semiext import NVMStore, PCIE_FLASH
from repro.semiext.clock import SimulatedClock
from repro.semiext.faults import FaultPlan
from repro.serve.results import ResultCache


def _snap(key="", root=0, level=1, parent=None, frontier=None, n=16):
    if parent is None:
        parent = np.full(n, -1, dtype=np.int64)
        parent[root] = root
    if frontier is None:
        frontier = np.array([root], dtype=np.int64)
    return QuerySnapshot(
        key=key, root=root, level=level, direction="top_down",
        prev_frontier=1, visited_deg_sum=0,
        parent=parent, frontier_queue=frontier,
    )


class TestCheckpointFormat:
    def test_save_load_round_trip(self, store):
        mgr = CheckpointManager(store, run_id="t", every=1)
        parent = np.full(16, -1, dtype=np.int64)
        parent[3] = 3
        parent[5] = 3
        frontier = np.array([5], dtype=np.int64)
        mgr.save([_snap(root=3, parent=parent, frontier=frontier)])
        run = load_run(mgr.dir)
        assert run.epoch == 0
        assert run.n_torn == 0
        [q] = run.queries
        assert q.root == 3 and q.level == 1
        assert np.array_equal(q.parent, parent)
        assert np.array_equal(q.frontier_queue, frontier)

    def test_delta_chain_reassembles_across_epochs(self, store):
        mgr = CheckpointManager(store, run_id="t", every=1)
        parent = np.full(16, -1, dtype=np.int64)
        parent[0] = 0
        mgr.save([_snap(parent=parent.copy())])
        parent[[1, 2]] = 0  # second epoch stores only the new vertices
        mgr.save([_snap(level=2, parent=parent.copy())])
        run = load_run(mgr.dir)
        assert run.epoch == 1
        assert np.array_equal(run.queries[0].parent, parent)

    def test_torn_epoch_falls_back_to_previous(self, store):
        mgr = CheckpointManager(store, run_id="t", every=1)
        parent = np.full(16, -1, dtype=np.int64)
        parent[0] = 0
        mgr.save([_snap(parent=parent.copy())])
        later = parent.copy()
        later[1] = 0
        mgr.save([_snap(level=2, parent=later)])
        mgr.corrupt_last()
        run = load_run(mgr.dir)
        assert run.epoch == 0
        assert run.n_torn == 1
        assert np.array_equal(run.queries[0].parent, parent)

    def test_fully_torn_chain_restores_nothing(self, store):
        mgr = CheckpointManager(store, run_id="t", every=1)
        mgr.save([_snap()])
        mgr.corrupt_last()
        run = load_run(mgr.dir)
        assert run.epoch == -1 and run.n_torn == 1
        assert run.queries == []

    def test_missing_directory_restores_nothing(self, tmp_path):
        run = load_run(tmp_path / "nothing-here")
        assert run.epoch == -1 and run.n_epochs_seen == 0

    def test_epoch_gap_ends_the_valid_prefix(self, store):
        mgr = CheckpointManager(store, run_id="t", every=1)
        mgr.save([_snap()])
        mgr.save([_snap(level=2)])
        mgr.save([_snap(level=3)])
        mgr.epoch_path(1).unlink()  # 0, _, 2: only epoch 0 is trustworthy
        run = load_run(mgr.dir)
        assert run.epoch == 0

    def test_bit_flip_is_rejected_by_crc(self, store):
        mgr = CheckpointManager(store, run_id="t", every=1)
        path = mgr.save([_snap()])
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        assert load_run(mgr.dir).epoch == -1

    def test_adopt_continues_the_chain_with_deltas(self, store):
        mgr = CheckpointManager(store, run_id="t", every=1)
        parent = np.full(16, -1, dtype=np.int64)
        parent[0] = 0
        mgr.save([_snap(parent=parent.copy())])
        restored = load_run(mgr.dir)
        fresh = CheckpointManager(store, run_id="t", every=1)
        fresh.adopt(restored)
        assert fresh.next_epoch == 1
        parent[1] = 0
        path = fresh.save([_snap(level=2, parent=parent.copy())])
        # Only the one new vertex is written: the adopted baseline keeps
        # the delta chain small, and the full reload still agrees.
        assert path.stat().st_size < mgr.epoch_path(0).stat().st_size + 64
        assert np.array_equal(load_run(fresh.dir).queries[0].parent, parent)

    def test_adopt_removes_epochs_past_the_valid_prefix(self, store):
        mgr = CheckpointManager(store, run_id="t", every=1)
        mgr.save([_snap()])
        mgr.save([_snap(level=2)])
        mgr.corrupt_last()
        restored = load_run(mgr.dir)
        assert restored.epoch == 0
        mgr.adopt(restored)
        assert not mgr.epoch_path(1).exists()
        assert mgr.next_epoch == 1

    def test_cadence_and_run_id_validation(self, store):
        with pytest.raises(ConfigurationError, match="cadence"):
            CheckpointManager(store, every=0)
        with pytest.raises(ConfigurationError, match="run id"):
            CheckpointManager(store, run_id="a/b")
        with pytest.raises(ConfigurationError, match="zero queries"):
            CheckpointManager(store).save([])

    def test_save_charges_the_simulated_clock(self, store):
        mgr = CheckpointManager(store, run_id="t", every=1)
        before = store.clock.now()
        reads_before = store.iostats.total_bytes
        mgr.save([_snap(n=4096)])
        assert store.clock.now() > before
        # charge_write costs time but never pollutes the read meters the
        # paper's figures (and the perf scenarios) are built on.
        assert store.iostats.total_bytes == reads_before
        assert mgr.bytes_written > 0 and mgr.n_checkpoints == 1


class TestChargeWrite:
    def test_zero_bytes_is_free(self, store):
        assert store.charge_write(0) == 0.0

    def test_negative_bytes_rejected(self, store):
        with pytest.raises(StorageError, match="negative"):
            store.charge_write(-1)

    def test_elapsed_scales_with_size(self, store):
        small = store.charge_write(4096)
        large = store.charge_write(1 << 22)
        assert large > small > 0.0


def _semi_external(store, forward, backward):
    return SemiExternalBFS.offload(
        forward=forward,
        backward=backward,
        policy=AlphaBetaPolicy(alpha=50, beta=500),
        store=store,
    )


class TestCrashResumeBitIdentity:
    """The acceptance property, per engine and per crash flavour."""

    @pytest.mark.parametrize("torn", [False, True])
    def test_semi_external_resumed_tree_is_byte_identical(
        self, tmp_path, forward, backward, edges, a_root, torn
    ):
        clean_store = NVMStore(tmp_path / "clean", PCIE_FLASH)
        clean = _semi_external(clean_store, forward, backward).run(a_root)

        plan = FaultPlan(seed=5, crash_at_level=2, crash_torn=torn)
        store = NVMStore(tmp_path / "crash", PCIE_FLASH, fault_plan=plan)
        rec = RecoverableBFS(
            _semi_external(store, forward, backward), checkpoint_every=1
        )
        with pytest.raises(ProcessCrashError):
            rec.run(a_root)
        resumed = rec.resume()
        assert resumed.parent.tobytes() == clean.parent.tobytes()
        assert validate_bfs_tree(edges, resumed.parent, a_root).ok

    def test_fully_external_resumed_tree_is_byte_identical(
        self, tmp_path, csr, a_root
    ):
        clean_store = NVMStore(tmp_path / "clean", PCIE_FLASH)
        clean = FullyExternalBFS.offload(csr, clean_store).run(a_root)

        plan = FaultPlan(seed=7, crash_at_level=1)
        store = NVMStore(tmp_path / "crash", PCIE_FLASH, fault_plan=plan)
        rec = RecoverableBFS(
            FullyExternalBFS.offload(csr, store), checkpoint_every=1
        )
        with pytest.raises(ProcessCrashError):
            rec.run(a_root)
        assert rec.resume().parent.tobytes() == clean.parent.tobytes()

    def test_hybrid_with_external_store_for_checkpoints(
        self, tmp_path, forward, backward, a_root
    ):
        clean = HybridBFS(
            forward, backward, AlphaBetaPolicy(50, 500)
        ).run(a_root)
        plan = FaultPlan(seed=3, crash_at_level=2)
        store = NVMStore(tmp_path / "ckpt", PCIE_FLASH, fault_plan=plan)
        rec = RecoverableBFS(
            HybridBFS(forward, backward, AlphaBetaPolicy(50, 500)),
            store=store,
            checkpoint_every=1,
        )
        with pytest.raises(ProcessCrashError):
            rec.run(a_root)
        assert np.array_equal(rec.resume().parent, clean.parent)

    def test_crash_before_first_checkpoint_restarts_from_scratch(
        self, tmp_path, forward, backward, a_root
    ):
        clean_store = NVMStore(tmp_path / "clean", PCIE_FLASH)
        clean = _semi_external(clean_store, forward, backward).run(a_root)
        # Cadence 4 with a crash after level 0: nothing persisted yet.
        plan = FaultPlan(seed=11, crash_at_level=0)
        store = NVMStore(tmp_path / "crash", PCIE_FLASH, fault_plan=plan)
        rec = RecoverableBFS(
            _semi_external(store, forward, backward), checkpoint_every=4
        )
        with pytest.raises(ProcessCrashError):
            rec.run(a_root)
        assert np.array_equal(rec.resume().parent, clean.parent)

    def test_run_with_recovery_is_one_call(
        self, tmp_path, forward, backward, a_root
    ):
        clean_store = NVMStore(tmp_path / "clean", PCIE_FLASH)
        clean = _semi_external(clean_store, forward, backward).run(a_root)
        plan = FaultPlan(seed=5, crash_at_level=2, crash_torn=True)
        store = NVMStore(tmp_path / "crash", PCIE_FLASH, fault_plan=plan)
        rec = RecoverableBFS(
            _semi_external(store, forward, backward), checkpoint_every=1
        )
        res = rec.run_with_recovery(a_root)
        assert np.array_equal(res.parent, clean.parent)

    def test_resume_without_any_run_raises(self, store, forward, backward):
        rec = RecoverableBFS(_semi_external(store, forward, backward))
        with pytest.raises(StorageError, match="no valid checkpoint"):
            rec.resume()

    def test_engine_without_store_needs_explicit_one(
        self, forward, backward
    ):
        with pytest.raises(ConfigurationError, match="store"):
            RecoverableBFS(
                HybridBFS(forward, backward, AlphaBetaPolicy(50, 500))
            )

    def test_crash_injection_is_one_shot(self, tmp_path, forward, backward,
                                         a_root):
        plan = FaultPlan(seed=5, crash_at_level=1)
        store = NVMStore(tmp_path / "crash", PCIE_FLASH, fault_plan=plan)
        rec = RecoverableBFS(
            _semi_external(store, forward, backward), checkpoint_every=1
        )
        with pytest.raises(ProcessCrashError):
            rec.run(a_root)
        # The injector disarms after firing (process-restart semantics):
        # the resume must not crash at the same level again.
        assert not store.injector.crash_armed
        rec.resume()


class TestReopenTruncation:
    """Satellite regression: reopen() types truncation instead of
    surfacing a memmap ValueError later."""

    def _array(self, store):
        return store.put_array(
            "arr", np.arange(1024, dtype=np.int64)
        )

    def test_reopen_after_truncation_is_typed(self, store):
        arr = self._array(store)
        arr.path.write_bytes(arr.path.read_bytes()[:100])
        with pytest.raises(TruncatedFileError, match="100 bytes"):
            arr.reopen()

    def test_reopen_after_deletion_is_typed(self, store):
        arr = self._array(store)
        arr.path.unlink()
        with pytest.raises(TruncatedFileError, match="missing"):
            arr.reopen()

    def test_truncated_error_is_a_storage_error(self):
        assert issubclass(TruncatedFileError, StorageError)

    def test_reopen_intact_file_is_idempotent(self, store):
        arr = self._array(store)
        arr.reopen()
        arr.reopen()
        row = arr.read_rows(
            np.array([17], dtype=np.int64), np.array([1], dtype=np.int64)
        )
        assert int(row[0]) == 17


class TestStaleCacheInvalidation:
    """Satellite: answers cached after a checkpoint must not survive a
    rollback to it."""

    def _cache(self):
        clock = SimulatedClock()
        return ResultCache(capacity=8, clock=clock), clock

    def test_entries_after_checkpoint_are_dropped(self):
        cache, clock = self._cache()
        parent = np.array([0], dtype=np.int64)
        cache.put("g", 1, parent, 10)
        clock.advance(5.0)
        cache.put("g", 2, parent, 10)
        dropped = cache.invalidate_stale("g", as_of_s=1.0)
        assert dropped == 1
        assert cache.evictions_stale == 1
        assert cache.get("g", 1) is not None
        assert cache.get("g", 2) is None

    def test_other_graphs_untouched(self):
        cache, clock = self._cache()
        parent = np.array([0], dtype=np.int64)
        clock.advance(5.0)
        cache.put("g", 1, parent, 10)
        cache.put("h", 1, parent, 10)
        assert cache.invalidate_stale("g", as_of_s=1.0) == 1
        assert cache.get("h", 1) is not None

    def test_entry_at_exactly_the_checkpoint_survives(self):
        cache, clock = self._cache()
        clock.advance(2.0)
        cache.put("g", 1, np.array([0], dtype=np.int64), 10)
        assert cache.invalidate_stale("g", as_of_s=2.0) == 0


class TestCheckpointOverheadScenario:
    def test_write_amplification_within_budget(self, tmp_path):
        from repro.perf.scenarios import get_scenario

        artifact = get_scenario("checkpoint_overhead").run(7, tmp_path)
        amp = artifact.metrics["write_amplification_pct"].value
        assert 0.0 < amp <= 5.0
        assert artifact.metrics["n_epochs"].value >= 1


class TestCrashRecoveryGate:
    """The CI gate tool (tools/crash_recovery_gate.py) end to end."""

    def _gate(self):
        import sys

        sys.path.insert(0, "tools")
        try:
            import crash_recovery_gate
        finally:
            sys.path.pop(0)
        return crash_recovery_gate

    def test_gate_passes_and_writes_no_artifacts(self, tmp_path, capsys):
        gate = self._gate()
        out = tmp_path / "artifacts"
        code = gate.main(["--seed", "7", "--scale", "9", "--out", str(out)])
        assert code == 0
        assert not out.exists()
        printed = capsys.readouterr().out
        assert "graph500 validation: PASS" in printed
        assert "byte-identical to clean run: True" in printed

    def test_crash_point_is_drawn_from_the_seed(self, tmp_path, capsys):
        gate = self._gate()
        crash_lines = set()
        for seed in ("7", "19", "101"):
            assert gate.main(["--seed", seed, "--scale", "9",
                              "--out", str(tmp_path)]) == 0
            first = capsys.readouterr().out.splitlines()[0]
            crash_lines.add(first.split(": ", 1)[1])
        assert len(crash_lines) > 1
