"""Unit tests for the Graph500 BFS-tree validator."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graph500.edgelist import EdgeList
from repro.graph500.validate import compute_levels, validate_bfs_tree


def _el(pairs, n):
    return EdgeList(np.array(pairs, dtype=np.int64).T.reshape(2, -1), n)


# A path 0-1-2-3 plus an isolated vertex 4.
PATH = _el([(0, 1), (1, 2), (2, 3)], 5)
PATH_TREE = np.array([0, 0, 1, 2, -1], dtype=np.int64)


class TestComputeLevels:
    def test_valid_chain(self):
        levels, err = compute_levels(PATH_TREE, 0)
        assert err is None
        assert levels.tolist() == [0, 1, 2, 3, -1]

    def test_root_self_parent_required(self):
        bad = PATH_TREE.copy()
        bad[0] = 1
        _, err = compute_levels(bad, 0)
        assert err is not None and "root" in err

    def test_root_out_of_range(self):
        _, err = compute_levels(PATH_TREE, 9)
        assert err is not None

    def test_cycle_detected(self):
        parent = np.array([0, 2, 1, -1], dtype=np.int64)
        _, err = compute_levels(parent, 0)
        assert err is not None and "cycle" in err.lower()

    def test_dangling_parent_detected(self):
        # 1's parent is 3, which is unvisited.
        parent = np.array([0, 3, -1, -1], dtype=np.int64)
        _, err = compute_levels(parent, 0)
        assert err is not None

    def test_parent_beyond_n_diagnosed_not_crash(self):
        # A buggy engine may emit a parent id past the vertex range;
        # the validator must report it instead of raising IndexError.
        parent = np.array([0, 7, -1], dtype=np.int64)
        _, err = compute_levels(parent, 0)
        assert err is not None and "outside" in err

    def test_negative_non_sentinel_parent_diagnosed(self):
        # -3 is not the UNVISITED sentinel and must not wrap around.
        parent = np.array([0, -3, -1], dtype=np.int64)
        _, err = compute_levels(parent, 0)
        assert err is not None and "-3" in err


class TestValidate:
    def test_valid_tree_passes(self):
        res = validate_bfs_tree(PATH, PATH_TREE, 0)
        assert res.ok
        assert res.n_tree_vertices == 4
        res.raise_if_invalid()  # must not raise

    def test_wrong_shape_rejected(self):
        res = validate_bfs_tree(PATH, np.array([0, -1]), 0)
        assert not res.ok

    def test_rule2_level_skip(self):
        # Vertex 3 claims parent 1 (levels 3 vs 1): not an edge either, but
        # rule 2 fires first on the level gap after recomputation...
        tree = np.array([0, 0, 1, 1, -1], dtype=np.int64)
        # 3's parent is 1 -> levels [0,1,2,2]; (1,3) is not a graph edge.
        res = validate_bfs_tree(PATH, tree, 0, collect_all=True)
        assert not res.ok
        assert any("rule3" in v for v in res.violations)

    def test_rule3_fake_edge(self):
        # Pretend 0-2 is an edge (it is not): 2's parent set to 0.
        tree = np.array([0, 0, 0, -1, -1], dtype=np.int64)
        res = validate_bfs_tree(PATH, tree, 0, collect_all=True)
        assert not res.ok
        assert any("rule3" in v for v in res.violations)

    def test_rule4_unvisited_reachable_vertex(self):
        # Stop the tree early: 3 unvisited although edge (2, 3) exists.
        tree = np.array([0, 0, 1, -1, -1], dtype=np.int64)
        res = validate_bfs_tree(PATH, tree, 0, collect_all=True)
        assert not res.ok
        assert any("rule5" in v or "rule4" in v for v in res.violations)

    def test_non_tree_edge_spanning_two_levels_rejected(self):
        # Graph: square 0-1, 0-2, 1-3, 2-3 plus chord 0-3 would make
        # levels [0,1,1,2] invalid since 0-3 spans 2 levels.
        square = _el([(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)], 4)
        tree = np.array([0, 0, 0, 1], dtype=np.int64)
        res = validate_bfs_tree(square, tree, 0)
        assert not res.ok  # with the chord, 3 must be at level 1

    def test_levels_in_result(self):
        res = validate_bfs_tree(PATH, PATH_TREE, 0)
        assert res.levels is not None
        assert res.levels.tolist() == [0, 1, 2, 3, -1]

    def test_raise_if_invalid(self):
        res = validate_bfs_tree(PATH, np.array([0, 0, 0, -1, -1]), 0)
        with pytest.raises(ValidationError):
            res.raise_if_invalid()

    def test_self_loops_and_duplicates_tolerated(self):
        noisy = _el([(0, 1), (0, 1), (1, 1), (1, 2), (2, 3)], 5)
        res = validate_bfs_tree(noisy, PATH_TREE, 0)
        assert res.ok

    def test_isolated_vertices_ignored(self):
        res = validate_bfs_tree(PATH, PATH_TREE, 0)
        assert res.ok

    def test_collect_all_reports_multiple(self):
        # Break two rules at once: vertex 2's parent is 0 (fake edge) and
        # vertex 3 left unvisited though reachable.
        tree = np.array([0, 0, 0, -1, -1], dtype=np.int64)
        res = validate_bfs_tree(PATH, tree, 0, collect_all=True)
        assert len(res.violations) >= 2

    def test_out_of_range_parent_collect_all_does_not_crash(self):
        res = validate_bfs_tree(PATH, np.array([0, 9, -1, -1, -1]), 0,
                                collect_all=True)
        assert not res.ok
        assert any("rule1" in v for v in res.violations)

    def test_self_loop_only_graph_with_claimed_tree_edge(self):
        # The deduplicated edge-key set is empty; a tree that still claims
        # an edge must fail rule 3, not crash on the empty key array.
        loops = _el([(0, 0), (1, 1)], 3)
        res = validate_bfs_tree(loops, np.array([0, 0, -1]), 0,
                                collect_all=True)
        assert not res.ok
        assert any("rule3" in v for v in res.violations)

    def test_root_only_component(self):
        two = _el([(0, 1)], 3)
        tree = np.array([-1, -1, 2], dtype=np.int64)
        res = validate_bfs_tree(two, tree, 2)
        assert res.ok
        assert res.n_tree_vertices == 1
