"""Unit tests for repro.obs: registry, tracer, session, schema."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    METRICS,
    MetricsRegistry,
    NULL,
    Observability,
    Tracer,
    metric_names,
    span_names,
)
from repro.obs.registry import DEFAULT_BUCKETS, Histogram, format_labels
from repro.obs.schema import (
    M_BFS_EDGES,
    M_BFS_LEVELS,
    M_BFS_RUNS,
    M_NVM_BYTES,
    spec_for,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("x.total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("x.total")
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            c.inc(-1)

    def test_same_name_and_labels_is_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("x.total", device="pcie", op="read")
        b = reg.counter("x.total", op="read", device="pcie")  # order-free
        assert a is b
        a.inc(4)
        assert reg.value("x.total", device="pcie", op="read") == 4

    def test_different_labels_are_different_series(self):
        reg = MetricsRegistry()
        reg.counter("x.total", device="a").inc(1)
        reg.counter("x.total", device="b").inc(2)
        assert reg.value("x.total", device="a") == 1
        assert reg.value("x.total", device="b") == 2
        assert reg.total("x.total") == 3


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("queue.depth")
        g.set(7)
        g.inc(3)
        g.dec(5)
        assert g.value == 5.0


class TestHistogram:
    def test_cumulative_buckets(self):
        h = MetricsRegistry().histogram("sz", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.bucket_counts == [1, 2, 3]  # cumulative <= bound
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)

    def test_observe_many_matches_observe(self):
        reg = MetricsRegistry()
        a = reg.histogram("a", buckets=(1.0, 10.0, 100.0))
        b = reg.histogram("b", buckets=(1.0, 10.0, 100.0))
        values = [0.1, 1.0, 2.0, 10.0, 10.5, 99.0, 1e6]
        for v in values:
            a.observe(v)
        b.observe_many(np.asarray(values))
        assert a.bucket_counts == b.bucket_counts
        assert a.count == b.count
        assert a.sum == pytest.approx(b.sum)

    def test_observe_many_empty_is_noop(self):
        h = MetricsRegistry().histogram("sz")
        h.observe_many(np.array([]))
        assert h.count == 0

    def test_default_buckets_cover_decades(self):
        assert DEFAULT_BUCKETS[0] == 1e-6
        assert DEFAULT_BUCKETS[-1] == 1e6
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigurationError, match="sorted"):
            Histogram("h", (), (2.0, 1.0))


class TestRegistry:
    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x.total")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.gauge("x.total")

    def test_value_of_untouched_metric_is_zero(self):
        assert MetricsRegistry().value("never.seen") == 0.0

    def test_value_of_histogram_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1)
        with pytest.raises(ConfigurationError, match="histogram"):
            reg.value("h")

    def test_samples_expand_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 10.0)).observe(5.0)
        keys = [s.key for s in reg.samples()]
        assert 'h_bucket{le="1.0"}' in keys
        assert 'h_bucket{le="10.0"}' in keys
        assert 'h_bucket{le="+Inf"}' in keys
        assert "h_count" in keys
        assert "h_sum" in keys

    def test_as_dict_is_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("b.total").inc(2)
        reg.counter("a.total", k="v").inc(1)
        d = reg.as_dict()
        assert d == {'a.total{k="v"}': 1.0, "b.total": 2.0}
        assert list(d) == sorted(d)

    def test_format_labels(self):
        assert format_labels(()) == ""
        assert format_labels((("a", "1"), ("b", "2"))) == '{a="1",b="2"}'


class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def now(self) -> float:
        return self.t


class TestTracer:
    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        clock = _FakeClock()
        tracer.bind_clock(clock)
        with tracer.span("outer") as outer:
            clock.t = 1.0
            with tracer.span("inner", k=1) as inner:
                clock.t = 2.0
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.t_start_s == 1.0
        assert inner.t_end_s == 2.0
        assert outer.duration_s == 2.0

    def test_first_clock_binding_wins(self):
        tracer = Tracer()
        first, second = _FakeClock(), _FakeClock()
        first.t = 5.0
        tracer.bind_clock(first)
        tracer.bind_clock(second)
        assert tracer.now() == 5.0

    def test_unbound_clock_reads_zero(self):
        tracer = Tracer()
        assert not tracer.clock_bound
        assert tracer.now() == 0.0

    def test_events_and_counter_tracks(self):
        tracer = Tracer()
        tracer.event("cache.fill", bytes=4096)
        tracer.counter("frontier", 17)
        assert tracer.events[0].name == "cache.fill"
        assert tracer.events[0].category == "cache"
        assert tracer.counters[0].value == 17.0

    def test_find_by_name(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        with tracer.span("a"):
            pass
        assert len(tracer.find("a")) == 2
        assert len(tracer.find("b")) == 1


class TestObservabilitySession:
    def test_enabled_session_records(self):
        obs = Observability()
        obs.counter(M_BFS_RUNS, engine="T").inc()
        with obs.span("bfs.level", level=0):
            obs.event("cache.fill")
            obs.track("frontier", 3)
        assert obs.registry.value(M_BFS_RUNS, engine="T") == 1
        assert len(obs.tracer.spans) == 1
        assert len(obs.tracer.events) == 1
        assert len(obs.tracer.counters) == 1

    def test_disabled_session_is_inert(self):
        obs = Observability(enabled=False)
        obs.counter("x.total").inc(10)
        obs.gauge("g").set(5)
        obs.histogram("h").observe(1)
        with obs.span("s") as span:
            span.set(k=1)  # must not accumulate anywhere
        obs.event("e")
        obs.track("c", 1)
        assert obs.record_span("s", 0.0, 1.0) is None
        assert len(obs.registry) == 0
        assert obs.tracer.spans == []
        assert obs.tracer.events == []
        assert obs.tracer.counters == []
        assert span.attrs == {}

    def test_null_is_shared_disabled_session(self):
        assert NULL.enabled is False
        NULL.counter("x.total").inc()
        assert len(NULL.registry) == 0

    def test_export_of_disabled_session_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="disabled"):
            Observability(enabled=False).export(tmp_path)

    def test_record_span_synthesizes_parented_interval(self):
        obs = Observability()
        run = obs.record_span("bfs.run", 0.0, 2.0, engine="T")
        level = obs.record_span("bfs.level", 0.0, 1.0, parent=run, level=0)
        assert level.parent_id == run.span_id
        assert run.duration_s == 2.0
        assert obs.tracer.find("bfs.level") == [level]

    def test_repr_mentions_state(self):
        assert "disabled" in repr(NULL)
        obs = Observability()
        obs.counter("x.total").inc()
        assert "1 series" in repr(obs)


class TestSchema:
    def test_catalogue_names_are_unique(self):
        names = [s.name for s in METRICS]
        assert len(names) == len(set(names))

    def test_naming_conventions(self):
        for spec in METRICS:
            if spec.kind == "counter":
                assert spec.name.endswith("_total"), spec.name
            else:
                assert not spec.name.endswith("_total"), spec.name

    def test_spec_for_handles_histogram_suffixes(self):
        assert spec_for(M_BFS_LEVELS).kind == "counter"
        assert spec_for("bfs.level_seconds_bucket").kind == "histogram"
        assert spec_for("bfs.level_seconds_count").kind == "histogram"
        assert spec_for("bfs.level_seconds_sum").kind == "histogram"
        assert spec_for("no.such_metric") is None

    def test_known_families_present(self):
        names = metric_names()
        for family in ("bfs.", "graph500.", "nvm.", "cache.",
                       "resilience.", "health.", "pipeline."):
            assert any(n.startswith(family) for n in names), family

    def test_span_catalogue(self):
        spans = span_names()
        assert "bfs.level" in spans
        assert "nvm.charge" in spans
        assert "graph500.iteration" in spans

    def test_labels_declared_for_device_metrics(self):
        assert spec_for(M_NVM_BYTES).labels == ("device",)
        assert spec_for(M_BFS_EDGES).labels == ("direction", "medium")
