"""Cross-module integration tests: the paper's claims at test scale."""

import numpy as np
import pytest

from repro.analysis.perfcompare import build_engine
from repro.bfs import AlphaBetaPolicy, HybridBFS, SemiExternalBFS
from repro.core import DRAM_ONLY, DRAM_PCIE_FLASH, DRAM_SSD, run_graph500
from repro.graph500 import Graph500Driver, validate_bfs_tree
from repro.perfmodel.cost import DramCostModel
from repro.semiext import NVMStore, PCIE_FLASH, SATA_SSD


SCALE = 12


@pytest.fixture(scope="module")
def workload():
    from repro.csr import BackwardGraph, ForwardGraph, build_csr
    from repro.graph500 import EdgeList, generate_edges
    from repro.numa import NumaTopology

    n = 1 << SCALE
    edges = EdgeList(generate_edges(SCALE, seed=99), n)
    csr = build_csr(edges)
    topo = NumaTopology(4, 12)
    return edges, csr, ForwardGraph(csr, topo), BackwardGraph(csr, topo)


class TestScenarioAgreement:
    """All three scenarios compute identical BFS trees, at different cost."""

    def test_trees_identical_across_devices(self, workload, tmp_path):
        edges, csr, fwd, bwd = workload
        root = int(np.flatnonzero(csr.degrees() > 0)[7])
        policy_args = (50.0, 500.0)
        dram = HybridBFS(
            fwd, bwd, AlphaBetaPolicy(*policy_args), DramCostModel()
        ).run(root)
        parents = [dram.parent]
        for name, dev in (("p", PCIE_FLASH), ("s", SATA_SSD)):
            store = NVMStore(tmp_path / name, dev)
            res = SemiExternalBFS.offload(
                fwd, bwd, AlphaBetaPolicy(*policy_args), store,
                cost_model=DramCostModel(),
            ).run(root)
            parents.append(res.parent)
        assert np.array_equal(parents[0], parents[1])
        assert np.array_equal(parents[0], parents[2])
        assert validate_bfs_tree(edges, parents[0], root).ok

    def test_modeled_cost_ordering(self, workload, tmp_path):
        edges, csr, fwd, bwd = workload
        root = int(np.flatnonzero(csr.degrees() > 0)[7])
        times = {}
        times["dram"] = HybridBFS(
            fwd, bwd, AlphaBetaPolicy(50, 500), DramCostModel()
        ).run(root).modeled_time_s
        for name, dev in (("pcie", PCIE_FLASH), ("ssd", SATA_SSD)):
            store = NVMStore(tmp_path / name, dev)
            times[name] = SemiExternalBFS.offload(
                fwd, bwd, AlphaBetaPolicy(50, 500), store,
                cost_model=DramCostModel(),
            ).run(root).modeled_time_s
        assert times["dram"] < times["pcie"] < times["ssd"]


class TestPaperHeadline:
    """The abstract's claim shape: offloading costs a modest fraction at
    the right alpha/beta, and the drop is larger on the slower device."""

    def test_degradation_shape(self, workload, tmp_path):
        edges, csr, fwd, bwd = workload
        n = edges.n_vertices
        driver = Graph500Driver(edges, n_roots=4, seed=5, validate=False)

        def best_teps(scenario, points):
            best = 0.0
            for alpha, beta in points:
                eng = build_engine(
                    scenario, fwd, bwd, alpha, beta, tmp_path,
                    prefix=f"{scenario.name}",
                )
                best = max(best, driver.run(eng).stats_modeled.median_teps)
            return best

        # Semi-external tuning pushes switching to "bottom-up asap".
        points = [(float(n), float(n)), (50.0, 500.0)]
        dram = best_teps(DRAM_ONLY, points)
        pcie = best_teps(DRAM_PCIE_FLASH, points)
        ssd = best_teps(DRAM_SSD, points)
        pcie_drop = 1 - pcie / dram
        ssd_drop = 1 - ssd / dram
        # Paper: 19.18% and 47.1% at SCALE 27.  At this test's tiny scale
        # the per-level I/O latency is not amortized, so only the *shape*
        # is asserted: offloading costs something, the slower device costs
        # more, and neither collapses to zero throughput.
        assert 0.0 < pcie_drop < ssd_drop < 1.0

    def test_pipeline_end_to_end_all_scenarios(self, tmp_path):
        teps = {}
        for scenario in (DRAM_ONLY, DRAM_PCIE_FLASH, DRAM_SSD):
            res = run_graph500(
                scenario, scale=11, n_roots=4, seed=17,
                workdir=tmp_path / scenario.name,
            )
            assert res.output.all_valid
            teps[scenario.name] = res.median_teps
        assert teps["DRAM-only"] > 0


class TestFigure10Shape:
    def test_bottom_up_dominates_traffic(self, workload):
        from repro.analysis import traversal_split

        edges, csr, fwd, bwd = workload
        n = edges.n_vertices
        root = int(np.flatnonzero(csr.degrees() > 0)[3])
        engine = HybridBFS(
            fwd, bwd, AlphaBetaPolicy(float(n), float(n)), DramCostModel()
        )
        split = traversal_split([engine.run(root)])
        # With semi-external tuning, the top-down share collapses — the
        # paper's justification for offloading only the forward graph.
        assert split.top_down_fraction < 0.1


class TestFigure11Shape:
    def test_degradation_explodes_at_low_degree(self, workload, tmp_path):
        from repro.analysis import degradation_by_degree

        edges, csr, fwd, bwd = workload
        root = int(np.flatnonzero(csr.degrees() > 0)[3])
        # alpha/beta chosen to produce early AND late top-down levels.
        policy_args = (30.0, 30.0)
        dram = HybridBFS(
            fwd, bwd, AlphaBetaPolicy(*policy_args), DramCostModel()
        ).run(root)
        store = NVMStore(tmp_path / "nvm", SATA_SSD)
        nvm = SemiExternalBFS.offload(
            fwd, bwd, AlphaBetaPolicy(*policy_args), store,
            cost_model=DramCostModel(),
        ).run(root)
        points = degradation_by_degree(dram, nvm)
        assert len(points) >= 2
        high_deg = max(points, key=lambda p: p.avg_degree)
        low_deg = min(points, key=lambda p: p.avg_degree)
        # Low-degree top-down levels degrade far worse than high-degree
        # ones (the paper's 1.2x ... 123482x span).
        assert low_deg.avg_degree < high_deg.avg_degree
        assert low_deg.ratio > high_deg.ratio
