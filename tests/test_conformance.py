"""The conformance subsystem: registry, oracles, harness, CLI, gate."""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.cli import main
from repro.conformance import (
    ConformanceConfig,
    GraphCase,
    ReproArtifact,
    TrialSetup,
    check_admissibility,
    check_distance,
    check_validity,
    differential_failures,
    engine_names,
    get_engine,
    register_engine,
    relation_names,
    relations_for,
    run_conformance,
    run_engine,
    unregister_engine,
)
from repro.errors import ConfigurationError
from repro.graph500.edgelist import EdgeList
from repro.obs import Observability

ALL_ENGINES = {"reference", "topdown", "bottomup", "hybrid", "parallel",
               "semi_external", "tiered", "fully_external", "batched",
               "partitioned", "dynamic"}


def _case(pairs, n):
    endpoints = np.array(pairs, dtype=np.int64).T.reshape(2, -1)
    return GraphCase(EdgeList(endpoints, n))


@pytest.fixture()
def path_case():
    # 0-1-2-3 plus an isolated vertex 4.
    return _case([(0, 1), (1, 2), (2, 3)], 5)


@pytest.fixture()
def lossy_engine():
    """A hybrid clone that forgets the last vertex it discovered."""
    real = get_engine("hybrid")

    def broken(case, setup, root, workdir):
        result = real.run(case, setup, root, workdir)
        found = np.flatnonzero(result.parent != -1)
        found = found[found != root]
        if found.size:
            result.parent[found[-1]] = -1
        return result

    register_engine(replace(real, name="lossy", run=broken))
    yield "lossy"
    unregister_engine("lossy")


class TestRegistry:
    def test_all_engines_registered(self):
        assert set(engine_names()) == ALL_ENGINES

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            get_engine("nope")

    def test_double_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_engine(get_engine("hybrid"))

    def test_replace_and_unregister(self):
        spec = replace(get_engine("hybrid"), name="tmp")
        register_engine(spec)
        register_engine(spec, replace=True)
        unregister_engine("tmp")
        with pytest.raises(ConfigurationError):
            get_engine("tmp")

    def test_every_engine_agrees_on_a_path(self, path_case, tmp_path):
        setup = TrialSetup()
        ref = run_engine("reference", path_case, setup, 0, tmp_path)
        for name in engine_names():
            res = run_engine(name, path_case, setup, 0, tmp_path)
            assert differential_failures(
                path_case.edges, ref.parent, res, 0
            ) == [], name

    def test_unknown_device_rejected(self):
        with pytest.raises(ConfigurationError):
            TrialSetup(device="floppy")

    def test_setup_description_round_trips(self):
        from repro.semiext.faults import FaultPlan

        setup = TrialSetup(device="ssd", alpha=4.0, beta=8.0,
                           fault=FaultPlan(seed=3, error_rate=0.1))
        again = TrialSetup.from_description(setup.describe())
        assert again == setup

    def test_relations_respect_applicability(self):
        assert {r.name for r in relations_for(get_engine("reference"))} == {
            "permutation", "duplicates",
        }
        assert {r.name for r in relations_for(get_engine("semi_external"))} \
            == set(relation_names()) - {"mutation_idempotence",
                                        "mutation_commute"}
        assert {r.name for r in relations_for(get_engine("dynamic"))} == {
            "permutation", "duplicates",
            "mutation_idempotence", "mutation_commute",
        }

    def test_crash_fields_survive_describe_round_trip(self):
        from repro.semiext.faults import FaultPlan

        setup = TrialSetup(fault=FaultPlan(
            seed=5, crash_at_level=2, crash_torn=True,
        ))
        assert TrialSetup.from_description(setup.describe()) == setup


class TestOracles:
    def test_correct_tree_passes_all(self, path_case, tmp_path):
        ref = run_engine("reference", path_case, TrialSetup(), 0, tmp_path)
        assert check_validity(path_case.edges, ref, 0) is None
        assert check_distance(path_case.edges, ref.parent, ref, 0) is None
        assert check_admissibility(path_case.edges, ref.parent, ref, 0) is None

    def test_distance_mismatch_detected(self, path_case, tmp_path):
        ref = run_engine("reference", path_case, TrialSetup(), 0, tmp_path)
        wrong = run_engine("reference", path_case, TrialSetup(), 0, tmp_path)
        wrong.parent[3] = -1  # vertex 3 never found
        assert "distance" in check_distance(
            path_case.edges, ref.parent, wrong, 0
        )

    def test_fabricated_parent_detected(self, path_case, tmp_path):
        # Vertex 3 claims parent 1: right level parity is impossible and
        # (1, 3) is not an edge — admissibility must fire even though
        # the levels array alone (0,1,2,2) looks like a plain mistake.
        ref = run_engine("reference", path_case, TrialSetup(), 0, tmp_path)
        wrong = run_engine("reference", path_case, TrialSetup(), 0, tmp_path)
        wrong.parent[3] = 1
        assert check_admissibility(
            path_case.edges, ref.parent, wrong, 0
        ) is not None

    def test_out_of_range_parent_detected(self, path_case, tmp_path):
        ref = run_engine("reference", path_case, TrialSetup(), 0, tmp_path)
        wrong = run_engine("reference", path_case, TrialSetup(), 0, tmp_path)
        wrong.parent[3] = 99
        assert "outside" in check_admissibility(
            path_case.edges, ref.parent, wrong, 0
        )


class TestCrashResumeRelation:
    """The durability relation holds for every recoverable engine."""

    RECOVERABLE = ("semi_external", "fully_external", "batched")

    def test_only_external_engines_are_recoverable(self):
        for name in engine_names():
            spec = get_engine(name)
            assert (spec.recoverable is not None) == (
                name in self.RECOVERABLE
            ), name

    @pytest.mark.parametrize("engine", RECOVERABLE)
    @pytest.mark.parametrize("seed", [7, 19, 101])
    def test_crash_resume_bit_identical(self, engine, seed, tmp_path):
        from repro.conformance.relations import get_relation
        from repro.graph500 import generate_edges

        endpoints = generate_edges(scale=7, edge_factor=8, seed=3)
        case = GraphCase(EdgeList(endpoints, 1 << 7))
        spec = get_engine(engine)
        relation = get_relation("crash_resume")
        assert relation.applies(spec)
        failure = relation.check(
            spec, case, TrialSetup(), 1, seed, tmp_path
        )
        assert failure is None, failure


class TestHarness:
    QUICK = dict(trials=2, max_scale=6, artifact_dir=None)

    def test_quick_passes_on_three_seeds_all_engines(self):
        report = run_conformance(
            ConformanceConfig(seeds=(7, 19, 101), **self.QUICK)
        )
        assert report.ok, report.render()
        assert set(report.engines) == ALL_ENGINES
        assert report.trials == 6
        assert report.checks > 0

    def test_same_seed_runs_are_deterministic(self):
        config = ConformanceConfig(seeds=(19,), **self.QUICK)
        assert run_conformance(config) == run_conformance(config)

    def test_engine_subset_and_render(self):
        report = run_conformance(ConformanceConfig(
            seeds=(7,), trials=1, max_scale=5, artifact_dir=None,
            engines=("hybrid",),
        ))
        # the reference is always pulled in as the oracle anchor
        assert report.engines == ("reference", "hybrid")
        assert "all checks passed" in report.render()

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ConformanceConfig(seeds=())
        with pytest.raises(ConfigurationError):
            ConformanceConfig(trials=0)
        with pytest.raises(ConfigurationError):
            ConformanceConfig(engines=("nope",))
        with pytest.raises(ConfigurationError):
            ConformanceConfig(max_scale=1)

    def test_broken_engine_yields_shrunk_replayable_artifact(
        self, lossy_engine, tmp_path
    ):
        config = ConformanceConfig(
            seeds=(7,), trials=2, max_scale=6,
            engines=("reference", lossy_engine),
            artifact_dir=str(tmp_path / "conf"),
        )
        report = run_conformance(config)
        assert not report.ok
        assert report.artifacts
        artifact = ReproArtifact.load(report.failures[0].artifact)
        assert artifact.engine == lossy_engine
        # genuinely shrunk below the original trial draw
        assert artifact.n_vertices < artifact.original["n_vertices"]
        outcome = artifact.replay()
        assert outcome.reproduced
        assert artifact.replay() == outcome  # deterministic replay

    def test_obs_counters_recorded(self):
        from repro.obs.schema import M_CONF_CHECKS, M_CONF_TRIALS

        obs = Observability()
        run_conformance(
            ConformanceConfig(seeds=(7,), trials=1, max_scale=5,
                              artifact_dir=None, engines=("hybrid",)),
            obs=obs,
        )
        names = set(obs.registry.names())
        assert M_CONF_TRIALS in names
        assert M_CONF_CHECKS in names
        spans = {s.name for s in obs.tracer.spans}
        assert "conformance.trial" in spans


class TestCli:
    def test_quick_run_exit_zero(self, capsys, tmp_path):
        code = main(["conformance", "--quick", "--seeds", "7",
                     "--out", str(tmp_path / "conf")])
        assert code == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_bad_engine_usage_error(self, capsys, tmp_path):
        code = main(["conformance", "--engines", "nope",
                     "--out", str(tmp_path / "conf")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_replay_missing_artifact_usage_error(self, capsys, tmp_path):
        code = main(["conformance", "--replay", str(tmp_path / "no.json")])
        assert code == 2

    def test_failure_artifact_and_replay_flow(
        self, lossy_engine, capsys, tmp_path
    ):
        out = tmp_path / "conf"
        code = main(["conformance", "--seeds", "7", "--trials", "2",
                     "--scale", "6", "--engines", "reference", lossy_engine,
                     "--out", str(out)])
        assert code == 1
        artifacts = sorted(out.glob("repro_*.json"))
        assert artifacts
        capsys.readouterr()
        # replay reproduces deterministically: exit 1, identical output
        code1 = main(["conformance", "--replay", str(artifacts[0])])
        out1 = capsys.readouterr().out
        code2 = main(["conformance", "--replay", str(artifacts[0])])
        out2 = capsys.readouterr().out
        assert code1 == code2 == 1
        assert out1 == out2
        assert "REPRODUCED" in out1

    def test_obs_export_written(self, capsys, tmp_path):
        code = main(["conformance", "--seeds", "7", "--trials", "1",
                     "--scale", "5", "--engines", "hybrid",
                     "--out", str(tmp_path / "conf"),
                     "--obs", str(tmp_path / "obs")])
        assert code == 0
        assert (tmp_path / "obs" / "metrics.prom").exists()


class TestGate:
    def test_gate_writes_report_and_passes(self, tmp_path, capsys,
                                           monkeypatch):
        import sys
        sys.path.insert(0, "tools")
        try:
            import conformance_gate
        finally:
            sys.path.pop(0)
        out = tmp_path / "conf"
        code = conformance_gate.main(
            ["--quick", "--seeds", "7", "--out", str(out)]
        )
        assert code == 0
        summary = json.loads((out / "conformance_report.json").read_text())
        assert summary["ok"] is True
        assert set(summary["engines"]) == ALL_ENGINES
