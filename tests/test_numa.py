"""Unit tests for repro.numa (topology partitioning and access tracking)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.numa import AccessKind, NumaMemoryTracker, NumaTopology


class TestTopology:
    def test_paper_machine(self):
        t = NumaTopology(4, 12)
        assert t.n_cores == 48

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            NumaTopology(0, 12)
        with pytest.raises(ConfigurationError):
            NumaTopology(4, 0)

    def test_partitions_cover_everything(self):
        t = NumaTopology(4)
        parts = t.partitions(103)
        assert parts[0].lo == 0
        assert parts[-1].hi == 103
        for a, b in zip(parts, parts[1:]):
            assert a.hi == b.lo

    def test_partitions_even_split(self):
        parts = NumaTopology(4).partitions(100)
        assert [p.size for p in parts] == [25, 25, 25, 25]

    def test_partitions_remainder_on_last(self):
        parts = NumaTopology(4).partitions(10)
        assert [p.size for p in parts] == [3, 3, 3, 1]

    def test_more_nodes_than_vertices(self):
        parts = NumaTopology(8).partitions(3)
        assert sum(p.size for p in parts) == 3
        assert all(p.size >= 0 for p in parts)

    def test_single_node_owns_everything(self):
        t = NumaTopology(1)
        parts = t.partitions(10)
        assert len(parts) == 1
        assert (parts[0].lo, parts[0].hi) == (0, 10)
        assert (t.owner_of(np.arange(10), 10) == 0).all()

    def test_owner_of_with_empty_trailing_partitions(self):
        # More nodes than vertices: trailing partitions are empty, and
        # every vertex must map to the node whose range contains it.
        t = NumaTopology(8)
        parts = t.partitions(3)
        owners = t.owner_of(np.arange(3), 3)
        for p in parts:
            assert (owners[p.lo:p.hi] == p.node).all()
        assert int(owners.max()) < 8

    def test_owner_of_matches_partitions(self):
        t = NumaTopology(4)
        n = 103
        parts = t.partitions(n)
        owners = t.owner_of(np.arange(n), n)
        for p in parts:
            assert (owners[p.lo : p.hi] == p.node).all()

    def test_owner_out_of_range(self):
        with pytest.raises(ConfigurationError):
            NumaTopology(2).owner_of(np.array([10]), 10)

    def test_local_ids(self):
        p = NumaTopology(2).partitions(10)[1]
        assert p.local_ids(np.array([5, 9])).tolist() == [0, 4]

    def test_contains(self):
        p = NumaTopology(2).partitions(10)[0]
        assert p.contains(np.array([0, 4, 5])).tolist() == [True, True, False]

    def test_chunk_size_positive_required(self):
        with pytest.raises(ConfigurationError):
            NumaTopology(2).chunk_size(0)

    def test_equality_and_hash(self):
        assert NumaTopology(4, 12) == NumaTopology(4, 12)
        assert NumaTopology(4, 12) != NumaTopology(2, 12)
        assert hash(NumaTopology(4, 12)) == hash(NumaTopology(4, 12))


class TestMemoryTracker:
    def test_local_vs_remote_buckets(self):
        t = NumaMemoryTracker(NumaTopology(4))
        t.record(0, 0, 10, 80, AccessKind.RANDOM)
        t.record(0, 1, 5, 40, AccessKind.RANDOM)
        assert t.local_rand.accesses == 10
        assert t.remote_rand.accesses == 5
        assert t.remote_fraction == pytest.approx(5 / 15)

    def test_sequential_bucket(self):
        t = NumaMemoryTracker(NumaTopology(4))
        t.record(1, 1, 3, 300, AccessKind.SEQUENTIAL)
        assert t.local_seq.bytes == 300
        assert t.local_rand.accesses == 0

    def test_invalid_node_rejected(self):
        t = NumaMemoryTracker(NumaTopology(2))
        with pytest.raises(ConfigurationError):
            t.record(2, 0, 1, 8)

    def test_record_vector_locality(self):
        topo = NumaTopology(4)
        t = NumaMemoryTracker(topo)
        n = 100
        # Node 0 owns [0, 25); everything else is remote to node 0.
        t.record_vector(0, np.arange(50), n, bytes_per_access=8)
        assert t.local_rand.accesses == 25
        assert t.remote_rand.accesses == 25

    def test_record_vector_empty(self):
        t = NumaMemoryTracker(NumaTopology(2))
        t.record_vector(0, np.array([], dtype=np.int64), 10, 8)
        assert t.total_accesses == 0

    def test_remote_fraction_empty_is_zero(self):
        assert NumaMemoryTracker(NumaTopology(2)).remote_fraction == 0.0

    def test_reset(self):
        t = NumaMemoryTracker(NumaTopology(2))
        t.record(0, 1, 1, 8)
        t.reset()
        assert t.total_accesses == 0
        assert t.total_bytes == 0
