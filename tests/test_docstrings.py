"""Quality gate: every public item in the library carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", MODULES, ids=lambda m: m.__name__
    )
    def test_module_docstring(self, module):
        assert module.__doc__, f"{module.__name__} lacks a module docstring"
        assert len(module.__doc__.strip()) > 20

    @pytest.mark.parametrize(
        "module", MODULES, ids=lambda m: m.__name__
    )
    def test_public_items_documented(self, module):
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{module.__name__}.{name}")
                if inspect.isclass(obj):
                    for meth_name, meth in vars(obj).items():
                        if meth_name.startswith("_"):
                            continue
                        if isinstance(meth, property):
                            target = meth.fget
                        elif inspect.isfunction(meth):
                            target = meth
                        else:
                            continue
                        if not (target.__doc__ and target.__doc__.strip()):
                            undocumented.append(
                                f"{module.__name__}.{name}.{meth_name}"
                            )
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_every_package_exports_all(self):
        packages = [m for m in MODULES if hasattr(m, "__path__")]
        for pkg in packages:
            assert hasattr(pkg, "__all__"), f"{pkg.__name__} has no __all__"
