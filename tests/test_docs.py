"""The docs stay true: link targets resolve and code blocks execute.

Runs the same checks as ``tools/check_docs.py`` (the docs CI job), plus
unit tests of the checker itself so a broken checker cannot silently
pass broken docs."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(ROOT / "tools"))
try:
    from check_docs import (
        EXECUTABLE_DOCS,
        _anchor,
        check_cli_flags,
        check_links,
        check_orphan_docs,
        exec_blocks,
        python_blocks,
    )
finally:
    sys.path.pop(0)


class TestRepoDocs:
    def test_no_dead_links(self):
        files = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
        assert len(files) >= 5
        errors = check_links(files)
        assert not errors, "\n".join(errors)

    def test_no_orphan_docs(self):
        docs = sorted((ROOT / "docs").glob("*.md"))
        errors = check_orphan_docs(ROOT / "README.md", docs)
        assert not errors, "\n".join(errors)

    def test_no_stale_cli_flags(self):
        files = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
        errors = check_cli_flags(files)
        assert not errors, "\n".join(errors)

    def test_observability_doc_blocks_execute(self):
        _, errors = exec_blocks(ROOT / "docs" / "observability.md")
        assert not errors, "\n".join(errors)

    def test_executable_docs_exist_and_have_blocks(self):
        for rel in EXECUTABLE_DOCS:
            path = ROOT / rel
            assert path.exists(), rel
            assert python_blocks(path), f"{rel} has no python blocks"


class TestCheckerUnits:
    def test_anchor_rule(self):
        assert _anchor("## Capturing a session".lstrip("# ")) == "capturing-a-session"
        assert _anchor("The three artifacts") == "the-three-artifacts"
        assert _anchor("Metrics, spans & exporters") == "metrics-spans--exporters"
        assert _anchor("`events.jsonl`") == "eventsjsonl"

    def test_dead_link_detected(self, tmp_path):
        doc = tmp_path / "a.md"
        doc.write_text("see [other](missing.md) and [ok](b.md)\n")
        (tmp_path / "b.md").write_text("# B\n")
        errors = check_links([doc])
        assert len(errors) == 1
        assert "missing.md" in errors[0]

    def test_missing_anchor_detected(self, tmp_path):
        doc = tmp_path / "a.md"
        (tmp_path / "b.md").write_text("# Real Heading\n")
        doc.write_text("[x](b.md#real-heading) [y](b.md#no-such)\n")
        errors = check_links([doc])
        assert len(errors) == 1
        assert "#no-such" in errors[0]

    def test_external_links_skipped(self, tmp_path):
        doc = tmp_path / "a.md"
        doc.write_text("[p](https://ui.perfetto.dev) [m](mailto:x@y.z)\n")
        assert check_links([doc]) == []

    def test_python_blocks_extraction(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text(
            "text\n```python\nx = 1\nprint(x)\n```\n"
            "```bash\nls\n```\n```python\nprint(x + 1)\n```\n"
        )
        blocks = python_blocks(doc)
        assert [b[1] for b in blocks] == ["x = 1\nprint(x)", "print(x + 1)"]

    def test_exec_blocks_shares_namespace_and_captures(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text(
            "```python\nx = 2\n```\n```python\nprint(x * 21)\n```\n"
        )
        outputs, errors = exec_blocks(doc)
        assert errors == []
        assert outputs == ["", "42\n"]

    def test_exec_blocks_reports_block_and_line(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("intro\n```python\nraise ValueError('boom')\n```\n")
        _, errors = exec_blocks(doc)
        assert len(errors) == 1
        assert "block 1" in errors[0]
        assert "boom" in errors[0]

    def test_orphan_doc_detected(self, tmp_path):
        readme = tmp_path / "README.md"
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "linked.md").write_text("# L\n")
        (docs / "orphan.md").write_text("# O\n")
        readme.write_text("[l](docs/linked.md)\n")
        errors = check_orphan_docs(readme, sorted(docs.glob("*.md")))
        assert len(errors) == 1
        assert "orphan.md" in errors[0]
        assert "linked.md" not in errors[0]

    def test_orphan_check_follows_anchored_links(self, tmp_path):
        readme = tmp_path / "README.md"
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "a.md").write_text("# A\n## Sec\n")
        readme.write_text("[a](docs/a.md#sec)\n")
        assert check_orphan_docs(readme, sorted(docs.glob("*.md"))) == []

    def test_stale_cli_flag_detected(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text(
            "```bash\nrepro-bfs run --scale 12 --no-such-flag\n```\n"
        )
        errors = check_cli_flags([doc])
        assert len(errors) == 1
        assert "--no-such-flag" in errors[0]
        assert "--scale" not in errors[0]

    def test_cli_flag_check_spans_continuation_lines(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text(
            "```bash\nrepro-bfs run --scale 12 \\\n"
            "              --bogus-continued auto\n```\n"
        )
        errors = check_cli_flags([doc])
        assert len(errors) == 1
        assert "--bogus-continued" in errors[0]

    def test_cli_flag_check_ignores_prose_and_other_tools(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text(
            "prose about repro-bfs run --not-in-a-fence\n"
            "```bash\nothertool --whatever\n```\n"
            "```bash\nrepro-bfs run --offload-k auto\n```\n"
        )
        assert check_cli_flags([doc]) == []


class TestToolCli:
    def test_links_only_run_passes(self):
        import subprocess

        proc = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "check_docs.py"),
             "--links-only"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "docs OK" in proc.stdout
