"""Tests for the scale-projection estimator and the async I/O mode."""

import numpy as np
import pytest

from repro.bfs import AlphaBetaPolicy, HybridBFS, SemiExternalBFS
from repro.errors import ConfigurationError
from repro.perfmodel import (
    DramCostModel,
    project_run,
    projected_degradation,
)
from repro.semiext import NVMStore, PCIE_FLASH


@pytest.fixture()
def run_pair(forward, backward, a_root, tmp_path):
    dram = HybridBFS(
        forward, backward, AlphaBetaPolicy(30, 30), DramCostModel()
    ).run(a_root)
    store = NVMStore(tmp_path / "nvm", PCIE_FLASH)
    nvm = SemiExternalBFS.offload(
        forward, backward, AlphaBetaPolicy(30, 30), store,
        cost_model=DramCostModel(),
    ).run(a_root)
    return dram, nvm


class TestProjection:
    def test_identity_at_same_scale(self, run_pair):
        dram, _ = run_pair
        p = project_run(dram, 11, 11)
        assert p.projected_time_s == pytest.approx(dram.modeled_time_s)
        assert p.ratio == 1.0

    def test_projection_grows_with_target(self, run_pair):
        dram, _ = run_pair
        times = [
            project_run(dram, 11, t).projected_time_s for t in (11, 15, 20)
        ]
        assert times[0] < times[1] < times[2]

    def test_split_covers_total(self, run_pair):
        dram, _ = run_pair
        p = project_run(dram, 11, 20)
        assert p.amortizing_time_s + p.constant_time_s == pytest.approx(
            dram.modeled_time_s
        )

    def test_degradation_shrinks_with_scale(self, run_pair):
        dram, nvm = run_pair
        raw = 1 - dram.modeled_time_s / nvm.modeled_time_s
        d15 = projected_degradation(dram, nvm, 11, 15)
        d27 = projected_degradation(dram, nvm, 11, 27)
        assert d27 <= d15 <= raw + 1e-9

    def test_degradation_in_unit_interval(self, run_pair):
        dram, nvm = run_pair
        for target in (11, 14, 22, 27):
            d = projected_degradation(dram, nvm, 11, target)
            assert 0.0 <= d < 1.0

    def test_backwards_target_rejected(self, run_pair):
        dram, _ = run_pair
        with pytest.raises(ConfigurationError):
            project_run(dram, 11, 10)


class TestAsyncIoMode:
    def test_async_at_least_as_fast(self, forward, backward, a_root, tmp_path):
        times = {}
        for mode in ("sync", "async"):
            store = NVMStore(
                tmp_path / mode, PCIE_FLASH, io_mode=mode
            )
            res = SemiExternalBFS.offload(
                forward, backward, AlphaBetaPolicy(30, 30), store,
                cost_model=DramCostModel(),
            ).run(a_root)
            times[mode] = res.modeled_time_s
        assert times["async"] <= times["sync"]

    def test_async_queue_is_device_depth(self, tmp_path, forward, backward, a_root):
        store = NVMStore(tmp_path / "a", PCIE_FLASH, io_mode="async")
        SemiExternalBFS.offload(
            forward, backward, AlphaBetaPolicy(30, 30), store,
            cost_model=DramCostModel(),
        ).run(a_root)
        # The deep async queue shows up in the iostat samples.
        assert store.iostats.avgqu_sz() == pytest.approx(
            PCIE_FLASH.channels
        )

    def test_same_data_read(self, tmp_path, forward, backward, a_root):
        results = {}
        for mode in ("sync", "async"):
            store = NVMStore(tmp_path / f"d-{mode}", PCIE_FLASH, io_mode=mode)
            results[mode] = SemiExternalBFS.offload(
                forward, backward, AlphaBetaPolicy(30, 30), store,
            ).run(a_root)
        assert np.array_equal(
            results["sync"].parent, results["async"].parent
        )

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            NVMStore(tmp_path, PCIE_FLASH, io_mode="turbo")
