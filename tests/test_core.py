"""Unit tests for scenario config, offload planner and pipeline."""

import numpy as np
import pytest

from repro.core import (
    DRAM_ONLY,
    DRAM_PCIE_FLASH,
    DRAM_SSD,
    PAPER_SCENARIOS,
    ScenarioConfig,
    ScenarioKind,
    run_graph500,
)
from repro.core.offload import OffloadPlanner, StructureSizes
from repro.errors import CapacityError, ConfigurationError
from repro.semiext.hierarchy import Tier


class TestScenarioConfig:
    def test_paper_presets(self):
        assert DRAM_ONLY.kind is ScenarioKind.DRAM_ONLY
        assert DRAM_PCIE_FLASH.is_semi_external
        assert DRAM_SSD.is_semi_external
        assert len(PAPER_SCENARIOS) == 3

    def test_paper_alpha_beta(self):
        assert DRAM_ONLY.alpha == 1e4 and DRAM_ONLY.beta == 1e5
        assert DRAM_PCIE_FLASH.alpha == 1e6 and DRAM_PCIE_FLASH.beta == 1e6
        assert DRAM_SSD.alpha == 1e5 and DRAM_SSD.beta == 1e4

    def test_semi_external_needs_device(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig("x", ScenarioKind.SEMI_EXTERNAL)

    def test_dram_budget_relative(self):
        s = ScenarioConfig("x", ScenarioKind.DRAM_ONLY, dram_headroom=1.5)
        assert s.dram_budget(1000) == 1500

    def test_dram_budget_absolute_overrides(self):
        s = ScenarioConfig(
            "x", ScenarioKind.DRAM_ONLY, dram_capacity_bytes=123
        )
        assert s.dram_budget(10**9) == 123

    def test_with_switching(self):
        s = DRAM_ONLY.with_switching(7.0, 8.0)
        assert (s.alpha, s.beta) == (7.0, 8.0)
        assert s.name == DRAM_ONLY.name

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            DRAM_ONLY.with_switching(0, 1)
        with pytest.raises(ConfigurationError):
            ScenarioConfig("x", ScenarioKind.DRAM_ONLY, dram_headroom=0)


class TestOffloadPlanner:
    SIZES = StructureSizes(
        edge_list=24, forward=40, backward=33, status=15
    )

    def test_dram_only_places_everything_in_dram(self):
        plan = OffloadPlanner(
            ScenarioConfig("d", ScenarioKind.DRAM_ONLY, dram_headroom=2.0)
        ).plan(self.SIZES)
        assert all(t is Tier.DRAM for t in plan.placements.values())
        assert plan.nvm_used == 0

    def test_semi_external_offloads_forward_and_edges(self, store):
        scenario = ScenarioConfig(
            "s", ScenarioKind.SEMI_EXTERNAL, device=store.device,
            dram_headroom=64.0 / 48.2,
        )
        plan = OffloadPlanner(scenario).plan(self.SIZES, store=store)
        assert plan.tier_of("forward") is Tier.NVM
        assert plan.tier_of("edge_list") is Tier.NVM
        assert plan.tier_of("backward") is Tier.DRAM
        assert plan.tier_of("status") is Tier.DRAM
        assert plan.dram_used == 48
        assert plan.nvm_used == 64

    def test_semi_external_without_store_rejected(self):
        scenario = DRAM_PCIE_FLASH
        with pytest.raises(CapacityError):
            OffloadPlanner(scenario).plan(self.SIZES, store=None)

    def test_dram_only_too_small_rejected(self):
        # The paper's motivation: the working set exceeds DRAM.
        tiny = ScenarioConfig(
            "d", ScenarioKind.DRAM_ONLY, dram_capacity_bytes=50
        )
        with pytest.raises(CapacityError):
            OffloadPlanner(tiny).plan(self.SIZES)

    def test_semi_external_fits_where_dram_only_does_not(self, store):
        # 64 "GB" budget: working set 88 does not fit, backward+status 48 do.
        dram_only = ScenarioConfig(
            "d", ScenarioKind.DRAM_ONLY, dram_capacity_bytes=64
        )
        semi = ScenarioConfig(
            "s", ScenarioKind.SEMI_EXTERNAL, device=store.device,
            dram_capacity_bytes=64,
        )
        with pytest.raises(CapacityError):
            OffloadPlanner(dram_only).plan(self.SIZES)
        plan = OffloadPlanner(semi).plan(self.SIZES, store=store)
        assert plan.dram_used <= 64

    def test_min_dram_bytes(self, store):
        semi = ScenarioConfig(
            "s", ScenarioKind.SEMI_EXTERNAL, device=store.device
        )
        planner = OffloadPlanner(semi)
        assert planner.min_dram_bytes(self.SIZES) == 48
        dram = ScenarioConfig("d", ScenarioKind.DRAM_ONLY)
        assert OffloadPlanner(dram).min_dram_bytes(self.SIZES) == 112

    def test_dram_saved_fraction(self, store):
        semi = ScenarioConfig(
            "s", ScenarioKind.SEMI_EXTERNAL, device=store.device
        )
        plan = OffloadPlanner(semi).plan(self.SIZES, store=store)
        assert plan.dram_saved_fraction == pytest.approx(64 / 112)


class TestPipeline:
    @pytest.mark.parametrize("scenario", PAPER_SCENARIOS, ids=lambda s: s.name)
    def test_runs_and_validates(self, scenario, tmp_path):
        res = run_graph500(
            scenario, scale=10, n_roots=3, seed=11, workdir=tmp_path
        )
        assert res.output.all_valid
        assert res.median_teps > 0
        assert res.scale == 10

    def test_semi_external_reports_iostats(self, tmp_path):
        res = run_graph500(
            DRAM_PCIE_FLASH, scale=10, n_roots=2, seed=11, workdir=tmp_path
        )
        assert res.bfs_iostats is not None
        assert res.construction_bytes > 0  # edge list re-read from NVM

    def test_dram_only_has_no_iostats(self):
        res = run_graph500(DRAM_ONLY, scale=10, n_roots=2, seed=11)
        assert res.bfs_iostats is None
        assert res.construction_requests == 0

    def test_same_trees_across_scenarios(self, tmp_path):
        # Identical seed => identical graph and roots => identical result
        # visits regardless of placement.
        outs = [
            run_graph500(s, scale=10, n_roots=2, seed=7,
                         workdir=tmp_path / s.name)
            for s in PAPER_SCENARIOS
        ]
        v0 = [r.result.n_visited for r in outs[0].output.runs]
        for o in outs[1:]:
            assert [r.result.n_visited for r in o.output.runs] == v0

    def test_plan_matches_scenario(self, tmp_path):
        res = run_graph500(
            DRAM_PCIE_FLASH, scale=10, n_roots=1, seed=3, workdir=tmp_path
        )
        assert res.plan.tier_of("forward") is Tier.NVM
        res2 = run_graph500(DRAM_ONLY, scale=10, n_roots=1, seed=3)
        assert res2.plan.tier_of("forward") is Tier.DRAM

    def test_validation_can_be_disabled(self):
        res = run_graph500(
            DRAM_ONLY, scale=9, n_roots=1, seed=3, validate=False
        )
        assert res.output.all_valid  # vacuously: no validation ran

    def test_packed48_edge_list(self, tmp_path):
        res = run_graph500(
            DRAM_PCIE_FLASH, scale=10, n_roots=2, seed=5,
            workdir=tmp_path, edge_format="packed48",
        )
        assert res.output.all_valid
        # NETAL's tuple format: exactly 12 bytes per generated edge.
        m = 16 << 10
        assert res.plan.nvm_used >= 12 * m
        assert res.construction_bytes >= 12 * m  # re-read during Step 2

    def test_packed48_same_results_as_int64(self, tmp_path):
        a = run_graph500(
            DRAM_PCIE_FLASH, scale=10, n_roots=2, seed=5,
            workdir=tmp_path / "a", edge_format="int64",
        )
        b = run_graph500(
            DRAM_PCIE_FLASH, scale=10, n_roots=2, seed=5,
            workdir=tmp_path / "b", edge_format="packed48",
        )
        assert [r.result.n_visited for r in a.output.runs] == [
            r.result.n_visited for r in b.output.runs
        ]

    def test_bad_edge_format_rejected(self):
        with pytest.raises(ConfigurationError):
            run_graph500(DRAM_ONLY, scale=9, n_roots=1, edge_format="xml")
