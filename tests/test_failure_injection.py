"""Failure-injection tests: corrupted files, truncated stores, bad trees.

A semi-external system's failure modes live at the storage boundary; these
tests verify every corruption the reproduction can encounter surfaces as a
typed error (never silent wrong answers).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.csr import build_csr, offload_csr
from repro.errors import GraphFormatError, StorageError, ValidationError
from repro.graph500 import EdgeList, generate_edges, validate_bfs_tree
from repro.graph500.validate import compute_levels
from repro.semiext import NVMStore, PCIE_FLASH


@pytest.fixture()
def small_graph():
    el = EdgeList(generate_edges(9, seed=5), 1 << 9)
    return el, build_csr(el)


class TestStorageFailures:
    def test_truncated_value_file_detected(self, small_graph, store):
        _, csr = small_graph
        ext = offload_csr(csr, store, "g")
        # Truncate the backing file behind the memmap's back, then ask for
        # a fresh mapping: reads must fail loudly, not return garbage.
        path = ext.value.path
        ext.value.close()
        with open(path, "r+b") as f:
            f.truncate(8)
        with pytest.raises(StorageError, match="truncated"):
            ext.value.reopen()

    def test_missing_backing_file_detected(self, store):
        ext = store.put_array("gone", np.arange(32, dtype=np.int64))
        path = ext.path
        ext.close()
        path.unlink()
        with pytest.raises(StorageError, match="missing"):
            ext.reopen()

    def test_reopen_intact_file_roundtrips(self, store):
        data = np.arange(64, dtype=np.int64)
        ext = store.put_array("ok", data)
        ext.close()
        ext.reopen()
        np.testing.assert_array_equal(ext.to_ndarray(), data)

    def test_read_after_drop_raises(self, store):
        ext = store.put_array("a", np.arange(16, dtype=np.int64))
        store.drop_array("a")
        with pytest.raises(StorageError):
            ext.read_slice(0, 4)

    def test_out_of_bounds_reads_never_partial(self, store):
        ext = store.put_array("a", np.arange(16, dtype=np.int64))
        before = store.iostats.n_requests
        with pytest.raises(StorageError):
            ext.read_rows(np.array([10]), np.array([10]))
        # The failed read must not have charged the device.
        assert store.iostats.n_requests == before

    def test_corrupt_index_non_monotone(self, small_graph, store):
        _, csr = small_graph
        bad_indptr = csr.indptr.copy()
        bad_indptr[5], bad_indptr[6] = bad_indptr[6], bad_indptr[5] + 1
        store.put_array("g.index", bad_indptr)
        store.put_array("g.value", csr.adj)
        from repro.csr.io import ExternalCSR

        ext = ExternalCSR(
            store.get_array("g.index"), store.get_array("g.value"), csr.n_cols
        )
        with pytest.raises(GraphFormatError):
            ext.to_csr_uncharged()

    def test_corrupt_value_out_of_range(self, small_graph, store):
        _, csr = small_graph
        bad_adj = csr.adj.copy()
        bad_adj[0] = csr.n_cols + 100
        store.put_array("g.index", csr.indptr)
        store.put_array("g.value", bad_adj)
        from repro.csr.io import ExternalCSR

        ext = ExternalCSR(
            store.get_array("g.index"), store.get_array("g.value"), csr.n_cols
        )
        with pytest.raises(GraphFormatError):
            ext.to_csr_uncharged()


class TestValidatorFuzzing:
    """Targeted and randomized corruption of known-valid BFS trees."""

    @pytest.fixture()
    def valid_tree(self, small_graph):
        from repro.bfs import AlphaBetaPolicy, HybridBFS
        from repro.csr import BackwardGraph, ForwardGraph
        from repro.numa import NumaTopology

        el, csr = small_graph
        topo = NumaTopology(2)
        root = int(np.flatnonzero(csr.degrees() > 0)[0])
        res = HybridBFS(
            ForwardGraph(csr, topo), BackwardGraph(csr, topo),
            AlphaBetaPolicy(10, 10),
        ).run(root)
        assert validate_bfs_tree(el, res.parent, root).ok
        return el, res.parent, root

    def test_unvisiting_a_reached_vertex_fails(self, valid_tree):
        el, parent, root = valid_tree
        bad = parent.copy()
        victim = int(np.flatnonzero((bad >= 0) & (np.arange(bad.size) != root))[0])
        bad[victim] = -1
        assert not validate_bfs_tree(el, bad, root).ok

    def test_fake_parent_edge_fails(self, valid_tree):
        el, parent, root = valid_tree
        bad = parent.copy()
        reached = np.flatnonzero((bad >= 0) & (np.arange(bad.size) != root))
        victim = int(reached[0])
        # Point the victim at a vertex it shares no edge with.
        u, v = el.endpoints
        neighbors = set(v[u == victim].tolist()) | set(u[v == victim].tolist())
        stranger = next(
            x for x in range(el.n_vertices)
            if x not in neighbors and x != victim
        )
        bad[victim] = stranger
        result = validate_bfs_tree(el, bad, root, collect_all=True)
        assert not result.ok

    def test_cycle_injection_fails(self, valid_tree):
        el, parent, root = valid_tree
        bad = parent.copy()
        reached = np.flatnonzero(bad >= 0)
        a, b = int(reached[1]), int(reached[2])
        bad[a], bad[b] = b, a
        assert not validate_bfs_tree(el, bad, root).ok

    def test_root_detached_fails(self, valid_tree):
        el, parent, root = valid_tree
        bad = parent.copy()
        bad[root] = -1
        assert not validate_bfs_tree(el, bad, root).ok

    @given(data=st.data())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_random_parent_rewrites_never_validate_silently(
        self, valid_tree, data
    ):
        """Any rewrite that changes the level structure must be caught.

        Rewrites that happen to produce *another valid BFS tree* (pointing
        a vertex at a different same-level-minus-one neighbour) are
        legitimately accepted; everything else must fail validation.
        """
        el, parent, root = valid_tree
        bad = parent.copy()
        victim = data.draw(
            st.integers(0, el.n_vertices - 1).filter(
                lambda x: parent[x] >= 0 and x != root
            )
        )
        new_parent = data.draw(st.integers(-1, el.n_vertices - 1))
        bad[victim] = new_parent
        result = validate_bfs_tree(el, bad, root)
        if result.ok:
            # Accepted rewrites must preserve the BFS level structure.
            levels_ok, err = compute_levels(bad, root)
            ref_levels, _ = compute_levels(parent, root)
            assert err is None
            assert np.array_equal(levels_ok, ref_levels)

    def test_error_carries_reason(self, valid_tree):
        el, parent, root = valid_tree
        bad = parent.copy()
        bad[root] = -1
        with pytest.raises(ValidationError) as err:
            validate_bfs_tree(el, bad, root).raise_if_invalid()
        assert "root" in str(err.value)
