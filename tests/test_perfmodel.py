"""Unit tests for the cost, size and power models."""

import pytest

from repro.errors import ConfigurationError
from repro.perfmodel.cost import DramCostModel
from repro.perfmodel.power import MachinePowerModel
from repro.perfmodel.sizes import GraphSizeModel
from repro.util.units import GIB


class TestCostModel:
    def test_level_time_scales_with_edges(self):
        m = DramCostModel()
        t1 = m.level_time_s(1000, 10, 10)
        t2 = m.level_time_s(2000, 10, 10)
        assert t2 > t1

    def test_vertex_term(self):
        m = DramCostModel()
        assert m.level_time_s(0, 1000, 1000) > 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            DramCostModel().level_time_s(-1, 0, 0)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            DramCostModel(random_access_ns=0)
        with pytest.raises(ConfigurationError):
            DramCostModel(threads=0)
        with pytest.raises(ConfigurationError):
            DramCostModel(remote_penalty=0.5)
        with pytest.raises(ConfigurationError):
            DramCostModel(remote_fraction=1.5)
        with pytest.raises(ConfigurationError):
            DramCostModel(mlp=0)

    def test_remote_fraction_raises_cost(self):
        local = DramCostModel(remote_fraction=0.0)
        remote = DramCostModel(remote_fraction=0.75)
        assert remote.level_time_s(1000, 0, 0) > local.level_time_s(1000, 0, 0)

    def test_reference_profile_slower(self):
        base = DramCostModel()
        ref = base.reference()
        assert ref.level_time_s(10_000, 10, 10) > base.level_time_s(
            10_000, 10, 10
        )

    def test_with_topology(self):
        m = DramCostModel().with_topology(2, 8)
        assert m.threads == 16

    def test_think_time(self):
        m = DramCostModel()
        assert m.per_request_think_time_s(512) > 0
        with pytest.raises(ConfigurationError):
            m.per_request_think_time_s(-1)

    def test_probe_throughput_order_of_magnitude(self):
        # Calibration anchor: ~1.1 G probes/s on the paper machine.
        m = DramCostModel()
        assert 0.5e9 < m.probe_throughput_per_s < 2e9


class TestSizeModel:
    """The paper's published sizes must be recovered exactly-ish."""

    @pytest.fixture()
    def m(self):
        return GraphSizeModel()

    def test_table2_scale27(self, m):
        b = m.breakdown(27)
        assert b.forward / GIB == pytest.approx(40.1, abs=0.5)
        assert b.backward / GIB == pytest.approx(33.1, abs=0.5)
        assert b.status / GIB == pytest.approx(15.1, abs=0.2)
        assert b.working_set / GIB == pytest.approx(88.3, abs=1.0)

    def test_scale26_sizes(self, m):
        b = m.breakdown(26)
        assert b.forward / GIB == pytest.approx(20.0, abs=0.3)
        assert b.backward / GIB == pytest.approx(16.5, abs=0.3)
        assert b.status / GIB == pytest.approx(10.8, abs=0.2)

    def test_fig3_scale31(self, m):
        b = m.breakdown(31)
        assert b.edge_list / GIB == pytest.approx(384, abs=1)
        assert b.forward / GIB == pytest.approx(640, abs=1)
        assert b.backward / GIB == pytest.approx(528, abs=1)
        assert b.graph_total / GIB / 1024 == pytest.approx(1.5, abs=0.05)

    def test_exponential_growth(self, m):
        small, big = m.breakdown(20), m.breakdown(21)
        assert big.edge_list == 2 * small.edge_list
        assert big.forward == 2 * small.forward

    def test_forward_larger_than_backward(self, m):
        # "the forward graph exhibits slightly higher memory occupancy".
        for scale in range(20, 32):
            b = m.breakdown(scale)
            assert b.forward > b.backward

    def test_semi_external_dram_requirement_smaller(self, m):
        assert m.min_semi_external_bytes(27) < m.min_dram_only_bytes(27)

    def test_paper_headline_half_dram(self, m):
        # 64 GB DRAM suffices for the offloaded working set at SCALE 27.
        assert m.min_semi_external_bytes(27) < 64 * GIB
        assert m.min_dram_only_bytes(27) > 64 * GIB

    def test_sweep(self, m):
        rows = m.sweep(range(20, 25))
        assert [r.scale for r in rows] == [20, 21, 22, 23, 24]

    def test_invalid(self, m):
        with pytest.raises(ConfigurationError):
            m.breakdown(0)
        with pytest.raises(ConfigurationError):
            GraphSizeModel(edge_factor=0)

    def test_measured(self, forward, backward, topology, a_root):
        from repro.bfs.state import BFSState

        state = BFSState(forward.n_vertices, topology, a_root)
        b = GraphSizeModel.measured(forward, backward, state)
        assert b.forward == forward.nbytes
        assert b.backward == backward.nbytes
        assert b.status > 0

    def test_format_row(self, m):
        row = m.breakdown(27).format_row()
        assert "SCALE 27" in row and "GB" in row


class TestPowerModel:
    def test_green_submission_near_paper(self):
        m = MachinePowerModel.green_graph500_submission()
        # Paper: 4.35 MTEPS/W at 4.22 GTEPS.
        assert m.mteps_per_watt(4.22e9) == pytest.approx(4.35, abs=0.25)

    def test_components_add_up(self):
        m = MachinePowerModel(
            n_sockets=2, watts_per_socket=100, dram_bytes=10 * GIB,
            watts_per_dram_gib=1.0, nvm_watts=20, base_watts=30,
        )
        assert m.total_watts == pytest.approx(200 + 10 + 20 + 30)

    def test_scenario_machines_ordered(self):
        dram = MachinePowerModel.paper_dram_only()
        pcie = MachinePowerModel.paper_pcie_flash()
        ssd = MachinePowerModel.paper_sata_ssd()
        # Half the DRAM plus an NVM device: the flash box may still be
        # cheaper than 128 GB of DRAM only if the device draw is small.
        assert ssd.total_watts < dram.total_watts
        assert pcie.total_watts != dram.total_watts

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            MachinePowerModel(n_sockets=0)
        with pytest.raises(ConfigurationError):
            MachinePowerModel(nvm_watts=-1)
        with pytest.raises(ConfigurationError):
            MachinePowerModel(dram_bytes=0)
        with pytest.raises(ConfigurationError):
            MachinePowerModel().mteps_per_watt(-1)
