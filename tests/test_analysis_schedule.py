"""Tests for the direction-schedule analysis (§VI-C)."""

import pytest

from repro.analysis import schedule_summary
from repro.bfs import AlphaBetaPolicy, FixedPolicy, Direction, HybridBFS
from repro.perfmodel.cost import DramCostModel


class TestScheduleSummary:
    def test_canonical_shape(self, forward, backward, a_root):
        # alpha/beta chosen so the run has head-TD, mid-BU and tail-TD.
        engine = HybridBFS(
            forward, backward, AlphaBetaPolicy(30, 30), DramCostModel()
        )
        summary = schedule_summary(engine.run(a_root))
        assert summary.n_td_head >= 1
        assert summary.n_bu_mid >= 1
        assert summary.is_canonical
        assert (
            summary.n_td_head + summary.n_bu_mid + summary.n_td_tail
            == len(summary.schedule)
        )

    def test_head_degree_exceeds_tail_degree(self, forward, backward, a_root):
        # The paper: first TD levels average ~11183 edges/vertex, last ~1.
        engine = HybridBFS(
            forward, backward, AlphaBetaPolicy(30, 30), DramCostModel()
        )
        summary = schedule_summary(engine.run(a_root))
        if summary.n_td_tail:
            assert summary.head_avg_degree > summary.tail_avg_degree

    def test_pure_top_down(self, forward, backward, a_root):
        engine = HybridBFS(
            forward, backward, FixedPolicy(Direction.TOP_DOWN)
        )
        summary = schedule_summary(engine.run(a_root))
        assert summary.n_bu_mid == 0
        assert summary.n_td_tail == 0
        assert summary.n_td_head == len(summary.schedule)
        assert not summary.is_canonical

    def test_schedule_string_matches(self, forward, backward, a_root):
        engine = HybridBFS(forward, backward, AlphaBetaPolicy(50, 500))
        result = engine.run(a_root)
        summary = schedule_summary(result)
        assert summary.schedule == result.direction_schedule()

    def test_empty_tail_average_is_zero(self, forward, backward, a_root):
        engine = HybridBFS(
            forward, backward,
            AlphaBetaPolicy(forward.n_vertices, forward.n_vertices),
        )
        summary = schedule_summary(engine.run(a_root))
        if summary.n_td_tail == 0:
            assert summary.tail_avg_degree == 0.0
