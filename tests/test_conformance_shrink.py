"""Shrinker convergence and repro-artifact round-trip guarantees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.conformance import (
    GraphCase,
    ReproArtifact,
    ShrinkOutcome,
    TrialSetup,
    run_engine,
    shrink_case,
)
from repro.errors import ConfigurationError
from repro.graph500.edgelist import EdgeList
from repro.graph500.kronecker import generate_edges


def _random_graph(seed, scale=6, edge_factor=6):
    endpoints = generate_edges(scale, edge_factor=edge_factor, seed=seed)
    return EdgeList(endpoints, 1 << scale)


def _touches(edges, u, v):
    """Does the edge list still contain the undirected edge (u, v)?"""
    a, b = edges.endpoints
    return bool(np.any(((a == u) & (b == v)) | ((a == v) & (b == u))))


class TestShrinker:
    def test_rejects_passing_input(self):
        edges = _random_graph(1)
        with pytest.raises(ConfigurationError):
            shrink_case(edges, 0, lambda e, r: False)

    def test_rejects_bad_eval_budget(self):
        edges = _random_graph(1)
        with pytest.raises(ConfigurationError):
            shrink_case(edges, 0, lambda e, r: True, max_evals=0)

    def test_converges_on_planted_edge(self):
        # The "bug" fires whenever edge (3, 5) is present: the minimal
        # counterexample is that single edge plus the root, and ddmin
        # must strip the other ~380 columns to find it.
        edges = _random_graph(7)
        planted = edges.endpoints.copy()
        planted = np.concatenate(
            [planted, np.array([[3], [5]], dtype=np.int64)], axis=1
        )
        edges = EdgeList(planted, edges.n_vertices)
        assert _touches(edges, 3, 5)

        outcome = shrink_case(edges, 3, lambda e, r: _touches(e, 3, 5))
        assert isinstance(outcome, ShrinkOutcome)
        assert outcome.n_edges == 1
        assert _touches(outcome.edges, *outcome.edges.endpoints[:, 0])
        assert outcome.steps > 0
        assert outcome.evals > outcome.steps

    def test_vertex_compaction_renumbers_densely(self):
        # Only vertices {3, 5} (plus root 3) matter out of 64: after
        # compaction ids must be dense and n_vertices minimal.
        edges = _random_graph(7)
        planted = np.concatenate(
            [edges.endpoints, np.array([[3], [5]], dtype=np.int64)], axis=1
        )
        edges = EdgeList(planted, edges.n_vertices)

        def failing(e, r):  # invariant under relabeling: some edge + root
            return e.endpoints.shape[1] >= 1

        outcome = shrink_case(edges, 3, failing)
        assert outcome.n_edges == 1
        used = np.union1d(np.unique(outcome.edges.endpoints),
                          [outcome.root])
        assert outcome.edges.n_vertices == used.size
        assert used[0] == 0 and used[-1] == used.size - 1

    def test_eval_budget_respected(self):
        edges = _random_graph(11)
        calls = []

        def failing(e, r):
            calls.append(e.endpoints.shape[1])
            return True

        outcome = shrink_case(edges, 0, failing, max_evals=25)
        assert outcome.evals <= 25
        assert len(calls) <= 25
        # degraded, not useless: strictly fewer edges than we started with
        assert outcome.n_edges < edges.endpoints.shape[1]

    def test_deterministic(self):
        edges = _random_graph(13)
        failing = lambda e, r: _touches(e, 1, 2) or e.endpoints.shape[1] > 40
        a = shrink_case(edges, 0, failing)
        b = shrink_case(edges, 0, failing)
        assert np.array_equal(a.edges.endpoints, b.edges.endpoints)
        assert (a.root, a.evals, a.steps) == (b.root, b.evals, b.steps)


class TestArtifactRoundTrip:
    def _artifact(self):
        return ReproArtifact.from_case(
            engine="hybrid",
            check="differential:validity",
            message="rule1: not all vertices reachable",
            seed=424242,
            edges=EdgeList(np.array([[0, 1], [1, 2]], dtype=np.int64), 3),
            root=0,
            setup=TrialSetup(device="ssd", alpha=2.0, beta=4.0),
            shrink_steps=5,
            shrink_evals=17,
            original={"n_vertices": 64, "n_edges": 300, "root": 12},
        )

    def test_json_round_trips_byte_identically(self, tmp_path):
        artifact = self._artifact()
        path = artifact.write(tmp_path)
        assert path.name == "repro_hybrid_differential-validity_s424242_r0.json"
        assert ReproArtifact.load(path) == artifact
        assert ReproArtifact.load(path).to_json() == path.read_text()
        # writing twice is idempotent at the byte level
        before = path.read_bytes()
        artifact.write(tmp_path)
        assert path.read_bytes() == before

    def test_wrong_schema_rejected(self):
        text = self._artifact().to_json().replace(
            "repro.conformance/1", "repro.conformance/99"
        )
        with pytest.raises(ConfigurationError):
            ReproArtifact.from_json(text)

    def test_edge_list_and_setup_reconstruct(self):
        artifact = self._artifact()
        edges = artifact.edge_list()
        assert edges.n_vertices == 3
        assert np.array_equal(
            edges.endpoints, np.array([[0, 1], [1, 2]], dtype=np.int64)
        )
        assert artifact.trial_setup() == TrialSetup(
            device="ssd", alpha=2.0, beta=4.0
        )

    def test_malformed_check_rejected_on_replay(self):
        from dataclasses import replace

        broken = replace(self._artifact(), check="nonsense")
        with pytest.raises(ConfigurationError):
            broken.replay()

    def test_passing_artifact_does_not_reproduce(self):
        # The recorded check passes on this graph (hybrid is correct), so
        # replay must come back NOT REPRODUCED rather than inventing one.
        outcome = self._artifact().replay()
        assert not outcome.reproduced
        assert "NOT REPRODUCED" in str(outcome)

    def test_unregistered_engine_replays_via_runner(self, tmp_path):
        # Artifacts from broken-engine fixtures outlive the process that
        # registered them; --replay in a fresh process supplies a runner.
        from dataclasses import replace as dc_replace

        artifact = dc_replace(self._artifact(), engine="long-gone")

        def runner(case, setup, root, workdir):
            result = run_engine("hybrid", case, setup, root, workdir)
            result.parent[2] = -1  # drop the tail vertex: rule1 violation
            return result

        outcome = artifact.replay(runner=runner, workdir=tmp_path)
        assert outcome.reproduced
        assert "REPRODUCED" in str(outcome)


class TestShrinkEndToEnd:
    def test_planted_divergence_shrinks_to_core(self, tmp_path):
        """A monkeypatched engine that loses one specific vertex shrinks
        to a graph still containing that vertex, and the shrunk case
        still fails the same differential check."""
        edges = _random_graph(17, scale=6, edge_factor=5)
        case = GraphCase(edges)
        setup = TrialSetup()
        root = int(np.argmax(case.csr.degrees()))  # root in the big component
        visited = np.flatnonzero(
            run_engine("reference", case, setup, root, tmp_path).parent != -1
        )
        victim = int(visited[visited != root][-1])

        def failing(e, r):
            sub = GraphCase(e)
            result = run_engine("hybrid", sub, setup, r, tmp_path)
            if victim >= e.n_vertices or result.parent[victim] == -1:
                return False  # victim gone or unreachable: bug can't fire
            result.parent[victim] = -1
            ref = run_engine("reference", sub, setup, r, tmp_path)
            from repro.conformance import differential_failures

            return any(
                c == "distance"
                for c, _ in differential_failures(e, ref.parent, result, r)
            )

        outcome = shrink_case(edges, root, failing, max_evals=300)
        assert outcome.n_edges < edges.endpoints.shape[1] // 4
        assert failing(outcome.edges, outcome.root)
