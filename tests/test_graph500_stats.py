"""Unit tests for the official Graph500 statistics block."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph500.stats import Graph500Stats, teps_from_times


class TestTepsFromTimes:
    def test_basic(self):
        teps = teps_from_times(np.array([100.0, 200.0]), np.array([1.0, 2.0]))
        assert teps.tolist() == [100.0, 100.0]

    def test_zero_time_rejected(self):
        with pytest.raises(ConfigurationError):
            teps_from_times(np.array([1.0]), np.array([0.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            teps_from_times(np.array([1.0]), np.array([1.0, 2.0]))


class TestStats:
    def test_median_of_odd_runs(self):
        edges = np.full(5, 100.0)
        times = np.array([1.0, 2.0, 4.0, 5.0, 10.0])
        s = Graph500Stats.from_runs(edges, times)
        assert s.median_teps == pytest.approx(25.0)
        assert s.n_runs == 5
        assert s.min_teps == pytest.approx(10.0)
        assert s.max_teps == pytest.approx(100.0)

    def test_harmonic_mean(self):
        edges = np.full(2, 100.0)
        times = np.array([1.0, 3.0])  # TEPS 100 and 33.33
        s = Graph500Stats.from_runs(edges, times)
        # Harmonic mean of rates = total edges / total time.
        assert s.harmonic_mean_teps == pytest.approx(200.0 / 4.0)

    def test_harmonic_stddev_zero_when_constant(self):
        edges = np.full(4, 100.0)
        times = np.full(4, 2.0)
        s = Graph500Stats.from_runs(edges, times)
        assert s.harmonic_stddev_teps == pytest.approx(0.0)

    def test_single_run(self):
        s = Graph500Stats.from_runs(np.array([10.0]), np.array([1.0]))
        assert s.median_teps == 10.0
        assert s.harmonic_stddev_teps == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Graph500Stats.from_runs(np.array([]), np.array([]))

    def test_time_stats(self):
        s = Graph500Stats.from_runs(
            np.full(3, 1.0), np.array([1.0, 2.0, 3.0])
        )
        assert s.mean_time_s == pytest.approx(2.0)
        assert s.median_time_s == pytest.approx(2.0)

    def test_format_contains_fields(self):
        s = Graph500Stats.from_runs(np.full(3, 1.0), np.ones(3))
        text = s.format()
        assert "median_TEPS" in text
        assert "harmonic_mean_TEPS" in text
        assert "num_bfs_runs:            3" in text

    def test_quartiles_ordered(self):
        rng = np.random.default_rng(0)
        times = rng.uniform(0.5, 2.0, 64)
        s = Graph500Stats.from_runs(np.full(64, 1e6), times)
        assert (
            s.min_teps
            <= s.firstquartile_teps
            <= s.median_teps
            <= s.thirdquartile_teps
            <= s.max_teps
        )
