"""Property-based metamorphic relations over random small graphs.

Extends the pattern of ``test_properties_semiext.py`` to the conformance
layer: hypothesis draws arbitrary (multi)graphs — duplicates, self-loops
and isolated vertices included — and the permutation and duplicate-edge
relations from :mod:`repro.conformance.relations` must hold for both the
DRAM hybrid engine and the NVM-offloaded semi-external engine.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.conformance import GraphCase, TrialSetup, get_relation, run_engine
from repro.graph500.edgelist import EdgeList

ENGINES = ("hybrid", "semi_external")


@st.composite
def graph_cases(draw, max_vertices=24, max_edges=48):
    """An arbitrary small multigraph plus a root drawn from its vertices."""
    n = draw(st.integers(2, max_vertices))
    m = draw(st.integers(1, max_edges))
    u = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    v = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    endpoints = np.stack([u, v]).astype(np.int64)
    root = draw(st.integers(0, n - 1))
    return GraphCase(EdgeList(endpoints, n)), root


RELATION_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestPermutationRelation:
    """Relabeling vertices by π must permute the level array by π."""

    @given(drawn=graph_cases(), seed=st.integers(0, 2**31 - 1))
    @RELATION_SETTINGS
    def test_hybrid(self, tmp_path, drawn, seed):
        from repro.conformance import get_engine

        case, root = drawn
        relation = get_relation("permutation")
        assert relation.check(
            get_engine("hybrid"), case, TrialSetup(), root, seed, tmp_path,
        ) is None

    @given(drawn=graph_cases(max_vertices=16, max_edges=32),
           seed=st.integers(0, 2**31 - 1))
    @RELATION_SETTINGS
    def test_semi_external(self, tmp_path, drawn, seed):
        from repro.conformance import get_engine

        case, root = drawn
        relation = get_relation("permutation")
        assert relation.check(
            get_engine("semi_external"), case, TrialSetup(), root, seed,
            tmp_path,
        ) is None


class TestDuplicatesRelation:
    """Appending duplicate edges / self-loops must not move one parent."""

    @given(drawn=graph_cases(), seed=st.integers(0, 2**31 - 1))
    @RELATION_SETTINGS
    def test_hybrid(self, tmp_path, drawn, seed):
        from repro.conformance import get_engine

        case, root = drawn
        relation = get_relation("duplicates")
        assert relation.check(
            get_engine("hybrid"), case, TrialSetup(), root, seed, tmp_path,
        ) is None

    @given(drawn=graph_cases(max_vertices=16, max_edges=32),
           seed=st.integers(0, 2**31 - 1))
    @RELATION_SETTINGS
    def test_semi_external(self, tmp_path, drawn, seed):
        from repro.conformance import get_engine

        case, root = drawn
        relation = get_relation("duplicates")
        assert relation.check(
            get_engine("semi_external"), case, TrialSetup(), root, seed,
            tmp_path,
        ) is None


class TestDifferentialAgreement:
    """Both engines must match the reference oracle on every draw —
    the property form of the harness's differential sweep."""

    @given(drawn=graph_cases(), seed=st.integers(0, 2**31 - 1))
    @RELATION_SETTINGS
    def test_levels_match_reference(self, tmp_path, drawn, seed):
        from repro.conformance import differential_failures

        case, root = drawn
        setup = TrialSetup()
        ref = run_engine("reference", case, setup, root, tmp_path)
        for name in ENGINES:
            result = run_engine(name, case, setup, root, tmp_path)
            assert differential_failures(
                case.edges, ref.parent, result, root
            ) == [], name
