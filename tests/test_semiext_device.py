"""Unit tests for repro.semiext.device (device model + queueing)."""

import pytest

from repro.errors import ConfigurationError
from repro.semiext.device import DRAM_CHANNEL, PCIE_FLASH, SATA_SSD, DeviceModel


class TestDeviceModel:
    def test_presets_sane(self):
        assert PCIE_FLASH.read_bandwidth_bps > SATA_SSD.read_bandwidth_bps
        assert PCIE_FLASH.max_read_iops > SATA_SSD.max_read_iops
        assert DRAM_CHANNEL.read_latency_s < PCIE_FLASH.read_latency_s

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            DeviceModel("x", -1, 1, 1)
        with pytest.raises(ConfigurationError):
            DeviceModel("x", 0, 0, 1)
        with pytest.raises(ConfigurationError):
            DeviceModel("x", 0, 1, 0)
        with pytest.raises(ConfigurationError):
            DeviceModel("x", 0, 1, 1, channels=0)

    def test_service_time_components(self):
        d = DeviceModel("x", read_latency_s=1e-4, read_bandwidth_bps=1e6,
                        max_read_iops=1e5)
        assert d.service_time_s(0) == pytest.approx(1e-4)
        assert d.service_time_s(1e6) == pytest.approx(1e-4 + 1.0)

    def test_service_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            PCIE_FLASH.service_time_s(-1)

    def test_saturation_iops_caps(self):
        # Large requests are bandwidth-bound.
        big = PCIE_FLASH.saturation_iops(1 << 20)
        assert big <= PCIE_FLASH.read_bandwidth_bps / (1 << 20) * 1.001
        # Small requests are IOPS-bound.
        small = PCIE_FLASH.saturation_iops(4096)
        assert small <= PCIE_FLASH.max_read_iops


class TestSubmit:
    def test_empty_batch(self):
        r = PCIE_FLASH.submit(0, 0, concurrency=48)
        assert r.elapsed_s == 0.0
        assert r.mean_queue == 0.0

    def test_invalid_batch(self):
        with pytest.raises(ConfigurationError):
            PCIE_FLASH.submit(-1, 0, 1)
        with pytest.raises(ConfigurationError):
            PCIE_FLASH.submit(1, 100, 0)
        with pytest.raises(ConfigurationError):
            PCIE_FLASH.submit(1, 100, 1, think_time_s=-1)

    def test_device_bound_queue_near_concurrency(self):
        # Zero think time saturates the device: queue ~= worker count.
        r = PCIE_FLASH.submit(100_000, 100_000 * 4096, concurrency=48)
        assert r.mean_queue == pytest.approx(48, rel=0.05)

    def test_cpu_bound_queue_small(self):
        # Huge think time: the device idles and the queue stays short.
        r = PCIE_FLASH.submit(1000, 1000 * 4096, concurrency=48,
                              think_time_s=1.0)
        assert r.mean_queue < 1.0

    def test_elapsed_scales_with_requests(self):
        a = PCIE_FLASH.submit(1000, 1000 * 4096, 48).elapsed_s
        b = PCIE_FLASH.submit(2000, 2000 * 4096, 48).elapsed_s
        assert b == pytest.approx(2 * a, rel=1e-6)

    def test_ssd_slower_than_pcie(self):
        a = PCIE_FLASH.submit(10_000, 10_000 * 4096, 48).elapsed_s
        b = SATA_SSD.submit(10_000, 10_000 * 4096, 48).elapsed_s
        assert b > a

    def test_throughput_capped_by_iops(self):
        r = PCIE_FLASH.submit(1_000_000, 1_000_000 * 512, concurrency=1000)
        assert r.throughput_iops <= PCIE_FLASH.max_read_iops * 1.001

    def test_think_time_lowers_throughput(self):
        fast = PCIE_FLASH.submit(1000, 1000 * 4096, 4).throughput_iops
        slow = PCIE_FLASH.submit(
            1000, 1000 * 4096, 4, think_time_s=1e-3
        ).throughput_iops
        assert slow < fast
