"""Unit tests for the CSR structure and builder."""

import numpy as np
import pytest

from repro.csr.builder import build_csr
from repro.csr.graph import CSRGraph
from repro.errors import GraphFormatError
from repro.graph500.edgelist import EdgeList


class TestCSRGraph:
    def _simple(self):
        # 0 -> {1, 2}; 1 -> {0}; 2 -> {0}
        return CSRGraph(
            indptr=np.array([0, 2, 3, 4], dtype=np.int64),
            adj=np.array([1, 2, 0, 0], dtype=np.int64),
            n_cols=3,
        )

    def test_shape(self):
        g = self._simple()
        assert g.n_rows == 3
        assert g.n_directed_edges == 4
        assert g.nbytes == 4 * 8 + 4 * 8

    def test_neighbors_and_degree(self):
        g = self._simple()
        assert g.neighbors(0).tolist() == [1, 2]
        assert g.degree(0) == 2
        assert g.degrees().tolist() == [2, 1, 1]

    def test_row_extents(self):
        g = self._simple()
        starts, counts = g.row_extents(np.array([0, 2]))
        assert starts.tolist() == [0, 3]
        assert counts.tolist() == [2, 1]

    def test_has_edge(self):
        g = self._simple()
        assert g.has_edge(0, 2)
        assert not g.has_edge(1, 2)

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([1, 2], dtype=np.int64),
                     np.array([0], dtype=np.int64), 2)

    def test_indptr_must_be_monotone(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 2, 1], dtype=np.int64),
                     np.array([0, 0], dtype=np.int64), 2)

    def test_indptr_end_must_match_adj(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 3], dtype=np.int64),
                     np.array([0], dtype=np.int64), 2)

    def test_adj_range_checked(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1], dtype=np.int64),
                     np.array([5], dtype=np.int64), 2)

    def test_dtype_checked(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1], dtype=np.int32),
                     np.array([0], dtype=np.int64), 2)

    def test_equality(self):
        assert self._simple() == self._simple()


class TestBuildCSR:
    def test_symmetrization(self):
        g = build_csr(np.array([[0], [1]]), n_vertices=3)
        assert g.neighbors(0).tolist() == [1]
        assert g.neighbors(1).tolist() == [0]

    def test_rows_sorted(self):
        g = build_csr(np.array([[0, 0, 0], [5, 2, 9]]), n_vertices=10)
        assert g.neighbors(0).tolist() == [2, 5, 9]

    def test_self_loops_dropped(self):
        g = build_csr(np.array([[0, 1], [0, 2]]), n_vertices=3)
        assert g.degree(0) == 0
        assert g.neighbors(1).tolist() == [2]

    def test_self_loops_kept_on_request(self):
        g = build_csr(
            np.array([[0], [0]]), n_vertices=2, drop_self_loops=False
        )
        assert g.neighbors(0).tolist() == [0]  # deduped to one entry
        multi = build_csr(
            np.array([[0], [0]]), n_vertices=2, drop_self_loops=False,
            dedup=False,
        )
        assert multi.neighbors(0).tolist() == [0, 0]  # both directions

    def test_duplicates_removed(self):
        g = build_csr(np.array([[0, 0, 1], [1, 1, 0]]), n_vertices=2)
        assert g.n_directed_edges == 2

    def test_duplicates_kept_on_request(self):
        g = build_csr(
            np.array([[0, 0], [1, 1]]), n_vertices=2, dedup=False
        )
        assert g.n_directed_edges == 4

    def test_empty_graph(self):
        g = build_csr(np.zeros((2, 0), dtype=np.int64), n_vertices=4)
        assert g.n_rows == 4
        assert g.n_directed_edges == 0

    def test_from_edge_list_object(self):
        el = EdgeList(np.array([[0, 1], [1, 2]], dtype=np.int64), 3)
        g = build_csr(el)
        assert g.n_rows == 3
        assert g.has_edge(2, 1)

    def test_missing_n_vertices_rejected(self):
        with pytest.raises(GraphFormatError):
            build_csr(np.array([[0], [1]]))

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphFormatError):
            build_csr(np.zeros((3, 3), dtype=np.int64), n_vertices=3)

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphFormatError):
            build_csr(np.array([[0], [5]]), n_vertices=3)

    def test_matches_scipy(self, edges, csr):
        import scipy.sparse as sp

        n = edges.n_vertices
        u, v = edges.endpoints
        keep = u != v
        u, v = u[keep], v[keep]
        m = sp.coo_matrix(
            (np.ones(2 * u.size), (np.r_[u, v], np.r_[v, u])), shape=(n, n)
        ).tocsr()
        m.sum_duplicates()
        assert np.array_equal(csr.indptr, m.indptr.astype(np.int64))
        assert np.array_equal(csr.adj, m.indices.astype(np.int64))

    def test_degree_symmetry(self, csr):
        # In a symmetric graph, total out-degree is even.
        assert csr.n_directed_edges % 2 == 0
