"""Unit tests for NUMA-partitioned forward/backward graphs."""

import numpy as np
import pytest

from repro.csr.builder import build_csr
from repro.csr.graph import CSRGraph
from repro.csr.partition import BackwardGraph, ForwardGraph
from repro.errors import GraphFormatError
from repro.numa.topology import NumaTopology


class TestForwardGraph:
    def test_edge_conservation(self, csr, forward):
        assert forward.n_directed_edges == csr.n_directed_edges

    def test_shards_partition_by_destination(self, csr, forward, topology):
        n = csr.n_rows
        for part, shard in zip(forward.partitions, forward.shards):
            if shard.adj.size:
                owners = topology.owner_of(shard.adj, n)
                assert (owners == part.node).all()

    def test_all_rows_present_in_every_shard(self, csr, forward):
        # Frontier duplication: every shard indexes all n source rows.
        for shard in forward.shards:
            assert shard.n_rows == csr.n_rows

    def test_union_of_shards_restores_graph(self, csr, forward):
        # Per row, merging the shards' (sorted) neighbor lists yields the
        # original sorted row.
        for v in range(0, csr.n_rows, 97):
            merged = np.sort(
                np.concatenate([s.neighbors(v) for s in forward.shards])
            )
            assert np.array_equal(merged, csr.neighbors(v))

    def test_rows_remain_sorted(self, forward):
        for shard in forward.shards:
            for v in range(0, shard.n_rows, 131):
                row = shard.neighbors(v)
                assert np.all(np.diff(row) >= 0)

    def test_rectangular_csr_rejected(self, topology):
        rect = CSRGraph(
            np.array([0, 1], dtype=np.int64), np.array([3], dtype=np.int64), 5
        )
        with pytest.raises(GraphFormatError):
            ForwardGraph(rect, topology)

    def test_nbytes_sums_shards(self, forward):
        assert forward.nbytes == sum(s.nbytes for s in forward.shards)

    def test_single_node_is_identity(self, csr):
        fg = ForwardGraph(csr, NumaTopology(1))
        assert fg.shards[0] == csr


class TestBackwardGraph:
    def test_edge_conservation(self, csr, backward):
        assert backward.n_directed_edges == csr.n_directed_edges

    def test_rows_partitioned_by_owner(self, csr, backward):
        for part, shard in zip(backward.partitions, backward.shards):
            assert shard.n_rows == part.size

    def test_local_rows_match_global(self, csr, backward):
        for part, shard in zip(backward.partitions, backward.shards):
            for local in range(0, shard.n_rows, 101):
                assert np.array_equal(
                    shard.neighbors(local), csr.neighbors(part.lo + local)
                )

    def test_global_degrees(self, csr, backward):
        assert np.array_equal(backward.global_degrees(), csr.degrees())

    def test_rectangular_csr_rejected(self, topology):
        rect = CSRGraph(
            np.array([0, 1], dtype=np.int64), np.array([3], dtype=np.int64), 5
        )
        with pytest.raises(GraphFormatError):
            BackwardGraph(rect, topology)

    def test_single_node_is_identity(self, csr):
        bg = BackwardGraph(csr, NumaTopology(1))
        assert bg.shards[0] == csr

    def test_many_nodes(self):
        g = build_csr(np.array([[0, 1, 2], [1, 2, 3]]), n_vertices=4)
        bg = BackwardGraph(g, NumaTopology(8))
        assert bg.n_directed_edges == g.n_directed_edges
        assert sum(s.n_rows for s in bg.shards) == 4
