"""Unit tests for repro.graph500.edgelist."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph500.edgelist import EdgeList


def _el(pairs, n):
    return EdgeList(np.array(pairs, dtype=np.int64).T.reshape(2, -1), n)


class TestConstruction:
    def test_valid(self):
        el = _el([(0, 1), (1, 2)], 3)
        assert el.n_edges == 2
        assert el.n_vertices == 3

    def test_bad_shape(self):
        with pytest.raises(GraphFormatError):
            EdgeList(np.zeros((3, 4), dtype=np.int64), 5)

    def test_bad_dtype(self):
        with pytest.raises(GraphFormatError):
            EdgeList(np.zeros((2, 4), dtype=np.int32), 5)

    def test_endpoint_out_of_range(self):
        with pytest.raises(GraphFormatError):
            _el([(0, 5)], 5)
        with pytest.raises(GraphFormatError):
            _el([(-1, 0)], 5)

    def test_zero_vertices_rejected(self):
        with pytest.raises(GraphFormatError):
            EdgeList(np.zeros((2, 0), dtype=np.int64), 0)


class TestStatistics:
    def test_degrees_exclude_self_loops(self):
        el = _el([(0, 1), (1, 1), (1, 2)], 3)
        assert el.degrees().tolist() == [1, 2, 1]

    def test_n_self_loops(self):
        el = _el([(0, 0), (1, 1), (0, 1)], 2)
        assert el.n_self_loops() == 2

    def test_n_unique_undirected(self):
        el = _el([(0, 1), (1, 0), (0, 1), (1, 2), (2, 2)], 3)
        assert el.n_unique_undirected() == 2

    def test_nbytes(self):
        el = _el([(0, 1)] * 10, 2)
        assert el.nbytes == 2 * 10 * 8


class TestOffload:
    def test_round_trip(self, store):
        el = _el([(0, 1), (1, 2), (2, 3)], 4)
        ext = el.offload(store)
        back = EdgeList.from_external(ext, 4, charged=False)
        assert np.array_equal(back.endpoints, el.endpoints)

    def test_charged_read_meters_device(self, store):
        el = _el([(0, 1)] * 1000, 2)
        ext = el.offload(store)
        EdgeList.from_external(ext, 2, charged=True)
        assert store.iostats.total_bytes >= el.nbytes

    def test_custom_name(self, store):
        el = _el([(0, 1)], 2)
        el.offload(store, "my_edges")
        assert "my_edges" in store

    def test_odd_element_count_rejected(self, store):
        store.put_array("bad", np.zeros(7, dtype=np.int64))
        with pytest.raises(GraphFormatError):
            EdgeList.from_external(store.get_array("bad"), 4)
