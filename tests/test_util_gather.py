"""Unit tests for repro.util.gather (ragged-segment primitives)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.util.gather import concat_ranges, first_true_per_segment, segment_ids


class TestConcatRanges:
    def test_basic(self):
        out = concat_ranges(np.array([5, 0]), np.array([3, 2]))
        assert out.tolist() == [5, 6, 7, 0, 1]

    def test_empty_segments_skipped(self):
        out = concat_ranges(np.array([5, 9, 0]), np.array([2, 0, 1]))
        assert out.tolist() == [5, 6, 0]

    def test_all_empty(self):
        assert concat_ranges(np.array([1, 2]), np.array([0, 0])).size == 0

    def test_no_segments(self):
        assert concat_ranges(np.array([]), np.array([])).size == 0

    def test_single_large(self):
        out = concat_ranges(np.array([10]), np.array([5]))
        assert out.tolist() == [10, 11, 12, 13, 14]

    def test_shape_mismatch(self):
        with pytest.raises(GraphFormatError):
            concat_ranges(np.array([1]), np.array([1, 2]))

    def test_negative_count(self):
        with pytest.raises(GraphFormatError):
            concat_ranges(np.array([1]), np.array([-1]))

    def test_matches_naive(self):
        rng = np.random.default_rng(1)
        starts = rng.integers(0, 1000, 50)
        counts = rng.integers(0, 20, 50)
        expected = np.concatenate(
            [np.arange(s, s + c) for s, c in zip(starts, counts)]
            or [np.array([], dtype=np.int64)]
        )
        assert np.array_equal(concat_ranges(starts, counts), expected)


class TestSegmentIds:
    def test_basic(self):
        assert segment_ids(np.array([2, 0, 3])).tolist() == [0, 0, 2, 2, 2]

    def test_empty(self):
        assert segment_ids(np.array([], dtype=np.int64)).size == 0
        assert segment_ids(np.array([0, 0])).size == 0

    def test_negative_rejected(self):
        with pytest.raises(GraphFormatError):
            segment_ids(np.array([-1]))


class TestFirstTruePerSegment:
    def test_basic(self):
        mask = np.array([0, 0, 1, 0, 0, 0, 1, 1], dtype=bool)
        hit, scanned = first_true_per_segment(mask, np.array([3, 2, 3]))
        assert hit.tolist() == [2, -1, 6]
        assert scanned.tolist() == [3, 2, 2]

    def test_hit_at_first_position(self):
        mask = np.array([1, 0, 0], dtype=bool)
        hit, scanned = first_true_per_segment(mask, np.array([3]))
        assert hit.tolist() == [0]
        assert scanned.tolist() == [1]

    def test_no_hits_scans_everything(self):
        mask = np.zeros(5, dtype=bool)
        hit, scanned = first_true_per_segment(mask, np.array([2, 3]))
        assert hit.tolist() == [-1, -1]
        assert scanned.tolist() == [2, 3]

    def test_all_hits(self):
        mask = np.ones(4, dtype=bool)
        hit, scanned = first_true_per_segment(mask, np.array([2, 2]))
        assert hit.tolist() == [0, 2]
        assert scanned.tolist() == [1, 1]

    def test_empty_segments(self):
        mask = np.array([1], dtype=bool)
        hit, scanned = first_true_per_segment(mask, np.array([0, 1, 0]))
        assert hit.tolist() == [-1, 0, -1]
        assert scanned.tolist() == [0, 1, 0]

    def test_empty_everything(self):
        hit, scanned = first_true_per_segment(
            np.array([], dtype=bool), np.array([], dtype=np.int64)
        )
        assert hit.size == 0 and scanned.size == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphFormatError):
            first_true_per_segment(np.array([True]), np.array([2]))

    def test_scanned_never_exceeds_count(self):
        rng = np.random.default_rng(7)
        counts = rng.integers(0, 10, 100)
        mask = rng.random(int(counts.sum())) < 0.2
        _, scanned = first_true_per_segment(mask, counts)
        assert np.all(scanned <= counts)
        assert np.all(scanned >= 0)

    def test_matches_naive(self):
        rng = np.random.default_rng(9)
        counts = rng.integers(0, 8, 60)
        mask = rng.random(int(counts.sum())) < 0.3
        hit, scanned = first_true_per_segment(mask, counts)
        pos = 0
        for i, c in enumerate(counts):
            seg = mask[pos : pos + c]
            nz = np.flatnonzero(seg)
            if nz.size:
                assert hit[i] == pos + nz[0]
                assert scanned[i] == nz[0] + 1
            else:
                assert hit[i] == -1
                assert scanned[i] == c
            pos += c
