"""Tests for streaming (two-pass) CSR construction."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.csr.builder import build_csr
from repro.csr.streaming import build_csr_streaming
from repro.errors import GraphFormatError
from repro.graph500.kronecker import generate_edge_batches, generate_edges


def _batched(edges, size):
    def gen():
        for i in range(0, edges.shape[1], size):
            yield edges[:, i : i + size]

    return gen


class TestStreamingConstruction:
    def test_equals_monolithic(self):
        edges = generate_edges(scale=10, seed=4)
        mono = build_csr(edges, n_vertices=1 << 10)
        stream = build_csr_streaming(_batched(edges, 777), 1 << 10)
        assert stream == mono

    def test_equals_monolithic_no_dedup(self):
        edges = generate_edges(scale=9, seed=4)
        mono = build_csr(edges, n_vertices=1 << 9, dedup=False)
        stream = build_csr_streaming(
            _batched(edges, 100), 1 << 9, dedup=False
        )
        # Same rows as multisets (order within duplicates may differ).
        assert np.array_equal(stream.indptr, mono.indptr)
        for v in range(0, 1 << 9, 37):
            assert np.array_equal(
                np.sort(stream.neighbors(v)), np.sort(mono.neighbors(v))
            )

    def test_single_batch(self):
        edges = generate_edges(scale=8, seed=1)
        mono = build_csr(edges, n_vertices=1 << 8)
        stream = build_csr_streaming(_batched(edges, 10**9), 1 << 8)
        assert stream == mono

    def test_tiny_batches(self):
        edges = generate_edges(scale=7, seed=1)
        mono = build_csr(edges, n_vertices=1 << 7)
        stream = build_csr_streaming(_batched(edges, 1), 1 << 7)
        assert stream == mono

    def test_from_kronecker_batches(self):
        # Stream straight from the batched generator (the pipeline path).
        g = build_csr_streaming(
            lambda: generate_edge_batches(scale=9, seed=6, batch_edges=512),
            1 << 9,
        )
        assert g.n_rows == 1 << 9
        assert g.n_directed_edges > 0
        # Symmetric and sorted.
        for v in range(0, 1 << 9, 41):
            row = g.neighbors(v)
            assert np.all(np.diff(row) > 0)
            for w in row.tolist():
                assert g.has_edge(w, v)

    def test_self_loops_kept_on_request(self):
        edges = np.array([[0, 1], [0, 2]], dtype=np.int64)
        g = build_csr_streaming(
            _batched(edges, 10), 3, drop_self_loops=False
        )
        assert 0 in g.neighbors(0)

    def test_empty_stream(self):
        g = build_csr_streaming(lambda: iter(()), 5)
        assert g.n_rows == 5
        assert g.n_directed_edges == 0

    def test_invalid_inputs(self):
        with pytest.raises(GraphFormatError):
            build_csr_streaming(lambda: iter(()), 0)
        bad = np.array([[0], [9]], dtype=np.int64)
        with pytest.raises(GraphFormatError):
            build_csr_streaming(_batched(bad, 10), 5)
        shaped = np.zeros((3, 4), dtype=np.int64)
        with pytest.raises(GraphFormatError):
            build_csr_streaming(_batched(shaped.T, 10), 5)

    @given(data=st.data())
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    def test_property_equals_monolithic(self, data):
        n = data.draw(st.integers(2, 40))
        m = data.draw(st.integers(0, 120))
        edges = data.draw(
            arrays(np.int64, (2, m), elements=st.integers(0, n - 1))
        )
        size = data.draw(st.integers(1, max(m, 1)))
        mono = build_csr(edges, n_vertices=n)
        stream = build_csr_streaming(_batched(edges, size), n)
        assert stream == mono
