"""Unit tests for repro.util.chunking (request splitting and merging)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.util.chunking import (
    DEFAULT_CHUNK_BYTES,
    SECTOR_BYTES,
    merge_extents,
    plan_chunks,
    split_extent,
)


class TestSplitExtent:
    def test_small_extent_one_request(self):
        plan = split_extent(0, 100)
        assert plan.n_requests == 1
        assert plan.total_bytes == 100

    def test_unaligned_start_splits_at_boundary(self):
        plan = split_extent(1000, 9000, 4096)
        assert plan.offsets.tolist() == [1000, 4096, 8192]
        assert plan.sizes.tolist() == [3096, 4096, 1808]

    def test_aligned_multiple_full_chunks(self):
        plan = split_extent(4096, 8192, 4096)
        assert plan.offsets.tolist() == [4096, 8192]
        assert plan.sizes.tolist() == [4096, 4096]

    def test_zero_length_no_requests(self):
        assert split_extent(500, 0).n_requests == 0

    def test_exact_chunk(self):
        plan = split_extent(0, 4096)
        assert plan.n_requests == 1
        assert plan.sizes.tolist() == [4096]

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            split_extent(-1, 10)
        with pytest.raises(ConfigurationError):
            split_extent(0, -10)
        with pytest.raises(ConfigurationError):
            split_extent(0, 10, 0)

    def test_sectors_round_up(self):
        plan = split_extent(0, 100)
        assert plan.sectors.tolist() == [1]
        plan = split_extent(0, SECTOR_BYTES + 1)
        assert plan.sectors.tolist() == [2]


class TestPlanChunks:
    def test_matches_split_extent_per_extent(self):
        offsets = np.array([1000, 0, 8192])
        lengths = np.array([9000, 100, 4096])
        plan = plan_chunks(offsets, lengths)
        expected_offs = []
        expected_sizes = []
        for o, l in zip(offsets, lengths):
            p = split_extent(int(o), int(l))
            expected_offs += p.offsets.tolist()
            expected_sizes += p.sizes.tolist()
        assert plan.offsets.tolist() == expected_offs
        assert plan.sizes.tolist() == expected_sizes

    def test_zero_length_extents_skipped(self):
        plan = plan_chunks(np.array([0, 100]), np.array([0, 10]))
        assert plan.n_requests == 1
        assert plan.total_bytes == 10

    def test_empty_batch(self):
        plan = plan_chunks(np.array([]), np.array([]))
        assert plan.n_requests == 0
        assert plan.total_bytes == 0

    def test_all_zero_batch(self):
        plan = plan_chunks(np.array([5, 6]), np.array([0, 0]))
        assert plan.n_requests == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_chunks(np.array([1, 2]), np.array([1]))

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_chunks(np.array([-1]), np.array([5]))

    def test_max_request_never_exceeds_chunk(self):
        rng = np.random.default_rng(0)
        offsets = rng.integers(0, 1 << 20, 200)
        lengths = rng.integers(0, 1 << 14, 200)
        plan = plan_chunks(offsets, lengths, DEFAULT_CHUNK_BYTES)
        assert plan.sizes.max() <= DEFAULT_CHUNK_BYTES
        assert plan.total_bytes == int(lengths.sum())

    def test_request_alignment_after_first(self):
        plan = plan_chunks(np.array([100]), np.array([10000]), 4096)
        # Every request after the first starts on a chunk boundary.
        assert all(o % 4096 == 0 for o in plan.offsets[1:])


class TestMergeExtents:
    def test_page_alignment(self):
        plan = merge_extents(np.array([100]), np.array([50]))
        assert plan.offsets.tolist() == [0]
        assert plan.sizes.tolist() == [4096]

    def test_adjacent_pages_merge(self):
        plan = merge_extents(np.array([100, 5000]), np.array([50, 50]))
        assert plan.offsets.tolist() == [0]
        assert plan.sizes.tolist() == [8192]

    def test_same_page_deduplicates(self):
        plan = merge_extents(np.array([0, 100, 200]), np.array([10, 10, 10]))
        assert plan.n_requests == 1
        assert plan.total_bytes == 4096

    def test_disjoint_pages_stay_separate(self):
        plan = merge_extents(np.array([0, 100 * 4096]), np.array([10, 10]))
        assert plan.n_requests == 2

    def test_unsorted_input_handled(self):
        plan = merge_extents(np.array([100 * 4096, 0]), np.array([10, 10]))
        assert plan.n_requests == 2
        assert plan.offsets.tolist() == sorted(plan.offsets.tolist())

    def test_long_run_split_at_max_request(self):
        plan = merge_extents(
            np.array([0]), np.array([1 << 20]), max_request_bytes=128 * 1024
        )
        assert plan.sizes.max() <= 128 * 1024
        assert plan.total_bytes == 1 << 20

    def test_zero_length_skipped(self):
        plan = merge_extents(np.array([0]), np.array([0]))
        assert plan.n_requests == 0

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_extents(np.array([0]), np.array([1]), page_bytes=0)
        with pytest.raises(ConfigurationError):
            merge_extents(np.array([-5]), np.array([1]))

    def test_overlapping_extents_union(self):
        plan = merge_extents(np.array([0, 2048]), np.array([4096, 8192]))
        assert plan.total_bytes == 12288
        assert plan.n_requests == 1
