"""Tests for Kronecker shape statistics (the self-similarity argument)."""

import numpy as np
import pytest

from repro.analysis import graph_shape
from repro.csr import build_csr
from repro.errors import GraphFormatError
from repro.graph500 import generate_edges


@pytest.fixture(scope="module")
def shapes():
    out = {}
    for scale in (10, 12, 14):
        g = build_csr(generate_edges(scale, seed=3), n_vertices=1 << scale)
        out[scale] = graph_shape(g)
    return out


class TestGraphShape:
    def test_heavy_tail_present(self, shapes):
        for s in shapes.values():
            assert s.gini_degree > 0.6  # strongly skewed
            assert s.max_degree_ratio > 5
            assert s.top1pct_edge_share > 0.05

    def test_small_world(self, shapes):
        for s in shapes.values():
            assert s.effective_diameter <= 4
            assert s.giant_component_fraction > 0.95

    def test_isolated_fraction_regime(self, shapes):
        # Kronecker graphs at ef=16 keep a modest but growing isolated
        # share; the drift per two SCALEs is a few points, not a regime
        # change — the core of the small-scale-validity argument.
        vals = [s.isolated_fraction for s in shapes.values()]
        assert all(0.05 < v < 0.5 for v in vals)
        assert max(vals) - min(vals) < 0.2

    def test_shape_metrics_drift_slowly(self, shapes):
        ginis = [s.gini_degree for s in shapes.values()]
        assert max(ginis) - min(ginis) < 0.2
        d90 = {s.effective_diameter for s in shapes.values()}
        assert len(d90) <= 2  # diameter essentially scale-invariant

    def test_absolute_sizes_double(self, shapes):
        assert shapes[12].n_vertices == 4 * shapes[10].n_vertices

    def test_rectangular_rejected(self):
        from repro.csr.graph import CSRGraph

        rect = CSRGraph(
            np.array([0, 1], dtype=np.int64),
            np.array([3], dtype=np.int64),
            5,
        )
        with pytest.raises(GraphFormatError):
            graph_shape(rect)

    def test_empty_graph(self):
        g = build_csr(np.zeros((2, 0), dtype=np.int64), n_vertices=8)
        s = graph_shape(g)
        assert s.isolated_fraction == 1.0
        assert s.giant_component_fraction == 0.0
        assert s.effective_diameter == 0

    def test_format(self, shapes):
        text = shapes[10].format()
        assert "gini=" in text and "d90=" in text

    def test_path_graph_diameter(self):
        # Deterministic sanity: a path has d90 near its length.
        edges = np.stack([np.arange(9), np.arange(1, 10)]).astype(np.int64)
        g = build_csr(edges, n_vertices=10)
        s = graph_shape(g)
        assert s.effective_diameter >= 4
        assert s.gini_degree < 0.2  # near-uniform degrees
