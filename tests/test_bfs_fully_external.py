"""Tests for the fully-external (Pearce-style) baseline."""

import numpy as np
import pytest

from repro.bfs import AlphaBetaPolicy, FullyExternalBFS, HybridBFS
from repro.errors import ConfigurationError
from repro.graph500.validate import validate_bfs_tree
from repro.perfmodel.cost import DramCostModel
from repro.semiext import NVMStore, PCIE_FLASH


@pytest.fixture()
def engine(csr, store):
    return FullyExternalBFS.offload(csr, store, cost_model=DramCostModel())


class TestFullyExternal:
    def test_tree_validates(self, engine, edges, a_root):
        res = engine.run(a_root)
        assert validate_bfs_tree(edges, res.parent, a_root).ok

    def test_same_tree_as_reference_reachability(
        self, engine, forward, backward, a_root
    ):
        hybrid = HybridBFS(forward, backward, AlphaBetaPolicy(50, 500))
        h = hybrid.run(a_root)
        f = engine.run(a_root)
        assert np.array_equal(f.parent >= 0, h.parent >= 0)

    def test_every_scan_hits_nvm(self, engine, a_root):
        res = engine.run(a_root)
        for t in res.traces:
            assert t.edges_scanned_nvm == t.edges_scanned
            if t.edges_scanned:
                assert t.nvm_requests > 0

    def test_slower_than_semi_external(
        self, csr, forward, backward, a_root, tmp_path
    ):
        from repro.bfs import SemiExternalBFS

        store_full = NVMStore(tmp_path / "full", PCIE_FLASH)
        full = FullyExternalBFS.offload(
            csr, store_full, cost_model=DramCostModel()
        ).run(a_root)
        store_semi = NVMStore(tmp_path / "semi", PCIE_FLASH)
        semi = SemiExternalBFS.offload(
            forward, backward,
            AlphaBetaPolicy(csr.n_rows, csr.n_rows), store_semi,
            cost_model=DramCostModel(),
        ).run(a_root)
        assert full.modeled_time_s > semi.modeled_time_s

    def test_deterministic(self, csr, tmp_path, a_root):
        runs = []
        for tag in ("a", "b"):
            store = NVMStore(tmp_path / tag, PCIE_FLASH)
            eng = FullyExternalBFS.offload(
                csr, store, cost_model=DramCostModel()
            )
            runs.append(eng.run(a_root))
        assert np.array_equal(runs[0].parent, runs[1].parent)
        assert runs[0].modeled_time_s == runs[1].modeled_time_s

    def test_bad_root(self, engine):
        with pytest.raises(ConfigurationError):
            engine.run(-5)

    def test_max_levels(self, engine, a_root):
        res = engine.run(a_root, max_levels=1)
        assert res.n_levels == 1

    def test_rectangular_rejected(self, forward, store):
        from repro.csr.io import offload_csr

        shard = forward.shards[0]  # square actually; make a fake rect
        from repro.csr.graph import CSRGraph

        rect = CSRGraph(
            indptr=np.array([0, 1], dtype=np.int64),
            adj=np.array([2], dtype=np.int64),
            n_cols=5,
        )
        ext = offload_csr(rect, store, "rect")
        with pytest.raises(ConfigurationError):
            FullyExternalBFS(ext, store)


class TestDeviceCatalog:
    def test_catalog_ordering(self):
        from repro.semiext.device import DEVICE_CATALOG

        iops = [d.max_read_iops for d in DEVICE_CATALOG]
        assert all(a <= b for a, b in zip(iops, iops[1:]))

    def test_catalog_service_times(self):
        from repro.semiext.device import DEVICE_CATALOG, SATA_HDD

        # The HDD's 4 KB service time is dominated by seek latency.
        assert SATA_HDD.service_time_s(4096) > 5e-3
        for d in DEVICE_CATALOG:
            assert d.service_time_s(4096) > 0
