"""Perf-harness tests: artifact schema round-trip, delta semantics,
the gate's exit codes (a doctored regression must fail it), and
freshness of the committed baselines."""

from __future__ import annotations

import json
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.perf import (
    SCHEMA_VERSION,
    BenchArtifact,
    BenchMetric,
    artifact_path,
    compare,
    get_scenario,
    load,
    scenario_names,
)

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import perf_gate  # noqa: E402

BASELINE_DIR = ROOT / "benchmarks" / "baselines"


def _artifact(**metrics) -> BenchArtifact:
    return BenchArtifact(
        name="toy",
        description="synthetic",
        seed=7,
        params={"scale": 10},
        simulated_seconds=1.5,
        metrics=metrics,
    )


class TestArtifactRoundTrip:
    def test_write_load_round_trips(self, tmp_path):
        art = _artifact(
            teps=BenchMetric(1e9, "TEPS", higher_is_better=True),
            bytes_per_query=BenchMetric(
                4096.0, "B", higher_is_better=False, tolerance=0.02
            ),
        )
        path = art.write(tmp_path)
        assert path == artifact_path(tmp_path, "toy")
        assert path.name == "BENCH_toy.json"
        back = load(path)
        assert back == art

    def test_json_is_canonical_and_versioned(self, tmp_path):
        art = _artifact(teps=BenchMetric(1e9, "TEPS", True))
        text = art.write(tmp_path).read_text()
        assert text == art.to_json()
        payload = json.loads(text)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert text.endswith("\n")

    def test_unknown_schema_version_refused(self, tmp_path):
        path = artifact_path(tmp_path, "toy")
        payload = json.loads(_artifact().to_json())
        payload["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="schema_version"):
            load(path)

    def test_unreadable_artifact_refused(self, tmp_path):
        bad = tmp_path / "BENCH_x.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="cannot read"):
            load(bad)


class TestCompare:
    def test_within_tolerance_is_ok(self):
        base = _artifact(teps=BenchMetric(100.0, "TEPS", True, 0.05))
        cand = _artifact(teps=BenchMetric(97.0, "TEPS", True, 0.05))
        (d,) = compare(base, cand)
        assert d.status == "ok"
        assert not d.is_regression

    def test_drop_beyond_tolerance_regresses(self):
        base = _artifact(teps=BenchMetric(100.0, "TEPS", True, 0.05))
        cand = _artifact(teps=BenchMetric(90.0, "TEPS", True, 0.05))
        (d,) = compare(base, cand)
        assert d.status == "regression"
        assert d.rel_change == pytest.approx(-0.10)

    def test_lower_is_better_direction(self):
        base = _artifact(bpq=BenchMetric(100.0, "B", False, 0.05))
        up = _artifact(bpq=BenchMetric(110.0, "B", False, 0.05))
        down = _artifact(bpq=BenchMetric(90.0, "B", False, 0.05))
        assert compare(base, up)[0].status == "regression"
        assert compare(base, down)[0].status == "improved"

    def test_candidate_cannot_loosen_its_gate(self):
        base = _artifact(teps=BenchMetric(100.0, "TEPS", True, 0.05))
        cand = _artifact(teps=BenchMetric(90.0, "TEPS", True, 0.50))
        (d,) = compare(base, cand)
        assert d.status == "regression"
        assert d.tolerance == 0.05

    def test_missing_metric_fails(self):
        base = _artifact(teps=BenchMetric(100.0, "TEPS", True))
        (d,) = compare(base, _artifact())
        assert d.status == "missing"
        assert d.is_regression

    def test_extra_candidate_metric_ignored(self):
        base = _artifact(teps=BenchMetric(100.0, "TEPS", True))
        cand = _artifact(teps=BenchMetric(100.0, "TEPS", True),
                         extra=BenchMetric(1.0, "x", True))
        assert [d.name for d in compare(base, cand)] == ["teps"]

    def test_scenario_name_mismatch_rejected(self):
        base = _artifact()
        with pytest.raises(ConfigurationError, match="different scenarios"):
            compare(base, replace(base, name="other"))


class TestGateExitCodes:
    """tools/perf_gate.py end to end, against real committed baselines."""

    def test_identical_candidate_passes(self, tmp_path, capsys):
        base = _artifact(teps=BenchMetric(100.0, "TEPS", True))
        base.write(tmp_path / "base")
        base.write(tmp_path / "cand")
        code = perf_gate.main([
            "--baseline", str(tmp_path / "base"),
            "--candidate", str(tmp_path / "cand"),
        ])
        assert code == 0
        assert "perf gate: PASS" in capsys.readouterr().out

    def test_doctored_regression_exits_nonzero(self, tmp_path, capsys):
        # The acceptance-criteria pin: feed the gate a candidate whose
        # TEPS was doctored 20% down and require a non-zero exit.
        baseline = load(BASELINE_DIR / "BENCH_fig11_degradation.json")
        baseline.write(tmp_path / "base")
        doctored = replace(baseline, metrics={
            k: replace(m, value=m.value * (0.8 if m.higher_is_better
                                           else 1.2))
            for k, m in baseline.metrics.items()
        })
        doctored.write(tmp_path / "cand")
        code = perf_gate.main([
            "--baseline", str(tmp_path / "base"),
            "--candidate", str(tmp_path / "cand"),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "perf gate: FAIL" in out

    def test_missing_candidate_artifact_fails(self, tmp_path, capsys):
        _artifact(teps=BenchMetric(1.0, "TEPS", True)).write(
            tmp_path / "base"
        )
        (tmp_path / "cand").mkdir()
        code = perf_gate.main([
            "--baseline", str(tmp_path / "base"),
            "--candidate", str(tmp_path / "cand"),
        ])
        assert code == 1
        assert "missing" in capsys.readouterr().out

    def test_empty_baseline_dir_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "base").mkdir()
        code = perf_gate.main([
            "--baseline", str(tmp_path / "base"),
            "--candidate", str(tmp_path),
        ])
        assert code == 2
        assert "no BENCH_" in capsys.readouterr().err


class TestCommittedBaselines:
    """The committed trajectory must stay loadable and reproducible."""

    def test_at_least_two_baselines_committed(self):
        names = sorted(p.name for p in BASELINE_DIR.glob("BENCH_*.json"))
        assert len(names) >= 2
        assert "BENCH_fig11_degradation.json" in names
        assert "BENCH_serve_batching.json" in names

    def test_baselines_load_under_current_schema(self):
        for path in BASELINE_DIR.glob("BENCH_*.json"):
            art = load(path)
            assert art.schema_version == SCHEMA_VERSION
            assert art.metrics, path.name
            assert path.read_text() == art.to_json()

    def test_every_baseline_has_a_registered_scenario(self):
        committed = {
            load(p).name for p in BASELINE_DIR.glob("BENCH_*.json")
        }
        assert committed == set(scenario_names())

    def test_serve_batching_baseline_is_fresh(self, tmp_path):
        """Re-running the scenario at the committed seed reproduces the
        committed bytes — a stale baseline fails here, not in CI."""
        scenario = get_scenario("serve_batching")
        baseline = load(BASELINE_DIR / "BENCH_serve_batching.json")
        art = scenario.run(seed=baseline.seed, workdir=tmp_path)
        assert art.to_json() == baseline.to_json()
