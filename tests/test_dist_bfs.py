"""Coordinator-level distributed BFS tests: the partition-count
invariance contract (trees byte-identical to ``SemiExternalBFS``),
crash restart, device-failure degradation, and clock reconciliation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bfs import AlphaBetaPolicy, Direction, SemiExternalBFS
from repro.csr import BackwardGraph, ForwardGraph, build_csr
from repro.dist import (
    ContiguousPartitioner,
    DegreeBalancedPartitioner,
    DistributedBFS,
)
from repro.errors import ConfigurationError
from repro.graph500 import EdgeList, generate_edges, validate_bfs_tree
from repro.numa import NumaTopology
from repro.semiext import NVMStore, PCIE_FLASH
from repro.semiext.faults import FaultPlan

SCALE = 8
ALPHA = BETA = 50.0


def _graph(seed):
    n = 1 << SCALE
    edges = EdgeList(generate_edges(SCALE, seed=seed), n)
    csr = build_csr(edges)
    root = int(np.flatnonzero(csr.degrees() > 0)[0])
    return edges, csr, root


def _policy():
    return AlphaBetaPolicy(alpha=ALPHA, beta=BETA)


def _oracle(csr, root, tmp_path):
    topology = NumaTopology(n_nodes=2, cores_per_node=4)
    engine = SemiExternalBFS.offload(
        forward=ForwardGraph(csr, topology),
        backward=BackwardGraph(csr, topology),
        policy=_policy(),
        store=NVMStore(tmp_path / "oracle", PCIE_FLASH),
    )
    return engine.run(root)


class TestPartitionCountInvariance:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_trees_identical_at_every_partition_count(self, tmp_path, seed):
        edges, csr, root = _graph(seed)
        expected = _oracle(csr, root, tmp_path)
        for n_parts in (1, 2, 4, 7):
            engine = DistributedBFS.build(
                csr, ContiguousPartitioner(n_parts), _policy(),
                tmp_path / f"p{n_parts}", PCIE_FLASH,
            )
            result = engine.run(root)
            engine.close()
            assert result.parent.tobytes() == expected.parent.tobytes(), (
                seed, n_parts
            )
            assert validate_bfs_tree(edges, root, result.parent)

    def test_degree_balanced_partitioner_same_tree(self, tmp_path):
        _, csr, root = _graph(seed=3)
        expected = _oracle(csr, root, tmp_path)
        engine = DistributedBFS.build(
            csr, DegreeBalancedPartitioner(4, csr.degrees()), _policy(),
            tmp_path / "deg", PCIE_FLASH,
        )
        result = engine.run(root)
        engine.close()
        assert np.array_equal(result.parent, expected.parent)

    def test_repeated_runs_identical(self, tmp_path):
        # Workers are long-lived across queries; their per-run search
        # state must not leak from one run into the next.
        _, csr, root = _graph(seed=11)
        engine = DistributedBFS.build(
            csr, ContiguousPartitioner(3), _policy(),
            tmp_path / "rerun", PCIE_FLASH,
        )
        first = engine.run(root)
        second = engine.run(root)
        other_root = int(np.flatnonzero(csr.degrees() > 0)[1])
        engine.run(other_root)
        third = engine.run(root)
        engine.close()
        assert np.array_equal(first.parent, second.parent)
        assert np.array_equal(first.parent, third.parent)


class TestFailureHandling:
    def test_single_worker_crash_restarts_only_that_worker(self, tmp_path):
        _, csr, root = _graph(seed=3)
        expected = _oracle(csr, root, tmp_path)
        plans = [None, FaultPlan(seed=7, crash_at_level=1), None, None]
        engine = DistributedBFS.build(
            csr, ContiguousPartitioner(4), _policy(),
            tmp_path / "crashy", PCIE_FLASH, fault_plans=plans,
        )
        result = engine.run(root)
        assert engine.restarts == 1
        assert engine.workers[1].generation == 1
        assert all(
            engine.workers[k].generation == 0 for k in (0, 2, 3)
        )
        assert np.array_equal(result.parent, expected.parent)
        engine.close()

    def test_device_failure_degrades_to_bottom_up(self, tmp_path):
        _, csr, root = _graph(seed=3)
        expected = _oracle(csr, root, tmp_path)
        plans = [None, FaultPlan(seed=7, fail_at_s=0.0), None, None]
        engine = DistributedBFS.build(
            csr, ContiguousPartitioner(4), _policy(),
            tmp_path / "dead", PCIE_FLASH, fault_plans=plans,
        )
        result = engine.run(root)
        assert engine.degraded_mode
        # The failed device forces every level bottom-up; the backward
        # rows are DRAM-resident on all workers, so the tree survives.
        assert all(
            t.direction is Direction.BOTTOM_UP for t in result.traces
        )
        assert np.array_equal(result.parent, expected.parent)
        engine.close()

    def test_fault_plan_count_must_match_partitions(self, tmp_path):
        _, csr, _ = _graph(seed=3)
        with pytest.raises(ConfigurationError):
            DistributedBFS.build(
                csr, ContiguousPartitioner(4), _policy(),
                tmp_path / "bad", PCIE_FLASH,
                fault_plans=[None, None],
            )

    def test_unknown_backend_rejected(self, tmp_path):
        _, csr, _ = _graph(seed=3)
        with pytest.raises(ConfigurationError):
            DistributedBFS.build(
                csr, ContiguousPartitioner(2), _policy(),
                tmp_path / "bad", PCIE_FLASH, backend="thread",
            )


class TestClockReconciliation:
    def test_level_time_is_worker_max_plus_merge(self, tmp_path):
        from repro.core import DRAM_PCIE_FLASH

        _, csr, root = _graph(seed=3)
        engine = DistributedBFS.build(
            csr, ContiguousPartitioner(4), _policy(),
            tmp_path / "clock", DRAM_PCIE_FLASH.device,
            cost_model=DRAM_PCIE_FLASH.cost_model,
        )
        result = engine.run(root)
        loads = engine.level_imbalance
        assert len(loads) == len(result.traces)
        for load, trace in zip(loads, result.traces):
            assert load.level == trace.level
            assert load.worker_max_s >= load.worker_mean_s > 0.0
            merge_s = engine.merge_cost_per_vertex_s * (
                trace.frontier_size + trace.next_size
            )
            assert trace.modeled_time_s == pytest.approx(
                load.worker_max_s + merge_s
            )
        # BSP semantics: the run's modeled time is the sum of the
        # per-level maxima plus merge costs, never the per-worker sum.
        assert result.modeled_time_s == pytest.approx(
            sum(t.modeled_time_s for t in result.traces)
        )
        engine.close()

    def test_level_imbalance_resets_per_run(self, tmp_path):
        from repro.core import DRAM_PCIE_FLASH

        _, csr, root = _graph(seed=3)
        engine = DistributedBFS.build(
            csr, ContiguousPartitioner(2), _policy(),
            tmp_path / "reset", DRAM_PCIE_FLASH.device,
            cost_model=DRAM_PCIE_FLASH.cost_model,
        )
        first = engine.run(root)
        n_levels = len(first.traces)
        assert len(engine.level_imbalance) == n_levels
        second = engine.run(root)
        assert len(engine.level_imbalance) == len(second.traces) == n_levels
        engine.close()

    def test_worker_count_must_match_partitioner(self):
        with pytest.raises(ConfigurationError):
            DistributedBFS(
                n_vertices=8,
                partitioner=ContiguousPartitioner(2),
                policy=_policy(),
                workers=[],
                degrees=np.zeros(8, dtype=np.int64),
            )
