"""Property tests for the delta overlay (`repro.graphmut.delta`).

The overlay's contract is that every *effective* graph it describes is a
canonical CSR — sorted, deduped, symmetric — indistinguishable from one
built fresh from the post-mutation edge list, with exact degree
accounting at every step.  Hypothesis drives random base graphs through
random batch sequences and checks the invariants the rest of the tree
(scanners, engines, `split_prefix` tiering) silently relies on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.csr import build_csr
from repro.errors import GraphFormatError
from repro.graph500 import generate_edges
from repro.graph500.edgelist import EdgeList
from repro.graphmut import (
    DeltaOverlay,
    MutationBatch,
    draw_batch,
    generate_stream,
    merge_batches,
)
from repro.semiext.cache import split_prefix

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_batches(draw, max_scale=7, max_steps=4):
    """A seeded Kronecker base graph plus a batch sequence against it."""
    seed = draw(st.integers(0, 2**20))
    scale = draw(st.integers(4, max_scale))
    edge_factor = draw(st.integers(2, 8))
    n_steps = draw(st.integers(1, max_steps))
    sizes = [
        (draw(st.integers(0, 6)), draw(st.integers(0, 6)))
        for _ in range(n_steps)
    ]
    endpoints = generate_edges(scale=scale, edge_factor=edge_factor,
                               seed=seed)
    csr = build_csr(EdgeList(endpoints, 1 << scale))
    rng = np.random.default_rng(seed)
    overlay = DeltaOverlay(csr)
    batches = []
    for n_ins, n_del in sizes:
        batch = draw_batch(overlay.to_csr(), rng, n_ins, n_del)
        batches.append(batch)
        overlay.apply(batch)
    return csr, batches


def _assert_canonical(csr) -> None:
    """Sorted, deduped, loop-free, symmetric — the CSR invariants."""
    for r in range(csr.n_rows):
        row = csr.neighbors(r)
        assert np.all(np.diff(row) > 0), f"row {r} unsorted or duped"
        assert not np.any(row == r), f"row {r} has a self-loop"
    src = np.repeat(np.arange(csr.n_rows, dtype=np.int64), csr.degrees())
    fwd = set(zip(src.tolist(), csr.adj.tolist()))
    assert fwd == {(b, a) for a, b in fwd}, "adjacency not symmetric"


class TestCanonicalForm:
    @given(gb=graph_and_batches())
    @settings(**SETTINGS)
    def test_effective_csr_stays_canonical(self, gb):
        csr, batches = gb
        overlay = DeltaOverlay(csr)
        for batch in batches:
            overlay.apply(batch)
            eff = overlay.to_csr()
            _assert_canonical(eff)
            # Per-row reads agree with the materialized rows.
            for r in overlay.dirty_rows().tolist():
                assert np.array_equal(overlay.row(r), eff.neighbors(r))

    @given(gb=graph_and_batches())
    @settings(**SETTINGS)
    def test_materialization_equals_rebuild_from_edge_list(self, gb):
        csr, batches = gb
        overlay = DeltaOverlay(csr)
        for batch in batches:
            overlay.apply(batch)
        eff = overlay.to_csr()
        src = np.repeat(np.arange(eff.n_rows, dtype=np.int64),
                        eff.degrees())
        keep = src < eff.adj
        rebuilt = build_csr(EdgeList(
            np.stack((src[keep], eff.adj[keep])), eff.n_rows
        ))
        assert np.array_equal(eff.indptr, rebuilt.indptr)
        assert np.array_equal(eff.adj, rebuilt.adj)


class TestDegreeAccounting:
    @given(gb=graph_and_batches())
    @settings(**SETTINGS)
    def test_degrees_exact_at_every_version(self, gb):
        csr, batches = gb
        overlay = DeltaOverlay(csr)
        prev_edges = int(csr.degrees().sum()) // 2
        for batch in batches:
            eff_batch = overlay.apply(batch)
            want = overlay.to_csr().degrees()
            got = overlay.degrees()
            assert np.array_equal(got, want)
            for r in overlay.dirty_rows().tolist():
                assert overlay.degree(r) == int(want[r])
            # The effective batch accounts for the edge-count movement.
            edges = int(want.sum()) // 2
            assert edges - prev_edges == (
                len(eff_batch.inserts) - len(eff_batch.deletes)
            )
            prev_edges = edges

    @given(gb=graph_and_batches(max_steps=2))
    @settings(**SETTINGS)
    def test_overlay_entry_count_matches_dram_model(self, gb):
        csr, batches = gb
        overlay = DeltaOverlay(csr)
        for batch in batches:
            overlay.apply(batch)
        assert overlay.overlay_nbytes == 8 * overlay.n_overlay_entries
        dirty = set(overlay.dirty_rows().tolist())
        assert dirty == set(overlay._ins) | set(overlay._del)


class TestRoundTrips:
    @given(gb=graph_and_batches(max_steps=1))
    @settings(**SETTINGS)
    def test_apply_then_inverse_restores_base_bitwise(self, gb):
        csr, batches = gb
        overlay = DeltaOverlay(csr)
        eff = overlay.apply(batches[0])
        overlay.apply(eff.inverse())
        assert overlay.is_empty
        back = overlay.to_csr()
        assert np.array_equal(back.indptr, csr.indptr)
        assert np.array_equal(back.adj, csr.adj)

    @given(gb=graph_and_batches(max_steps=3))
    @settings(**SETTINGS)
    def test_compaction_commutes_with_application(self, gb):
        """base → all batches  ==  base → some batches → compact → rest."""
        csr, batches = gb
        straight = DeltaOverlay(csr)
        for batch in batches:
            straight.apply(batch)
        want = straight.to_csr()
        for cut in range(len(batches) + 1):
            overlay = DeltaOverlay(csr)
            for batch in batches[:cut]:
                overlay.apply(batch)
            compacted = DeltaOverlay(overlay.to_csr())  # compaction point
            for batch in batches[cut:]:
                compacted.apply(batch)
            got = compacted.to_csr()
            assert np.array_equal(got.indptr, want.indptr), f"cut={cut}"
            assert np.array_equal(got.adj, want.adj), f"cut={cut}"

    @given(gb=graph_and_batches(max_steps=1))
    @settings(**SETTINGS)
    def test_apply_is_idempotent_on_reapplication(self, gb):
        csr, batches = gb
        overlay = DeltaOverlay(csr)
        overlay.apply(batches[0])
        want = overlay.to_csr()
        again = overlay.apply(batches[0])  # everything is now a no-op
        assert again.n_mutations == 0
        got = overlay.to_csr()
        assert np.array_equal(got.indptr, want.indptr)
        assert np.array_equal(got.adj, want.adj)


class TestSplitPrefixInteraction:
    """Tiered-k offload (`split_prefix`) over mutated rows.

    The tiered store keeps the first *k* edges of each row in DRAM; a
    mutation can push a row's degree across *k* in either direction, and
    the split of the compacted CSR must stay exact.
    """

    @given(gb=graph_and_batches(max_steps=2), k=st.integers(0, 12))
    @settings(**SETTINGS)
    def test_split_prefix_exact_after_mutation(self, gb, k):
        csr, batches = gb
        overlay = DeltaOverlay(csr)
        for batch in batches:
            overlay.apply(batch)
        eff = overlay.to_csr()
        prefix, suffix = split_prefix(eff, k)
        deg = eff.degrees()
        assert np.array_equal(prefix.degrees(), np.minimum(deg, k))
        assert np.array_equal(suffix.degrees(),
                              deg - np.minimum(deg, k))
        for r in overlay.dirty_rows().tolist():
            row = eff.neighbors(r)
            assert np.array_equal(prefix.neighbors(r), row[:k])
            assert np.array_equal(suffix.neighbors(r), row[k:])

    def test_degree_crossing_k_moves_edges_between_tiers(self):
        # A 5-path: vertex 2 has degree 2; k=2 keeps it fully in DRAM.
        pairs = np.array([(0, 1), (1, 2), (2, 3), (3, 4)],
                         dtype=np.int64).T
        csr = build_csr(EdgeList(pairs, 5))
        overlay = DeltaOverlay(csr)
        k = 2
        prefix, suffix = split_prefix(overlay.to_csr(), k)
        assert suffix.degree(2) == 0
        # Inserting (0, 2) pushes row 2 to degree 3: one edge spills.
        overlay.apply(MutationBatch.make([(0, 2)], [], 5))
        prefix, suffix = split_prefix(overlay.to_csr(), k)
        assert prefix.degree(2) == 2 and suffix.degree(2) == 1
        assert np.array_equal(prefix.neighbors(2), [0, 1])
        assert np.array_equal(suffix.neighbors(2), [3])
        # Deleting (1, 2) brings it back under k: nothing spills.
        overlay.apply(MutationBatch.make([], [(1, 2)], 5))
        prefix, suffix = split_prefix(overlay.to_csr(), k)
        assert prefix.degree(2) == 2 and suffix.degree(2) == 0


class TestStreamGrammar:
    """The batch grammar's normalization, serialization and merging."""

    def test_normalize_skips_self_loops_and_orders_endpoints(self):
        batch = MutationBatch.make([(1, 1), (2, 0)], [], 4)
        assert batch.inserts == ((0, 2),)

    def test_batch_round_trips_through_dict(self):
        batch = MutationBatch.make([(0, 1)], [(2, 3)], 4)
        assert MutationBatch.from_dict(batch.to_dict()) == batch

    def test_negative_sizes_rejected(self):
        csr = build_csr(EdgeList(np.array([[0], [1]], dtype=np.int64), 2))
        rng = np.random.default_rng(0)
        with pytest.raises(GraphFormatError):
            draw_batch(csr, rng, -1, 0)
        with pytest.raises(GraphFormatError):
            generate_stream(csr, -1, 1, 1, 1)

    def test_merge_cancels_insert_delete_pairs_both_ways(self):
        ins = MutationBatch(inserts=((0, 1),))
        dele = MutationBatch(deletes=((0, 1),))
        assert merge_batches([ins, dele]).n_mutations == 0
        assert merge_batches([dele, ins]).n_mutations == 0

    def test_generate_stream_is_deterministic_and_effective(self):
        pairs = np.array([(0, 1), (1, 2), (2, 3), (3, 4)],
                         dtype=np.int64).T
        csr = build_csr(EdgeList(pairs, 5))
        a = generate_stream(csr, 3, 1, 1, 42)
        b = generate_stream(csr, 3, 1, 1, 42)
        assert a == b
        overlay = DeltaOverlay(csr)
        for batch in a:
            eff = overlay.apply(batch)
            assert eff.n_mutations == batch.n_mutations  # no silent no-ops


class TestInvariantEnforcement:
    def test_overlay_rejects_rectangular_base(self):
        from repro.csr.graph import CSRGraph

        base = CSRGraph(indptr=np.array([0, 1], dtype=np.int64),
                        adj=np.array([3], dtype=np.int64), n_cols=5)
        with pytest.raises(GraphFormatError):
            DeltaOverlay(base)

    def test_contradictory_batch_rejected(self):
        with pytest.raises(GraphFormatError):
            MutationBatch(inserts=((0, 1),), deletes=((0, 1),))

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphFormatError):
            MutationBatch.make([(0, 9)], [], 4)
