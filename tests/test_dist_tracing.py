"""Distributed tracing contracts: worker-side span collection on both
backends, byte-identical same-seed exports across process boundaries,
dead-generation span retention through crash restart, flow links in the
Chrome export, per-query trace propagation, and the profile-vs-metrics
reconciliation the acceptance criterion pins."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bfs import AlphaBetaPolicy
from repro.csr import build_csr
from repro.dist import ContiguousPartitioner, DistributedBFS
from repro.graph500 import EdgeList, generate_edges
from repro.obs import Observability, lint_session, self_time_table
from repro.obs.profile import track_of
from repro.semiext import PCIE_FLASH
from repro.semiext.faults import FaultPlan

SCALE = 8
ALPHA = BETA = 50.0


def _graph(seed=3):
    n = 1 << SCALE
    edges = EdgeList(generate_edges(SCALE, seed=seed), n)
    csr = build_csr(edges)
    return csr, int(np.flatnonzero(csr.degrees() > 0)[0])


def _run(tmp_path, subdir, backend, n_parts=2, fault_plans=None,
         export=False):
    csr, root = _graph()
    obs = Observability()
    engine = DistributedBFS.build(
        csr, ContiguousPartitioner(n_parts),
        AlphaBetaPolicy(alpha=ALPHA, beta=BETA),
        tmp_path / subdir, PCIE_FLASH, obs=obs, backend=backend,
        fault_plans=fault_plans,
    )
    try:
        engine.run(root)
    finally:
        engine.close()
    if export:
        paths = obs.export(tmp_path / f"{subdir}-obs")
        return obs, {k: p.read_bytes() for k, p in paths.items()}
    return obs, None


class TestWorkerSpanCollection:
    @pytest.mark.parametrize("backend", ["local", "process"])
    def test_every_partition_ships_scan_and_charge_spans(
        self, tmp_path, backend
    ):
        obs, _ = _run(tmp_path, backend, backend, n_parts=4)
        per_track: dict[str, set] = {}
        for span in obs.tracer.spans:
            track = span.attrs.get("track")
            if track:
                per_track.setdefault(track, set()).add(span.name)
        assert sorted(per_track) == [
            "worker0", "worker1", "worker2", "worker3"
        ]
        for track, names in per_track.items():
            assert "dist.worker_scan" in names, track
            assert "nvm.charge" in names, track

    @pytest.mark.parametrize("backend", ["local", "process"])
    def test_session_passes_schema_lint(self, tmp_path, backend):
        obs, _ = _run(tmp_path, backend, backend)
        assert lint_session(obs) == []

    def test_worker_spans_link_to_coordinator_steps(self, tmp_path):
        obs, _ = _run(tmp_path, "flows", "process")
        steps = {s.span_id for s in obs.tracer.spans
                 if s.name == "dist.step"}
        workers = [s for s in obs.tracer.spans if s.name == "dist.worker"]
        assert workers
        for span in workers:
            assert span.attrs["flow_parent"] in steps

    def test_worker_spans_carry_the_run_trace_id(self, tmp_path):
        obs, _ = _run(tmp_path, "tid", "process")
        run_span, = obs.tracer.find("dist.run")
        trace_id = run_span.attrs["trace_id"]
        for span in obs.tracer.spans:
            if span.attrs.get("track"):
                assert span.attrs["trace_id"] == trace_id

    def test_local_and_process_backends_export_identically(self, tmp_path):
        _, local = _run(tmp_path, "loc", "local", export=True)
        _, proc = _run(tmp_path, "proc", "process", export=True)
        assert local.keys() == proc.keys()
        for kind in local:
            assert local[kind] == proc[kind], kind


class TestCrossProcessDeterminism:
    @pytest.mark.parametrize("n_parts", [1, 2, 4])
    def test_same_seed_exports_byte_identical(self, tmp_path, n_parts):
        _, a = _run(tmp_path, f"a{n_parts}", "process", n_parts=n_parts,
                    export=True)
        _, b = _run(tmp_path, f"b{n_parts}", "process", n_parts=n_parts,
                    export=True)
        for kind in a:
            assert a[kind] == b[kind], (kind, n_parts)

    @pytest.mark.parametrize("backend", ["local", "process"])
    def test_crash_restart_exports_deterministically(
        self, tmp_path, backend
    ):
        plans = [None, FaultPlan(seed=7, crash_at_level=1)]
        _, a = _run(tmp_path, f"ca-{backend}", backend,
                    fault_plans=plans, export=True)
        _, b = _run(tmp_path, f"cb-{backend}", backend,
                    fault_plans=plans, export=True)
        for kind in a:
            assert a[kind] == b[kind], kind


class TestCrashGenerations:
    @pytest.mark.parametrize("backend", ["local", "process"])
    def test_dead_generation_spans_retained(self, tmp_path, backend):
        plans = [None, FaultPlan(seed=7, crash_at_level=1)]
        obs, _ = _run(tmp_path, f"gen-{backend}", backend,
                      fault_plans=plans)
        w1 = [s for s in obs.tracer.spans
              if s.attrs.get("track") == "worker1"]
        generations = {s.attrs["generation"] for s in w1}
        # The crashed generation's spans survive the restart, and the
        # restarted worker's spans are labeled with the new generation.
        assert generations == {0, 1}
        crashed = [s for s in w1 if s.attrs.get("crashed")]
        assert all(s.attrs["generation"] == 0 for s in crashed)
        # The healthy worker never restarts.
        w0_gens = {s.attrs["generation"] for s in obs.tracer.spans
                   if s.attrs.get("track") == "worker0"}
        assert w0_gens == {0}


class TestChromeExport:
    def test_worker_lanes_and_flow_events(self, tmp_path):
        obs, exports = _run(tmp_path, "chrome", "process", export=True)
        events = json.loads(exports["chrome_trace"])["traceEvents"]
        names_by_pid: dict[int, str] = {}
        for e in events:
            if e.get("ph") == "M" and e.get("name") == "process_name":
                names_by_pid[e["pid"]] = e["args"]["name"]
        assert names_by_pid[1].startswith("repro hybrid BFS")
        assert names_by_pid[2] == "partition worker 0"
        assert names_by_pid[3] == "partition worker 1"
        starts = [e for e in events if e.get("ph") == "s"]
        finishes = [e for e in events if e.get("ph") == "f"]
        assert len(starts) == len(finishes) > 0
        # Flow sources sit on the coordinator lane, destinations on a
        # worker lane, paired by id.
        assert {e["pid"] for e in starts} == {1}
        assert {e["pid"] for e in finishes} <= {2, 3}
        assert sorted(e["id"] for e in starts) == sorted(
            e["id"] for e in finishes
        )

    def test_worker_span_events_land_on_worker_pids(self, tmp_path):
        obs, exports = _run(tmp_path, "lanes", "process", export=True)
        events = json.loads(exports["chrome_trace"])["traceEvents"]
        scan_pids = {
            e["pid"] for e in events
            if e.get("ph") == "X" and e.get("name") == "dist.worker_scan"
        }
        assert scan_pids == {2, 3}


class TestProfileReconciliation:
    def test_worker_self_time_matches_coordinator_accounting(
        self, tmp_path
    ):
        """The acceptance pin: per-worker collapsed self-time must sum
        to the coordinator's reconciled per-worker busy seconds."""
        obs, _ = _run(tmp_path, "prof", "process", n_parts=4)
        lane: dict[str, float] = {}
        for row in self_time_table(obs):
            lane[row.track] = lane.get(row.track, 0.0) + row.self_s
        accounted: dict[str, float] = {}
        for metric in obs.registry.metrics():
            if metric.name == "dist.worker_seconds_total":
                worker = dict(metric.labels)["worker"]
                accounted[f"worker{worker}"] = metric.value
        assert set(accounted) == {
            f"worker{k}" for k in range(4)
        }
        for track, seconds in accounted.items():
            assert lane[track] == pytest.approx(seconds, abs=1e-12), track

    def test_collapsed_output_is_deterministic(self, tmp_path):
        from repro.obs import write_collapsed

        obs_a, _ = _run(tmp_path, "colla", "process")
        obs_b, _ = _run(tmp_path, "collb", "process")
        a = write_collapsed(obs_a, tmp_path / "a.collapsed")
        b = write_collapsed(obs_b, tmp_path / "b.collapsed")
        assert a.read_bytes() == b.read_bytes()
        text = a.read_text()
        assert "worker0;dist.worker;dist.worker_scan" in text
