"""Smoke tests: every shipped example runs end to end at a tiny SCALE."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py", "10")
        assert "DRAM-only" in out
        assert "DRAM+PCIeFlash" in out
        assert "GTEPS" in out or "MTEPS" in out

    def test_social_network_analysis(self):
        out = _run("social_network_analysis.py", "10")
        assert "Degrees of separation" in out
        assert "NVM during analysis" in out

    def test_capacity_planning(self):
        out = _run("capacity_planning.py")
        assert "SCALE 28: DRAM-only DOES NOT FIT, semi-external OK" in out
        assert "CapacityError" in out

    def test_backward_offload(self):
        out = _run("backward_offload.py", "10")
        assert "DRAM bytes saved" in out
        assert "degree" in out

    def test_green_graph500(self):
        out = _run("green_graph500.py", "10")
        assert "4.35" in out
        assert "MTEPS/W" in out

    def test_device_study(self):
        out = _run("device_study.py", "10")
        assert "7.2k SATA HDD" in out
        assert "libaio aggregation" in out

    def test_streaming_construction(self):
        out = _run("streaming_construction.py", "10")
        assert "identical to the monolithic" in out

    def test_all_examples_have_docstrings_and_main(self):
        for script in EXAMPLES.glob("*.py"):
            text = script.read_text()
            assert text.lstrip().startswith(
                ("#!/usr/bin/env python\n\"\"\"", '#!/usr/bin/env python\n"""')
            ), f"{script.name} missing shebang/docstring"
            assert 'if __name__ == "__main__":' in text, script.name

    def test_at_least_three_examples(self):
        assert len(list(EXAMPLES.glob("*.py"))) >= 3
