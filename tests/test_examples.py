"""Smoke tests: every shipped example runs end to end at a tiny SCALE,
and the tutorial's code blocks print the output shapes the prose claims."""

import re
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = ROOT / "examples"


def _run(script: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py", "10")
        assert "DRAM-only" in out
        assert "DRAM+PCIeFlash" in out
        assert "GTEPS" in out or "MTEPS" in out

    def test_social_network_analysis(self):
        out = _run("social_network_analysis.py", "10")
        assert "Degrees of separation" in out
        assert "NVM during analysis" in out

    def test_capacity_planning(self):
        out = _run("capacity_planning.py")
        assert "SCALE 28: DRAM-only DOES NOT FIT, semi-external OK" in out
        assert "CapacityError" in out

    def test_backward_offload(self):
        out = _run("backward_offload.py", "10")
        assert "DRAM bytes saved" in out
        assert "degree" in out

    def test_green_graph500(self):
        out = _run("green_graph500.py", "10")
        assert "4.35" in out
        assert "MTEPS/W" in out

    def test_device_study(self):
        out = _run("device_study.py", "10")
        assert "7.2k SATA HDD" in out
        assert "libaio aggregation" in out

    def test_streaming_construction(self):
        out = _run("streaming_construction.py", "10")
        assert "identical to the monolithic" in out

    def test_all_examples_have_docstrings_and_main(self):
        for script in EXAMPLES.glob("*.py"):
            text = script.read_text()
            assert text.lstrip().startswith(
                ("#!/usr/bin/env python\n\"\"\"", '#!/usr/bin/env python\n"""')
            ), f"{script.name} missing shebang/docstring"
            assert 'if __name__ == "__main__":' in text, script.name

    def test_at_least_three_examples(self):
        assert len(list(EXAMPLES.glob("*.py"))) >= 3


class TestTutorial:
    """docs/tutorial.md must run AND print what its prose promises.

    The blocks execute in one shared namespace (tools/check_docs.py, the
    same harness the docs CI job uses); the assertions pin the *shape*
    of the printed output, so silent drift between the tutorial and the
    library fails here rather than in a reader's terminal."""

    @pytest.fixture(scope="class")
    def tutorial_output(self) -> str:
        sys.path.insert(0, str(ROOT / "tools"))
        try:
            from check_docs import exec_blocks
        finally:
            sys.path.pop(0)
        outputs, errors = exec_blocks(ROOT / "docs" / "tutorial.md")
        assert not errors, "\n".join(errors)
        return "\n".join(outputs)

    def test_step1_edge_list_repr(self, tutorial_output):
        assert "EdgeList(n_vertices=16384, n_edges=262144)" in tutorial_output

    def test_step2_locality_audit(self, tutorial_output):
        assert "netal_remote_fraction=0.0," in tutorial_output

    def test_step3_schedule_and_teps(self, tutorial_output):
        assert re.search(r"^[TB]{2,}$", tutorial_output, re.M), (
            "no direction-schedule line (e.g. 'TBBB') printed"
        )
        assert re.search(r"\d+\.\d+ GTEPS \(modeled\)", tutorial_output)

    def test_step4_iostat_line(self, tutorial_output):
        assert "avgrq-sz=" in tutorial_output
        assert "avgqu-sz=" in tutorial_output

    def test_step5_official_stats_block(self, tutorial_output):
        for field in ("num_bfs_runs:", "median_TEPS:", "harmonic_mean_TEPS:"):
            assert field in tutorial_output, field

    def test_step6_pipeline_placement(self, tutorial_output):
        assert "'forward': <Tier.NVM" in tutorial_output
        assert "'backward': <Tier.DRAM" in tutorial_output

    def test_step7_observability(self, tutorial_output):
        assert re.search(
            r"graph500\.iterations_total\s+\| counter \| 4", tutorial_output
        )
        assert "['events.jsonl', 'metrics.prom', 'trace.json']" in tutorial_output

    def test_step8_offload_sweep_lines(self, tutorial_output):
        ks = re.findall(
            r"^k=\s*(\d+): (\d+) B in DRAM, (\d+) fallthroughs$",
            tutorial_output, re.M,
        )
        assert [k for k, _, _ in ks] == ["2", "64"], ks
        (_, dram_lo, falls_lo), (_, dram_hi, falls_hi) = ks
        assert int(dram_lo) < int(dram_hi), "DRAM bytes must grow with k"
        assert int(falls_lo) >= int(falls_hi), "fallthroughs must not grow with k"

    def test_step8_offload_metrics_table(self, tutorial_output):
        assert re.search(
            r"offload\.fallthrough_rows_total\s+\| counter", tutorial_output
        )
        assert re.search(
            r"offload\.dram_resident_bytes\s+\| gauge", tutorial_output
        )
        assert re.search(
            r'offload\.scanned_edges_total\{tier="dram"\}\s+\| counter',
            tutorial_output,
        )
