"""Unit tests for the Graph500 benchmark driver."""

import numpy as np
import pytest

from repro.bfs import AlphaBetaPolicy, HybridBFS
from repro.errors import ConfigurationError, ValidationError
from repro.graph500.driver import (
    Graph500Driver,
    count_traversed_input_edges,
)
from repro.graph500.edgelist import EdgeList


@pytest.fixture()
def engine(forward, backward):
    return HybridBFS(forward, backward, AlphaBetaPolicy(50, 500))


class TestCountTraversedInputEdges:
    def test_counts_duplicates(self):
        el = EdgeList(
            np.array([[0, 0, 1], [1, 1, 2]], dtype=np.int64), 3
        )
        parent = np.array([0, 0, 1], dtype=np.int64)
        assert count_traversed_input_edges(el, parent) == 3

    def test_excludes_other_component(self):
        el = EdgeList(
            np.array([[0, 2], [1, 3]], dtype=np.int64), 4
        )
        parent = np.array([0, 0, -1, -1], dtype=np.int64)
        assert count_traversed_input_edges(el, parent) == 1

    def test_counts_self_loops_in_component(self):
        el = EdgeList(np.array([[0, 0], [1, 0]], dtype=np.int64), 2)
        parent = np.array([0, 0], dtype=np.int64)
        assert count_traversed_input_edges(el, parent) == 2


class TestDriver:
    def test_runs_all_roots(self, edges, engine):
        driver = Graph500Driver(edges, n_roots=5, seed=1)
        out = driver.run(engine)
        assert len(out.runs) == 5
        assert out.all_valid

    def test_roots_are_connected_vertices(self, edges):
        driver = Graph500Driver(edges, n_roots=8, seed=1)
        deg = edges.degrees()
        assert (deg[driver.roots] > 0).all()

    def test_stats_computed_both_clocks(self, edges, forward, backward):
        from repro.perfmodel.cost import DramCostModel

        engine = HybridBFS(
            forward, backward, AlphaBetaPolicy(50, 500), DramCostModel()
        )
        out = Graph500Driver(edges, n_roots=4, seed=1).run(engine)
        assert out.stats_modeled.median_teps > 0
        assert out.stats_wall.median_teps > 0
        assert out.median_teps_modeled == out.stats_modeled.median_teps

    def test_validation_catches_bad_engine(self, edges):
        class BrokenEngine:
            def run(self, root):
                from repro.bfs.metrics import BFSResult

                n = edges.n_vertices
                parent = np.full(n, -1, dtype=np.int64)
                parent[root] = root
                other = (root + 1) % n
                parent[other] = root  # likely not an edge
                return BFSResult(
                    parent=parent, root=root, traces=(),
                    traversed_edges=1, wall_time_s=1.0, modeled_time_s=1.0,
                )

        driver = Graph500Driver(edges, n_roots=1, seed=1)
        with pytest.raises(ValidationError):
            driver.run(BrokenEngine())

    def test_validation_skippable(self, edges, engine):
        driver = Graph500Driver(edges, n_roots=2, seed=1, validate=False)
        out = driver.run(engine)
        assert out.all_valid

    def test_per_run_teps(self, edges, forward, backward):
        from repro.perfmodel.cost import DramCostModel

        engine = HybridBFS(
            forward, backward, AlphaBetaPolicy(50, 500), DramCostModel()
        )
        out = Graph500Driver(edges, n_roots=2, seed=1).run(engine)
        run = out.runs[0]
        assert run.teps(modeled=True) == pytest.approx(
            run.input_edges_traversed / run.result.modeled_time_s
        )

    def test_deterministic_roots(self, edges):
        a = Graph500Driver(edges, n_roots=4, seed=9).roots
        b = Graph500Driver(edges, n_roots=4, seed=9).roots
        assert np.array_equal(a, b)

    def test_invalid_n_roots(self, edges):
        with pytest.raises(ConfigurationError):
            Graph500Driver(edges, n_roots=0)
