"""Unit tests for direction policies (the paper's alpha/beta rule)."""

import pytest

from repro.bfs.metrics import Direction
from repro.bfs.policies import (
    AlphaBetaPolicy,
    BeamerPolicy,
    FixedPolicy,
    PolicyInputs,
)
from repro.errors import ConfigurationError

TD, BU = Direction.TOP_DOWN, Direction.BOTTOM_UP


def inputs(level, current, n_frontier, prev, n_all=1 << 20, fe=0, ue=0):
    return PolicyInputs(
        level=level,
        current=current,
        n_frontier=n_frontier,
        n_frontier_prev=prev,
        n_all=n_all,
        frontier_edges=fe,
        unvisited_edges=ue,
    )


class TestAlphaBeta:
    def test_level0_always_top_down(self):
        p = AlphaBetaPolicy(alpha=1e9, beta=1e9)
        assert p.decide(inputs(0, TD, 1, 0)) is TD

    def test_switch_to_bottom_up_when_growing_past_threshold(self):
        # n_all/alpha = 100; frontier grew 50 -> 200.
        p = AlphaBetaPolicy(alpha=1e4, beta=1e5)
        assert p.decide(inputs(2, TD, 200, 50, n_all=10**6)) is BU

    def test_no_switch_when_growing_below_threshold(self):
        p = AlphaBetaPolicy(alpha=1e4, beta=1e5)
        assert p.decide(inputs(2, TD, 80, 50, n_all=10**6)) is TD

    def test_no_switch_when_shrinking_even_past_threshold(self):
        p = AlphaBetaPolicy(alpha=1e4, beta=1e5)
        assert p.decide(inputs(2, TD, 200, 300, n_all=10**6)) is TD

    def test_switch_back_when_shrinking_below_beta(self):
        # n_all/beta = 10; frontier shrank 50 -> 5.
        p = AlphaBetaPolicy(alpha=1e4, beta=1e5)
        assert p.decide(inputs(5, BU, 5, 50, n_all=10**6)) is TD

    def test_no_switch_back_when_growing(self):
        p = AlphaBetaPolicy(alpha=1e4, beta=1e5)
        assert p.decide(inputs(5, BU, 5, 2, n_all=10**6)) is BU

    def test_no_switch_back_above_beta_threshold(self):
        p = AlphaBetaPolicy(alpha=1e4, beta=1e5)
        assert p.decide(inputs(5, BU, 50, 100, n_all=10**6)) is BU

    def test_sticky_between_thresholds(self):
        p = AlphaBetaPolicy(alpha=1e4, beta=1e5)
        # In the hysteresis band both directions persist.
        assert p.decide(inputs(3, TD, 50, 60, n_all=10**6)) is TD
        assert p.decide(inputs(3, BU, 50, 40, n_all=10**6)) is BU

    def test_large_alpha_switches_immediately(self):
        # The paper's semi-external tuning: alpha=1e6 switches on any
        # growing frontier bigger than n/1e6.
        p = AlphaBetaPolicy(alpha=1e6, beta=1e6)
        assert p.decide(inputs(1, TD, 2, 1, n_all=1 << 20)) is BU

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            AlphaBetaPolicy(alpha=0, beta=1)
        with pytest.raises(ConfigurationError):
            AlphaBetaPolicy(alpha=1, beta=-1)


class TestBeamer:
    def test_level0_top_down(self):
        assert BeamerPolicy().decide(inputs(0, TD, 1, 0)) is TD

    def test_switch_on_edge_ratio(self):
        p = BeamerPolicy(alpha=14)
        assert p.decide(inputs(2, TD, 10, 5, fe=1000, ue=10_000)) is BU
        assert p.decide(inputs(2, TD, 10, 5, fe=100, ue=10_000)) is TD

    def test_switch_back_on_frontier_count(self):
        p = BeamerPolicy(beta=24)
        n = 24 * 100
        assert p.decide(inputs(5, BU, 99, 200, n_all=n)) is TD
        assert p.decide(inputs(5, BU, 101, 200, n_all=n)) is BU

    def test_zero_unvisited_edges_stays(self):
        assert BeamerPolicy().decide(inputs(2, TD, 10, 5, fe=5, ue=0)) is TD

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            BeamerPolicy(alpha=0)


class TestFixed:
    def test_always_same(self):
        p = FixedPolicy(BU)
        assert p.decide(inputs(0, TD, 1, 0)) is BU
        assert p.decide(inputs(9, TD, 100, 5)) is BU

    def test_reset_is_noop(self):
        FixedPolicy(TD).reset()
