"""Unit tests for repro.util.bitmap."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.util.bitmap import Bitmap


class TestConstruction:
    def test_new_bitmap_is_empty(self):
        bm = Bitmap(100)
        assert bm.count() == 0
        assert len(bm) == 100

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            Bitmap(0)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            Bitmap(-5)

    def test_word_count_rounds_up(self):
        assert Bitmap(1).words.size == 1
        assert Bitmap(64).words.size == 1
        assert Bitmap(65).words.size == 2

    def test_from_indices(self):
        bm = Bitmap.from_indices(10, np.array([1, 3, 7]))
        assert bm.count() == 3
        assert bm.test(3)

    def test_bad_word_buffer_rejected(self):
        with pytest.raises(ConfigurationError):
            Bitmap(100, words=np.zeros(5, dtype=np.uint64))

    def test_copy_is_independent(self):
        a = Bitmap.from_indices(64, np.array([0]))
        b = a.copy()
        b.set(1)
        assert not a.test(1)
        assert b.test(1)


class TestScalarOps:
    def test_set_and_test(self):
        bm = Bitmap(128)
        bm.set(0)
        bm.set(63)
        bm.set(64)
        bm.set(127)
        for i in (0, 63, 64, 127):
            assert bm.test(i)
        assert not bm.test(1)

    def test_clear_bit(self):
        bm = Bitmap.from_indices(64, np.array([5]))
        bm.clear_bit(5)
        assert not bm.test(5)

    def test_out_of_range_raises(self):
        bm = Bitmap(10)
        with pytest.raises(IndexError):
            bm.set(10)
        with pytest.raises(IndexError):
            bm.test(-1)


class TestVectorOps:
    def test_set_many_with_duplicates(self):
        bm = Bitmap(100)
        bm.set_many(np.array([7, 7, 7, 8]))
        assert bm.count() == 2

    def test_set_many_same_word_conflicts(self):
        # All bits land in word 0: verifies unbuffered read-modify-write.
        bm = Bitmap(64)
        bm.set_many(np.arange(64))
        assert bm.count() == 64

    def test_test_many(self):
        bm = Bitmap.from_indices(100, np.array([2, 50, 99]))
        out = bm.test_many(np.array([2, 3, 50, 98, 99]))
        assert out.tolist() == [True, False, True, False, True]

    def test_clear_many(self):
        bm = Bitmap.from_indices(100, np.arange(10))
        bm.clear_many(np.array([0, 5, 9, 9]))
        assert bm.count() == 7

    def test_empty_vector_ops_are_noops(self):
        bm = Bitmap(10)
        bm.set_many(np.array([], dtype=np.int64))
        bm.clear_many(np.array([], dtype=np.int64))
        assert bm.test_many(np.array([], dtype=np.int64)).size == 0

    def test_vector_out_of_range_raises(self):
        bm = Bitmap(10)
        with pytest.raises(IndexError):
            bm.set_many(np.array([3, 10]))


class TestWholeBitmap:
    def test_fill_and_count(self):
        bm = Bitmap(70)
        bm.fill()
        assert bm.count() == 70

    def test_fill_masks_tail(self):
        bm = Bitmap(65)
        bm.fill()
        # Only one bit may be set in the last word.
        assert int(np.bitwise_count(bm.words[-1])) == 1

    def test_clear(self):
        bm = Bitmap.from_indices(100, np.arange(100))
        bm.clear()
        assert bm.count() == 0

    def test_to_indices_round_trip(self):
        idx = np.array([0, 1, 63, 64, 99], dtype=np.int64)
        bm = Bitmap.from_indices(100, idx)
        assert np.array_equal(bm.to_indices(), idx)

    def test_to_bool_array(self):
        bm = Bitmap.from_indices(10, np.array([0, 9]))
        arr = bm.to_bool_array()
        assert arr.shape == (10,)
        assert arr[0] and arr[9] and not arr[5]


class TestAlgebra:
    def test_union(self):
        a = Bitmap.from_indices(64, np.array([1, 2]))
        b = Bitmap.from_indices(64, np.array([2, 3]))
        a.union_inplace(b)
        assert a.to_indices().tolist() == [1, 2, 3]

    def test_intersect(self):
        a = Bitmap.from_indices(64, np.array([1, 2]))
        b = Bitmap.from_indices(64, np.array([2, 3]))
        a.intersect_inplace(b)
        assert a.to_indices().tolist() == [2]

    def test_difference(self):
        a = Bitmap.from_indices(64, np.array([1, 2]))
        b = Bitmap.from_indices(64, np.array([2, 3]))
        a.difference_inplace(b)
        assert a.to_indices().tolist() == [1]

    def test_invert_respects_size(self):
        a = Bitmap.from_indices(70, np.array([0]))
        a.invert_inplace()
        assert a.count() == 69
        assert not a.test(0)

    def test_size_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            Bitmap(10).union_inplace(Bitmap(11))

    def test_equality(self):
        a = Bitmap.from_indices(64, np.array([1]))
        b = Bitmap.from_indices(64, np.array([1]))
        c = Bitmap.from_indices(64, np.array([2]))
        assert a == b
        assert a != c

    def test_nbytes(self):
        assert Bitmap(64).nbytes() == 8
        assert Bitmap(65).nbytes() == 16
