"""Serve-tier crash recovery: requeue ordering, resume, deadlines,
backoff.

The server-side contract under an injected crash plan: every admitted
request completes **exactly once** (or is explicitly rejected), crashed
batches are requeued at the head of the admission queue in their original
order, the next batch resumes from the checkpoint, retries back off
exponentially with deterministic seeded jitter, and answers match a
crash-free serve bit for bit.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import DRAM_PCIE_FLASH
from repro.errors import ProcessCrashError
from repro.semiext.faults import FaultPlan
from repro.serve import (
    AdmissionQueue,
    BFSServer,
    GraphCatalog,
    Request,
    WorkloadSpec,
    generate_workload,
    load_trace,
    save_trace,
)

ALPHA = BETA = 4.0


def _req(arrival, tenant="t0", root=1, graph="g", deadline=None):
    return Request(arrival_s=arrival, tenant=tenant, graph=graph,
                   root=root, deadline_s=deadline)


class TestRequeueOrdering:
    """Satellite: crashed-batch requeue preserves order and fairness."""

    def test_requeued_requests_keep_original_admission_order(self):
        q = AdmissionQueue(16)
        taken = [_req(0.0, root=i) for i in range(3)]
        later = _req(0.0, root=99)
        for r in taken:
            q.offer(r)
        q.offer(later)
        batch = q.next_batch(3)
        assert [r.root for r in batch] == [0, 1, 2]
        q.requeue(batch)
        # Head of the queue, original relative order, ahead of what was
        # admitted after them.
        assert [r.root for r in q.next_batch(8)] == [0, 1, 2, 99]

    def test_requeue_preserves_tenant_fairness_position(self):
        q = AdmissionQueue(16)
        q.offer(_req(0.0, tenant="a", root=1))
        q.offer(_req(0.0, tenant="b", root=2))
        q.offer(_req(0.0, tenant="a", root=3))
        q.offer(_req(0.0, tenant="b", root=4))
        batch = q.next_batch(2)  # one per tenant: roots 1, 2
        q.requeue(batch)
        nxt = q.next_batch(4)
        # Still round-robin across tenants, and each tenant's requeued
        # request comes back before its own later traffic.
        assert sorted(r.root for r in nxt[:2]) == [1, 2]
        assert sorted(r.root for r in nxt[2:]) == [3, 4]
        a = [r.root for r in nxt if r.tenant == "a"]
        b = [r.root for r in nxt if r.tenant == "b"]
        assert a == [1, 3] and b == [2, 4]

    def test_requeue_bypasses_capacity(self):
        q = AdmissionQueue(2)
        r1, r2 = _req(0.0, root=1), _req(0.0, root=2)
        q.offer(r1)
        q.offer(r2)
        batch = q.next_batch(2)
        q.offer(_req(0.0, root=3))
        q.offer(_req(0.0, root=4))
        assert q.depth == 2  # full again
        q.requeue(batch)  # already-admitted work is never shed
        assert q.depth == 4
        assert [r.root for r in q.next_batch(8)] == [1, 2, 3, 4]

    def test_requeue_into_empty_queue(self):
        q = AdmissionQueue(4)
        r = _req(0.0, root=7)
        q.offer(r)
        batch = q.next_batch(1)
        assert q.depth == 0
        q.requeue(batch)
        assert q.next_batch(1) == [r]


@pytest.fixture(scope="module")
def crash_catalog_factory(tmp_path_factory):
    """Builds one catalog per call; module-scoped tmp root."""
    counter = {"n": 0}

    def make(fault_plan=None, scale=9):
        counter["n"] += 1
        scenario = DRAM_PCIE_FLASH
        if fault_plan is not None:
            scenario = replace(scenario, fault_plan=fault_plan)
        cat = GraphCatalog(
            workdir=tmp_path_factory.mktemp(f"crash{counter['n']}")
        )
        cat.build("g", scenario, scale=scale, seed=11,
                  alpha=ALPHA, beta=BETA)
        return cat

    return make


def _workload(cat, n=40, deadline=None):
    spec = WorkloadSpec(
        n_requests=n, rate_rps=200.0, n_tenants=3, root_pool=16,
        seed=4, graph="g", deadline_s=deadline,
    )
    return generate_workload(spec, cat.get("g").degrees)


class TestServeCrashRecovery:
    def test_crashed_serve_completes_everything_exactly_once(
        self, crash_catalog_factory
    ):
        clean_cat = crash_catalog_factory()
        clean = BFSServer(clean_cat, batch_size=8).serve(
            _workload(clean_cat)
        )
        plan = FaultPlan(seed=5, crash_at_level=1)
        cat = crash_catalog_factory(fault_plan=plan)
        server = BFSServer(cat, batch_size=8, checkpoint_every=1)
        report = server.serve(_workload(cat))

        assert report.n_crashes == 1
        assert report.n_requeued > 0
        assert report.n_retries == 1
        assert report.n_watchdog_restarts == 1
        # 100% of admitted queries complete, exactly once each.
        assert report.n_served + report.n_rejected == report.n_requests
        assert report.rejections.total == report.n_rejected == 0
        ids = [id(c.request) for c in report.completions]
        assert len(ids) == len(set(ids))
        # Answers are the crash-free answers.
        clean_by_root = {
            c.request.root: c.traversed_edges for c in clean.completions
        }
        for c in report.completions:
            assert c.traversed_edges == clean_by_root[c.request.root]

    def test_torn_checkpoint_still_recovers(self, crash_catalog_factory):
        clean_cat = crash_catalog_factory()
        clean = BFSServer(clean_cat, batch_size=8).serve(
            _workload(clean_cat)
        )
        plan = FaultPlan(seed=5, crash_at_level=2, crash_torn=True)
        cat = crash_catalog_factory(fault_plan=plan)
        report = BFSServer(cat, batch_size=8, checkpoint_every=1).serve(
            _workload(cat)
        )
        assert report.n_crashes == 1
        assert report.n_served == clean.n_served
        clean_by_root = {
            c.request.root: c.traversed_edges for c in clean.completions
        }
        for c in report.completions:
            assert c.traversed_edges == clean_by_root[c.request.root]

    def test_resumed_parent_trees_match_clean_serve(
        self, crash_catalog_factory
    ):
        clean_cat = crash_catalog_factory()
        clean_server = BFSServer(clean_cat, batch_size=8)
        clean_server.serve(_workload(clean_cat))
        plan = FaultPlan(seed=5, crash_at_level=1)
        cat = crash_catalog_factory(fault_plan=plan)
        server = BFSServer(cat, batch_size=8, checkpoint_every=1)
        server.serve(_workload(cat))
        for root in {r.root for r in _workload(cat)}:
            a = clean_server.cache.get("g", root)
            b = server.cache.get("g", root)
            assert a is not None and b is not None
            assert a.parent.tobytes() == b.parent.tobytes()

    def test_recovery_machinery_off_by_default(self, crash_catalog_factory):
        cat = crash_catalog_factory()
        server = BFSServer(cat, batch_size=8)
        report = server.serve(_workload(cat))
        assert report.n_crashes == 0
        assert report.n_retries == 0
        assert server._managers == {}
        # No checkpoint directories appear under the store root.
        store = cat.get("g").store
        assert not (store.root / "checkpoints").exists()

    def test_retry_budget_exhaustion_raises(self, crash_catalog_factory):
        # crash_at_s=0 re-fires on every rebuilt injector… but injectors
        # are per-store and one-shot, so force repeats via max_retries=0.
        plan = FaultPlan(seed=5, crash_at_level=1)
        cat = crash_catalog_factory(fault_plan=plan)
        server = BFSServer(cat, batch_size=8, checkpoint_every=1,
                           max_retries=0)
        with pytest.raises(ProcessCrashError, match="retry budget"):
            server.serve(_workload(cat))

    def test_backoff_is_deterministic_per_seed(self, crash_catalog_factory):
        from repro.obs.session import Observability

        def retry_delay(seed):
            plan = FaultPlan(seed=5, crash_at_level=1)
            cat = crash_catalog_factory(fault_plan=plan)
            obs = Observability()
            server = BFSServer(cat, batch_size=8, checkpoint_every=1,
                               retry_seed=seed, backoff_base_s=1e-3,
                               obs=obs)
            server.serve(_workload(cat))
            [span] = obs.tracer.find("serve.retry")
            return float(span.attrs["delay_s"])

        d1, d1_again, d2 = retry_delay(1), retry_delay(1), retry_delay(2)
        assert d1 == d1_again  # reproducible per retry seed
        assert d1 != d2  # but genuinely jittered
        # Jitter scales the base delay by [0.5, 1.5).
        assert 0.5e-3 <= d1 < 1.5e-3

    def test_stale_cache_entries_invalidate_on_rollback(
        self, crash_catalog_factory
    ):
        # Arrivals staggered so a first batch caches answers *after* the
        # crashed batch's checkpoint, then the crash rolls "g" back.
        plan = FaultPlan(seed=5, crash_at_level=1)
        cat = crash_catalog_factory(fault_plan=plan)
        server = BFSServer(cat, batch_size=4, checkpoint_every=1)
        report = server.serve(_workload(cat, n=40))
        assert report.n_crashes == 1
        assert report.stale_invalidated == server.cache.evictions_stale


class TestDeadlines:
    def test_expired_requests_rejected_not_completed(
        self, crash_catalog_factory
    ):
        cat = crash_catalog_factory()
        report = BFSServer(cat, batch_size=8).serve(
            _workload(cat, deadline=1e-9)
        )
        assert report.rejections.deadline > 0
        assert report.n_served + report.n_rejected == report.n_requests
        for _, reason in report.rejected:
            assert reason == "deadline"

    def test_generous_deadline_rejects_nothing(self, crash_catalog_factory):
        cat = crash_catalog_factory()
        report = BFSServer(cat, batch_size=8).serve(
            _workload(cat, deadline=10.0)
        )
        assert report.rejections.deadline == 0
        assert report.n_served == report.n_requests

    def test_workload_spec_parses_deadline(self):
        spec = WorkloadSpec.parse("n=10,deadline=0.25")
        assert spec.deadline_s == 0.25
        assert WorkloadSpec.parse("n=10").deadline_s is None

    def test_deadline_round_trips_through_trace(self, tmp_path):
        reqs = [
            _req(0.0, root=1, deadline=0.5),
            _req(1.0, root=2),  # no deadline stays None
        ]
        path = save_trace(reqs, tmp_path / "trace.jsonl")
        loaded = load_trace(path)
        assert loaded[0].deadline_s == 0.5
        assert loaded[1].deadline_s is None

    def test_deadline_must_be_positive(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="deadline"):
            WorkloadSpec(deadline_s=0.0)

    def test_deadline_enforced_even_under_crash_recovery(
        self, crash_catalog_factory
    ):
        # Deadline comfortably above normal latency but below the crash
        # detour (retry backoff + resumed batch): requeued requests that
        # can no longer make it are aborted, not served late.
        plan = FaultPlan(seed=5, crash_at_level=1)
        cat = crash_catalog_factory(fault_plan=plan)
        server = BFSServer(
            cat, batch_size=8, checkpoint_every=1, backoff_base_s=0.05
        )
        report = server.serve(_workload(cat, deadline=0.02))
        assert report.n_crashes == 1
        # Drain guarantee holds: everything completed or rejected.
        assert report.n_served + report.n_rejected == report.n_requests
        assert report.rejections.deadline > 0
