"""Concurrency stress: the storage meters under real thread pressure."""

import threading

import numpy as np
import pytest

from repro.semiext import NVMStore, PCIE_FLASH


class TestChargeLock:
    def test_concurrent_charges_conserve_totals(self, tmp_path):
        """N threads hammering charge() must lose no bytes/requests."""
        store = NVMStore(tmp_path / "s", PCIE_FLASH)
        per_thread_extents = 40
        n_threads = 8
        offsets = np.arange(per_thread_extents, dtype=np.int64) * 8192
        lengths = np.full(per_thread_extents, 4096, dtype=np.int64)
        barrier = threading.Barrier(n_threads)
        errors: list[Exception] = []

        def worker():
            try:
                barrier.wait()
                for _ in range(25):
                    store.charge(offsets, lengths, file_key="stress")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        expected_batches = n_threads * 25
        assert len(store.iostats.samples) == expected_batches
        assert store.iostats.n_requests == expected_batches * per_thread_extents
        assert (
            store.iostats.total_bytes
            == expected_batches * per_thread_extents * 4096
        )

    def test_concurrent_charges_with_page_cache(self, tmp_path):
        """The fill-once cache stays consistent under contention."""
        store = NVMStore(
            tmp_path / "c", PCIE_FLASH, page_cache_bytes=1 << 20
        )
        offsets = np.arange(64, dtype=np.int64) * 4096
        lengths = np.full(64, 4096, dtype=np.int64)
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            for _ in range(10):
                store.charge(offsets, lengths, file_key="shared")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 64 pages fit the 256-page cache: exactly one cold pass of
        # misses (whoever got there first), everything else hits.
        assert store.cache_miss_bytes == 64 * 4096
        assert store.cache_hit_bytes == (4 * 10 - 1) * 64 * 4096

    def test_clock_monotone_under_contention(self, tmp_path):
        store = NVMStore(tmp_path / "m", PCIE_FLASH)
        offsets = np.array([0], dtype=np.int64)
        lengths = np.array([4096], dtype=np.int64)
        observed: list[float] = []
        lock = threading.Lock()

        def worker():
            for _ in range(50):
                store.charge(offsets, lengths)
                with lock:
                    observed.append(store.clock.now())

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Each observation is positive; the final clock equals busy time.
        assert min(observed) > 0
        assert store.clock.now() == pytest.approx(store.iostats.busy_time_s)
