"""Serving determinism: two same-seed workload replays must emit
identical metric values and byte-identical exported artifacts (the
property the simulated-clock time base guarantees end to end)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core import DRAM_PCIE_FLASH
from repro.obs import Observability
from repro.semiext.faults import FaultPlan
from repro.serve import BFSServer, GraphCatalog, WorkloadSpec, generate_workload


def _serve_once(workdir, outdir, scenario):
    obs = Observability()
    catalog = GraphCatalog(workdir=workdir, obs=obs)
    graph = catalog.build("g", scenario, scale=9, seed=11,
                          alpha=4.0, beta=4.0)
    spec = WorkloadSpec(n_requests=80, graph="g", seed=7, root_pool=12,
                        zipf_s=1.3)
    server = BFSServer(catalog, batch_size=8, queue_capacity=64,
                       cache_capacity=32, cache_ttl_s=0.05, obs=obs)
    report = server.serve(generate_workload(spec, graph.degrees))
    paths = obs.export(outdir)
    catalog.close()
    return obs, paths, report


class TestServeDeterminism:
    @pytest.fixture(scope="class", params=["healthy", "faulty"])
    def exports(self, request, tmp_path_factory):
        scenario = DRAM_PCIE_FLASH
        if request.param == "faulty":
            scenario = replace(
                scenario,
                fault_plan=FaultPlan(seed=13, error_rate=0.05, gc_rate=0.02),
            )
        tag = request.param
        return [
            _serve_once(
                tmp_path_factory.mktemp(f"wd_{tag}_{run}"),
                tmp_path_factory.mktemp(f"out_{tag}_{run}"),
                scenario,
            )
            for run in ("a", "b")
        ]

    def test_metric_values_identical(self, exports):
        (obs_a, _, _), (obs_b, _, _) = exports
        assert obs_a.registry.as_dict() == obs_b.registry.as_dict()

    def test_artifacts_byte_identical(self, exports):
        (_, paths_a, _), (_, paths_b, _) = exports
        for kind in ("jsonl", "chrome_trace", "prometheus"):
            assert (
                paths_a[kind].read_bytes() == paths_b[kind].read_bytes()
            ), kind

    def test_reports_agree(self, exports):
        (_, _, rep_a), (_, _, rep_b) = exports
        assert rep_a.n_served == rep_b.n_served
        assert rep_a.n_rejected == rep_b.n_rejected
        assert rep_a.cache_hits == rep_b.cache_hits
        assert rep_a.nvm_bytes_read == rep_b.nvm_bytes_read
        assert rep_a.latencies_s() == rep_b.latencies_s()

    def test_serve_series_exported(self, exports):
        (obs, _, _), _ = exports
        names = set(obs.registry.names())
        assert "serve.requests_total" in names
        assert "serve.latency_seconds" in names
        assert "serve.cache_hits_total" in names
        assert "serve.batches_total" in names
