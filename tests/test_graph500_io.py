"""Tests for the edge-list file formats (int64 pairs, packed 48-bit)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph500.edgelist import EdgeList
from repro.graph500.io import (
    PACKED_EDGE_BYTES,
    pack_edges_48,
    read_int64_pairs,
    read_packed48,
    unpack_edges_48,
    write_int64_pairs,
    write_packed48,
)


def _el(pairs, n):
    return EdgeList(np.array(pairs, dtype=np.int64).T.reshape(2, -1), n)


class TestInt64Pairs:
    def test_round_trip(self, tmp_path, edges):
        path = tmp_path / "edges.bin"
        nbytes = write_int64_pairs(edges, path)
        assert nbytes == edges.n_edges * 16
        back = read_int64_pairs(path, edges.n_vertices)
        assert np.array_equal(back.endpoints, edges.endpoints)

    def test_interleaved_layout(self, tmp_path):
        el = _el([(1, 2), (3, 4)], 5)
        path = tmp_path / "e.bin"
        write_int64_pairs(el, path)
        raw = np.fromfile(path, dtype="<i8")
        assert raw.tolist() == [1, 2, 3, 4]

    def test_odd_file_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        np.array([1, 2, 3], dtype="<i8").tofile(path)
        with pytest.raises(GraphFormatError):
            read_int64_pairs(path, 10)


class TestPacked48:
    def test_round_trip(self, tmp_path, edges):
        path = tmp_path / "edges.p48"
        nbytes = write_packed48(edges, path)
        assert nbytes == edges.n_edges * PACKED_EDGE_BYTES
        back = read_packed48(path, edges.n_vertices)
        assert np.array_equal(back.endpoints, edges.endpoints)

    def test_size_matches_paper_model(self, edges):
        # 12 B/edge is what the size model charges (384 GB @ SCALE 31).
        from repro.perfmodel.sizes import GraphSizeModel

        packed = pack_edges_48(edges)
        assert packed.nbytes == GraphSizeModel().edge_tuple_bytes * edges.n_edges

    def test_large_ids_preserved(self):
        big = (1 << 47) + 12345
        el = EdgeList(
            np.array([[big], [big - 1]], dtype=np.int64), big + 1
        )
        back = unpack_edges_48(pack_edges_48(el), big + 1)
        assert back.endpoints[0, 0] == big
        assert back.endpoints[1, 0] == big - 1

    def test_overflow_rejected(self):
        too_big = 1 << 48
        el = EdgeList(
            np.array([[too_big], [0]], dtype=np.int64), too_big + 1
        )
        with pytest.raises(GraphFormatError):
            pack_edges_48(el)

    def test_misaligned_stream_rejected(self):
        with pytest.raises(GraphFormatError):
            unpack_edges_48(np.zeros(13, dtype=np.uint8), 10)

    def test_empty(self, tmp_path):
        el = EdgeList(np.zeros((2, 0), dtype=np.int64), 4)
        path = tmp_path / "empty.p48"
        assert write_packed48(el, path) == 0
        back = read_packed48(path, 4)
        assert back.n_edges == 0

    @given(data=st.data())
    @settings(max_examples=30)
    def test_pack_unpack_property(self, data):
        m = data.draw(st.integers(0, 50))
        n = data.draw(st.integers(1, 1 << 20))
        ids = data.draw(
            st.lists(
                st.integers(0, n - 1), min_size=2 * m, max_size=2 * m
            )
        )
        el = EdgeList(
            np.array(ids, dtype=np.int64).reshape(2, m), n
        )
        back = unpack_edges_48(pack_edges_48(el), n)
        assert np.array_equal(back.endpoints, el.endpoints)
