"""Serve-tier tests for partitioned deployments: catalog registration,
query routing, hot-graph replication, and the per-worker SLO family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DRAM_ONLY, DRAM_PCIE_FLASH
from repro.dist.serve import DistributedEngine, make_partitioner
from repro.errors import ConfigurationError
from repro.obs import Observability, dist_worker_slos, evaluate
from repro.serve import GraphCatalog

SCALE = 7
ALPHA = BETA = 50.0


def _partitioned(tmp_path, obs=None, **kwargs):
    catalog = GraphCatalog(workdir=tmp_path / "cat", obs=obs)
    graph = catalog.build_partitioned(
        "g", DRAM_PCIE_FLASH, scale=SCALE, n_partitions=3, seed=7,
        alpha=ALPHA, beta=BETA, **kwargs,
    )
    return catalog, graph


def _roots(graph, n):
    return [int(r) for r in np.flatnonzero(graph.degrees > 0)[:n]]


class TestBuildPartitioned:
    def test_requires_semi_external_scenario(self, tmp_path):
        catalog = GraphCatalog(workdir=tmp_path / "cat")
        with pytest.raises(ConfigurationError):
            catalog.build_partitioned(
                "g", DRAM_ONLY, scale=SCALE, n_partitions=2
            )

    def test_duplicate_name_rejected(self, tmp_path):
        catalog, _ = _partitioned(tmp_path)
        with pytest.raises(ConfigurationError):
            catalog.build_partitioned(
                "g", DRAM_PCIE_FLASH, scale=SCALE, n_partitions=2
            )
        catalog.close()

    def test_graph_surface(self, tmp_path):
        catalog, graph = _partitioned(tmp_path)
        assert graph.is_partitioned
        assert graph.n_workers == 3
        assert graph.store is None
        assert not graph.circuit_open
        assert graph.device_health() == 1.0
        catalog.close()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_partitioner("zigzag", 2, np.ones(8, dtype=np.int64))


class TestDistributedEngine:
    def test_duplicate_roots_rejected(self, tmp_path):
        catalog, graph = _partitioned(tmp_path)
        root = _roots(graph, 1)[0]
        with pytest.raises(ConfigurationError):
            DistributedEngine(graph).run_batch([root, root])
        catalog.close()

    def test_coordinator_route_until_hot(self, tmp_path):
        obs = Observability()
        catalog, graph = _partitioned(tmp_path, obs=obs, replicate_after=4)
        engine = DistributedEngine(graph, obs=obs)
        roots = _roots(graph, 6)

        cold = engine.run_batch(roots[:4])
        assert graph.replicas == []
        events = [e for e in obs.tracer.events if e.name == "dist.query"]
        assert [e.attrs["route"] for e in events] == ["partitioned"] * 4
        # Coordinator-routed queries carry no worker id, so only the
        # overall SLO counts them, never a per-worker objective.
        assert all(e.attrs["worker"] == -1 for e in events)

        hot = engine.run_batch(roots[4:])
        assert len(graph.replicas) == graph.n_workers
        events = [e for e in obs.tracer.events if e.name == "dist.query"]
        assert [e.attrs["route"] for e in events[4:]] == ["replica"] * 2
        assert all(e.attrs["worker"] >= 0 for e in events[4:])

        # Routing is invisible to correctness: a replica answers with
        # the same tree the coordinator produced for that root.
        replay = engine.run_batch(roots[:2])
        for before, after in zip(cold[:2], replay):
            assert np.array_equal(before.parent, after.parent)
        assert all(r.parent[r.root] == r.root for r in hot)
        catalog.close()

    def test_no_replication_without_threshold(self, tmp_path):
        catalog, graph = _partitioned(tmp_path)
        engine = DistributedEngine(graph)
        engine.run_batch(_roots(graph, 3))
        assert not graph.hot
        assert graph.replicas == []
        catalog.close()

    def test_worker_nvm_bytes_accumulates(self, tmp_path):
        catalog, graph = _partitioned(tmp_path)
        before = graph.worker_nvm_bytes()
        DistributedEngine(graph).run_batch(_roots(graph, 2))
        assert graph.worker_nvm_bytes() > before
        catalog.close()


class TestDistWorkerSLOs:
    def test_rejects_nonpositive_worker_count(self):
        with pytest.raises(ConfigurationError):
            dist_worker_slos(0)

    def test_spec_family_shape(self):
        specs = dist_worker_slos(3)
        assert [s.name for s in specs] == [
            "dist-query-latency",
            "dist-worker0-latency",
            "dist-worker1-latency",
            "dist-worker2-latency",
        ]
        assert all(s.event == "dist.query" for s in specs)
        assert specs[0].where == ()
        assert specs[1].where == (("worker", "0"),)

    def test_per_worker_specs_count_only_their_events(self, tmp_path):
        obs = Observability()
        catalog, graph = _partitioned(tmp_path, obs=obs, replicate_after=2)
        engine = DistributedEngine(graph, obs=obs)
        engine.run_batch(_roots(graph, 6))
        report = evaluate(obs, specs=dist_worker_slos(graph.n_workers))
        by_name = {r.spec.name: r for r in report.results}
        assert by_name["dist-query-latency"].total == 6
        per_worker = sum(
            by_name[f"dist-worker{k}-latency"].total
            for k in range(graph.n_workers)
        )
        # 2 cold queries route through the coordinator (worker -1);
        # the 4 hot ones land on exactly one worker replica each.
        assert per_worker == 4
        catalog.close()

    def test_results_carry_event_and_where(self):
        spec = dist_worker_slos(1)[1]
        obs = Observability()
        payload = evaluate(obs, specs=(spec,)).results[0].to_dict()
        assert payload["event"] == "dist.query"
        assert payload["where"] == [["worker", "0"]]
