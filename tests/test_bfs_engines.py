"""Engine-level tests: HybridBFS, SemiExternalBFS, ReferenceBFS."""

import numpy as np
import pytest

from repro.bfs import (
    AlphaBetaPolicy,
    BeamerPolicy,
    Direction,
    FixedPolicy,
    FullyExternalBFS,
    HybridBFS,
    ReferenceBFS,
    SemiExternalBFS,
)
from repro.bfs.metrics import BFSResult
from repro.csr import build_csr
from repro.errors import ConfigurationError
from repro.graph500.edgelist import EdgeList
from repro.graph500.validate import compute_levels, validate_bfs_tree
from repro.numa.topology import NumaTopology
from repro.perfmodel.cost import DramCostModel
from repro.semiext import NVMStore, PCIE_FLASH, SATA_SSD


@pytest.fixture()
def hybrid(forward, backward):
    return HybridBFS(
        forward, backward, AlphaBetaPolicy(alpha=50, beta=500),
        cost_model=DramCostModel(),
    )


class TestHybrid:
    def test_tree_validates(self, hybrid, edges, a_root):
        res = hybrid.run(a_root)
        assert validate_bfs_tree(edges, res.parent, a_root).ok

    def test_deterministic(self, forward, backward, a_root):
        mk = lambda: HybridBFS(
            forward, backward, AlphaBetaPolicy(50, 500), DramCostModel()
        )
        r1, r2 = mk().run(a_root), mk().run(a_root)
        assert np.array_equal(r1.parent, r2.parent)
        assert r1.modeled_time_s == r2.modeled_time_s
        assert r1.direction_schedule() == r2.direction_schedule()

    def test_starts_top_down(self, hybrid, a_root):
        res = hybrid.run(a_root)
        assert res.traces[0].direction is Direction.TOP_DOWN

    def test_hybrid_uses_both_directions(self, hybrid, a_root):
        res = hybrid.run(a_root)
        dirs = {t.direction for t in res.traces}
        assert dirs == {Direction.TOP_DOWN, Direction.BOTTOM_UP}

    def test_hybrid_scans_fewer_edges_than_top_down(
        self, forward, backward, a_root
    ):
        hyb = HybridBFS(
            forward, backward, AlphaBetaPolicy(50, 500), DramCostModel()
        ).run(a_root)
        td = HybridBFS(
            forward, backward, FixedPolicy(Direction.TOP_DOWN), DramCostModel()
        ).run(a_root)
        total = lambda r: sum(t.edges_scanned for t in r.traces)
        assert total(hyb) < total(td)

    def test_same_reachability_any_policy(self, forward, backward, a_root):
        policies = [
            AlphaBetaPolicy(50, 500),
            BeamerPolicy(),
            FixedPolicy(Direction.TOP_DOWN),
            FixedPolicy(Direction.BOTTOM_UP),
        ]
        reaches = [
            HybridBFS(forward, backward, p).run(a_root).parent >= 0
            for p in policies
        ]
        for r in reaches[1:]:
            assert np.array_equal(reaches[0], r)

    def test_traversed_edges_half_degree_sum(self, hybrid, csr, a_root):
        res = hybrid.run(a_root)
        visited = res.parent >= 0
        assert res.traversed_edges == int(csr.degrees()[visited].sum()) // 2

    def test_modeled_time_accumulates(self, hybrid, a_root):
        res = hybrid.run(a_root)
        assert res.modeled_time_s > 0
        assert res.modeled_time_s == pytest.approx(
            sum(t.modeled_time_s for t in res.traces)
        )

    def test_max_levels_cutoff(self, hybrid, a_root):
        res = hybrid.run(a_root, max_levels=2)
        assert res.n_levels == 2

    def test_isolated_root(self, csr, forward, backward):
        isolated = int(np.flatnonzero(csr.degrees() == 0)[0])
        res = HybridBFS(forward, backward, AlphaBetaPolicy(50, 500)).run(
            isolated
        )
        assert res.n_visited == 1
        assert res.traversed_edges == 0

    def test_mismatched_graphs_rejected(self, csr, forward, topology):
        from repro.csr.builder import build_csr
        from repro.csr.partition import BackwardGraph

        other = build_csr(np.array([[0], [1]]), n_vertices=2)
        bwd = BackwardGraph(other, topology)
        with pytest.raises(ConfigurationError):
            HybridBFS(forward, bwd, AlphaBetaPolicy(50, 500))

    def test_without_cost_model_wall_only(self, forward, backward, a_root):
        res = HybridBFS(forward, backward, AlphaBetaPolicy(50, 500)).run(a_root)
        assert res.modeled_time_s == 0.0
        assert res.wall_time_s > 0

    def test_result_aggregates(self, hybrid, a_root):
        res = hybrid.run(a_root)
        assert isinstance(res, BFSResult)
        by_dir = res.edges_by_direction()
        assert sum(by_dir.values()) == sum(t.edges_scanned for t in res.traces)
        lv = res.levels_by_direction()
        assert sum(lv.values()) == res.n_levels
        assert len(res.direction_schedule()) == res.n_levels
        assert res.teps() > 0
        assert res.teps(modeled=True) > 0


class TestSemiExternal:
    def test_same_tree_as_dram(self, forward, backward, edges, a_root, tmp_path):
        dram = HybridBFS(
            forward, backward, AlphaBetaPolicy(50, 500), DramCostModel()
        ).run(a_root)
        store = NVMStore(tmp_path / "nvm", PCIE_FLASH)
        se = SemiExternalBFS.offload(
            forward, backward, AlphaBetaPolicy(50, 500), store,
            cost_model=DramCostModel(),
        )
        sres = se.run(a_root)
        assert np.array_equal(sres.parent, dram.parent)
        assert validate_bfs_tree(edges, sres.parent, a_root).ok

    def test_nvm_slower_than_dram(self, forward, backward, a_root, tmp_path):
        dram = HybridBFS(
            forward, backward, AlphaBetaPolicy(50, 500), DramCostModel()
        ).run(a_root)
        store = NVMStore(tmp_path / "nvm", PCIE_FLASH)
        se = SemiExternalBFS.offload(
            forward, backward, AlphaBetaPolicy(50, 500), store,
            cost_model=DramCostModel(),
        ).run(a_root)
        assert se.modeled_time_s > dram.modeled_time_s

    def test_ssd_slower_than_pcie(self, forward, backward, a_root, tmp_path):
        res = {}
        for name, dev in (("pcie", PCIE_FLASH), ("ssd", SATA_SSD)):
            store = NVMStore(tmp_path / name, dev)
            res[name] = SemiExternalBFS.offload(
                forward, backward, AlphaBetaPolicy(50, 500), store,
                cost_model=DramCostModel(),
            ).run(a_root)
        assert res["ssd"].modeled_time_s > res["pcie"].modeled_time_s

    def test_only_top_down_touches_nvm(self, forward, backward, a_root, tmp_path):
        store = NVMStore(tmp_path / "nvm", PCIE_FLASH)
        res = SemiExternalBFS.offload(
            forward, backward, AlphaBetaPolicy(50, 500), store,
            cost_model=DramCostModel(),
        ).run(a_root)
        for t in res.traces:
            if t.direction is Direction.BOTTOM_UP:
                assert t.nvm_requests == 0
            else:
                assert t.edges_scanned_nvm == t.edges_scanned

    def test_iostats_populated(self, forward, backward, a_root, tmp_path):
        store = NVMStore(tmp_path / "nvm", PCIE_FLASH)
        engine = SemiExternalBFS.offload(
            forward, backward, AlphaBetaPolicy(50, 500), store,
            cost_model=DramCostModel(),
        )
        engine.run(a_root)
        assert store.iostats.n_requests > 0
        assert store.iostats.avgrq_sz >= 8.0  # at least one page per req

    def test_shard_count_mismatch_rejected(
        self, forward, backward, store, csr
    ):
        from repro.csr.io import offload_csr

        ext = offload_csr(csr, store, "one")
        with pytest.raises(ConfigurationError):
            SemiExternalBFS(
                forward, backward, AlphaBetaPolicy(50, 500), store, [ext]
            )

    def test_files_per_node(self, forward, backward, a_root, tmp_path, topology):
        store = NVMStore(tmp_path / "nvm", PCIE_FLASH)
        SemiExternalBFS.offload(
            forward, backward, AlphaBetaPolicy(50, 500), store
        )
        # Two files (index+value) per NUMA node, as the paper notes.
        files = list((tmp_path / "nvm").glob("*.bin"))
        assert len(files) == 2 * topology.n_nodes


class TestReference:
    def test_tree_validates(self, csr, edges, a_root):
        res = ReferenceBFS(csr, cost_model=DramCostModel()).run(a_root)
        assert validate_bfs_tree(edges, res.parent, a_root).ok

    def test_same_reachability_as_hybrid(self, csr, hybrid, a_root):
        ref = ReferenceBFS(csr).run(a_root)
        hyb = hybrid.run(a_root)
        assert np.array_equal(ref.parent >= 0, hyb.parent >= 0)

    def test_all_levels_top_down(self, csr, a_root):
        res = ReferenceBFS(csr).run(a_root)
        assert all(t.direction is Direction.TOP_DOWN for t in res.traces)

    def test_slower_than_hybrid_modeled(self, csr, hybrid, a_root):
        ref = ReferenceBFS(csr, cost_model=DramCostModel()).run(a_root)
        hyb = hybrid.run(a_root)
        assert ref.teps(modeled=True) < hyb.teps(modeled=True)

    def test_bad_root(self, csr):
        with pytest.raises(ConfigurationError):
            ReferenceBFS(csr).run(-1)

    def test_max_levels(self, csr, a_root):
        res = ReferenceBFS(csr).run(a_root, max_levels=1)
        assert res.n_levels == 1


class TestFullyExternalVsReference:
    """The NVM-resident baseline must match the reference even on
    disconnected graphs whose roots sit in tiny (or empty) components —
    shapes the Kronecker fixtures never produce on purpose."""

    # Two components (a path 0-1-2 and a triangle 4-5-6), vertex 3
    # isolated, vertex 7 isolated with only a self-loop.
    EDGES = EdgeList(
        np.array(
            [[0, 1, 4, 5, 6, 7],
             [1, 2, 5, 6, 4, 7]],
            dtype=np.int64,
        ),
        8,
    )

    def _run_both(self, root, tmp_path):
        csr = build_csr(self.EDGES)
        store = NVMStore(tmp_path / "nvm", PCIE_FLASH)
        ext = FullyExternalBFS.offload(csr, store).run(root)
        ref = ReferenceBFS(csr).run(root)
        return ext, ref

    @pytest.mark.parametrize("root", [0, 2, 4])
    def test_component_roots_match_reference(self, root, tmp_path):
        ext, ref = self._run_both(root, tmp_path)
        ext_levels, err = compute_levels(ext.parent, root)
        assert err is None
        ref_levels, _ = compute_levels(ref.parent, root)
        assert np.array_equal(ext_levels, ref_levels)
        assert validate_bfs_tree(self.EDGES, ext.parent, root).ok

    @pytest.mark.parametrize("root", [3, 7])
    def test_isolated_roots_match_reference(self, root, tmp_path):
        # Vertex 3 has no edges at all; vertex 7 only a self-loop (which
        # CSR construction drops).  Both searches must visit exactly the
        # root and still validate.
        ext, ref = self._run_both(root, tmp_path)
        assert np.array_equal(ext.parent, ref.parent)
        assert int(np.count_nonzero(ext.parent != -1)) == 1
        assert ext.parent[root] == root
        assert validate_bfs_tree(self.EDGES, ext.parent, root).ok
