"""Tests for thread-pool shard execution (repro.bfs.parallel)."""

import numpy as np
import pytest

from repro.bfs import AlphaBetaPolicy, HybridBFS, SemiExternalBFS
from repro.bfs.parallel import ShardExecutor
from repro.errors import ConfigurationError
from repro.graph500.validate import validate_bfs_tree
from repro.perfmodel.cost import DramCostModel
from repro.semiext import NVMStore, PCIE_FLASH


class TestShardExecutor:
    def test_map_preserves_order(self):
        with ShardExecutor(4) as ex:
            assert ex.map(lambda x: x * x, list(range(10))) == [
                i * i for i in range(10)
            ]

    def test_single_item_runs_inline(self):
        with ShardExecutor(2) as ex:
            assert ex.map(lambda x: x + 1, [41]) == [42]

    def test_exceptions_propagate(self):
        def boom(x):
            raise ValueError(f"bad {x}")

        with ShardExecutor(2) as ex:
            with pytest.raises(ValueError):
                ex.map(boom, [1, 2, 3])

    def test_closed_executor_rejected(self):
        ex = ShardExecutor(2)
        ex.close()
        with pytest.raises(ConfigurationError):
            ex.map(lambda x: x, [1, 2])
        ex.close()  # idempotent

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigurationError):
            ShardExecutor(0)


class TestParallelEngines:
    def test_hybrid_parallel_identical_to_sequential(
        self, forward, backward, edges, a_root
    ):
        seq = HybridBFS(
            forward, backward, AlphaBetaPolicy(50, 500), DramCostModel()
        ).run(a_root)
        par_engine = HybridBFS(
            forward, backward, AlphaBetaPolicy(50, 500), DramCostModel(),
            n_workers=4,
        )
        par = par_engine.run(a_root)
        par_engine.close()
        assert np.array_equal(par.parent, seq.parent)
        assert par.direction_schedule() == seq.direction_schedule()
        assert par.modeled_time_s == pytest.approx(seq.modeled_time_s)
        assert [t.edges_scanned for t in par.traces] == [
            t.edges_scanned for t in seq.traces
        ]

    def test_parallel_tree_validates(self, forward, backward, edges, a_root):
        engine = HybridBFS(
            forward, backward, AlphaBetaPolicy(50, 500), n_workers=4
        )
        res = engine.run(a_root)
        engine.close()
        assert validate_bfs_tree(edges, res.parent, a_root).ok

    def test_semi_external_parallel_identical(
        self, forward, backward, a_root, tmp_path
    ):
        runs = {}
        for tag, workers in (("seq", None), ("par", 4)):
            store = NVMStore(tmp_path / tag, PCIE_FLASH)
            engine = SemiExternalBFS.offload(
                forward, backward, AlphaBetaPolicy(50, 500), store,
                cost_model=DramCostModel(),
            )
            engine.executor = (
                ShardExecutor(workers) if workers else None
            )
            runs[tag] = (engine.run(a_root), store)
            engine.close()
        seq, seq_store = runs["seq"]
        par, par_store = runs["par"]
        assert np.array_equal(par.parent, seq.parent)
        # Deferred charges applied in shard order: identical meters.
        assert par_store.iostats.n_requests == seq_store.iostats.n_requests
        assert par_store.iostats.total_bytes == seq_store.iostats.total_bytes
        assert par.modeled_time_s == pytest.approx(seq.modeled_time_s)

    def test_repeated_runs_reuse_pool(self, forward, backward, a_root):
        engine = HybridBFS(
            forward, backward, AlphaBetaPolicy(50, 500), n_workers=2
        )
        r1 = engine.run(a_root)
        r2 = engine.run(a_root)
        engine.close()
        assert np.array_equal(r1.parent, r2.parent)
