"""Tracing-layer unit tests: trace-context propagation, tracer lookup,
histogram exemplars, the drain/absorb cross-process span protocol, the
schema lint over real sessions, and the profiling folds."""

from __future__ import annotations

import pytest

from repro.core import DRAM_PCIE_FLASH, run_graph500
from repro.obs import (
    NULL,
    Observability,
    Tracer,
    collapsed_stacks,
    lint_session,
    read_jsonl,
    self_time_table,
    write_jsonl,
)
from repro.obs.profile import track_of
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import TraceContext


class TestTraceContext:
    def test_span_under_active_context_gets_trace_id(self):
        tracer = Tracer()
        with tracer.activate(TraceContext(trace_id="t000007")):
            with tracer.span("a"):
                pass
        assert tracer.find("a")[0].attrs["trace_id"] == "t000007"

    def test_context_restored_after_activate(self):
        tracer = Tracer()
        assert tracer.active_context is None
        ctx = TraceContext(trace_id="t000001")
        with tracer.activate(ctx):
            assert tracer.active_context is ctx
        assert tracer.active_context is None

    def test_activate_none_keeps_enclosing_context(self):
        tracer = Tracer()
        ctx = TraceContext(trace_id="t000002")
        with tracer.activate(ctx):
            with tracer.activate(None):
                assert tracer.active_context is ctx

    def test_remote_parent_lands_on_root_span_only(self):
        # A context carrying a parent span id marks the *root* span of
        # the local tree with flow_parent (the cross-process link);
        # nested spans have a real local parent instead.
        tracer = Tracer()
        ctx = TraceContext(trace_id="t000003", parent_span_id=99)
        with tracer.activate(ctx):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        root = tracer.find("root")[0]
        child = tracer.find("child")[0]
        assert root.attrs["flow_parent"] == 99
        assert "flow_parent" not in child.attrs
        assert child.parent_id == root.span_id

    def test_trace_ids_are_sequential_and_deterministic(self):
        obs = Observability()
        assert [obs.new_trace_id() for _ in range(3)] == [
            "t000001", "t000002", "t000003"
        ]

    def test_disabled_session_mints_null_trace_id(self):
        assert NULL.new_trace_id() == "t000000"
        with NULL.activate(TraceContext(trace_id="t000009")):
            pass  # nullcontext: no tracer state to corrupt


class TestTracerLookup:
    def _tracer(self):
        tracer = Tracer()
        for name in ("dist.worker", "dist.worker_scan", "dist.merge",
                     "serve.batch"):
            with tracer.span(name):
                pass
        return tracer

    def test_find_is_exact(self):
        tracer = self._tracer()
        assert len(tracer.find("dist.worker")) == 1

    def test_find_prefix(self):
        tracer = self._tracer()
        names = {s.name for s in tracer.find_prefix("dist.worker")}
        assert names == {"dist.worker", "dist.worker_scan"}
        assert tracer.find_prefix("nope") == []

    def test_find_glob(self):
        tracer = self._tracer()
        names = {s.name for s in tracer.find_glob("dist.*")}
        assert names == {"dist.worker", "dist.worker_scan", "dist.merge"}
        assert {s.name for s in tracer.find_glob("*.batch")} == {
            "serve.batch"
        }


class TestHistogramExemplars:
    def test_exemplar_stored_per_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        hist.observe(0.5, exemplar="t000001")
        hist.observe(5.0, exemplar="t000002")
        hist.observe(99.0, exemplar="t000003")
        assert hist.exemplars["1.0"] == ("t000001", 0.5)
        assert hist.exemplars["10.0"] == ("t000002", 5.0)
        assert hist.exemplars["+Inf"] == ("t000003", 99.0)

    def test_latest_exemplar_wins_and_plain_observe_keeps_none(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        assert hist.exemplars == {}
        hist.observe(0.2, exemplar="t000001")
        hist.observe(0.3, exemplar="t000002")
        assert hist.exemplars["1.0"] == ("t000002", 0.3)

    def test_exemplars_round_trip_through_jsonl(self, tmp_path):
        obs = Observability()
        obs.histogram("bfs.level_seconds").observe(0.25, exemplar="t000042")
        path = write_jsonl(obs, tmp_path / "events.jsonl")
        restored = read_jsonl(path)
        for metric in restored.registry.metrics():
            if metric.name == "bfs.level_seconds":
                le, = [k for k, v in metric.exemplars.items()
                       if v == ("t000042", 0.25)]
                assert float(le) >= 0.25
                break
        else:
            raise AssertionError("histogram not restored")


class TestDrainAbsorb:
    def test_drain_moves_spans_and_clears(self):
        obs = Observability()
        with obs.span("dist.worker"):
            pass
        payload = obs.drain()
        assert [s[2] for s in payload["spans"]] == ["dist.worker"]
        assert obs.tracer.spans == []
        assert obs.drain()["spans"] == []

    def test_disabled_session_drains_none(self):
        assert NULL.drain() is None

    def test_absorb_tags_and_remaps_parent_links(self):
        worker = Observability()
        with worker.span("dist.worker"):
            with worker.span("nvm.charge"):
                pass
        coord = Observability()
        with coord.span("dist.run"):
            pass
        coord.absorb(worker.drain(), worker=1)
        by_name = {s.name: s for s in coord.tracer.spans}
        outer, inner = by_name["dist.worker"], by_name["nvm.charge"]
        assert outer.attrs["track"] == "worker1"
        assert outer.attrs["worker"] == 1
        assert outer.attrs["generation"] == 0
        assert inner.parent_id == outer.span_id
        # Remapped ids never collide with the coordinator's own spans.
        ids = [s.span_id for s in coord.tracer.spans]
        assert len(set(ids)) == len(ids)

    def test_parent_links_survive_split_drains(self):
        worker = Observability()
        outer_cm = worker.span("dist.worker")
        outer_cm.__enter__()
        coord = Observability()
        coord.absorb(worker.drain(), worker=0)  # open span ships first
        outer_cm.__exit__(None, None, None)
        with worker.span("dist.worker"):
            pass
        coord.absorb(worker.drain(), worker=0)
        spans = [s for s in coord.tracer.spans if s.name == "dist.worker"]
        assert len(spans) == 2

    def test_counter_deltas_never_double_count(self):
        worker = Observability()
        worker.counter("dist.worker_edges_total", worker=0,
                       medium="dram").inc(3)
        coord = Observability()
        coord.absorb(worker.drain(), worker=0)
        worker.counter("dist.worker_edges_total", worker=0,
                       medium="dram").inc(2)
        # Drain ships the *cumulative* snapshot; absorb applies deltas.
        coord.absorb(worker.drain(), worker=0)
        assert coord.registry.total("dist.worker_edges_total") == 5

    def test_absorbed_metrics_gain_worker_label(self):
        worker = Observability()
        worker.counter("nvm.requests_total", device="pcie",
                       op="read").inc(4)
        coord = Observability()
        coord.absorb(worker.drain(), worker=2)
        assert coord.registry.value(
            "nvm.requests_total", device="pcie", op="read", worker=2
        ) == 4

    def test_absorb_into_disabled_session_is_noop(self):
        worker = Observability()
        with worker.span("dist.worker"):
            pass
        NULL.absorb(worker.drain(), worker=0)  # must not raise
        coord = Observability()
        coord.absorb(None, worker=0)  # dead worker shipped nothing
        assert coord.tracer.spans == []


class TestSchemaLint:
    def test_real_run_session_is_clean(self, tmp_path):
        obs = Observability()
        run_graph500(DRAM_PCIE_FLASH, scale=8, n_roots=2, seed=7,
                     validate=False, workdir=tmp_path, obs=obs)
        assert lint_session(obs) == []

    def test_real_serve_session_is_clean(self, tmp_path):
        from repro.serve import (
            BFSServer,
            GraphCatalog,
            WorkloadSpec,
            generate_workload,
        )

        obs = Observability()
        catalog = GraphCatalog(workdir=tmp_path, obs=obs)
        graph = catalog.build("g", DRAM_PCIE_FLASH, scale=8, seed=11,
                              alpha=4.0, beta=4.0)
        spec = WorkloadSpec(n_requests=20, graph="g", seed=7, root_pool=5)
        server = BFSServer(catalog, batch_size=4, queue_capacity=8,
                           obs=obs)
        server.serve(generate_workload(spec, graph.degrees))
        catalog.close()
        assert lint_session(obs) == []

    def test_real_dist_session_is_clean(self, tmp_path):
        import numpy as np

        from repro.bfs import AlphaBetaPolicy
        from repro.csr import build_csr
        from repro.dist import ContiguousPartitioner, DistributedBFS
        from repro.graph500 import EdgeList, generate_edges
        from repro.semiext import PCIE_FLASH

        n = 1 << 8
        edges = EdgeList(generate_edges(8, seed=3), n)
        csr = build_csr(edges)
        root = int(np.flatnonzero(csr.degrees() > 0)[0])
        obs = Observability()
        engine = DistributedBFS.build(
            csr, ContiguousPartitioner(2),
            AlphaBetaPolicy(alpha=50.0, beta=50.0),
            tmp_path, PCIE_FLASH, obs=obs,
        )
        try:
            engine.run(root)
        finally:
            engine.close()
        assert lint_session(obs) == []

    def test_unregistered_names_are_reported(self):
        obs = Observability()
        obs.registry.counter("rogue.metric_total").inc()
        with obs.span("rogue.span"):
            pass
        obs.event("rogue.event")
        problems = "\n".join(lint_session(obs))
        assert "rogue.metric_total" in problems
        assert "rogue.span" in problems
        assert "rogue.event" in problems

    def test_kind_mismatch_is_reported(self):
        obs = Observability()
        # bfs.runs_total is registered as a counter.
        obs.registry.gauge("bfs.runs_total").set(1)
        assert any("bfs.runs_total" in p for p in lint_session(obs))


class TestProfile:
    def _session(self):
        from repro.semiext.clock import SimulatedClock

        obs = Observability()
        clock = SimulatedClock()
        obs.bind_clock(clock)
        with obs.span("dist.run"):
            with obs.span("dist.level"):
                clock.advance(1.0)
        with obs.span("dist.worker", track="worker0"):
            clock.advance(0.5)
            with obs.span("nvm.charge", track="worker0", bytes=4096):
                clock.advance(2.0)
        return obs

    def test_track_partitioning(self):
        obs = self._session()
        tracks = {track_of(s) for s in obs.tracer.spans}
        assert tracks == {"coordinator", "worker0"}

    def test_self_time_telescopes_per_lane(self):
        obs = self._session()
        rows = self_time_table(obs)
        lane = {}
        for r in rows:
            lane[r.track] = lane.get(r.track, 0.0) + r.self_s
        # Lane self-time sums to the lane's root-span durations.
        assert lane["coordinator"] == pytest.approx(1.0)
        assert lane["worker0"] == pytest.approx(2.5)

    def test_byte_attribution(self):
        obs = self._session()
        row, = [r for r in self_time_table(obs) if r.name == "nvm.charge"]
        assert row.bytes == 4096
        assert row.self_s == pytest.approx(2.0)

    def test_collapsed_stacks_fold(self):
        obs = self._session()
        folded = collapsed_stacks(obs)
        assert folded["coordinator;dist.run;dist.level"] == 1_000_000
        assert folded["worker0;dist.worker;nvm.charge"] == 2_000_000
        assert folded["worker0;dist.worker"] == 500_000

    def test_rows_sorted_by_descending_self_time(self):
        rows = self_time_table(self._session())
        assert [r.self_s for r in rows] == sorted(
            (r.self_s for r in rows), reverse=True
        )
