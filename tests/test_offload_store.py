"""Unit + property tests for the tiered backward store (§VI-E, Fig. 14).

Three pillars, matching the tier's contract:

* **byte equivalence** — the DRAM prefix plus the NVM tail reassemble
  exactly the original shard, row by row and in order;
* **exact fallthrough accounting** — per-vertex counters match counts a
  reader can compute by hand on a four-vertex graph;
* **tree identity** — a property test: the tiered engine's BFS parent
  array is bit-identical to the untiered semi-external engine's for
  *every* k on random graphs (and so in particular for k ≥ max degree,
  where the tail is empty).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bfs import AlphaBetaPolicy, SemiExternalBFS, TieredKPolicy
from repro.csr import BackwardGraph, ForwardGraph, build_csr
from repro.errors import ConfigurationError
from repro.numa import NumaTopology
from repro.obs import Observability
from repro.semiext import (
    NVMStore,
    PCIE_FLASH,
    MemoryHierarchy,
    TieredBackwardStore,
    TieredScanner,
    truncated_nbytes,
)
from repro.util.bitmap import Bitmap


@pytest.fixture()
def shard():
    # Symmetrized degrees: 0->3, 1->1, 2->2, 3->2; sorted rows:
    # 0: [1, 2, 3]   1: [0]   2: [0, 3]   3: [0, 2]
    return build_csr(np.array([[0, 0, 0, 3], [1, 2, 3, 2]]), n_vertices=4)


class TestByteEquivalence:
    def test_prefix_plus_tail_reassembles_every_row(self, csr, store):
        scanner = TieredScanner(csr, 4, store, "t")
        tail = scanner.tail.to_csr_uncharged()
        for v in range(0, csr.n_rows, 97):
            merged = np.concatenate(
                [scanner.prefix.neighbors(v), tail.neighbors(v)]
            )
            assert np.array_equal(merged, csr.neighbors(v))

    def test_adjacency_bytes_identical_to_full_shard(self, shard, store):
        scanner = TieredScanner(shard, 1, store, "t")
        tail = scanner.tail.to_csr_uncharged()
        rebuilt = np.concatenate(
            [
                np.concatenate(
                    [scanner.prefix.neighbors(v), tail.neighbors(v)]
                )
                for v in range(shard.n_rows)
            ]
        )
        full = np.concatenate(
            [shard.neighbors(v) for v in range(shard.n_rows)]
        )
        assert rebuilt.tobytes() == full.tobytes()

    def test_truncated_nbytes_matches_built_prefix(self, backward, store):
        for k in (0, 2, 8):
            for i, shard in enumerate(backward.shards):
                scanner = TieredScanner(shard, k, store, f"m{k}.{i}")
                assert scanner.dram_nbytes == truncated_nbytes(
                    shard.degrees(), k
                )

    def test_dram_bytes_monotone_in_k(self, backward, tmp_path):
        sizes = []
        for k in (2, 8, 32):
            store = NVMStore(tmp_path / f"k{k}", PCIE_FLASH)
            sizes.append(
                TieredBackwardStore.build(backward, k, store).dram_nbytes
            )
        assert sizes[0] < sizes[1] < sizes[2]

    def test_negative_k_rejected(self, shard, store):
        with pytest.raises(ConfigurationError):
            TieredScanner(shard, -1, store, "neg")
        with pytest.raises(ConfigurationError):
            truncated_nbytes(np.array([1, 2]), -1)

    def test_empty_store_rejected(self):
        with pytest.raises(ConfigurationError):
            TieredBackwardStore([], 4)


class TestFallthroughAccounting:
    def test_hand_computed_counts(self, shard, store):
        # k=1, frontier={3}: every prefix is the single first edge and
        # every prefix probe misses (no first edge is 3).
        #   row 0: [1] miss, tail [2, 3] -> hit at the 2nd tail probe
        #   row 1: [0] miss, degree 1 <= k -> complete in DRAM, no tail
        #   row 2: [0] miss, tail [3]    -> hit at the 1st tail probe
        #   row 3: [0] miss, tail [2]    -> miss
        scanner = TieredScanner(shard, 1, store, "t")
        frontier = Bitmap.from_indices(4, np.array([3]))
        out = scanner.scan(np.arange(4, dtype=np.int64), frontier)
        assert out.parents.tolist() == [3, -1, 3, -1]
        assert scanner.rows_scanned == 4
        assert scanner.fallthrough_rows == 3
        assert scanner.scanned_dram == 4 == out.scanned_dram
        assert scanner.scanned_nvm == 4 == out.scanned_nvm

    def test_prefix_hits_never_touch_the_device(self, shard, store):
        # Full frontier: every row hits its first prefix edge.
        scanner = TieredScanner(shard, 1, store, "t")
        before = store.iostats.n_requests
        out = scanner.scan(
            np.arange(4, dtype=np.int64),
            Bitmap.from_indices(4, np.arange(4)),
        )
        assert (out.parents[shard.degrees() > 0] >= 0).all()
        assert scanner.fallthrough_rows == 0
        assert out.scanned_nvm == 0
        assert store.iostats.n_requests == before

    def test_complete_in_dram_rows_excluded_from_fallthrough(
        self, shard, store
    ):
        # k=3 >= max degree: nothing has a tail, so even a total miss
        # (empty frontier) falls through nowhere.
        scanner = TieredScanner(shard, 3, store, "t")
        out = scanner.scan(
            np.arange(4, dtype=np.int64), Bitmap.from_indices(4, np.array([]))
        )
        assert (out.parents == -1).all()
        assert scanner.fallthrough_rows == 0
        assert out.scanned_nvm == 0

    def test_counters_accumulate_across_scans(self, shard, store):
        scanner = TieredScanner(shard, 1, store, "t")
        frontier = Bitmap.from_indices(4, np.array([3]))
        scanner.scan(np.arange(4, dtype=np.int64), frontier)
        scanner.scan(np.arange(4, dtype=np.int64), frontier)
        assert scanner.rows_scanned == 8
        assert scanner.fallthrough_rows == 6

    def test_offload_metrics_match_store_counters(
        self, forward, backward, a_root, tmp_path
    ):
        obs = Observability()
        store = NVMStore(tmp_path / "obs", PCIE_FLASH, obs=obs)
        tiered = TieredBackwardStore.build(backward, 2, store, obs=obs)
        engine = SemiExternalBFS.offload(
            forward=forward,
            backward=backward,
            policy=AlphaBetaPolicy(alpha=100, beta=100),
            store=store,
            backward_scanners=tiered.scanners,
        )
        engine.run(a_root)
        reg = obs.registry
        assert reg.value("offload.rows_scanned_total") == tiered.rows_scanned
        assert (
            reg.value("offload.fallthrough_rows_total")
            == tiered.fallthrough_rows
        )
        assert (
            reg.value("offload.scanned_edges_total", tier="dram")
            == tiered.scanned_dram
        )
        assert (
            reg.value("offload.scanned_edges_total", tier="nvm")
            == tiered.scanned_nvm
        )
        assert (
            reg.value("offload.dram_resident_bytes") == tiered.dram_nbytes
        )
        assert reg.value("offload.nvm_tail_bytes") == tiered.nvm_nbytes


@st.composite
def tiny_graphs(draw):
    n = draw(st.integers(4, 24))
    m = draw(st.integers(1, 40))
    srcs = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dsts = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    k = draw(st.integers(0, 8))
    return n, np.array([srcs, dsts], dtype=np.int64), k


class TestTreeIdentity:
    @given(g=tiny_graphs())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_tiered_tree_bit_identical_for_every_k(self, tmp_path, g):
        n, pairs, k = g
        csr = build_csr(pairs, n_vertices=n)
        nonisolated = np.flatnonzero(csr.degrees() > 0)
        if not nonisolated.size:
            return
        root = int(nonisolated[0])
        topo = NumaTopology(n_nodes=2, cores_per_node=2)
        fwd, bwd = ForwardGraph(csr, topo), BackwardGraph(csr, topo)
        # Tiny beta forces bottom-up levels, so the tier actually scans.
        policy = AlphaBetaPolicy(alpha=1, beta=1)
        sub = tmp_path / f"n{n}m{pairs.shape[1]}k{k}-{abs(hash(pairs.tobytes())) % 10**8}"
        plain = SemiExternalBFS.offload(
            forward=fwd, backward=bwd, policy=policy,
            store=NVMStore(sub / "plain", PCIE_FLASH),
        ).run(root)
        tiered = SemiExternalBFS.offload(
            forward=fwd, backward=bwd, policy=policy,
            store=NVMStore(sub / "tiered", PCIE_FLASH), offload_k=k,
        ).run(root)
        assert tiered.parent.tobytes() == plain.parent.tobytes()

    def test_k_at_least_max_degree_means_empty_tails(self, shard, store):
        k = int(shard.degrees().max())
        scanner = TieredScanner(shard, k, store, "full")
        assert scanner.nvm_nbytes == 0 or not scanner._has_tail.any()
        assert scanner.dram_nbytes == truncated_nbytes(shard.degrees(), k)


class TestTieredKPolicy:
    def test_picks_smallest_health_admissible_k(self):
        # deg > 2 on 2 of 4 rows = 0.5 exposed, exactly the default cap.
        deg = np.array([1, 2, 4, 64])
        assert TieredKPolicy().pick([deg], MemoryHierarchy(10**6)) == 2

    def test_no_k_fits_returns_none(self, backward):
        degs = [s.degrees() for s in backward.shards]
        assert TieredKPolicy().pick(degs, MemoryHierarchy(64)) is None

    def test_budget_below_smallest_admissible_k_returns_none(self):
        # Larger k only costs *more* DRAM, so a budget too small for the
        # health-minimal k rules out every candidate.
        deg = np.array([1, 2, 4, 64])
        budget = truncated_nbytes(deg, 2) - 1
        assert TieredKPolicy().pick([deg], MemoryHierarchy(budget)) is None

    def test_degraded_device_prefers_larger_k(self):
        deg = np.array([1, 2, 4, 64])
        hierarchy = MemoryHierarchy(10**6)
        healthy = TieredKPolicy().pick([deg], hierarchy, device_health=1.0)
        # health 0.5 halves the cap to 0.25: k=2 exposes 0.5, k=4 exposes
        # exactly 0.25 — the sick device pays DRAM to avoid fallthroughs.
        sick = TieredKPolicy().pick([deg], hierarchy, device_health=0.5)
        assert healthy == 2
        assert sick == 4

    def test_prove_reserves_dram(self, backward):
        degs = [s.degrees() for s in backward.shards]
        hierarchy = MemoryHierarchy(10**9)
        proved = TieredKPolicy().prove(degs, hierarchy)
        assert proved is not None
        k, placement = proved
        from repro.semiext import Tier

        assert hierarchy.used(Tier.DRAM) >= truncated_nbytes(
            np.concatenate(degs), k
        )
