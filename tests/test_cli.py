"""CLI smoke tests (every subcommand runs and prints the expected rows)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if a.__class__.__name__ == "_SubParsersAction"
        )
        assert set(sub.choices) == {
            "run", "sweep", "sizes", "green", "compare",
            "iostat", "locality", "offload", "serve", "reproduce",
            "slo", "perf", "conformance", "profile",
        }

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro" in capsys.readouterr().out


class TestUsageErrors:
    """Invalid option values exit 2 with a usage line, never a traceback."""

    def _expect_usage_error(self, capsys, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        captured = capsys.readouterr()
        assert "usage:" in captured.err
        assert "Traceback" not in captured.err
        assert "Traceback" not in captured.out
        return captured.err

    def test_invalid_scenario_run(self, capsys):
        err = self._expect_usage_error(
            capsys, ["run", "--scenario", "floppy"]
        )
        assert "invalid choice: 'floppy'" in err

    def test_invalid_scenario_serve(self, capsys):
        err = self._expect_usage_error(
            capsys, ["serve", "--scenario", "tape"]
        )
        assert "invalid choice: 'tape'" in err

    def test_invalid_workload_unknown_key(self, capsys):
        err = self._expect_usage_error(
            capsys, ["serve", "--workload", "bogus=1"]
        )
        assert "unknown workload key" in err

    @pytest.mark.parametrize("command", ["run", "serve"])
    @pytest.mark.parametrize("value", ["0", "-2", "x"])
    def test_invalid_partitions(self, capsys, command, value):
        err = self._expect_usage_error(
            capsys, [command, "--partitions", value]
        )
        assert "--partitions" in err

    def test_partitions_need_semi_external_scenario(self, capsys):
        assert main(
            ["run", "--scenario", "dram", "--partitions", "2"]
        ) == 2
        err = capsys.readouterr().err
        assert "semi-external" in err
        assert "Traceback" not in err

    def test_invalid_workload_not_key_value(self, capsys):
        err = self._expect_usage_error(
            capsys, ["serve", "--workload", "n200"]
        )
        assert "not key=value" in err

    def test_invalid_workload_not_a_number(self, capsys):
        err = self._expect_usage_error(
            capsys, ["serve", "--workload", "n=lots"]
        )
        assert "needs a number" in err

    def test_invalid_faults_spec(self, capsys):
        self._expect_usage_error(
            capsys, ["run", "--faults", "error_rate=maybe"]
        )


class TestCommands:
    def test_sizes(self, capsys):
        assert main(["sizes", "--scales", "26", "28"]) == 0
        out = capsys.readouterr().out
        assert "SCALE 27" in out
        assert "forward=  40.0 GB" in out

    def test_green(self, capsys):
        assert main(["green", "--teps", "4.22e9"]) == 0
        out = capsys.readouterr().out
        assert "MTEPS/W" in out

    def test_run_dram(self, capsys):
        assert main([
            "run", "--scenario", "dram", "--scale", "9",
            "--roots", "2", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "DRAM-only" in out
        assert "median TEPS" in out
        assert "valid:           True" in out

    def test_run_pcie_reports_iostat(self, capsys):
        assert main([
            "run", "--scenario", "pcie", "--scale", "9",
            "--roots", "2", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "avgrq-sz" in out

    def test_run_obs_writes_all_three_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "obs"
        assert main([
            "run", "--scenario", "pcie", "--scale", "9",
            "--roots", "2", "--seed", "3", "--obs", str(out_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "bfs.* metrics" in out
        for name in ("events.jsonl", "trace.json", "metrics.prom"):
            artifact = out_dir / name
            assert artifact.exists(), name
            assert artifact.stat().st_size > 0, name
            assert str(artifact) in out

    def test_run_obs_with_faults(self, capsys, tmp_path):
        assert main([
            "run", "--scenario", "pcie", "--scale", "9", "--roots", "2",
            "--seed", "3", "--faults", "error_rate=0.05,seed=7",
            "--obs", str(tmp_path / "obs"),
        ]) == 0
        prom = (tmp_path / "obs" / "metrics.prom").read_text()
        assert "resilience_attempts_total" in prom
        assert "health_score" in prom

    def test_sweep(self, capsys):
        assert main([
            "sweep", "--scenario", "dram", "--scale", "9", "--roots", "1",
            "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "best: alpha=" in out

    def test_compare(self, capsys):
        assert main([
            "compare", "--scale", "9", "--roots", "1", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "Graph500 reference" in out
        assert "DRAM+PCIeFlash" in out

    def test_iostat(self, capsys):
        assert main([
            "iostat", "--scale", "9", "--roots", "2", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "avgqu-sz" in out and "avgrq-sz" in out

    def test_iostat_ssd(self, capsys):
        assert main([
            "iostat", "--scenario", "ssd", "--scale", "9",
            "--roots", "1", "--seed", "3",
        ]) == 0
        assert "Intel SSD" in capsys.readouterr().out

    def test_locality(self, capsys):
        assert main(["locality", "--scale", "9", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "NETAL layout remote:  0.0%" in out

    def test_offload(self, capsys):
        assert main([
            "offload", "--scale", "9", "--ks", "2", "8", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "degree-threshold" in out

    def test_serve(self, capsys):
        assert main([
            "serve", "--scale", "9", "--seed", "3",
            "--workload", "n=60,rate=2000,zipf=1.2,pool=16",
        ]) == 0
        out = capsys.readouterr().out
        assert "rejected requests: 0 (" in out
        assert "cache hit rate:" in out
        assert "chunk sharing:" in out

    def test_serve_obs_writes_all_three_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "obs"
        assert main([
            "serve", "--scale", "9", "--seed", "3",
            "--workload", "n=40,pool=8", "--obs", str(out_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "serve.* metrics" in out
        for name in ("events.jsonl", "trace.json", "metrics.prom"):
            artifact = out_dir / name
            assert artifact.exists(), name
            assert artifact.stat().st_size > 0, name

    def test_serve_trace_replay(self, capsys, tmp_path):
        from repro.serve import WorkloadSpec, generate_workload, save_trace
        from repro.graph500 import EdgeList, generate_edges
        from repro.csr import build_csr

        edges = EdgeList(generate_edges(9, seed=3), 1 << 9)
        degrees = build_csr(edges).degrees()
        spec = WorkloadSpec(n_requests=30, root_pool=8, seed=5)
        trace = tmp_path / "trace.jsonl"
        save_trace(generate_workload(spec, degrees), trace)
        assert main([
            "serve", "--scale", "9", "--seed", "3", "--trace", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "requests:          30" in out

    def test_serve_slo_prints_verdict_section(self, capsys):
        assert main([
            "serve", "--scale", "9", "--seed", "3",
            "--workload", "n=60,rate=2000,pool=16", "--slo",
        ]) == 0
        out = capsys.readouterr().out
        assert "SLO verdicts (simulated run of" in out
        assert "serve-latency" in out
        assert "serve-availability" in out
        assert "budget used" in out
        assert "burn 5%w" in out

    def test_slo_renders_dashboard_from_export(self, capsys, tmp_path):
        out_dir = tmp_path / "obs"
        assert main([
            "serve", "--scale", "9", "--seed", "3",
            "--workload", "n=40,pool=8", "--obs", str(out_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["slo", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "run dashboard" in out
        assert "SLO verdicts" in out
        assert "-- derived metrics" in out
        assert "-- raw metrics" in out

    def test_slo_json_output(self, capsys, tmp_path):
        import json

        out_dir = tmp_path / "obs"
        assert main([
            "run", "--scenario", "pcie", "--scale", "9", "--roots", "1",
            "--seed", "3", "--obs", str(out_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["slo", str(out_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"slo", "derived"}
        assert payload["derived"]["level_series"]

    def test_slo_missing_export_exits_2(self, capsys, tmp_path):
        assert main(["slo", str(tmp_path / "nope")]) == 2
        captured = capsys.readouterr()
        assert "error: cannot read obs export" in captured.err
        assert "Traceback" not in captured.err

    def test_perf_list(self, capsys):
        assert main(["perf", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig11_degradation" in out
        assert "serve_batching" in out

    def test_perf_runs_scenario_and_gates(self, capsys, tmp_path):
        assert main([
            "perf", "--scenario", "serve_batching",
            "--out", str(tmp_path / "bench"),
            "--baseline", "benchmarks/baselines",
        ]) == 0
        out = capsys.readouterr().out
        assert (tmp_path / "bench" / "BENCH_serve_batching.json").exists()
        assert "perf gate: PASS" in out

    def test_perf_unknown_scenario_exits_2(self, capsys):
        assert main(["perf", "--scenario", "warp_drive"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_missing_trace_exits_2(self, capsys, tmp_path):
        assert main([
            "serve", "--scale", "9",
            "--trace", str(tmp_path / "nope.jsonl"),
        ]) == 2
        captured = capsys.readouterr()
        assert "error: cannot read trace" in captured.err
        assert "Traceback" not in captured.err
