"""Stress: mutations × in-flight batched queries × crash injection.

The serving tier's strongest promise under churn: with edge-mutation
batches landing between traversal batches and seeded crashes killing
traversals mid-level, every admitted query still completes **at most
once** (exactly once when nothing is rejected), and no answer is ever
computed against a *torn* graph version — every completion matches a
whole version of the mutation history bit-for-bit.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.bfs.reference import ReferenceBFS
from repro.core import DRAM_PCIE_FLASH
from repro.csr import build_csr
from repro.graphmut import DeltaOverlay, MutationBatch
from repro.semiext.faults import FaultPlan
from repro.serve import (
    BFSServer,
    GraphCatalog,
    WorkloadSpec,
    generate_workload,
)
from repro.serve.workload import MutationEvent, Request

SCALE = 8


def _catalog(tmp_path, fault_plan=None, seed=7):
    scenario = DRAM_PCIE_FLASH
    if fault_plan is not None:
        scenario = replace(scenario, fault_plan=fault_plan)
    cat = GraphCatalog(workdir=tmp_path)
    cat.build("g", scenario, scale=SCALE, edge_factor=8, seed=seed,
              alpha=2.0, beta=4.0)
    return cat


def _mutating_stream(cat, seed, n=60, mut_rate=50.0):
    """Returns (stream, base_csr).

    The base CSR must be snapshotted *before* serving: mutation batches
    and compactions rewrite the catalog graph in place, so deriving the
    base from the catalog afterwards replays the history from the wrong
    starting graph.
    """
    spec = WorkloadSpec(
        n_requests=n, rate_rps=500.0, n_tenants=3, root_pool=16,
        seed=seed, graph="g", mut_rate=mut_rate, mut_inserts=2,
        mut_deletes=2,
    )
    graph = cat.get("g")
    base = build_csr(graph.edges)
    return generate_workload(spec, graph.degrees, csr=base), base


def _version_trees(base, stream, roots):
    """Reference parent trees for every root at every graph version."""
    overlay = DeltaOverlay(base)
    per_version = [
        {r: ReferenceBFS(base).run(r).parent for r in roots}
    ]
    for event in stream:
        if not isinstance(event, MutationEvent):
            continue
        overlay.apply(MutationBatch.make(event.inserts, event.deletes,
                                         base.n_rows))
        csr = overlay.to_csr()
        per_version.append(
            {r: ReferenceBFS(csr).run(r).parent for r in roots}
        )
    return per_version


def _assert_no_torn_version(report, per_version, cache):
    """Every surviving answer byte-equals SOME whole version's tree.

    A torn read (half-applied batch or half-swapped compaction) would
    produce a tree matching no version of the mutation history.
    """
    for c in report.completions:
        root = c.request.root
        entry = cache.peek("g", root)
        if entry is None:
            continue
        assert any(
            np.array_equal(entry.parent, trees[root])
            for trees in per_version
        ), (
            f"root {root}: cached tree matches no whole graph version "
            f"(torn read?)"
        )


class TestMutationStress:
    @pytest.mark.parametrize("seed", [7, 19, 101])
    def test_mutations_with_inflight_batches_complete_exactly_once(
        self, tmp_path, seed
    ):
        cat = _catalog(tmp_path, seed=seed)
        try:
            stream, base = _mutating_stream(cat, seed)
            queries = [r for r in stream if isinstance(r, Request)]
            server = BFSServer(cat, batch_size=4)
            report = server.serve(stream)
            # Exactly-once: every admitted query completes once.
            assert report.n_served + report.n_rejected == len(queries)
            ids = [id(c.request) for c in report.completions]
            assert len(ids) == len(set(ids))
            # No torn version: every still-cached answer matches a
            # whole version of the history.
            roots = sorted({q.root for q in queries})
            per_version = _version_trees(base, stream, roots)
            _assert_no_torn_version(report, per_version, server.cache)
            # And the final version's cached answers are byte-exact.
            mutator = server.mutator_for("g")
            final = mutator.effective_csr
            for root in roots:
                entry = server.cache.peek("g", root)
                if entry is not None and entry.version == mutator.version:
                    assert np.array_equal(
                        entry.parent,
                        ReferenceBFS(final).run(root).parent,
                    )
        finally:
            cat.close()

    @pytest.mark.parametrize("seed", [5, 23])
    def test_crash_during_mutating_serve_still_exactly_once(
        self, tmp_path, seed
    ):
        plan = FaultPlan(seed=seed, crash_at_level=1)
        cat = _catalog(tmp_path, fault_plan=plan, seed=seed)
        try:
            stream, base = _mutating_stream(cat, seed, n=40)
            queries = [r for r in stream if isinstance(r, Request)]
            server = BFSServer(cat, batch_size=4, checkpoint_every=1)
            report = server.serve(stream)
            assert report.n_crashes >= 1
            assert report.n_served + report.n_rejected == len(queries)
            ids = [id(c.request) for c in report.completions]
            assert len(ids) == len(set(ids))
            # Post-crash answers still land on whole versions only.
            roots = sorted({q.root for q in queries})
            per_version = _version_trees(base, stream, roots)
            _assert_no_torn_version(report, per_version, server.cache)
        finally:
            cat.close()

    def test_torn_crash_with_mutations_recovers_to_current_version(
        self, tmp_path
    ):
        plan = FaultPlan(seed=5, crash_at_level=1, crash_torn=True)
        cat = _catalog(tmp_path, fault_plan=plan)
        try:
            stream, _ = _mutating_stream(cat, seed=31, n=40)
            server = BFSServer(cat, batch_size=4, checkpoint_every=1)
            report = server.serve(stream)
            assert report.n_crashes >= 1
            mutator = server.mutator_for("g")
            final = mutator.effective_csr
            # Whatever survived to the final version is byte-exact.
            checked = 0
            for c in report.completions:
                entry = server.cache.peek("g", c.request.root)
                if entry is not None and entry.version == mutator.version:
                    assert np.array_equal(
                        entry.parent,
                        ReferenceBFS(final).run(c.request.root).parent,
                    )
                    checked += 1
            assert checked > 0
        finally:
            cat.close()

    def test_rapid_compaction_never_tears_a_pinned_read(self, tmp_path):
        """compact_every=1 races compaction against every query batch."""
        cat = _catalog(tmp_path)
        try:
            stream, _ = _mutating_stream(cat, seed=47, n=50, mut_rate=80.0)
            server = BFSServer(cat, batch_size=4)
            server.mutator_for("g").compact_every = 1
            report = server.serve(stream)
            queries = [r for r in stream if isinstance(r, Request)]
            assert report.n_served + report.n_rejected == len(queries)
            mutator = server.mutator_for("g")
            assert mutator.n_compactions >= 1
            # The final graph still answers byte-exactly after all the
            # store swaps.
            from repro.serve import BatchedBFS

            graph = cat.get("g")
            root = int(np.argmax(graph.degrees))
            got = BatchedBFS(graph).run_batch([root])[0].parent
            want = ReferenceBFS(mutator.effective_csr).run(root).parent
            assert np.array_equal(got, want)
        finally:
            cat.close()
