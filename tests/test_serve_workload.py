"""Workload generator tests: spec parsing, determinism, Zipf skew,
trace round-trip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    Request,
    WorkloadSpec,
    generate_workload,
    load_trace,
    save_trace,
)


@pytest.fixture(scope="module")
def degrees():
    rng = np.random.default_rng(5)
    d = rng.integers(0, 40, size=512)
    d[::7] = 0  # sprinkle isolated vertices
    return d


class TestSpecParsing:
    def test_parse_full_spec(self):
        spec = WorkloadSpec.parse(
            "n=100,rate=500,zipf=1.5,tenants=2,pool=32,seed=9"
        )
        assert spec.n_requests == 100
        assert spec.rate_rps == 500.0
        assert spec.zipf_s == 1.5
        assert spec.n_tenants == 2
        assert spec.root_pool == 32
        assert spec.seed == 9

    def test_parse_partial_spec_keeps_defaults(self):
        spec = WorkloadSpec.parse("n=10")
        assert spec.n_requests == 10
        assert spec.rate_rps == WorkloadSpec().rate_rps
        assert spec.seed is None

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload key"):
            WorkloadSpec.parse("bogus=1")

    def test_missing_equals_rejected(self):
        with pytest.raises(ConfigurationError, match="not key=value"):
            WorkloadSpec.parse("n200")

    def test_non_number_rejected(self):
        with pytest.raises(ConfigurationError, match="needs a number"):
            WorkloadSpec.parse("rate=fast")

    @pytest.mark.parametrize("bad", [
        "n=0", "rate=0", "zipf=0", "tenants=0", "pool=0", "n=-5",
    ])
    def test_non_positive_values_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            WorkloadSpec.parse(bad)

    def test_with_seed_fills_only_unset(self):
        assert WorkloadSpec.parse("n=5").with_seed(3).seed == 3
        assert WorkloadSpec.parse("n=5,seed=9").with_seed(3).seed == 9
        assert WorkloadSpec.parse("n=5").with_seed(None).seed is None


class TestGeneration:
    def test_same_seed_same_workload(self, degrees):
        spec = WorkloadSpec(n_requests=80, seed=4)
        assert generate_workload(spec, degrees) == \
            generate_workload(spec, degrees)

    def test_different_seed_different_workload(self, degrees):
        a = generate_workload(WorkloadSpec(n_requests=80, seed=4), degrees)
        b = generate_workload(WorkloadSpec(n_requests=80, seed=5), degrees)
        assert a != b

    def test_arrivals_are_increasing(self, degrees):
        reqs = generate_workload(WorkloadSpec(n_requests=50, seed=1), degrees)
        arrivals = [r.arrival_s for r in reqs]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_roots_come_from_top_degree_pool(self, degrees):
        spec = WorkloadSpec(n_requests=200, root_pool=8, seed=2)
        reqs = generate_workload(spec, degrees)
        eligible = np.flatnonzero(degrees > 0)
        order = np.argsort(-degrees[eligible], kind="stable")
        pool = set(int(v) for v in eligible[order][:8])
        assert set(r.root for r in reqs) <= pool
        assert all(degrees[r.root] > 0 for r in reqs)

    def test_zipf_skews_toward_hottest_root(self, degrees):
        spec = WorkloadSpec(n_requests=400, root_pool=32, zipf_s=1.5, seed=3)
        reqs = generate_workload(spec, degrees)
        counts: dict[int, int] = {}
        for r in reqs:
            counts[r.root] = counts.get(r.root, 0) + 1
        eligible = np.flatnonzero(degrees > 0)
        order = np.argsort(-degrees[eligible], kind="stable")
        hottest = int(eligible[order][0])
        assert counts[hottest] == max(counts.values())
        assert counts[hottest] > spec.n_requests / 10

    def test_tenants_within_spec(self, degrees):
        reqs = generate_workload(
            WorkloadSpec(n_requests=100, n_tenants=3, seed=6), degrees
        )
        assert set(r.tenant for r in reqs) <= {
            "tenant0", "tenant1", "tenant2"
        }

    def test_all_isolated_graph_rejected(self):
        with pytest.raises(ConfigurationError, match="no non-isolated"):
            generate_workload(WorkloadSpec(seed=1), np.zeros(16, dtype=int))


class TestTraceRoundTrip:
    def test_save_load_identity(self, degrees, tmp_path):
        reqs = generate_workload(WorkloadSpec(n_requests=40, seed=8), degrees)
        path = save_trace(reqs, tmp_path / "trace.jsonl")
        assert load_trace(path) == reqs

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"arrival_s": 0.5, "tenant": "t0", "graph": "g", "root": 3}\n'
            "\n"
        )
        assert load_trace(path) == [
            Request(arrival_s=0.5, tenant="t0", graph="g", root=3)
        ]

    def test_malformed_line_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"arrival_s": 0.5, "tenant": "t0", "graph": "g", "root": 3}\n'
            "nonsense\n"
        )
        with pytest.raises(ConfigurationError, match="bad.jsonl:2"):
            load_trace(path)

    def test_missing_field_reports_line_number(self, tmp_path):
        path = tmp_path / "short.jsonl"
        path.write_text('{"arrival_s": 0.5, "tenant": "t0"}\n')
        with pytest.raises(ConfigurationError, match="short.jsonl:1"):
            load_trace(path)
