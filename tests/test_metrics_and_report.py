"""Coverage for result metrics, report helpers and error hierarchy."""

import numpy as np
import pytest

from repro.analysis.report import ascii_table, format_float, format_teps
from repro.bfs.metrics import BFSResult, Direction, LevelTrace
from repro.errors import (
    CapacityError,
    ConfigurationError,
    GraphFormatError,
    ReproError,
    StorageError,
    ValidationError,
)


def _trace(level, direction, frontier, nxt, scanned, t=1e-3):
    return LevelTrace(
        level=level,
        direction=direction,
        frontier_size=frontier,
        next_size=nxt,
        edges_scanned=scanned,
        wall_time_s=t,
        modeled_time_s=t,
    )


@pytest.fixture()
def result():
    traces = (
        _trace(0, Direction.TOP_DOWN, 1, 10, 5),
        _trace(1, Direction.BOTTOM_UP, 10, 50, 100),
        _trace(2, Direction.TOP_DOWN, 50, 0, 60),
    )
    parent = np.array([0, 0, 1, -1], dtype=np.int64)
    return BFSResult(
        parent=parent,
        root=0,
        traces=traces,
        traversed_edges=80,
        wall_time_s=3e-3,
        modeled_time_s=3e-3,
    )


class TestLevelTrace:
    def test_avg_degree(self):
        t = _trace(0, Direction.TOP_DOWN, 4, 2, 20)
        assert t.avg_degree == 5.0

    def test_avg_degree_empty_frontier(self):
        t = _trace(0, Direction.TOP_DOWN, 0, 0, 0)
        assert t.avg_degree == 0.0

    def test_immutability(self):
        t = _trace(0, Direction.TOP_DOWN, 1, 1, 1)
        with pytest.raises(AttributeError):
            t.level = 5


class TestBFSResult:
    def test_n_levels_and_visited(self, result):
        assert result.n_levels == 3
        assert result.n_visited == 3

    def test_edges_by_direction(self, result):
        split = result.edges_by_direction()
        assert split[Direction.TOP_DOWN] == 65
        assert split[Direction.BOTTOM_UP] == 100

    def test_levels_by_direction(self, result):
        split = result.levels_by_direction()
        assert split[Direction.TOP_DOWN] == 2
        assert split[Direction.BOTTOM_UP] == 1

    def test_schedule_string(self, result):
        assert result.direction_schedule() == "TBT"

    def test_teps(self, result):
        assert result.teps() == pytest.approx(80 / 3e-3)
        assert result.teps(modeled=True) == pytest.approx(80 / 3e-3)

    def test_metrics_registry_replays_traces(self, result):
        reg = result.metrics_registry()
        assert reg.value("bfs.levels_total", direction="top-down") == 2
        assert reg.value("bfs.levels_total", direction="bottom-up") == 1
        assert reg.value(
            "bfs.edges_scanned_total", direction="top-down", medium="dram"
        ) == 65
        assert reg.value("bfs.traversed_edges_total") == 80
        assert reg.histogram("bfs.frontier_vertices").count == 3

    def test_metrics_registry_splits_nvm_medium(self):
        traces = (
            LevelTrace(
                level=0, direction=Direction.TOP_DOWN, frontier_size=1,
                next_size=2, edges_scanned=10, edges_scanned_nvm=4,
                wall_time_s=1e-3, modeled_time_s=1e-3,
            ),
        )
        r = BFSResult(
            parent=np.array([0], dtype=np.int64), root=0, traces=traces,
            traversed_edges=10, wall_time_s=1e-3, modeled_time_s=1e-3,
        )
        reg = r.metrics_registry()
        assert reg.value(
            "bfs.edges_scanned_total", direction="top-down", medium="dram"
        ) == 6
        assert reg.value(
            "bfs.edges_scanned_total", direction="top-down", medium="nvm"
        ) == 4

    def test_aggregate_views_agree_with_registry(self, result):
        # Fig. 10's bars must read identically from either interface.
        reg = result.metrics_registry()
        for d, total in result.edges_by_direction().items():
            assert total == int(
                reg.value("bfs.edges_scanned_total",
                          direction=d.value, medium="dram")
                + reg.value("bfs.edges_scanned_total",
                            direction=d.value, medium="nvm")
            )

    def test_teps_zero_time(self):
        r = BFSResult(
            parent=np.array([0]), root=0, traces=(),
            traversed_edges=10, wall_time_s=0.0, modeled_time_s=0.0,
        )
        assert r.teps() == 0.0


class TestReportHelpers:
    def test_format_teps_units(self):
        assert format_teps(5.12e9) == "5.12 GTEPS"
        assert format_teps(450e6) == "450.0 MTEPS"
        assert format_teps(123.0) == "123 TEPS"

    def test_format_float_regimes(self):
        assert format_float(0) == "0"
        assert format_float(0.5) == "0.5"
        assert "e" in format_float(2e-6)

    def test_ascii_table_empty_rows(self):
        text = ascii_table(["a", "b"], [])
        assert "a" in text

    def test_metrics_table_renders_and_filters(self):
        from repro.analysis.report import metrics_table
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("bfs.runs_total", engine="E").inc(2)
        reg.gauge("nvm.queue_depth", device="d").set(3.5)
        reg.histogram("bfs.level_seconds").observe(0.25)
        text = metrics_table(reg)
        assert 'bfs.runs_total{engine="E"}' in text
        assert "| counter" in text and "| gauge" in text
        assert "count=1 sum=0.25 mean=0.25" in text
        filtered = metrics_table(reg, prefix="nvm.")
        assert "nvm.queue_depth" in filtered
        assert "bfs.runs_total" not in filtered

    def test_metrics_table_sorts_series_with_differing_label_keys(self):
        # Series of one metric whose label *keys* differ (e.g. a reason-
        # tagged count next to a tenant-tagged one) must render in one
        # stable order no matter the registration order.
        from repro.analysis.report import metrics_table
        from repro.obs import MetricsRegistry

        rows = [
            ("reason", "queue_full"),
            ("tenant", "a"),
            ("device", "flash"),
            ("tenant", "b"),
        ]
        texts = []
        for order in (rows, list(reversed(rows))):
            reg = MetricsRegistry()
            for key, value in order:
                reg.counter("serve.rejected_total", **{key: value}).inc()
            texts.append(metrics_table(reg))
        assert texts[0] == texts[1]
        lines = [
            ln for ln in texts[0].splitlines()
            if "serve.rejected_total" in ln
        ]
        assert [ln.split("|")[1].strip() for ln in lines] == sorted(
            ln.split("|")[1].strip() for ln in lines
        )

    def test_ascii_table_alignment(self):
        text = ascii_table(["col"], [["x"], ["longer"]])
        lines = text.splitlines()
        assert len(lines) == 4


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            CapacityError,
            ValidationError,
            StorageError,
            GraphFormatError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_catchable_individually(self):
        with pytest.raises(CapacityError):
            raise CapacityError("full")
