"""tools/bench_trend.py: trend rendering over BENCH_*.json snapshots."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.perf import BenchArtifact, BenchMetric

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import bench_trend  # noqa: E402


def _write(outdir: Path, teps: float, byt: float,
           name: str = "toy") -> None:
    BenchArtifact(
        name=name,
        description="synthetic",
        seed=7,
        params={"scale": 10},
        simulated_seconds=1.0,
        metrics={
            "teps": BenchMetric(teps, "TEPS", True, tolerance=0.05),
            "bytes": BenchMetric(byt, "B", False, tolerance=0.05),
        },
    ).write(outdir)


class TestRenderTrend:
    def test_values_and_drift(self, tmp_path):
        _write(tmp_path / "old", teps=100.0, byt=1000.0)
        _write(tmp_path / "new", teps=103.0, byt=990.0)
        out = bench_trend.render_trend([
            ("old", bench_trend._snapshot(tmp_path / "old")),
            ("new", bench_trend._snapshot(tmp_path / "new")),
        ])
        assert "== toy (seed 7) ==" in out
        assert "+3.00%" in out
        assert "-1.00%" in out
        assert "!" not in out

    def test_regression_is_flagged(self, tmp_path):
        _write(tmp_path / "old", teps=100.0, byt=1000.0)
        _write(tmp_path / "new", teps=80.0, byt=1000.0)  # −20% TEPS
        out = bench_trend.render_trend([
            ("old", bench_trend._snapshot(tmp_path / "old")),
            ("new", bench_trend._snapshot(tmp_path / "new")),
        ])
        assert "-20.00%!" in out

    def test_missing_scenario_renders_dash(self, tmp_path):
        _write(tmp_path / "old", teps=100.0, byt=1000.0)
        (tmp_path / "new").mkdir()
        out = bench_trend.render_trend([
            ("old", bench_trend._snapshot(tmp_path / "old")),
            ("new", bench_trend._snapshot(tmp_path / "new")),
        ])
        assert "-" in out

    def test_needs_two_snapshots(self, tmp_path):
        _write(tmp_path / "only", teps=1.0, byt=1.0)
        with pytest.raises(ConfigurationError, match="at least two"):
            bench_trend.render_trend([
                ("only", bench_trend._snapshot(tmp_path / "only")),
            ])

    def test_unknown_scenario_filter_rejected(self, tmp_path):
        _write(tmp_path / "a", teps=1.0, byt=1.0)
        _write(tmp_path / "b", teps=1.0, byt=1.0)
        with pytest.raises(ConfigurationError, match="not in oldest"):
            bench_trend.render_trend(
                [
                    ("a", bench_trend._snapshot(tmp_path / "a")),
                    ("b", bench_trend._snapshot(tmp_path / "b")),
                ],
                scenarios=["nope"],
            )


class TestMain:
    def test_end_to_end_exit_codes(self, tmp_path, capsys):
        _write(tmp_path / "old", teps=100.0, byt=1000.0)
        _write(tmp_path / "new", teps=101.0, byt=1000.0)
        assert bench_trend.main(
            [str(tmp_path / "old"), str(tmp_path / "new")]
        ) == 0
        assert "toy" in capsys.readouterr().out
        assert bench_trend.main(
            [str(tmp_path / "old"), str(tmp_path / "missing")]
        ) == 2

    def test_against_committed_baselines(self, capsys):
        """The committed baselines trend against themselves: all-zero
        drift, every scenario present."""
        baselines = str(ROOT / "benchmarks" / "baselines")
        assert bench_trend.main([baselines, baselines]) == 0
        out = capsys.readouterr().out
        assert "profile_overhead" in out
        assert "!" not in out
