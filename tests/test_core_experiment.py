"""Tests for the one-shot evaluation runner."""

import json

import pytest

from repro.core.experiment import EvaluationRunner
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def report_and_paths(tmp_path_factory):
    out = tmp_path_factory.mktemp("eval")
    runner = EvaluationRunner(
        scale=10, n_roots=2, seed=13, workdir=out / "work"
    )
    report = runner.run_all()
    json_path, md_path = runner.write(out / "report")
    return report, json_path, md_path


class TestRunner:
    def test_all_experiments_present(self, report_and_paths):
        report, _, _ = report_and_paths
        for key in (
            "config",
            "table2_fig3_sizes",
            "fig7_alpha_beta",
            "fig8_comparison",
            "fig10_traversal_split",
            "fig11_degradation",
            "fig12_13_iostat",
            "fig14_backward_offload",
            "related_and_extras",
        ):
            assert key in report, key

    def test_size_anchors(self, report_and_paths):
        report, _, _ = report_and_paths
        sizes = report["table2_fig3_sizes"]
        assert sizes["scale27_forward_gib"] == pytest.approx(40.0, abs=0.5)
        assert sizes["scale31_total_gib"] == pytest.approx(1552, abs=2)

    def test_fig8_ordering(self, report_and_paths):
        report, _, _ = report_and_paths
        best = report["fig8_comparison"]["best_gteps"]
        assert best["DRAM-only"] > best["DRAM+PCIeFlash"] > best["DRAM+SSD"]
        assert best["Graph500 reference"] < best["DRAM-only"]

    def test_locality_claim(self, report_and_paths):
        report, _, _ = report_and_paths
        extras = report["related_and_extras"]
        assert extras["locality_netal_remote"] == 0.0
        assert extras["locality_naive_remote"] > 0.5

    def test_green_anchor(self, report_and_paths):
        report, _, _ = report_and_paths
        assert report["related_and_extras"][
            "green_mteps_per_watt_at_4_22_gteps"
        ] == pytest.approx(4.35, abs=0.25)

    def test_json_is_loadable(self, report_and_paths):
        _, json_path, _ = report_and_paths
        data = json.loads(json_path.read_text())
        assert data["config"]["scale"] == 10

    def test_markdown_mentions_paper_numbers(self, report_and_paths):
        _, _, md_path = report_and_paths
        text = md_path.read_text()
        assert "19.18" in text
        assert "40.1 / 33.1 / 15.1" in text
        assert "11182.9" in text

    def test_write_without_run_triggers_run(self, tmp_path):
        runner = EvaluationRunner(
            scale=9, n_roots=1, seed=3, workdir=tmp_path / "w"
        )
        json_path, _ = runner.write(tmp_path / "out")
        assert json_path.exists()

    def test_tiny_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            EvaluationRunner(scale=5)

    def test_close_idempotent(self, tmp_path):
        runner = EvaluationRunner(scale=9, n_roots=1, workdir=tmp_path)
        runner.close()
        runner.close()
