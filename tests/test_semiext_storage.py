"""Unit tests for repro.semiext.storage, clock, iostats and hierarchy."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError, StorageError
from repro.semiext import (
    MemoryHierarchy,
    NVMStore,
    PCIE_FLASH,
    SATA_SSD,
    SimulatedClock,
    Tier,
)
from repro.semiext.iostats import IoStats


class TestClock:
    def test_advances(self):
        c = SimulatedClock()
        c.advance(1.5)
        c.advance(0.25)
        assert c.now() == pytest.approx(1.75)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedClock().advance(-1)
        with pytest.raises(ConfigurationError):
            SimulatedClock(start=-1)

    def test_reset(self):
        c = SimulatedClock()
        c.advance(3)
        c.reset()
        assert c.now() == 0.0


class TestIoStats:
    def test_aggregates(self):
        st = IoStats("dev")
        st.record_batch(0.0, 1.0, np.array([4096, 4096]), mean_queue=10.0)
        st.record_batch(1.0, 1.0, np.array([512]), mean_queue=20.0)
        assert st.n_requests == 3
        assert st.total_bytes == 8704
        assert st.avgqu_sz() == pytest.approx(15.0)
        # sectors: 8 + 8 + 1 over 3 requests
        assert st.avgrq_sz == pytest.approx(17 / 3)

    def test_avgqu_weighted_by_duration(self):
        st = IoStats()
        st.record_batch(0.0, 3.0, np.array([4096]), mean_queue=10.0)
        st.record_batch(3.0, 1.0, np.array([4096]), mean_queue=50.0)
        assert st.avgqu_sz() == pytest.approx((30 + 50) / 4)

    def test_empty_stats(self):
        st = IoStats()
        assert st.avgqu_sz() == 0.0
        assert st.avgrq_sz == 0.0
        assert st.reads_per_s() == 0.0
        assert st.throughput_bps() == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            IoStats().record_batch(0, -1.0, np.array([1]), 1.0)

    def test_reset(self):
        st = IoStats()
        st.record_batch(0.0, 1.0, np.array([4096]), 1.0)
        st.reset()
        assert st.n_requests == 0
        assert not st.samples

    def test_sample_properties(self):
        st = IoStats()
        s = st.record_batch(0.0, 2.0, np.array([1024, 1024]), 5.0)
        assert s.avgrq_sectors == pytest.approx(2.0)
        assert s.reads_per_s == pytest.approx(1.0)


class TestNVMStore:
    def test_put_get_roundtrip(self, store):
        arr = np.arange(100, dtype=np.int64)
        ext = store.put_array("a", arr)
        assert np.array_equal(ext.to_ndarray(), arr)
        assert store.get_array("a") is ext
        assert "a" in store

    def test_duplicate_name_rejected(self, store):
        store.put_array("a", np.zeros(4))
        with pytest.raises(StorageError):
            store.put_array("a", np.zeros(4))

    def test_bad_name_rejected(self, store):
        with pytest.raises(StorageError):
            store.put_array("../evil", np.zeros(4))

    def test_missing_array(self, store):
        with pytest.raises(StorageError):
            store.get_array("nope")

    def test_drop_array(self, store):
        ext = store.put_array("a", np.zeros(4))
        path = ext.path
        assert path.exists()
        store.drop_array("a")
        assert not path.exists()
        assert "a" not in store

    def test_nbytes(self, store):
        store.put_array("a", np.zeros(10, dtype=np.int64))
        assert store.nbytes == 80

    def test_charge_advances_clock_and_meters(self, store):
        store.put_array("a", np.zeros(10000, dtype=np.int64))
        t0 = store.clock.now()
        elapsed = store.charge(np.array([0]), np.array([8 * 10000]))
        assert elapsed > 0
        assert store.clock.now() == pytest.approx(t0 + elapsed)
        assert store.iostats.n_requests > 0
        assert store.n_syscalls >= store.iostats.n_requests  # merging shrinks

    def test_charge_empty_is_free(self, store):
        assert store.charge(np.array([]), np.array([])) == 0.0

    def test_invalid_store_params(self, tmp_path):
        with pytest.raises(ConfigurationError):
            NVMStore(tmp_path, PCIE_FLASH, concurrency=0)
        with pytest.raises(ConfigurationError):
            NVMStore(tmp_path, PCIE_FLASH, chunk_bytes=0)
        with pytest.raises(ConfigurationError):
            NVMStore(tmp_path, PCIE_FLASH, chunk_bytes=4096,
                     max_request_bytes=1024)


class TestExternalArray:
    def test_read_rows(self, store):
        arr = np.arange(1000, dtype=np.int64)
        ext = store.put_array("a", arr)
        out = ext.read_rows(np.array([10, 500]), np.array([5, 3]))
        assert out.tolist() == [10, 11, 12, 13, 14, 500, 501, 502]

    def test_read_rows_charges(self, store):
        ext = store.put_array("a", np.arange(1000, dtype=np.int64))
        ext.read_rows(np.array([0]), np.array([100]))
        assert store.iostats.total_bytes >= 800

    def test_read_rows_out_of_bounds(self, store):
        ext = store.put_array("a", np.arange(10, dtype=np.int64))
        with pytest.raises(StorageError):
            ext.read_rows(np.array([8]), np.array([5]))

    def test_read_elements(self, store):
        ext = store.put_array("a", np.arange(100, dtype=np.int64))
        out = ext.read_elements(np.array([5, 50]), width=2)
        assert out.tolist() == [[5, 6], [50, 51]]

    def test_read_elements_bounds(self, store):
        ext = store.put_array("a", np.arange(10, dtype=np.int64))
        with pytest.raises(StorageError):
            ext.read_elements(np.array([9]), width=2)
        with pytest.raises(StorageError):
            ext.read_elements(np.array([0]), width=0)

    def test_read_slice(self, store):
        ext = store.put_array("a", np.arange(100, dtype=np.int64))
        assert ext.read_slice(10, 15).tolist() == [10, 11, 12, 13, 14]
        with pytest.raises(StorageError):
            ext.read_slice(90, 200)

    def test_close_then_read_raises(self, store):
        ext = store.put_array("a", np.arange(10, dtype=np.int64))
        ext.close()
        with pytest.raises(StorageError):
            ext.read_slice(0, 1)
        ext.close()  # idempotent

    def test_2d_rejected(self, store):
        with pytest.raises(StorageError):
            store.put_array("a", np.zeros((2, 2)))

    def test_metadata(self, store):
        ext = store.put_array("a", np.arange(10, dtype=np.int32))
        assert ext.size == 10
        assert ext.itemsize == 4
        assert ext.nbytes == 40
        assert len(ext) == 10


class TestHierarchy:
    def test_dram_budget_enforced(self):
        h = MemoryHierarchy(dram_capacity=100)
        h.reserve("a", 60, Tier.DRAM)
        with pytest.raises(CapacityError):
            h.reserve("b", 50, Tier.DRAM)
        h.reserve("b", 40, Tier.DRAM)
        assert h.remaining(Tier.DRAM) == 0

    def test_nvm_without_store_rejected(self):
        h = MemoryHierarchy(dram_capacity=100)
        assert not h.fits(10, Tier.NVM)
        with pytest.raises(CapacityError):
            h.reserve("a", 10, Tier.NVM)

    def test_nvm_capacity(self, store):
        h = MemoryHierarchy(100, nvm_store=store, nvm_capacity=50)
        h.reserve("a", 40, Tier.NVM)
        with pytest.raises(CapacityError):
            h.reserve("b", 20, Tier.NVM)

    def test_nvm_unbounded_by_default(self, store):
        h = MemoryHierarchy(100, nvm_store=store)
        assert h.remaining(Tier.NVM) is None
        h.reserve("a", 1 << 50, Tier.NVM)

    def test_duplicate_name_rejected(self):
        h = MemoryHierarchy(100)
        h.reserve("a", 10, Tier.DRAM)
        with pytest.raises(CapacityError):
            h.reserve("a", 10, Tier.DRAM)

    def test_release(self):
        h = MemoryHierarchy(100)
        h.reserve("a", 60, Tier.DRAM)
        h.release("a")
        assert h.used(Tier.DRAM) == 0
        with pytest.raises(CapacityError):
            h.release("a")

    def test_place_array_dram_returns_array(self):
        h = MemoryHierarchy(1000)
        arr = h.place_array("a", np.arange(10, dtype=np.int64), Tier.DRAM)
        assert isinstance(arr, np.ndarray)
        assert h.used(Tier.DRAM) == 80

    def test_place_array_nvm_returns_external(self, store):
        h = MemoryHierarchy(1000, nvm_store=store)
        handle = h.place_array("a", np.arange(10, dtype=np.int64), Tier.NVM)
        assert not isinstance(handle, np.ndarray)
        assert np.array_equal(handle.to_ndarray(), np.arange(10))
        h.release("a")
        assert "a" not in store

    def test_describe_mentions_placements(self, store):
        h = MemoryHierarchy(1000, nvm_store=store)
        h.reserve("mything", 10, Tier.DRAM)
        assert "mything" in h.describe()

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            MemoryHierarchy(0)
