"""Unit tests for BFSState (status data)."""

import numpy as np
import pytest

from repro.bfs.state import UNVISITED, BFSState
from repro.errors import ConfigurationError
from repro.numa.topology import NumaTopology


@pytest.fixture()
def state(topology):
    return BFSState(n_vertices=100, topology=topology, root=7)


class TestInit:
    def test_root_visited(self, state):
        assert state.parent[7] == 7
        assert state.visited.test(7)
        assert state.frontier_queue.tolist() == [7]
        assert state.n_visited == 1

    def test_everything_else_unvisited(self, state):
        assert (state.parent == UNVISITED).sum() == 99

    def test_bad_root(self, topology):
        with pytest.raises(ConfigurationError):
            BFSState(10, topology, 10)
        with pytest.raises(ConfigurationError):
            BFSState(10, topology, -1)


class TestFrontier:
    def test_promote_next(self, state):
        state.promote_next(np.array([1, 2, 3], dtype=np.int64))
        assert state.frontier_size == 3

    def test_bitmap_lazily_built_and_cached(self, state):
        bm1 = state.frontier_as_bitmap()
        assert bm1.test(7)
        assert state.frontier_as_bitmap() is bm1

    def test_bitmap_invalidated_on_promote(self, state):
        bm1 = state.frontier_as_bitmap()
        state.promote_next(np.array([3], dtype=np.int64))
        bm2 = state.frontier_as_bitmap()
        assert bm2 is not bm1
        assert bm2.test(3) and not bm2.test(7)


class TestDiscovery:
    def test_discover_sets_parent_and_visited(self, state):
        state.discover(np.array([1, 2]), np.array([7, 7]))
        assert state.parent[1] == 7
        assert state.visited.test(2)
        assert state.n_visited == 3

    def test_discover_empty_noop(self, state):
        state.discover(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert state.n_visited == 1


class TestCandidates:
    def test_root_excluded(self, state, topology):
        all_cands = np.concatenate(
            [state.unvisited_candidates(k) for k in range(topology.n_nodes)]
        )
        assert 7 not in all_cands
        assert all_cands.size == 99

    def test_pruning_after_discovery(self, state, topology):
        state.discover(np.array([0, 1, 2]), np.array([7, 7, 7]))
        node0 = state.unvisited_candidates(0)
        assert not set(node0.tolist()) & {0, 1, 2}

    def test_candidates_respect_partitions(self, state, topology):
        parts = topology.partitions(100)
        for part in parts:
            cand = state.unvisited_candidates(part.node)
            if cand.size:
                assert cand.min() >= part.lo
                assert cand.max() < part.hi

    def test_pruning_is_incremental(self, state):
        before = state.unvisited_candidates(0)
        state.discover(before[:5], np.full(5, 7))
        after = state.unvisited_candidates(0)
        assert after.size == before.size - 5


class TestAccounting:
    def test_status_nbytes_positive(self, state):
        assert state.status_nbytes() > 0

    def test_status_nbytes_includes_bitmap(self, state):
        base = state.status_nbytes()
        state.frontier_as_bitmap()
        assert state.status_nbytes() > base
