"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.bfs import AlphaBetaPolicy, FixedPolicy, HybridBFS, Direction
from repro.bfs.policies import PolicyInputs
from repro.csr.builder import build_csr
from repro.csr.partition import BackwardGraph, ForwardGraph
from repro.graph500.edgelist import EdgeList
from repro.graph500.validate import validate_bfs_tree
from repro.numa.topology import NumaTopology
from repro.util.bitmap import Bitmap
from repro.util.chunking import merge_extents, plan_chunks
from repro.util.gather import concat_ranges, first_true_per_segment

# Bounded sizes keep each example fast while covering the edge geometry.
small_n = st.integers(min_value=1, max_value=200)


@st.composite
def edge_arrays(draw, max_n=64, max_m=200):
    """A random (edges, n_vertices) pair, duplicates and loops allowed."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    flat = draw(
        arrays(np.int64, (2, m), elements=st.integers(0, n - 1))
    )
    return flat, n


class TestBitmapProperties:
    @given(
        n=st.integers(min_value=1, max_value=500),
        data=st.data(),
    )
    @settings(max_examples=50)
    def test_set_then_test_round_trip(self, n, data):
        idx = data.draw(
            st.lists(st.integers(0, n - 1), max_size=50).map(
                lambda xs: np.array(xs, dtype=np.int64)
            )
        )
        bm = Bitmap(n)
        bm.set_many(idx)
        expected = np.zeros(n, dtype=bool)
        if idx.size:
            expected[idx] = True
        assert np.array_equal(bm.to_bool_array(), expected)
        assert bm.count() == int(expected.sum())
        assert np.array_equal(bm.to_indices(), np.flatnonzero(expected))

    @given(n=st.integers(min_value=1, max_value=300), data=st.data())
    @settings(max_examples=30)
    def test_invert_is_involution(self, n, data):
        idx = data.draw(
            st.lists(st.integers(0, n - 1), max_size=30).map(
                lambda xs: np.array(xs, dtype=np.int64)
            )
        )
        bm = Bitmap(n)
        bm.set_many(idx)
        snapshot = bm.to_bool_array()
        bm.invert_inplace()
        bm.invert_inplace()
        assert np.array_equal(bm.to_bool_array(), snapshot)

    @given(n=st.integers(min_value=1, max_value=300), data=st.data())
    @settings(max_examples=30)
    def test_union_count_bounds(self, n, data):
        xs = data.draw(st.lists(st.integers(0, n - 1), max_size=30))
        ys = data.draw(st.lists(st.integers(0, n - 1), max_size=30))
        a = Bitmap.from_indices(n, np.array(xs, dtype=np.int64))
        b = Bitmap.from_indices(n, np.array(ys, dtype=np.int64))
        ca, cb = a.count(), b.count()
        a.union_inplace(b)
        assert max(ca, cb) <= a.count() <= ca + cb


class TestChunkingProperties:
    @given(data=st.data())
    @settings(max_examples=50)
    def test_plan_chunks_conserves_bytes(self, data):
        m = data.draw(st.integers(0, 30))
        offsets = np.array(
            data.draw(st.lists(st.integers(0, 1 << 20), min_size=m, max_size=m)),
            dtype=np.int64,
        )
        lengths = np.array(
            data.draw(st.lists(st.integers(0, 1 << 14), min_size=m, max_size=m)),
            dtype=np.int64,
        )
        chunk = data.draw(st.sampled_from([512, 4096, 65536]))
        plan = plan_chunks(offsets, lengths, chunk)
        assert plan.total_bytes == int(lengths.sum())
        if plan.n_requests:
            assert plan.sizes.max() <= chunk
            assert plan.sizes.min() > 0

    @given(data=st.data())
    @settings(max_examples=50)
    def test_merge_extents_covers_all_pages(self, data):
        m = data.draw(st.integers(1, 20))
        offsets = np.array(
            data.draw(st.lists(st.integers(0, 1 << 18), min_size=m, max_size=m)),
            dtype=np.int64,
        )
        lengths = np.array(
            data.draw(st.lists(st.integers(0, 1 << 13), min_size=m, max_size=m)),
            dtype=np.int64,
        )
        page = 4096
        plan = merge_extents(offsets, lengths, page_bytes=page)
        # The merged requests cover exactly the union of touched pages.
        touched = set()
        for o, l in zip(offsets, lengths):
            if l > 0:
                touched.update(range(o // page, (o + l - 1) // page + 1))
        covered = set()
        for o, s in zip(plan.offsets, plan.sizes):
            assert o % page == 0 and s % page == 0
            covered.update(range(o // page, (o + s) // page))
        assert covered == touched
        # Requests are sorted and non-overlapping.
        ends = plan.offsets + plan.sizes
        assert np.all(plan.offsets[1:] >= ends[:-1])


class TestGatherProperties:
    @given(data=st.data())
    @settings(max_examples=50)
    def test_concat_ranges_matches_naive(self, data):
        m = data.draw(st.integers(0, 20))
        starts = np.array(
            data.draw(st.lists(st.integers(0, 1000), min_size=m, max_size=m)),
            dtype=np.int64,
        )
        counts = np.array(
            data.draw(st.lists(st.integers(0, 10), min_size=m, max_size=m)),
            dtype=np.int64,
        )
        expected = (
            np.concatenate([np.arange(s, s + c) for s, c in zip(starts, counts)])
            if m and counts.sum()
            else np.empty(0, dtype=np.int64)
        )
        assert np.array_equal(concat_ranges(starts, counts), expected)

    @given(data=st.data())
    @settings(max_examples=50)
    def test_first_true_invariants(self, data):
        m = data.draw(st.integers(0, 20))
        counts = np.array(
            data.draw(st.lists(st.integers(0, 8), min_size=m, max_size=m)),
            dtype=np.int64,
        )
        total = int(counts.sum())
        mask = np.array(
            data.draw(st.lists(st.booleans(), min_size=total, max_size=total)),
            dtype=bool,
        )
        hit, scanned = first_true_per_segment(mask, counts)
        assert np.all(scanned <= counts)
        assert np.all(scanned >= 0)
        seg_first = np.concatenate(([0], np.cumsum(counts)[:-1])) if m else np.array([])
        for i in range(m):
            if hit[i] >= 0:
                assert mask[hit[i]]
                # Nothing true before the hit inside the segment.
                assert not mask[seg_first[i] : hit[i]].any()
                assert scanned[i] == hit[i] - seg_first[i] + 1
            else:
                assert scanned[i] == counts[i]


class TestCSRProperties:
    @given(edge_arrays())
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_csr_is_symmetric_simple_graph(self, pair):
        flat, n = pair
        g = build_csr(flat, n_vertices=n)
        # Symmetry: u in adj[v] <=> v in adj[u]; no loops; no duplicates.
        for v in range(n):
            row = g.neighbors(v)
            assert np.all(np.diff(row) > 0)  # sorted, no duplicates
            assert v not in row
            for w in row.tolist():
                assert g.has_edge(w, v)

    @given(edge_arrays())
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_partitions_conserve_edges(self, pair):
        flat, n = pair
        g = build_csr(flat, n_vertices=n)
        topo = NumaTopology(n_nodes=3)
        fwd = ForwardGraph(g, topo)
        bwd = BackwardGraph(g, topo)
        assert fwd.n_directed_edges == g.n_directed_edges
        assert bwd.n_directed_edges == g.n_directed_edges
        assert np.array_equal(bwd.global_degrees(), g.degrees())


class TestBFSProperties:
    @given(edge_arrays(max_n=48, max_m=150), st.data())
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    def test_bfs_tree_always_validates(self, pair, data):
        flat, n = pair
        el = EdgeList(flat, n)
        g = build_csr(el)
        deg = g.degrees()
        nonzero = np.flatnonzero(deg > 0)
        root = (
            int(nonzero[data.draw(st.integers(0, nonzero.size - 1))])
            if nonzero.size
            else 0
        )
        topo = NumaTopology(2)
        engine = HybridBFS(
            ForwardGraph(g, topo),
            BackwardGraph(g, topo),
            AlphaBetaPolicy(10, 10),
        )
        res = engine.run(root)
        assert validate_bfs_tree(el, res.parent, root).ok

    @given(edge_arrays(max_n=40, max_m=120), st.data())
    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    def test_levels_match_networkx(self, pair, data):
        import networkx as nx

        flat, n = pair
        el = EdgeList(flat, n)
        g = build_csr(el)
        deg = g.degrees()
        nonzero = np.flatnonzero(deg > 0)
        if nonzero.size == 0:
            return
        root = int(nonzero[data.draw(st.integers(0, nonzero.size - 1))])
        topo = NumaTopology(2)
        res = HybridBFS(
            ForwardGraph(g, topo),
            BackwardGraph(g, topo),
            AlphaBetaPolicy(5, 5),
        ).run(root)
        v = validate_bfs_tree(el, res.parent, root)
        assert v.ok
        G = nx.Graph()
        G.add_nodes_from(range(n))
        G.add_edges_from(flat.T.tolist())
        nx_levels = nx.single_source_shortest_path_length(G, root)
        for node, d in nx_levels.items():
            if node != root and G.degree(node) == 0:
                continue  # only self-loops: unreachable in the simple graph
            assert v.levels[node] == d

    @given(edge_arrays(max_n=40, max_m=100), st.data())
    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    def test_direction_choice_never_changes_reachability(self, pair, data):
        flat, n = pair
        el = EdgeList(flat, n)
        g = build_csr(el)
        nonzero = np.flatnonzero(g.degrees() > 0)
        if nonzero.size == 0:
            return
        root = int(nonzero[0])
        topo = NumaTopology(2)
        fwd, bwd = ForwardGraph(g, topo), BackwardGraph(g, topo)
        results = [
            HybridBFS(fwd, bwd, policy).run(root).parent >= 0
            for policy in (
                FixedPolicy(Direction.TOP_DOWN),
                FixedPolicy(Direction.BOTTOM_UP),
                AlphaBetaPolicy(3, 7),
            )
        ]
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])


class TestPolicyProperties:
    @given(
        alpha=st.floats(min_value=1.0, max_value=1e7),
        beta=st.floats(min_value=1.0, max_value=1e7),
        n_frontier=st.integers(0, 1 << 20),
        prev=st.integers(0, 1 << 20),
        level=st.integers(0, 40),
        current=st.sampled_from([Direction.TOP_DOWN, Direction.BOTTOM_UP]),
    )
    @settings(max_examples=100)
    def test_alpha_beta_total_function(
        self, alpha, beta, n_frontier, prev, level, current
    ):
        p = AlphaBetaPolicy(alpha, beta)
        out = p.decide(
            PolicyInputs(
                level=level,
                current=current,
                n_frontier=n_frontier,
                n_frontier_prev=prev,
                n_all=1 << 20,
            )
        )
        assert out in (Direction.TOP_DOWN, Direction.BOTTOM_UP)
        if level == 0:
            assert out is Direction.TOP_DOWN
        elif n_frontier == prev:
            assert out is current  # no growth signal: sticky
