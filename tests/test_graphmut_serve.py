"""Dynamic graphs at serve time: versioned cache, invalidation, traces.

Covers the serving-tier plumbing around `repro.graphmut`: version-keyed
`ResultCache` entries, the dropped-version and pin-count regression
cases, mutation events in the workload grammar and JSONL traces, and the
end-to-end claim that every answer a mutating serve produces matches a
fresh traversal of the graph version it was computed at.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bfs.reference import ReferenceBFS
from repro.core import DRAM_PCIE_FLASH
from repro.csr import build_csr
from repro.errors import ConfigurationError
from repro.graphmut import draw_batch
from repro.graphmut.versioned import GraphMutator
from repro.semiext.clock import SimulatedClock
from repro.serve import (
    BFSServer,
    GraphCatalog,
    ResultCache,
    WorkloadSpec,
    generate_workload,
    load_trace,
    save_trace,
)
from repro.serve.workload import MutationEvent, Request


@pytest.fixture()
def catalog(tmp_path):
    cat = GraphCatalog(workdir=tmp_path)
    cat.build("g", DRAM_PCIE_FLASH, scale=8, edge_factor=8, seed=7,
              alpha=2.0, beta=4.0)
    yield cat
    cat.close()


class TestVersionedResultCache:
    def test_version_mismatch_misses_but_keeps_entry(self):
        cache = ResultCache(4, clock=SimulatedClock())
        parent = np.array([0, 0, 1], dtype=np.int64)
        cache.put("g", 1, parent, 2, version=3)
        assert cache.get("g", 1, version=3) is not None
        assert cache.get("g", 1, version=4) is None  # stale: miss
        # ...but the raw material survives for incremental repair.
        entry = cache.peek("g", 1)
        assert entry is not None and entry.version == 3
        assert cache.misses == 1 and cache.hits == 1

    def test_dropped_version_entries_are_evicted(self):
        """Regression: entries behind a pruned batch history must go.

        Before the fix, a compaction advanced ``min_repairable_version``
        but left older cache entries resident; `peek` would hand them to
        the repair path, which then failed `can_repair` on every query —
        permanent dead weight that also shadowed fresh `put`s.
        """
        cache = ResultCache(8, clock=SimulatedClock())
        parent = np.zeros(3, dtype=np.int64)
        cache.put("g", 1, parent, 2, version=0)
        cache.put("g", 2, parent, 2, version=4)
        cache.put("other", 3, parent, 2, version=0)
        dropped = cache.invalidate_versions("g", before_version=4)
        assert dropped == 1
        assert cache.peek("g", 1) is None  # behind the window: gone
        assert cache.peek("g", 2) is not None  # at the window: kept
        assert cache.peek("other", 3) is not None  # other graph: kept
        assert cache.evictions_version == 1

    def test_version_eviction_counts_in_metrics(self):
        from repro.obs import Observability
        from repro.obs.schema import M_SERVE_CACHE_EVICTIONS

        obs = Observability()
        cache = ResultCache(4, clock=SimulatedClock(), obs=obs)
        cache.put("g", 1, np.zeros(2, dtype=np.int64), 1, version=0)
        cache.invalidate_versions("g", before_version=9)
        assert obs.registry.value(M_SERVE_CACHE_EVICTIONS,
                                  cause="version") == 1


class TestPinCountInteraction:
    """Regression: compaction must never replace a pinned store."""

    def test_compaction_deferred_while_pinned(self, catalog):
        mutator = GraphMutator(catalog.get("g"), compact_every=1)
        rng = np.random.default_rng(3)
        with catalog.open("g") as graph:
            batch = draw_batch(mutator.effective_csr, rng, 2, 1)
            mutator.apply(batch)  # due, but a handle is open
            assert mutator.n_compactions == 0
            assert graph.version == 1
            with pytest.raises(ConfigurationError):
                mutator.compact()
        # Pin released: the next batch compacts both.
        mutator.apply(draw_batch(mutator.effective_csr, rng, 1, 1))
        assert mutator.n_compactions == 1
        assert mutator.min_repairable_version == 2

    def test_compaction_swaps_nvm_files_atomically(self, catalog):
        graph = catalog.get("g")
        store = graph.store
        mutator = GraphMutator(graph, compact_every=10**6)
        rng = np.random.default_rng(9)
        before = set(store.arrays()) if hasattr(store, "arrays") else None
        mutator.apply(draw_batch(mutator.effective_csr, rng, 3, 3))
        mutator.compact()
        # Old version's files are dropped, new ones serve reads, and a
        # traversal on the swapped graph still answers correctly.
        from repro.serve import BatchedBFS

        root = int(np.argmax(graph.degrees))
        got = BatchedBFS(graph).run_batch([root])[0].parent
        want = ReferenceBFS(mutator.effective_csr).run(root).parent
        assert np.array_equal(got, want)
        if before is not None:
            assert set(store.arrays()) != before


class TestWorkloadGrammarAndTraces:
    def test_request_substream_unperturbed_by_mutations(self, catalog):
        degrees = catalog.get("g").degrees
        base = WorkloadSpec(n_requests=40, rate_rps=500.0, seed=11,
                            graph="g")
        plain = generate_workload(base, degrees)
        from dataclasses import replace

        muted = generate_workload(
            replace(base, mut_rate=80.0, mut_inserts=2, mut_deletes=2),
            degrees, csr=build_csr(catalog.get("g").edges),
        )
        queries = [r for r in muted if isinstance(r, Request)]
        assert len(queries) == len(plain)
        for a, b in zip(plain, queries):
            assert (a.arrival_s, a.tenant, a.root) == \
                (b.arrival_s, b.tenant, b.root)
        assert any(isinstance(r, MutationEvent) for r in muted)

    def test_mut_rate_requires_csr(self, catalog):
        spec = WorkloadSpec(n_requests=5, seed=1, mut_rate=10.0)
        with pytest.raises(ConfigurationError):
            generate_workload(spec, catalog.get("g").degrees)

    def test_trace_round_trips_mutation_events(self, catalog, tmp_path):
        spec = WorkloadSpec(n_requests=30, rate_rps=400.0, seed=13,
                            graph="g", mut_rate=60.0, mut_inserts=2,
                            mut_deletes=2)
        stream = generate_workload(
            spec, catalog.get("g").degrees,
            csr=build_csr(catalog.get("g").edges),
        )
        assert any(isinstance(r, MutationEvent) for r in stream)
        path = tmp_path / "trace.jsonl"
        save_trace(stream, path)
        again = load_trace(path)
        assert len(again) == len(stream)
        for a, b in zip(stream, again):
            assert type(a) is type(b)
            if isinstance(a, MutationEvent):
                assert a.inserts == b.inserts
                assert a.deletes == b.deletes
                assert a.arrival_s == pytest.approx(b.arrival_s)


class TestEndToEndMutatingServe:
    def test_every_answer_matches_its_version(self, catalog):
        graph = catalog.get("g")
        spec = WorkloadSpec(n_requests=60, rate_rps=600.0, seed=17,
                            graph="g", mut_rate=60.0, mut_inserts=2,
                            mut_deletes=2)
        base_csr = build_csr(graph.edges)
        stream = generate_workload(spec, graph.degrees, csr=base_csr)
        server = BFSServer(catalog, batch_size=4)
        report = server.serve(stream)
        assert report.n_served == len(
            [r for r in stream if isinstance(r, Request)]
        )
        sources = {c.source for c in report.completions}
        assert "repaired" in sources, (
            "workload never exercised the repair tier"
        )
        # Final-version answers: every cached entry at the final version
        # byte-equals a reference run on the mutator's effective graph.
        mutator = server.mutator_for("g")
        final = mutator.effective_csr
        checked = 0
        for c in report.completions:
            entry = server.cache.peek("g", c.request.root)
            if entry is not None and entry.version == mutator.version:
                want = ReferenceBFS(final).run(c.request.root).parent
                assert np.array_equal(entry.parent, want)
                checked += 1
        assert checked > 0

    def test_repair_fallback_counts_surface_in_summary(self, catalog):
        from repro.analysis.serving import ServeSummary

        spec = WorkloadSpec(n_requests=40, rate_rps=600.0, seed=17,
                            graph="g", mut_rate=50.0, mut_inserts=2,
                            mut_deletes=2)
        stream = generate_workload(
            spec, catalog.get("g").degrees,
            csr=build_csr(catalog.get("g").edges),
        )
        report = BFSServer(catalog, batch_size=4).serve(stream)
        text = ServeSummary.from_report(report).format()
        assert "mutations:" in text
        # Static workloads keep the summary free of mutation lines (the
        # CI serve-smoke greps depend on the exact static shape).
        static = BFSServer(catalog, batch_size=4).serve(
            generate_workload(
                WorkloadSpec(n_requests=10, seed=3, graph="g"),
                catalog.get("g").degrees,
            )
        )
        assert "mutations:" not in ServeSummary.from_report(static).format()
