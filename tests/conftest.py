"""Shared fixtures: small Kronecker graphs, partitions, NVM stores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.csr import BackwardGraph, ForwardGraph, build_csr
from repro.graph500 import EdgeList, generate_edges
from repro.numa import NumaTopology
from repro.semiext import NVMStore, PCIE_FLASH


SCALE = 11
N = 1 << SCALE


@pytest.fixture(scope="session")
def topology() -> NumaTopology:
    """The paper's 4x12 machine."""
    return NumaTopology(n_nodes=4, cores_per_node=12)


@pytest.fixture(scope="session")
def edges() -> EdgeList:
    """A SCALE-11 Kronecker edge list (deterministic)."""
    return EdgeList(generate_edges(scale=SCALE, edge_factor=16, seed=42), N)


@pytest.fixture(scope="session")
def csr(edges):
    """The deduplicated symmetric CSR of the session graph."""
    return build_csr(edges)


@pytest.fixture(scope="session")
def forward(csr, topology):
    """Column-partitioned forward graph."""
    return ForwardGraph(csr, topology)


@pytest.fixture(scope="session")
def backward(csr, topology):
    """Row-partitioned backward graph."""
    return BackwardGraph(csr, topology)


@pytest.fixture(scope="session")
def a_root(csr) -> int:
    """A deterministic non-isolated root."""
    return int(np.flatnonzero(csr.degrees() > 0)[0])


@pytest.fixture()
def store(tmp_path) -> NVMStore:
    """A fresh PCIe-flash store per test."""
    return NVMStore(tmp_path / "nvm", PCIE_FLASH)
