"""Property-based tests for the semi-external storage stack."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.semiext import NVMStore, PCIE_FLASH, SATA_SSD
from repro.semiext.device import DeviceModel
from repro.util.chunking import merge_extents, plan_chunks


@st.composite
def extent_batches(draw, max_extents=25):
    m = draw(st.integers(1, max_extents))
    offsets = np.array(
        draw(st.lists(st.integers(0, 1 << 18), min_size=m, max_size=m)),
        dtype=np.int64,
    )
    lengths = np.array(
        draw(st.lists(st.integers(0, 1 << 12), min_size=m, max_size=m)),
        dtype=np.int64,
    )
    return offsets, lengths


class TestChargeProperties:
    @given(batch=extent_batches())
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_charge_monotone_and_conservative(self, tmp_path, batch):
        offsets, lengths = batch
        store = NVMStore(tmp_path / "s", PCIE_FLASH)
        t0 = store.clock.now()
        elapsed = store.charge(offsets, lengths)
        assert elapsed >= 0
        assert store.clock.now() == pytest.approx(t0 + elapsed)
        # The device never reads less than the requested payload and
        # never more than the padded+deduped page superset.
        requested = int(lengths.sum())
        if requested:
            assert store.iostats.total_bytes >= 0
            pages = merge_extents(offsets, lengths)
            assert store.iostats.total_bytes == pages.total_bytes

    @given(batch=extent_batches())
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_page_cache_only_reduces_io(self, tmp_path, batch):
        offsets, lengths = batch
        plain = NVMStore(tmp_path / "p", PCIE_FLASH)
        cached = NVMStore(
            tmp_path / "c", PCIE_FLASH, page_cache_bytes=1 << 22
        )
        plain.charge(offsets, lengths)
        cached.charge(offsets, lengths)
        cached.charge(offsets, lengths)  # second pass hits
        # Two cached passes never exceed twice the uncached single pass.
        assert cached.iostats.total_bytes <= 2 * plain.iostats.total_bytes
        # And the second pass was strictly cheaper than the first when
        # anything was admitted.
        if plain.iostats.total_bytes:
            assert cached.iostats.total_bytes < 2 * plain.iostats.total_bytes

    @given(batch=extent_batches())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_async_never_slower(self, tmp_path, batch):
        offsets, lengths = batch
        sync = NVMStore(tmp_path / "sy", PCIE_FLASH, io_mode="sync")
        asy = NVMStore(tmp_path / "as", PCIE_FLASH, io_mode="async")
        t_sync = sync.charge(offsets, lengths)
        t_async = asy.charge(offsets, lengths)
        assert t_async <= t_sync + 1e-12

    @given(batch=extent_batches())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_faster_device_never_slower(self, tmp_path, batch):
        offsets, lengths = batch
        fast = NVMStore(tmp_path / "f", PCIE_FLASH)
        slow = NVMStore(tmp_path / "sl", SATA_SSD)
        assert fast.charge(offsets, lengths) <= slow.charge(
            offsets, lengths
        ) + 1e-12


class TestDeviceProperties:
    @given(
        latency=st.floats(1e-7, 1e-2),
        bandwidth=st.floats(1e6, 1e10),
        iops=st.floats(100, 1e6),
        n=st.integers(1, 100_000),
        size=st.integers(1, 1 << 20),
        workers=st.integers(1, 128),
    )
    @settings(max_examples=60, deadline=None)
    def test_submit_invariants(self, latency, bandwidth, iops, n, size, workers):
        dev = DeviceModel("x", latency, bandwidth, iops)
        result = dev.submit(n, n * size, concurrency=workers)
        assert result.elapsed_s > 0
        assert 0 <= result.mean_queue <= workers + 1e-6
        assert result.throughput_iops <= dev.saturation_iops(size) * (1 + 1e-9)
        # Little's-law consistency: queue = X * R, R <= N/X.
        assert result.mean_queue <= workers + 1e-6

    @given(
        n=st.integers(1, 10_000),
        size=st.integers(1, 1 << 16),
        w1=st.integers(1, 64),
        w2=st.integers(1, 64),
    )
    @settings(max_examples=40, deadline=None)
    def test_more_workers_never_slower(self, n, size, w1, w2):
        lo, hi = sorted((w1, w2))
        fast = PCIE_FLASH.submit(n, n * size, concurrency=hi)
        slow = PCIE_FLASH.submit(n, n * size, concurrency=lo)
        assert fast.elapsed_s <= slow.elapsed_s + 1e-12


class TestPlanProperties:
    @given(batch=extent_batches())
    @settings(max_examples=40, deadline=None)
    def test_merge_never_exceeds_plan_pages(self, batch):
        offsets, lengths = batch
        merged = merge_extents(offsets, lengths)
        chunked = plan_chunks(offsets, lengths)
        # Device requests are page-granular, and merging can only reduce
        # the request count relative to the syscall stream (overlapping
        # extents may also dedupe below the raw payload — that is the
        # in-batch page-cache effect, so no byte lower bound here).
        assert merged.total_bytes % 4096 == 0
        assert merged.n_requests <= max(chunked.n_requests, 1)
