"""Unit tests for the top-down and bottom-up step kernels."""

import numpy as np
import pytest

from repro.bfs.bottomup import InMemoryScanner, bottom_up_step
from repro.bfs.state import BFSState
from repro.bfs.topdown import gather_adjacency, top_down_step
from repro.csr.builder import build_csr
from repro.csr.io import offload_csr
from repro.csr.partition import BackwardGraph, ForwardGraph
from repro.numa.topology import NumaTopology
from repro.util.bitmap import Bitmap


@pytest.fixture()
def path_graph():
    """0-1-2-3-4 path."""
    return build_csr(np.array([[0, 1, 2, 3], [1, 2, 3, 4]]), n_vertices=5)


@pytest.fixture()
def star_graph():
    """Vertex 0 connected to 1..9."""
    edges = np.stack([np.zeros(9, dtype=np.int64), np.arange(1, 10)])
    return build_csr(edges, n_vertices=10)


def _setup(csr, root, n_nodes=2):
    topo = NumaTopology(n_nodes)
    fwd = ForwardGraph(csr, topo)
    bwd = BackwardGraph(csr, topo)
    state = BFSState(csr.n_rows, topo, root)
    return topo, fwd, bwd, state


class TestTopDown:
    def test_path_expansion(self, path_graph):
        _, fwd, _, state = _setup(path_graph, 0)
        nxt, dram, nvm = top_down_step(fwd.shards, state)
        assert nxt.tolist() == [1]
        assert dram == 1  # vertex 0 has one neighbor
        assert nvm == 0
        assert state.parent[1] == 0

    def test_star_expansion(self, star_graph):
        _, fwd, _, state = _setup(star_graph, 0)
        nxt, dram, nvm = top_down_step(fwd.shards, state)
        assert nxt.tolist() == list(range(1, 10))
        assert dram == 9

    def test_scans_all_frontier_edges(self, star_graph):
        # From a leaf: the step scans the leaf's single edge; from the hub
        # on the next level it scans all 9 even though 8 are known.
        _, fwd, _, state = _setup(star_graph, 1)
        nxt, dram, _ = top_down_step(fwd.shards, state)
        assert nxt.tolist() == [0]
        state.promote_next(nxt)
        nxt2, dram2, _ = top_down_step(fwd.shards, state)
        assert dram2 == 9  # full rescan: the top-down drawback
        assert nxt2.tolist() == list(range(2, 10))

    def test_first_parent_wins_deterministic(self):
        # 0 and 1 both reach 2; the earliest frontier position wins.
        csr = build_csr(np.array([[0, 1], [2, 2]]), n_vertices=3)
        topo = NumaTopology(1)
        fwd = ForwardGraph(csr, topo)
        state = BFSState(3, topo, 0)
        state.discover(np.array([1]), np.array([0]))
        state.promote_next(np.array([0, 1], dtype=np.int64))
        nxt, _, _ = top_down_step(fwd.shards, state)
        assert nxt.tolist() == [2]
        assert state.parent[2] == 0  # frontier order, not vertex id luck

    def test_no_rediscovery(self, path_graph):
        _, fwd, _, state = _setup(path_graph, 1)
        nxt, _, _ = top_down_step(fwd.shards, state)
        assert sorted(nxt.tolist()) == [0, 2]
        state.promote_next(nxt)
        nxt2, _, _ = top_down_step(fwd.shards, state)
        assert nxt2.tolist() == [3]  # 1 not rediscovered

    def test_external_shard_counts_as_nvm(self, path_graph, store):
        topo = NumaTopology(1)
        fwd = ForwardGraph(path_graph, topo)
        ext = offload_csr(fwd.shards[0], store, "fwd")
        state = BFSState(5, topo, 0)
        nxt, dram, nvm = top_down_step([ext], state)
        assert nxt.tolist() == [1]
        assert dram == 0 and nvm == 1
        assert store.iostats.n_requests > 0

    def test_gather_adjacency_dram_vs_external(self, path_graph, store):
        ext = offload_csr(path_graph, store, "g")
        rows = np.array([1, 3])
        a, ca = gather_adjacency(path_graph, rows)
        b, cb = gather_adjacency(ext, rows)
        assert np.array_equal(a, b)
        assert np.array_equal(ca, cb)

    def test_empty_frontier(self, path_graph):
        _, fwd, _, state = _setup(path_graph, 0)
        state.promote_next(np.empty(0, dtype=np.int64))
        nxt, dram, nvm = top_down_step(fwd.shards, state)
        assert nxt.size == 0 and dram == 0 and nvm == 0


class TestBottomUp:
    def test_path_expansion(self, path_graph):
        _, _, bwd, state = _setup(path_graph, 0)
        scanners = [InMemoryScanner(s) for s in bwd.shards]
        nxt, dram, nvm = bottom_up_step(scanners, state)
        assert nxt.tolist() == [1]
        assert nvm == 0
        assert state.parent[1] == 0

    def test_star_from_hub(self, star_graph):
        _, _, bwd, state = _setup(star_graph, 0)
        scanners = [InMemoryScanner(s) for s in bwd.shards]
        nxt, dram, _ = bottom_up_step(scanners, state)
        assert nxt.tolist() == list(range(1, 10))
        # Every leaf scans exactly one edge (its only neighbor is the hub).
        assert dram == 9

    def test_early_termination_counts(self):
        # Vertex 3 has sorted neighbors [0, 1, 2]; only 1 in frontier.
        csr = build_csr(
            np.array([[0, 1, 2], [3, 3, 3]]), n_vertices=4
        )
        topo = NumaTopology(1)
        bwd = BackwardGraph(csr, topo)
        state = BFSState(4, topo, 1)
        scanners = [InMemoryScanner(s) for s in bwd.shards]
        nxt, dram, _ = bottom_up_step(scanners, state)
        assert nxt.tolist() == [3]
        # 0 scans [3]: 1 probe, no hit... wait 0's neighbors=[3], 3 not in
        # frontier -> 1 probe. 2 likewise 1. 3 scans [0,1,...]: stops at 1
        # -> 2 probes. Total = 4.
        assert dram == 4

    def test_unfound_vertices_scan_fully(self, path_graph):
        _, _, bwd, state = _setup(path_graph, 0)
        scanners = [InMemoryScanner(s) for s in bwd.shards]
        _, dram, _ = bottom_up_step(scanners, state)
        # 1 finds 0 after 1 probe; 2 scans [1,3] (2), 3 scans [2,4] (2),
        # 4 scans [3] (1). Total 6.
        assert dram == 6

    def test_blocking_equivalent(self, csr, topology, a_root):
        bwd = BackwardGraph(csr, topology)
        scanners = [InMemoryScanner(s) for s in bwd.shards]
        s1 = BFSState(csr.n_rows, topology, a_root)
        s2 = BFSState(csr.n_rows, topology, a_root)
        n1 = bottom_up_step(scanners, s1, rows_per_block=1 << 20)
        n2 = bottom_up_step(scanners, s2, rows_per_block=64)
        assert np.array_equal(n1[0], n2[0])
        assert n1[1] == n2[1]
        assert np.array_equal(s1.parent, s2.parent)

    def test_agrees_with_top_down_on_discovery_set(self, csr, topology, a_root):
        fwd = ForwardGraph(csr, topology)
        bwd = BackwardGraph(csr, topology)
        s_td = BFSState(csr.n_rows, topology, a_root)
        s_bu = BFSState(csr.n_rows, topology, a_root)
        n_td, _, _ = top_down_step(fwd.shards, s_td)
        scanners = [InMemoryScanner(s) for s in bwd.shards]
        n_bu, _, _ = bottom_up_step(scanners, s_bu)
        assert np.array_equal(n_td, n_bu)
