"""SLO engine tests: spec validation, budget/burn accounting against
synthetic event streams, and same-seed byte-identical reports from a
real serve run (extends test_obs_exporters.py's determinism pattern)."""

from __future__ import annotations

import pytest

from repro.core import DRAM_PCIE_FLASH
from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_SERVE_SLOS,
    Observability,
    SLOReport,
    SLOSpec,
    derive,
    evaluate,
)
from repro.obs.spans import TraceEvent


def _event(obs, name, t_s, **attrs):
    obs.tracer.events.append(TraceEvent(name=name, t_s=t_s, attrs=attrs))


def _latency_session(latencies, duration_s=10.0):
    """One serve.complete per latency, evenly spaced over the run."""
    obs = Observability()
    step = duration_s / len(latencies)
    for i, lat in enumerate(latencies):
        _event(obs, "serve.complete", (i + 1) * step, latency_s=lat)
    return obs


LAT_SPEC = SLOSpec(
    name="lat", description="", kind="latency", target=0.9,
    threshold_s=0.05,
)


class TestSLOSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            SLOSpec(name="x", description="", kind="vibes", target=0.9)

    def test_target_must_be_fraction(self):
        for target in (0.0, 1.0, 1.5):
            with pytest.raises(ConfigurationError, match="target"):
                SLOSpec(name="x", description="", kind="availability",
                        target=target)

    def test_latency_requires_threshold(self):
        with pytest.raises(ConfigurationError, match="threshold_s"):
            SLOSpec(name="x", description="", kind="latency", target=0.9)

    def test_windows_must_be_fractions(self):
        with pytest.raises(ConfigurationError, match="windows"):
            SLOSpec(name="x", description="", kind="availability",
                    target=0.9, windows=(0.5, 2.0))


class TestEvaluate:
    def test_latency_sli_counts_threshold_breaches(self):
        obs = _latency_session([0.01] * 8 + [0.20] * 2)
        (r,) = evaluate(obs, specs=(LAT_SPEC,)).results
        assert (r.total, r.good, r.bad) == (10, 8, 2)
        assert r.sli == pytest.approx(0.8)
        assert not r.met
        # Budget: 10% of 10 events = 1 bad allowed; 2 spent = 200%.
        assert r.budget_allowed == pytest.approx(1.0)
        assert r.budget_consumed == pytest.approx(2.0)

    def test_availability_counts_rejects_as_bad(self):
        obs = Observability()
        for t in (1.0, 2.0, 3.0):
            _event(obs, "serve.complete", t, latency_s=0.01)
        _event(obs, "serve.reject", 4.0, reason="queue_full")
        spec = SLOSpec(name="avail", description="",
                       kind="availability", target=0.5)
        (r,) = evaluate(obs, specs=(spec,)).results
        assert (r.total, r.bad) == (4, 1)
        assert r.met

    def test_error_rate_reads_resilience_counters(self):
        obs = Observability()
        obs.counter("resilience.attempts_total", device="a").inc(90)
        obs.counter("resilience.attempts_total", device="b").inc(10)
        obs.counter("resilience.transient_errors_total", device="a").inc(5)
        spec = SLOSpec(name="err", description="",
                       kind="error_rate", target=0.9)
        (r,) = evaluate(obs, specs=(spec,), duration_s=1.0).results
        assert (r.total, r.bad) == (100, 5)
        assert r.sli == pytest.approx(0.95)
        assert r.met
        # Counters carry no timestamps: one whole-run value per window.
        assert len({b.burn_rate for b in r.burns}) == 1

    def test_empty_session_meets_everything(self):
        report = evaluate(Observability())
        assert report.all_met
        assert report.alerting == ()
        for r in report.results:
            assert r.total == 0
            assert r.sli == 1.0

    def test_burst_at_end_fires_multiwindow_alert(self):
        # 90 fast then 10 slow: the trailing 5% window is pure failure
        # and the whole-run window burns 10%/10% = 1x... so use a
        # tighter target making the sustained window burn too.
        obs = _latency_session([0.01] * 80 + [0.20] * 20)
        spec = SLOSpec(name="lat", description="", kind="latency",
                       target=0.95, threshold_s=0.05, burn_alert=2.0)
        (r,) = evaluate(obs, specs=(spec,)).results
        # Whole run: 20% bad / 5% allowed = 4x; trailing 5% window
        # (pure failures): 1.0 / 0.05 = 20x — both over the line.
        assert r.burns[-1].burn_rate == pytest.approx(4.0)
        assert r.burns[0].burn_rate == pytest.approx(20.0)
        assert r.alert

    def test_spread_failures_do_not_alert_fast_window(self):
        # Same 4x long-window burn, but the failures are old news — the
        # trailing fast window is clean, so the page is suppressed.
        obs = _latency_session([0.20] * 20 + [0.01] * 80)
        spec = SLOSpec(name="lat", description="", kind="latency",
                       target=0.95, threshold_s=0.05, burn_alert=2.0)
        (r,) = evaluate(obs, specs=(spec,)).results
        assert r.burns[-1].burn_rate == pytest.approx(4.0)
        assert r.burns[0].burn_rate == pytest.approx(0.0)
        assert not r.alert

    def test_default_specs_cover_three_kinds(self):
        assert {s.kind for s in DEFAULT_SERVE_SLOS} == {
            "latency", "availability", "error_rate"
        }
        report = evaluate(_latency_session([0.01] * 5))
        assert isinstance(report, SLOReport)
        assert len(report.results) == len(DEFAULT_SERVE_SLOS)


class TestReportRendering:
    def test_format_lists_violations(self):
        obs = _latency_session([0.20] * 10)
        text = evaluate(obs, specs=(LAT_SPEC,)).format()
        assert "SLO verdicts" in text
        assert "OBJECTIVES VIOLATED: lat" in text
        assert "NO" in text

    def test_format_all_met(self):
        text = evaluate(_latency_session([0.01] * 10),
                        specs=(LAT_SPEC,)).format()
        assert "all objectives met" in text

    def test_empty_report_renders(self):
        assert "no objectives" in SLOReport(duration_s=0.0).format()

    def test_to_json_round_trips(self):
        import json

        obs = _latency_session([0.01] * 8 + [0.20] * 2)
        payload = json.loads(evaluate(obs, specs=(LAT_SPEC,)).to_json())
        assert payload["all_met"] is False
        assert payload["slos"][0]["name"] == "lat"
        assert len(payload["slos"][0]["burns"]) == 3


class TestDeterminism:
    """Two same-seed serve runs must produce byte-identical SLO and
    derived-metrics reports — the simulated-clock property, extended
    from test_obs_exporters.py to the interpretation layer."""

    @pytest.fixture(scope="class")
    def reports(self, tmp_path_factory):
        from repro.serve import BFSServer, GraphCatalog, WorkloadSpec
        from repro.serve import generate_workload

        out = []
        for tag in ("a", "b"):
            obs = Observability()
            catalog = GraphCatalog(
                workdir=tmp_path_factory.mktemp(f"wd_{tag}"), obs=obs
            )
            catalog.build("default", DRAM_PCIE_FLASH, scale=9, seed=11,
                          alpha=4.0, beta=4.0)
            spec = WorkloadSpec(n_requests=60, rate_rps=2000.0,
                                root_pool=12, seed=7)
            reqs = generate_workload(
                spec, catalog.get("default").degrees
            )
            BFSServer(catalog).serve(reqs)
            out.append((evaluate(obs), derive(obs)))
            catalog.close()
        return out

    def test_slo_reports_byte_identical(self, reports):
        (slo_a, _), (slo_b, _) = reports
        assert slo_a.to_json().encode() == slo_b.to_json().encode()

    def test_derived_reports_byte_identical(self, reports):
        (_, der_a), (_, der_b) = reports
        assert der_a.to_json().encode() == der_b.to_json().encode()

    def test_serve_run_produced_latency_samples(self, reports):
        (slo, _), _ = reports
        by_name = {r.spec.name: r for r in slo.results}
        assert by_name["serve-latency"].total > 0
        assert slo.duration_s > 0.0
