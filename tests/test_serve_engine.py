"""Batched-BFS engine tests: batching never changes an answer, shared
fetches reduce device traffic, faults degrade the batch safely."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.bfs import AlphaBetaPolicy, SemiExternalBFS
from repro.bfs.hybrid import HybridBFS
from repro.core import DRAM_ONLY, DRAM_PCIE_FLASH
from repro.errors import ConfigurationError
from repro.graph500 import validate_bfs_tree
from repro.semiext.faults import FaultPlan
from repro.serve import BatchedBFS, GraphCatalog

ALPHA = BETA = 4.0


def _catalog(tmp_path, scenario, scale=9, seed=123, tag="g"):
    cat = GraphCatalog(workdir=tmp_path / tag)
    graph = cat.build(tag, scenario, scale=scale, seed=seed,
                      alpha=ALPHA, beta=BETA)
    return cat, graph


def _roots(graph, n=6):
    return [int(r) for r in np.flatnonzero(graph.degrees > 0)[:n]]


class TestBatchedEqualsUnbatched:
    @pytest.mark.parametrize("scenario", [DRAM_PCIE_FLASH, DRAM_ONLY],
                             ids=["pcie", "dram"])
    def test_trees_identical_to_reference_engine(self, tmp_path, scenario):
        cat, g = _catalog(tmp_path, scenario)
        roots = _roots(g)
        batched = BatchedBFS(g).run_batch(roots)
        if g.semi_external:
            ref = SemiExternalBFS(
                g.forward, g.backward,
                AlphaBetaPolicy(alpha=ALPHA, beta=BETA),
                g.store, g.external_shards, cost_model=g.cost_model,
            )
        else:
            ref = HybridBFS(
                g.forward, g.backward,
                AlphaBetaPolicy(alpha=ALPHA, beta=BETA),
                cost_model=g.cost_model,
            )
        for i, root in enumerate(roots):
            expected = ref.run(root)
            assert np.array_equal(batched[i].parent, expected.parent), root
            assert validate_bfs_tree(g.edges, root, batched[i].parent)
        cat.close()

    def test_trees_independent_of_batch_composition(self, tmp_path):
        cat, g = _catalog(tmp_path, DRAM_PCIE_FLASH)
        roots = _roots(g, n=8)
        engine = BatchedBFS(g)
        full = {r.root: r.parent for r in engine.run_batch(roots)}
        for size in (1, 3):
            for i in range(0, len(roots), size):
                for res in engine.run_batch(roots[i:i + size]):
                    assert np.array_equal(res.parent, full[res.root]), (
                        size, res.root
                    )
        cat.close()

    def test_results_carry_per_query_traces(self, tmp_path):
        cat, g = _catalog(tmp_path, DRAM_PCIE_FLASH)
        roots = _roots(g, n=3)
        for res in BatchedBFS(g).run_batch(roots):
            assert len(res.traces) >= 1
            assert res.traces[0].level == 0
            assert res.traversed_edges > 0
        cat.close()

    def test_duplicate_roots_rejected(self, tmp_path):
        cat, g = _catalog(tmp_path, DRAM_ONLY)
        root = _roots(g, n=1)[0]
        with pytest.raises(ConfigurationError, match="unique"):
            BatchedBFS(g).run_batch([root, root])
        cat.close()

    def test_empty_batch_is_noop(self, tmp_path):
        cat, g = _catalog(tmp_path, DRAM_ONLY)
        assert BatchedBFS(g).run_batch([]) == []
        cat.close()

    @pytest.mark.parametrize("scenario", [DRAM_PCIE_FLASH, DRAM_ONLY],
                             ids=["pcie", "dram"])
    def test_empty_partition_frontiers_in_union_gather(self, tmp_path,
                                                       scenario):
        # A scale-1 graph under the paper's 4-node topology leaves two
        # NUMA shards empty, and at every level the union frontier has
        # no out-edges at all in most shards — the union gather must
        # return nothing for those shards without perturbing the answer.
        cat, g = _catalog(tmp_path, scenario, scale=1, seed=3)
        parts = g.scenario.topology.partitions(g.n_vertices)
        assert any(p.size == 0 for p in parts)
        roots = _roots(g, n=2)
        assert roots, "scale-1 Kronecker graph lost its only edge"
        results = BatchedBFS(g).run_batch(roots)
        for res, root in zip(results, roots):
            assert validate_bfs_tree(g.edges, root, res.parent)
        cat.close()


class TestSharedFetches:
    def test_union_fetch_is_smaller_than_sum_of_frontiers(self, tmp_path):
        cat, g = _catalog(tmp_path, DRAM_PCIE_FLASH, scale=10)
        engine = BatchedBFS(g)
        engine.run_batch(_roots(g, n=8))
        assert engine.rows_fetched < engine.rows_requested
        cat.close()

    def test_nvm_bytes_shrink_as_batch_grows(self, tmp_path):
        totals = {}
        for size in (1, 4):
            cat, g = _catalog(tmp_path, DRAM_PCIE_FLASH, scale=10,
                              tag=f"b{size}")
            roots = _roots(g, n=8)
            engine = BatchedBFS(g)
            for i in range(0, len(roots), size):
                engine.run_batch(roots[i:i + size])
            totals[size] = g.store.iostats.total_bytes
            cat.close()
        assert totals[4] < totals[1]

    def test_single_query_batch_matches_requested(self, tmp_path):
        cat, g = _catalog(tmp_path, DRAM_PCIE_FLASH)
        engine = BatchedBFS(g)
        engine.run_batch(_roots(g, n=1))
        assert engine.rows_fetched == engine.rows_requested
        cat.close()


class TestDegradation:
    def test_hard_failure_degrades_batch_not_answers(self, tmp_path):
        scenario = replace(DRAM_PCIE_FLASH,
                           fault_plan=FaultPlan(seed=3, fail_at_s=0.0))
        cat, g = _catalog(tmp_path, scenario)
        roots = _roots(g, n=4)
        engine = BatchedBFS(g)
        results = engine.run_batch(roots)
        assert engine.degraded_mode
        assert g.store.resilience.degraded_levels >= 1
        # Healthy reference trees for comparison.
        ref_cat, ref_g = _catalog(tmp_path, DRAM_PCIE_FLASH, tag="ref")
        expected = {r.root: r.parent
                    for r in BatchedBFS(ref_g).run_batch(roots)}
        for res in results:
            assert np.array_equal(res.parent, expected[res.root]), res.root
            assert validate_bfs_tree(g.edges, res.root, res.parent)
        cat.close()
        ref_cat.close()

    def test_degraded_engine_stays_bottom_up(self, tmp_path):
        scenario = replace(DRAM_PCIE_FLASH,
                           fault_plan=FaultPlan(seed=3, fail_at_s=0.0))
        cat, g = _catalog(tmp_path, scenario)
        engine = BatchedBFS(g)
        engine.run_batch(_roots(g, n=2))
        later = engine.run_batch(_roots(g, n=4)[2:])
        for res in later:
            assert all(t.direction.value == "bottom-up" for t in res.traces)
        cat.close()


class TestCatalog:
    def test_build_is_once_per_name(self, tmp_path):
        cat, _ = _catalog(tmp_path, DRAM_ONLY)
        with pytest.raises(ConfigurationError, match="already built"):
            cat.build("g", DRAM_ONLY, scale=8)
        cat.close()

    def test_unknown_name_rejected(self, tmp_path):
        cat, _ = _catalog(tmp_path, DRAM_ONLY)
        with pytest.raises(ConfigurationError, match="no graph named"):
            cat.get("missing")
        cat.close()

    def test_drop_refused_while_pinned(self, tmp_path):
        cat, g = _catalog(tmp_path, DRAM_ONLY)
        with cat.open("g"):
            with pytest.raises(ConfigurationError, match="open handle"):
                cat.drop("g")
        cat.drop("g")
        assert cat.names() == []
        cat.close()

    def test_handle_close_is_idempotent(self, tmp_path):
        cat, g = _catalog(tmp_path, DRAM_ONLY)
        handle = cat.open("g")
        handle.close()
        handle.close()
        assert g.pins == 0
        cat.close()

    def test_graphs_share_one_clock(self, tmp_path):
        cat = GraphCatalog(workdir=tmp_path)
        a = cat.build("a", DRAM_PCIE_FLASH, scale=8, seed=1)
        b = cat.build("b", DRAM_PCIE_FLASH, scale=8, seed=2)
        assert a.clock is b.clock is cat.clock
        assert a.store.clock is b.store.clock
        cat.close()
