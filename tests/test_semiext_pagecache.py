"""Unit tests for the modeled OS page cache (Figure 9's mechanism)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.semiext import NVMStore, PCIE_FLASH


@pytest.fixture()
def cached_store(tmp_path):
    return NVMStore(
        tmp_path / "nvm", PCIE_FLASH, page_cache_bytes=1 << 20
    )


class TestPageCache:
    def test_second_read_is_free(self, cached_store):
        ext = cached_store.put_array("a", np.arange(10000, dtype=np.int64))
        ext.read_slice(0, 10000)
        t1 = cached_store.clock.now()
        reqs1 = cached_store.iostats.n_requests
        ext.read_slice(0, 10000)
        assert cached_store.clock.now() == t1  # no new device time
        assert cached_store.iostats.n_requests == reqs1
        assert cached_store.cache_hit_bytes > 0

    def test_different_files_cached_separately(self, cached_store):
        a = cached_store.put_array("a", np.arange(1000, dtype=np.int64))
        b = cached_store.put_array("b", np.arange(1000, dtype=np.int64))
        a.read_slice(0, 1000)
        reqs = cached_store.iostats.n_requests
        b.read_slice(0, 1000)  # same offsets, different file: still a miss
        assert cached_store.iostats.n_requests > reqs

    def test_capacity_limits_admission(self, tmp_path):
        store = NVMStore(
            tmp_path / "nvm", PCIE_FLASH, page_cache_bytes=8192
        )
        ext = store.put_array("a", np.arange(100_000, dtype=np.int64))
        ext.read_slice(0, 100_000)  # 800 KB: only 2 pages admitted
        t1 = store.clock.now()
        ext.read_slice(0, 100_000)
        # The uncached tail must be re-charged.
        assert store.clock.now() > t1
        assert 0.0 < store.cache_hit_ratio < 0.1

    def test_no_cache_by_default(self, store):
        ext = store.put_array("a", np.arange(1000, dtype=np.int64))
        ext.read_slice(0, 1000)
        ext.read_slice(0, 1000)
        assert store.cache_hit_bytes == 0
        assert store.cache_hit_ratio == 0.0

    def test_partial_overlap(self, cached_store):
        ext = cached_store.put_array("a", np.arange(10000, dtype=np.int64))
        ext.read_slice(0, 5000)  # pages 0..9 roughly
        bytes1 = cached_store.iostats.total_bytes
        ext.read_slice(2500, 7500)  # half cached, half new
        new_bytes = cached_store.iostats.total_bytes - bytes1
        assert 0 < new_bytes < 5000 * 8

    def test_negative_capacity_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            NVMStore(tmp_path, PCIE_FLASH, page_cache_bytes=-1)

    def test_hit_ratio_bounds(self, cached_store):
        ext = cached_store.put_array("a", np.arange(1000, dtype=np.int64))
        for _ in range(5):
            ext.read_slice(0, 1000)
        assert 0.5 < cached_store.cache_hit_ratio <= 1.0
