"""Unit tests for repro.dist.partition (partitioners and CSR sharding)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.csr import build_csr
from repro.csr.graph import CSRGraph
from repro.dist import (
    ContiguousPartitioner,
    DegreeBalancedPartitioner,
    column_shards,
    row_shards,
)
from repro.errors import ConfigurationError
from repro.graph500 import EdgeList, generate_edges
from repro.numa import NumaTopology


def _small_csr(scale=7, seed=5):
    n = 1 << scale
    return build_csr(EdgeList(generate_edges(scale, seed=seed), n))


class TestContiguousPartitioner:
    def test_rejects_nonpositive_count(self):
        for bad in (0, -1):
            with pytest.raises(ConfigurationError):
                ContiguousPartitioner(bad)

    @pytest.mark.parametrize("n_parts", [1, 2, 4, 7])
    def test_matches_numa_topology_ranges(self, n_parts):
        # The generalization contract: bit-compatible with the NUMA
        # shard layer's ceil-division split at every count.
        parts = ContiguousPartitioner(n_parts).partitions(103)
        numa = NumaTopology(n_parts).partitions(103)
        assert [(p.lo, p.hi) for p in parts] == [(p.lo, p.hi) for p in numa]

    def test_partitions_cover_and_abut(self):
        parts = ContiguousPartitioner(4).partitions(103)
        assert parts[0].lo == 0
        assert parts[-1].hi == 103
        for a, b in zip(parts, parts[1:]):
            assert a.hi == b.lo

    def test_trailing_partitions_empty_when_overpartitioned(self):
        parts = ContiguousPartitioner(8).partitions(3)
        assert sum(p.size for p in parts) == 3
        assert [p.size for p in parts[3:]] == [0] * 5

    def test_owner_of_matches_partitions(self):
        p = ContiguousPartitioner(4)
        n = 103
        owners = p.owner_of(np.arange(n), n)
        for part in p.partitions(n):
            assert (owners[part.lo:part.hi] == part.node).all()

    def test_owner_of_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ContiguousPartitioner(2).owner_of(np.array([10]), 10)
        with pytest.raises(ConfigurationError):
            ContiguousPartitioner(2).owner_of(np.array([-1]), 10)

    def test_rejects_nonpositive_vertex_count(self):
        with pytest.raises(ConfigurationError):
            ContiguousPartitioner(2).partitions(0)


class TestDegreeBalancedPartitioner:
    def test_partitions_cover_and_abut(self):
        csr = _small_csr()
        parts = DegreeBalancedPartitioner(4, csr.degrees()).partitions(
            csr.n_rows
        )
        assert parts[0].lo == 0
        assert parts[-1].hi == csr.n_rows
        for a, b in zip(parts, parts[1:]):
            assert a.hi == b.lo

    def test_owner_of_matches_partitions(self):
        csr = _small_csr()
        p = DegreeBalancedPartitioner(4, csr.degrees())
        n = csr.n_rows
        owners = p.owner_of(np.arange(n), n)
        for part in p.partitions(n):
            assert (owners[part.lo:part.hi] == part.node).all()

    def test_balances_edges_better_than_contiguous(self):
        # Kronecker degrees are skewed toward low vertex ids; boundaries
        # on the cumulative degree curve must spread edge work tighter
        # than equal-width vertex ranges do.
        csr = _small_csr(scale=9)
        degrees = csr.degrees()

        def edge_spread(partitioner):
            loads = [
                int(degrees[p.lo:p.hi].sum())
                for p in partitioner.partitions(csr.n_rows)
            ]
            return max(loads) - min(loads)

        balanced = edge_spread(DegreeBalancedPartitioner(4, degrees))
        contiguous = edge_spread(ContiguousPartitioner(4))
        assert balanced < contiguous

    def test_rejects_bad_degrees(self):
        with pytest.raises(ConfigurationError):
            DegreeBalancedPartitioner(2, np.empty(0, dtype=np.int64))
        with pytest.raises(ConfigurationError):
            DegreeBalancedPartitioner(2, np.array([[1, 2]]))
        with pytest.raises(ConfigurationError):
            DegreeBalancedPartitioner(2, np.array([1, -1]))

    def test_rejects_mismatched_vertex_count(self):
        p = DegreeBalancedPartitioner(2, np.ones(10, dtype=np.int64))
        with pytest.raises(ConfigurationError):
            p.partitions(11)
        with pytest.raises(ConfigurationError):
            p.owner_of(np.array([0]), 11)

    def test_overpartitioned_boundaries_stay_valid(self):
        # More partitions than vertices: duplicated boundaries make some
        # ranges empty, and owner_of must agree with partitions().
        p = DegreeBalancedPartitioner(8, np.ones(3, dtype=np.int64))
        parts = p.partitions(3)
        assert sum(part.size for part in parts) == 3
        owners = p.owner_of(np.arange(3), 3)
        for part in parts:
            assert (owners[part.lo:part.hi] == part.node).all()


class TestShards:
    def test_column_shards_keep_all_rows_and_own_destinations(self):
        csr = _small_csr()
        p = ContiguousPartitioner(4)
        shards = column_shards(csr, p)
        assert len(shards) == 4
        for part, shard in zip(p.partitions(csr.n_rows), shards):
            assert shard.n_rows == csr.n_rows
            if shard.adj.size:
                assert int(shard.adj.min()) >= part.lo
                assert int(shard.adj.max()) < part.hi

    def test_column_shards_union_reproduces_adjacency(self):
        csr = _small_csr()
        shards = column_shards(csr, ContiguousPartitioner(3))
        for row in range(csr.n_rows):
            merged = np.concatenate([
                s.adj[s.indptr[row]:s.indptr[row + 1]] for s in shards
            ])
            original = csr.adj[csr.indptr[row]:csr.indptr[row + 1]]
            assert sorted(merged.tolist()) == sorted(original.tolist())

    def test_row_shards_concatenate_back_to_csr(self):
        csr = _small_csr()
        shards = row_shards(csr, ContiguousPartitioner(3))
        adj = np.concatenate([s.adj for s in shards])
        degrees = np.concatenate([np.diff(s.indptr) for s in shards])
        assert np.array_equal(adj, csr.adj)
        assert np.array_equal(degrees, csr.degrees())

    def test_row_shards_sizes_match_partitions(self):
        csr = _small_csr()
        p = DegreeBalancedPartitioner(4, csr.degrees())
        for part, shard in zip(p.partitions(csr.n_rows), row_shards(csr, p)):
            assert shard.n_rows == part.size

    def test_sharding_requires_square_csr(self):
        rect = CSRGraph(
            indptr=np.array([0, 1], dtype=np.int64),
            adj=np.array([3], dtype=np.int64),
            n_cols=5,
        )
        with pytest.raises(ConfigurationError):
            column_shards(rect, ContiguousPartitioner(2))
        with pytest.raises(ConfigurationError):
            row_shards(rect, ContiguousPartitioner(2))
