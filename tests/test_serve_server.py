"""Server and scheduler tests: fairness, backpressure, caching,
degraded-mode shedding."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import DRAM_ONLY, DRAM_PCIE_FLASH
from repro.errors import ConfigurationError
from repro.semiext.faults import FaultPlan
from repro.serve import (
    AdmissionQueue,
    BFSServer,
    GraphCatalog,
    RejectionStats,
    Request,
    WorkloadSpec,
    generate_workload,
)

ALPHA = BETA = 4.0


def _req(arrival, tenant="t0", root=1, graph="g"):
    return Request(arrival_s=arrival, tenant=tenant, graph=graph, root=root)


class TestAdmissionQueue:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="positive"):
            AdmissionQueue(0)

    def test_offer_rejects_when_full(self):
        q = AdmissionQueue(2)
        assert q.offer(_req(0.0, root=1))
        assert q.offer(_req(0.0, root=2))
        assert not q.offer(_req(0.0, root=3))
        assert q.depth == 2

    def test_batch_size_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="positive"):
            AdmissionQueue(4).next_batch(0)

    def test_round_robin_across_tenants(self):
        q = AdmissionQueue(16)
        for i in range(3):
            q.offer(_req(0.0, tenant="a", root=10 + i))
        for i in range(3):
            q.offer(_req(0.0, tenant="b", root=20 + i))
        batch = q.next_batch(4)
        # One per tenant per pass: a, b, a, b — not a, a, a, b.
        assert [r.tenant for r in batch] == ["a", "b", "a", "b"]
        assert [r.root for r in batch] == [10, 20, 11, 21]

    def test_chatty_tenant_cannot_starve_others(self):
        q = AdmissionQueue(32)
        for i in range(10):
            q.offer(_req(0.0, tenant="chatty", root=i))
        q.offer(_req(0.0, tenant="quiet", root=100))
        batch = q.next_batch(4)
        assert any(r.tenant == "quiet" for r in batch)

    def test_rotation_point_advances_between_batches(self):
        q = AdmissionQueue(32)
        for i in range(4):
            q.offer(_req(0.0, tenant="a", root=i))
            q.offer(_req(0.0, tenant="b", root=10 + i))
        first = q.next_batch(2)
        second = q.next_batch(2)
        assert first[0].tenant != second[0].tenant

    def test_drains_in_fifo_order_per_tenant(self):
        q = AdmissionQueue(8)
        for i in range(3):
            q.offer(_req(0.0, tenant="a", root=i))
        assert [r.root for r in q.next_batch(8)] == [0, 1, 2]
        assert q.depth == 0


class TestRejectionStats:
    def test_records_by_reason_and_tenant(self):
        stats = RejectionStats()
        stats.record(_req(0.0, tenant="a"), "queue_full")
        stats.record(_req(0.0, tenant="a"), "degraded")
        stats.record(_req(0.0, tenant="b"), "queue_full")
        assert stats.queue_full == 2
        assert stats.degraded == 1
        assert stats.total == 3
        assert stats.by_tenant == {"a": 2, "b": 1}

    def test_unknown_reason_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown rejection"):
            RejectionStats().record(_req(0.0), "cosmic_rays")


@pytest.fixture(scope="module")
def catalog(tmp_path_factory):
    cat = GraphCatalog(workdir=tmp_path_factory.mktemp("serve"))
    cat.build("g", DRAM_PCIE_FLASH, scale=9, seed=11, alpha=ALPHA, beta=BETA)
    yield cat
    cat.close()


class TestBFSServer:
    def _workload(self, catalog, n=60, **kw):
        spec = WorkloadSpec(n_requests=n, graph="g", seed=kw.pop("seed", 7),
                            root_pool=kw.pop("root_pool", 12), **kw)
        return generate_workload(spec, catalog.get("g").degrees)

    def test_serves_every_request(self, catalog):
        reqs = self._workload(catalog)
        report = BFSServer(catalog).serve(reqs)
        assert report.n_requests == len(reqs)
        assert report.n_rejected == 0
        assert report.n_served == len(reqs)

    def test_latencies_nonnegative_and_measured_from_arrival(self, catalog):
        report = BFSServer(catalog).serve(self._workload(catalog))
        for c in report.completions:
            assert c.latency_s >= 0
            assert c.completed_s == pytest.approx(
                c.request.arrival_s + c.latency_s
            )

    def test_zipf_workload_hits_cache(self, catalog):
        report = BFSServer(catalog, cache_capacity=64).serve(
            self._workload(catalog, n=100, zipf_s=1.4)
        )
        assert report.cache_hit_rate > 0
        assert any(c.source == "cache" for c in report.completions)
        assert any(c.source == "batched" for c in report.completions)

    def test_cache_disabled_means_all_traversals(self, catalog):
        report = BFSServer(catalog, cache_capacity=0).serve(
            self._workload(catalog, n=30)
        )
        assert report.cache_hits == 0
        assert all(c.source == "batched" for c in report.completions)

    def test_repeated_root_shares_answer(self, catalog):
        reqs = [_req(0.001 * i, tenant=f"t{i % 2}", root=self._hot(catalog))
                for i in range(6)]
        report = BFSServer(catalog).serve(reqs)
        assert report.n_served == 6
        trees = {c.traversed_edges for c in report.completions}
        assert len(trees) == 1

    def _hot(self, catalog):
        return int(np.argmax(catalog.get("g").degrees))

    def test_tiny_queue_rejects_burst(self, catalog):
        # Everything arrives at once; queue of 4 cannot hold 20.
        roots = np.flatnonzero(catalog.get("g").degrees > 0)[:20]
        reqs = [_req(0.0, root=int(r)) for r in roots]
        report = BFSServer(catalog, queue_capacity=4,
                           cache_capacity=0).serve(reqs)
        assert report.rejections.queue_full == 16
        assert report.n_served == 4
        assert {reason for _, reason in report.rejected} == {"queue_full"}

    def test_burst_batches_together(self, catalog):
        roots = np.flatnonzero(catalog.get("g").degrees > 0)[:8]
        reqs = [_req(0.0, root=int(r)) for r in roots]
        report = BFSServer(catalog, batch_size=8,
                           cache_capacity=0).serve(reqs)
        assert report.n_batches == 1
        assert report.n_traversals == 8

    def test_report_tenant_accounting_matches(self, catalog):
        report = BFSServer(catalog).serve(self._workload(catalog, n=50))
        by_tenant = report.served_by_tenant()
        assert sum(by_tenant.values()) == report.n_served


class TestDegradedServing:
    def test_open_circuit_serves_cache_only(self, tmp_path):
        scenario = replace(DRAM_PCIE_FLASH,
                           fault_plan=FaultPlan(seed=3, fail_at_s=0.0))
        cat = GraphCatalog(workdir=tmp_path)
        g = cat.build("g", scenario, scale=9, seed=11,
                      alpha=ALPHA, beta=BETA)
        hot = int(np.argmax(g.degrees))
        other = int(np.flatnonzero(g.degrees > 0)[0])
        if other == hot:
            other = int(np.flatnonzero(g.degrees > 0)[1])
        server = BFSServer(cat, cache_capacity=8)
        # First query trips the hard failure (answered via degraded
        # bottom-up traversal) and opens the circuit breaker.
        first = server.serve([_req(0.0, root=hot)])
        assert first.n_served == 1
        assert g.circuit_open
        # Now: cached root still served, uncached root shed as degraded.
        second = server.serve([
            _req(0.0, root=hot), _req(0.0, root=other),
        ])
        assert second.rejections.degraded == 1
        assert [c.request.root for c in second.completions] == [hot]
        assert second.completions[0].source == "cache"
        assert {reason for _, reason in second.rejected} == {"degraded"}
        cat.close()


class TestDramOnlyServing:
    def test_serves_without_a_device(self, tmp_path):
        cat = GraphCatalog(workdir=tmp_path)
        cat.build("g", DRAM_ONLY, scale=9, seed=11, alpha=ALPHA, beta=BETA)
        spec = WorkloadSpec(n_requests=30, graph="g", seed=2, root_pool=8)
        report = BFSServer(cat).serve(
            generate_workload(spec, cat.get("g").degrees)
        )
        assert report.n_served == 30
        assert report.nvm_bytes_read == 0
        cat.close()
