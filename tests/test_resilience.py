"""Resilient read path, fault injection, and degraded-mode tests.

The invariant under test everywhere: injected faults cost *time* (clock,
backoff, iostat busy) but never *correctness* — parent trees from faulted
runs are bit-identical to fault-free runs, and even a dead device only
degrades the engine to bottom-up-only traversal, never to a wrong answer.

CI runs this module once per seed in ``REPRO_FAULT_SEEDS`` (default
``7,19,101``); locally all three run in one invocation.
"""

import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.resilience import ResilienceSummary
from repro.bfs import AlphaBetaPolicy, HybridBFS, SemiExternalBFS
from repro.bfs.metrics import Direction
from repro.bfs.policies import PolicyInputs
from repro.csr import BackwardGraph, ForwardGraph, build_csr
from repro.errors import (
    ChecksumError,
    ConfigurationError,
    DeviceFailedError,
    TransientIOError,
)
from repro.graph500 import EdgeList, generate_edges, validate_bfs_tree
from repro.numa import NumaTopology
from repro.semiext import NVMStore, PCIE_FLASH
from repro.semiext.faults import (
    CircuitState,
    DeviceHealthMonitor,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)

FAULT_SEEDS = [
    int(s)
    for s in os.environ.get("REPRO_FAULT_SEEDS", "7,19,101").split(",")
    if s.strip()
]


class _SteadyHealth(DeviceHealthMonitor):
    """Monitor whose health score never dips below 1 (unless open).

    Pins the α/β schedule to the fault-free one, isolating the
    bit-identical-trees property from the (intentional) health-biased
    direction switching.
    """

    def health_score(self) -> float:
        return 0.0 if self.circuit_open else 1.0


@pytest.fixture(scope="module")
def graph():
    el = EdgeList(generate_edges(8, seed=11), 1 << 8)
    csr = build_csr(el)
    topo = NumaTopology(2)
    root = int(np.flatnonzero(csr.degrees() > 0)[0])
    return el, csr, ForwardGraph(csr, topo), BackwardGraph(csr, topo), root


def _offloaded_engine(graph, workdir, fault_plan=None, retry=None, health=None,
                      alpha=10.0, beta=10.0):
    _, _, fwd, bwd, _ = graph
    store = NVMStore(
        workdir,
        PCIE_FLASH,
        concurrency=8,
        fault_plan=fault_plan,
        retry=retry,
        health=health,
    )
    engine = SemiExternalBFS.offload(
        fwd, bwd, AlphaBetaPolicy(alpha, beta), store
    )
    return engine, store


@pytest.fixture(scope="module")
def baseline_parent(graph, tmp_path_factory):
    """Fault-free semi-external parent tree (the property-test reference)."""
    _, _, _, _, root = graph
    engine, _ = _offloaded_engine(
        graph, tmp_path_factory.mktemp("baseline")
    )
    return engine.run(root).parent.copy()


class TestFaultPlan:
    def test_parse_roundtrip(self):
        plan = FaultPlan.parse("error_rate=0.02,gc_rate=0.01,gc_pause_ms=5,seed=7")
        assert plan == FaultPlan(
            seed=7, error_rate=0.02, gc_rate=0.01, gc_pause_s=5e-3
        )

    def test_parse_none_and_empty(self):
        assert not FaultPlan.parse("none").active
        assert not FaultPlan.parse("").active
        assert FaultPlan.none() == FaultPlan()

    def test_parse_fail_at(self):
        plan = FaultPlan.parse("fail_at_s=0.25,seed=3")
        assert plan.fail_at_s == 0.25
        assert plan.active

    @pytest.mark.parametrize("spec", [
        "bogus=1", "error_rate", "error_rate=x", "error_rate=1.5",
        "error_rate=0.7,torn_rate=0.7",
    ])
    def test_parse_rejects(self, spec):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(spec)

    def test_injector_is_deterministic(self):
        plan = FaultPlan(seed=42, error_rate=0.3, torn_rate=0.2, gc_rate=0.4)
        a, b = FaultInjector(plan), FaultInjector(plan)
        outcomes = [(a.draw(), b.draw()) for _ in range(200)]
        assert all(x == y for x, y in outcomes)
        assert any(not x.ok for x, _ in outcomes)
        assert any(x.gc_pause_s > 0 for x, _ in outcomes)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        p = RetryPolicy(backoff_base_s=1e-3, backoff_multiplier=2.0,
                        backoff_max_s=5e-3)
        assert p.backoff_s(1) == 1e-3
        assert p.backoff_s(2) == 2e-3
        assert p.backoff_s(3) == 4e-3
        assert p.backoff_s(4) == 5e-3  # capped
        assert p.backoff_s(10) == 5e-3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base_s=2.0, backoff_max_s=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_s=0.0)


class TestDeviceHealthMonitor:
    def test_degrades_then_opens_on_error_rate(self):
        m = DeviceHealthMonitor(window=16, min_samples=4,
                                degraded_error_rate=0.25, open_error_rate=0.75)
        for t in range(4):
            m.record_success(float(t))
        assert m.state is CircuitState.CLOSED
        m.record_error(4.0)
        m.record_error(5.0)  # 2/6 = 0.33 >= 0.25 -> DEGRADED
        assert m.state is CircuitState.DEGRADED
        assert 0.0 < m.health_score() < 1.0
        for t in range(6, 20):
            m.record_error(float(t))
        assert m.circuit_open
        assert m.health_score() == 0.0
        states = [s for _, s in m.transitions]
        assert states == [CircuitState.DEGRADED, CircuitState.OPEN]

    def test_open_is_terminal(self):
        m = DeviceHealthMonitor()
        m.record_hard_failure(1.0)
        assert m.circuit_open
        for t in range(2, 200):
            m.record_success(float(t))
        assert m.circuit_open  # successes never close an open circuit

    def test_rate_tripping_can_be_disabled(self):
        m = DeviceHealthMonitor(min_samples=1, open_error_rate=None)
        for t in range(100):
            m.record_error(float(t))
        assert m.state is CircuitState.DEGRADED
        assert not m.circuit_open

    def test_reset(self):
        m = DeviceHealthMonitor()
        m.record_hard_failure(1.0)
        m.reset()
        assert m.state is CircuitState.CLOSED
        assert m.transitions == []
        assert m.error_rate == 0.0


class TestHealthBiasedPolicy:
    """A degraded device pushes the α/β schedule toward bottom-up."""

    def test_degraded_health_switches_to_bottom_up_earlier(self):
        p = AlphaBetaPolicy(alpha=10.0, beta=10.0)
        inputs = dict(level=3, current=Direction.TOP_DOWN, n_frontier=60,
                      n_frontier_prev=10, n_all=1000)
        assert p.decide(PolicyInputs(**inputs)) is Direction.TOP_DOWN
        assert (
            p.decide(PolicyInputs(**inputs, device_health=0.5))
            is Direction.BOTTOM_UP
        )

    def test_degraded_health_delays_switch_back(self):
        p = AlphaBetaPolicy(alpha=10.0, beta=10.0)
        inputs = dict(level=5, current=Direction.BOTTOM_UP, n_frontier=60,
                      n_frontier_prev=200, n_all=1000)
        assert p.decide(PolicyInputs(**inputs)) is Direction.TOP_DOWN
        assert (
            p.decide(PolicyInputs(**inputs, device_health=0.5))
            is Direction.BOTTOM_UP
        )

    def test_zero_health_never_picks_top_down_after_root(self):
        p = AlphaBetaPolicy(alpha=1e6, beta=1e6)
        assert (
            p.decide(PolicyInputs(2, Direction.TOP_DOWN, 2, 1, 1000,
                                  device_health=0.0))
            is Direction.BOTTOM_UP
        )


class TestRetryAccounting:
    """The device is charged once per attempt; backoff is host-side time."""

    def _store(self, tmp_path, **kwargs):
        return NVMStore(tmp_path / "nvm", PCIE_FLASH, concurrency=8, **kwargs)

    def test_exhausted_retries_charge_each_attempt(self, tmp_path):
        retry = RetryPolicy(max_retries=2, backoff_base_s=1e-3,
                            backoff_multiplier=2.0, backoff_max_s=4e-3)
        store = self._store(
            tmp_path, fault_plan=FaultPlan(seed=1, error_rate=1.0), retry=retry
        )
        ext = store.put_array("a", np.arange(512, dtype=np.int64))  # one page
        with pytest.raises(TransientIOError, match="after 3 attempts"):
            ext.read_slice(0, 512)
        res = store.resilience
        assert res.n_attempts == 3
        assert res.n_retries == 2
        assert res.n_transient_errors == 3
        # One merged request per attempt: iostat sees all three.
        assert store.iostats.n_requests == 3
        assert res.backoff_time_s == pytest.approx(1e-3 + 2e-3)
        # Elapsed simulated time = device busy (3 services) + backoffs.
        assert store.clock.now() == pytest.approx(
            store.iostats.busy_time_s + res.backoff_time_s
        )

    def test_transient_errors_are_absorbed_and_timed(self, tmp_path):
        store = self._store(
            tmp_path,
            fault_plan=FaultPlan(seed=3, error_rate=0.4),
            retry=RetryPolicy(max_retries=16, backoff_base_s=1e-4),
        )
        data = np.arange(4096, dtype=np.int64)
        ext = store.put_array("a", data)
        out = ext.read_slice(0, 4096)
        np.testing.assert_array_equal(out, data)  # faults never corrupt data
        res = store.resilience
        assert res.n_transient_errors > 0
        assert res.n_retries == res.n_transient_errors
        assert res.backoff_time_s > 0.0
        # Every attempt (including the failed ones) hit the device.
        assert store.iostats.n_requests >= res.n_attempts

    def test_gc_pause_charged_to_device_busy_time(self, tmp_path):
        store = self._store(
            tmp_path, fault_plan=FaultPlan(seed=5, gc_rate=1.0, gc_pause_s=2e-3)
        )
        ext = store.put_array("a", np.arange(512, dtype=np.int64))
        ext.read_slice(0, 512)
        res = store.resilience
        assert res.n_attempts == 1  # GC pause alone is not an error
        assert res.n_retries == 0
        assert res.n_gc_pauses == 1
        assert res.gc_pause_time_s == pytest.approx(2e-3)
        # The stall shows up in iostat busy time AND the simulated clock,
        # exactly like a real flash GC pause under iostat.
        assert store.iostats.busy_time_s > 2e-3
        assert store.clock.now() == pytest.approx(store.iostats.busy_time_s)

    def test_timeout_counts_and_retries(self, tmp_path):
        store = self._store(
            tmp_path,
            verify_checksums=True,
            retry=RetryPolicy(max_retries=1, timeout_s=1e-12),
        )
        ext = store.put_array("a", np.arange(512, dtype=np.int64))
        with pytest.raises(TransientIOError, match="timeout"):
            ext.read_slice(0, 512)
        assert store.resilience.n_timeouts == 2
        assert store.iostats.n_requests == 2

    def test_fault_free_plan_changes_nothing(self, tmp_path):
        plain = self._store(tmp_path / "plain")
        faulted = self._store(
            tmp_path / "faulted", fault_plan=FaultPlan.none()
        )
        data = np.arange(2048, dtype=np.int64)
        for s in (plain, faulted):
            s.put_array("a", data).read_slice(0, 2048)
        assert faulted.injector is None
        assert plain.clock.now() == faulted.clock.now()
        assert plain.iostats.n_requests == faulted.iostats.n_requests
        assert faulted.resilience.n_attempts == 0

    def test_reset_faults_replays_identical_sequence(self, tmp_path):
        plan = FaultPlan(seed=9, error_rate=0.5)
        store = self._store(
            tmp_path, fault_plan=plan, retry=RetryPolicy(max_retries=64)
        )
        ext = store.put_array("a", np.arange(4096, dtype=np.int64))
        ext.read_slice(0, 4096)
        first = store.resilience.n_transient_errors
        store.reset_faults()
        assert store.resilience.n_attempts == 0
        ext.read_slice(0, 4096)
        assert store.resilience.n_transient_errors == first


class TestChecksums:
    def test_corrupt_backing_file_raises_checksum_error(self, tmp_path):
        store = NVMStore(
            tmp_path / "nvm", PCIE_FLASH, verify_checksums=True,
            retry=RetryPolicy(max_retries=2, backoff_base_s=1e-6,
                              backoff_max_s=1e-6),
        )
        ext = store.put_array("a", np.arange(1024, dtype=np.int64))
        with open(ext.path, "r+b") as f:
            f.seek(16)
            f.write(b"\xde\xad\xbe\xef")
        with pytest.raises(ChecksumError, match="persistent checksum"):
            ext.read_slice(0, 1024)
        # Corruption is re-read (and re-charged) per attempt before the
        # error escalates: the data is bad on the medium, not in flight.
        assert store.resilience.n_checksum_failures == 3

    def test_reopen_verifies_checksums(self, tmp_path):
        store = NVMStore(tmp_path / "nvm", PCIE_FLASH, verify_checksums=True)
        ext = store.put_array("a", np.arange(1024, dtype=np.int64))
        ext.close()
        with open(ext.path, "r+b") as f:
            f.seek(4096)
            f.write(b"\x00" * 8 + b"\xff")
        with pytest.raises(ChecksumError, match="page 1"):
            ext.reopen()

    def test_checksum_array_protects_late(self, tmp_path):
        store = NVMStore(tmp_path / "nvm", PCIE_FLASH)
        ext = store.put_array("a", np.arange(1024, dtype=np.int64))
        assert store.checksum_array("a").size == ext.nbytes // store.chunk_bytes
        store.verify_checksums = True
        np.testing.assert_array_equal(
            ext.read_slice(0, 1024), np.arange(1024, dtype=np.int64)
        )

    def test_clean_reads_pass_verification(self, tmp_path):
        store = NVMStore(tmp_path / "nvm", PCIE_FLASH, verify_checksums=True)
        data = np.arange(8192, dtype=np.int64)
        ext = store.put_array("a", data)
        np.testing.assert_array_equal(ext.read_slice(100, 5000),
                                      data[100:5000])
        assert store.resilience.n_checksum_failures == 0


@pytest.mark.parametrize("fault_seed", FAULT_SEEDS)
class TestEngineUnderFaults:
    """Seeded fault plans against the full semi-external engine."""

    def test_transient_faults_leave_tree_bit_identical(
        self, graph, baseline_parent, tmp_path, fault_seed
    ):
        _, _, _, _, root = graph
        engine, store = _offloaded_engine(
            graph,
            tmp_path,
            fault_plan=FaultPlan(seed=fault_seed, error_rate=0.3,
                                 gc_rate=0.2, gc_pause_s=1e-3),
            retry=RetryPolicy(max_retries=32),
            health=_SteadyHealth(open_error_rate=None),
        )
        result = engine.run(root)
        np.testing.assert_array_equal(result.parent, baseline_parent)
        assert store.resilience.n_retries > 0
        assert store.resilience.backoff_time_s > 0.0
        assert result.n_degraded_levels == 0

    def test_hard_failure_at_t0_degrades_with_zero_nvm_reads(
        self, graph, tmp_path, fault_seed
    ):
        el, _, _, _, root = graph
        engine, store = _offloaded_engine(
            graph, tmp_path, fault_plan=FaultPlan(seed=fault_seed, fail_at_s=0.0)
        )
        result = engine.run(root)
        assert validate_bfs_tree(el, result.parent, root).ok
        assert store.health.circuit_open
        assert store.resilience.n_hard_failures >= 1
        assert store.iostats.n_requests == 0  # the device never served a read
        assert result.n_degraded_levels == result.n_levels
        assert all(t.direction is Direction.BOTTOM_UP for t in result.traces)

    def test_mid_run_failure_freezes_device_and_finishes(
        self, graph, tmp_path, fault_seed
    ):
        el, _, _, _, root = graph
        engine, store = _offloaded_engine(
            graph, tmp_path,
            fault_plan=FaultPlan(seed=fault_seed, fail_at_s=1e-6),
        )
        first = engine.run(root)
        assert validate_bfs_tree(el, first.parent, root).ok
        assert store.health.circuit_open
        served = store.iostats.n_requests
        assert served > 0  # the device worked until it died
        assert first.n_degraded_levels > 0
        assert [s for _, s in store.health.transitions] == [CircuitState.OPEN]
        # Degradation is terminal: later BFS runs issue no NVM reads at all.
        second = engine.run(root)
        assert validate_bfs_tree(el, second.parent, root).ok
        assert store.iostats.n_requests == served
        assert second.n_degraded_levels == second.n_levels

    def test_degraded_tree_matches_dram_bottom_up(
        self, graph, tmp_path, fault_seed
    ):
        """The degraded engine is exactly bottom-up on the DRAM graph."""
        _, csr, fwd, bwd, root = graph
        engine, _ = _offloaded_engine(
            graph, tmp_path, fault_plan=FaultPlan(seed=fault_seed, fail_at_s=0.0)
        )
        degraded = engine.run(root)
        from repro.bfs.policies import FixedPolicy

        reference = HybridBFS(
            fwd, bwd, FixedPolicy(Direction.BOTTOM_UP)
        ).run(root)
        np.testing.assert_array_equal(degraded.parent, reference.parent)


@given(
    error_rate=st.floats(0.0, 0.3),
    torn_rate=st.floats(0.0, 0.3),
    gc_rate=st.floats(0.0, 0.3),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_property_any_transient_plan_is_bit_identical(
    graph, baseline_parent, error_rate, torn_rate, gc_rate, seed
):
    """Any seeded transient-fault plan yields the fault-free parent tree."""
    _, _, _, _, root = graph
    with tempfile.TemporaryDirectory(prefix="repro-faults-") as workdir:
        engine, store = _offloaded_engine(
            graph,
            workdir,
            fault_plan=FaultPlan(seed=seed, error_rate=error_rate,
                                 torn_rate=torn_rate, gc_rate=gc_rate,
                                 gc_pause_s=5e-4),
            retry=RetryPolicy(max_retries=40),
            health=_SteadyHealth(open_error_rate=None),
        )
        result = engine.run(root)
        np.testing.assert_array_equal(result.parent, baseline_parent)
        # Every failed attempt was retried and the clock moved forward.
        assert store.resilience.n_retries == store.resilience.n_errors
        if store.resilience.n_retries:
            assert store.resilience.backoff_time_s > 0.0


@pytest.mark.parametrize("fault_seed", FAULT_SEEDS)
class TestPipelineIntegration:
    def test_graph500_completes_under_faults_with_accounting(
        self, fault_seed
    ):
        from dataclasses import replace

        from repro.core import run_graph500
        from repro.core.scenarios import DRAM_PCIE_FLASH

        scenario = replace(
            DRAM_PCIE_FLASH,
            fault_plan=FaultPlan(seed=fault_seed, error_rate=0.2,
                                 gc_rate=0.2, gc_pause_s=1e-3),
        )
        result = run_graph500(scenario, scale=9, n_roots=4, seed=fault_seed)
        assert result.output.all_valid
        assert result.resilience is not None
        assert result.resilience.n_retries > 0
        assert result.resilience.backoff_time_s > 0.0
        assert result.resilience.n_gc_pauses > 0
        summary = ResilienceSummary.from_parts(result.resilience, result.health)
        assert "retries" in summary.format()

    def test_graph500_survives_hard_failure_mid_run(self, fault_seed):
        from dataclasses import replace

        from repro.core import run_graph500
        from repro.core.scenarios import DRAM_PCIE_FLASH

        scenario = replace(
            DRAM_PCIE_FLASH,
            fault_plan=FaultPlan(seed=fault_seed, fail_at_s=1e-6),
        )
        result = run_graph500(scenario, scale=9, n_roots=4, seed=fault_seed)
        assert result.output.all_valid  # every root still got a valid tree
        assert result.health is not None and result.health.circuit_open
        assert result.resilience.n_hard_failures >= 1
        assert result.resilience.degraded_levels > 0


def test_cli_faults_flag_prints_resilience_block(capsys):
    from repro.cli import main

    code = main([
        "run", "--scenario", "pcie", "--scale", "9", "--roots", "2",
        "--seed", "1", "--faults",
        f"error_rate=0.2,gc_rate=0.2,seed={FAULT_SEEDS[0]}",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "resilience:" in out
    assert "backoff time:" in out


def test_resilience_summary_from_store(tmp_path):
    store = NVMStore(
        tmp_path / "nvm", PCIE_FLASH,
        fault_plan=FaultPlan(seed=2, error_rate=0.5),
        retry=RetryPolicy(max_retries=64),
    )
    ext = store.put_array("a", np.arange(4096, dtype=np.int64))
    ext.read_slice(0, 4096)
    summary = ResilienceSummary.from_store(store)
    assert summary.n_attempts == store.resilience.n_attempts
    assert summary.retry_rate > 0
    text = summary.format()
    assert "attempts:" in text and "circuit:" in text


def test_circuit_open_refuses_reads(tmp_path):
    store = NVMStore(
        tmp_path / "nvm", PCIE_FLASH,
        fault_plan=FaultPlan(seed=1, error_rate=0.1),
    )
    ext = store.put_array("a", np.arange(512, dtype=np.int64))
    store.health.record_hard_failure(0.0)
    with pytest.raises(DeviceFailedError, match="circuit breaker open"):
        ext.read_slice(0, 512)
    assert store.resilience.n_refused_reads == 1
    assert store.iostats.n_requests == 0
