"""Tests for the NUMA locality audit (the paper's §IV-A claim)."""

import pytest

from repro.analysis import audit_locality
from repro.csr import BackwardGraph, ForwardGraph, build_csr
from repro.graph500 import EdgeList, generate_edges
from repro.numa import NumaTopology


class TestLocalityAudit:
    def test_netal_layout_has_zero_remote(self, csr, forward, backward, topology):
        audit = audit_locality(csr, forward, backward, topology)
        assert audit.netal_remote_fraction == 0.0

    def test_naive_layout_mostly_remote(self, csr, forward, backward, topology):
        audit = audit_locality(csr, forward, backward, topology)
        # A well-mixed Kronecker graph on 4 nodes: ~3/4 of destinations
        # belong to another node.
        assert 0.5 < audit.naive_remote_fraction < 0.95

    def test_traffic_saved(self, csr, forward, backward, topology):
        audit = audit_locality(csr, forward, backward, topology)
        assert audit.traffic_saved == pytest.approx(
            audit.naive_remote_fraction
        )
        assert audit.n_edges_audited == csr.n_directed_edges

    def test_single_node_everything_local(self):
        scale = 9
        el = EdgeList(generate_edges(scale, seed=1), 1 << scale)
        g = build_csr(el)
        topo = NumaTopology(1)
        audit = audit_locality(
            g, ForwardGraph(g, topo), BackwardGraph(g, topo), topo
        )
        assert audit.netal_remote_fraction == 0.0
        assert audit.naive_remote_fraction == 0.0

    def test_remote_fraction_grows_with_nodes(self):
        scale = 10
        el = EdgeList(generate_edges(scale, seed=2), 1 << scale)
        g = build_csr(el)
        fractions = []
        for nodes in (2, 4, 8):
            topo = NumaTopology(nodes)
            audit = audit_locality(
                g, ForwardGraph(g, topo), BackwardGraph(g, topo), topo
            )
            assert audit.netal_remote_fraction == 0.0
            fractions.append(audit.naive_remote_fraction)
        assert fractions[0] < fractions[1] < fractions[2]
