"""Exporter tests: JSONL round-trip, Chrome trace_event schema,
Prometheus text format, and same-seed export determinism."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.core import DRAM_PCIE_FLASH, run_graph500
from repro.errors import ConfigurationError
from repro.obs import (
    Observability,
    chrome_trace_events,
    parse_prometheus,
    prometheus_text,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.schema import M_NVM_BYTES
from repro.semiext.faults import FaultPlan


def _populated_session() -> Observability:
    """A small session exercising every record type."""
    obs = Observability()
    obs.counter(M_NVM_BYTES, device="PCIe-flash").inc(4096)
    obs.gauge("health.score", device="PCIe-flash").set(0.75)
    obs.histogram("nvm.request_bytes", device="PCIe-flash").observe_many(
        [512.0, 4096.0, 4096.0]
    )
    with obs.span("bfs.run", engine="T", root=3) as run:
        with obs.span("bfs.level", level=0):
            obs.event("cache.fill", admitted_bytes=4096)
        run.set(levels=1)
    obs.track("bfs.frontier_vertices", 17)
    return obs


class TestJsonlRoundTrip:
    def test_registry_survives_round_trip(self, tmp_path):
        obs = _populated_session()
        path = write_jsonl(obs, tmp_path / "events.jsonl")
        back = read_jsonl(path)
        assert back.registry.as_dict() == obs.registry.as_dict()
        assert back.registry.kind_of(M_NVM_BYTES) == "counter"
        assert back.registry.kind_of("health.score") == "gauge"
        assert back.registry.kind_of("nvm.request_bytes") == "histogram"

    def test_spans_events_counters_survive(self, tmp_path):
        obs = _populated_session()
        back = read_jsonl(write_jsonl(obs, tmp_path / "e.jsonl"))
        assert [
            (s.span_id, s.parent_id, s.name, s.t_start_s, s.t_end_s)
            for s in back.tracer.spans
        ] == [
            (s.span_id, s.parent_id, s.name, s.t_start_s, s.t_end_s)
            for s in obs.tracer.spans
        ]
        assert back.tracer.spans[0].attrs == {"engine": "T", "root": 3,
                                              "levels": 1}
        assert [e.name for e in back.tracer.events] == ["cache.fill"]
        assert back.tracer.counters == obs.tracer.counters

    def test_first_line_is_versioned_meta(self, tmp_path):
        path = write_jsonl(_populated_session(), tmp_path / "e.jsonl")
        first = json.loads(path.read_text().splitlines()[0])
        assert first["type"] == "meta"
        assert first["format"] == "repro.obs"
        assert first["version"] == 1

    def test_invalid_json_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format": "repro.obs", "type": "meta", "version": 1}\nnot json\n'
        )
        with pytest.raises(ConfigurationError, match="bad.jsonl:2"):
            read_jsonl(path)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"type": "meta", "format": "somethingelse"}\n')
        with pytest.raises(ConfigurationError, match="not a repro.obs"):
            read_jsonl(path)

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ConfigurationError, match="unknown record type"):
            read_jsonl(path)


class TestChromeTrace:
    def test_events_follow_trace_event_schema(self):
        events = chrome_trace_events(_populated_session())
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i", "C"}
        for e in events:
            assert isinstance(e["name"], str) and e["name"]
            assert isinstance(e["pid"], int)
            if e["ph"] != "M":
                assert isinstance(e["ts"], float)
            if e["ph"] == "X":  # complete event
                assert e["dur"] >= 0.0
                assert isinstance(e["cat"], str)
                assert isinstance(e["args"], dict)
            elif e["ph"] == "i":  # instant
                assert e["s"] in ("t", "p", "g")
            elif e["ph"] == "C":  # counter track
                assert "value" in e["args"]
            elif e["ph"] == "M":  # metadata
                assert e["name"] in ("process_name", "thread_name")
                assert e["args"]["name"]

    def test_metadata_names_engine_and_shard_tracks(self):
        obs = Observability()
        with obs.span("bfs.shard", shard=3, direction="top-down"):
            pass
        with obs.span("bfs.level", level=0):
            pass
        events = chrome_trace_events(obs)
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in meta if e["name"] == "thread_name"
        }
        assert thread_names[1] == "engine"
        assert thread_names[5] == "NUMA shard 3"
        # The shard span runs on its named track; everything else on tid 1.
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        assert by_name["bfs.shard"]["tid"] == 5
        assert by_name["bfs.level"]["tid"] == 1

    def test_timestamps_are_microseconds(self):
        obs = Observability()
        obs.record_span("bfs.level", 0.5, 1.5)
        (event,) = [
            e for e in chrome_trace_events(obs) if e["ph"] != "M"
        ]
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["dur"] == pytest.approx(1.0e6)

    def test_written_file_is_loadable_json(self, tmp_path):
        path = write_chrome_trace(_populated_session(), tmp_path / "t.json")
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["producer"] == "repro.obs"

    def test_attrs_are_json_safe(self, tmp_path):
        import numpy as np

        obs = Observability()
        obs.record_span("bfs.level", 0.0, 1.0, n=np.int64(7), arr=[1, 2])
        path = write_chrome_trace(obs, tmp_path / "t.json")
        (event,) = [
            e for e in json.loads(path.read_text())["traceEvents"]
            if e["ph"] != "M"
        ]
        assert event["args"] == {"n": 7, "arr": "[1, 2]"}


class TestPrometheus:
    def test_snapshot_parses_line_by_line(self):
        obs = _populated_session()
        text = prometheus_text(obs.registry)
        values = parse_prometheus(text)
        assert values['nvm_read_bytes_total{device="PCIe-flash"}'] == 4096
        assert values['health_score{device="PCIe-flash"}'] == 0.75
        assert values['nvm_request_bytes_count{device="PCIe-flash"}'] == 3

    def test_help_and_type_headers_for_catalogued_metrics(self):
        text = prometheus_text(_populated_session().registry)
        assert "# HELP nvm_read_bytes_total " in text
        assert "# TYPE nvm_read_bytes_total counter" in text
        assert "# TYPE health_score gauge" in text
        assert "# TYPE nvm_request_bytes histogram" in text

    def test_names_are_prometheus_legal(self):
        import re

        text = prometheus_text(_populated_session().registry)
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            assert re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", name), name

    def test_histogram_bucket_samples_are_cumulative(self):
        text = prometheus_text(_populated_session().registry)
        buckets = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("nvm_request_bytes_bucket")
        ]
        assert buckets == sorted(buckets)
        assert buckets[-1] == 3  # +Inf bucket equals count

    def test_malformed_line_rejected(self):
        with pytest.raises(ConfigurationError, match="line 1"):
            parse_prometheus("this is not a sample line at all {\n")

    def test_integers_render_bare(self):
        obs = Observability()
        obs.counter("a.total").inc(12345)
        assert "a_total 12345\n" in prometheus_text(obs.registry)

    def test_hostile_label_values_escape_and_round_trip(self):
        from repro.obs.registry import format_labels

        hostile = {
            "backslash": "C:\\temp\\dev",
            "quote": 'say "hi"',
            "newline": "line one\nline two",
            "combo": 'a\\"b\nc\\',
        }
        obs = Observability()
        for key, value in hostile.items():
            obs.counter("nvm.read_bytes_total", device=value).inc(7)
        text = prometheus_text(obs.registry)
        # One line per sample: escaped newlines never split a sample.
        samples = [
            ln for ln in text.splitlines() if not ln.startswith("#")
        ]
        assert len(samples) == len(hostile)
        for line in samples:
            assert line.endswith(" 7")
        # Spec escapes present in the rendered text.
        assert '\\"' in text and "\\n" in text and "\\\\" in text
        # The strict parser recovers the exact original values.
        values = parse_prometheus(text)
        for value in hostile.values():
            key = "nvm_read_bytes_total" + format_labels(
                (("device", value),)
            )
            assert values[key] == 7, key

    def test_unterminated_label_value_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            parse_prometheus('a_total{device="oops 1\n')


class TestDeterminism:
    """Two same-seed runs must emit identical values and identical bytes —
    the property the simulated-clock time base buys (schema docstring)."""

    @pytest.fixture(scope="class")
    def exports(self, tmp_path_factory):
        scenario = replace(
            DRAM_PCIE_FLASH,
            fault_plan=FaultPlan(seed=11, error_rate=0.05, gc_rate=0.05),
        )
        out = []
        for tag in ("a", "b"):
            obs = Observability()
            run_graph500(
                scenario, scale=10, n_roots=2, seed=7,
                workdir=tmp_path_factory.mktemp(f"wd_{tag}"), obs=obs,
            )
            paths = obs.export(tmp_path_factory.mktemp(f"out_{tag}"))
            out.append((obs, paths))
        return out

    def test_metric_values_identical(self, exports):
        (obs_a, _), (obs_b, _) = exports
        assert obs_a.registry.as_dict() == obs_b.registry.as_dict()

    def test_artifacts_byte_identical(self, exports):
        (_, paths_a), (_, paths_b) = exports
        for kind in ("jsonl", "chrome_trace", "prometheus"):
            assert (
                paths_a[kind].read_bytes() == paths_b[kind].read_bytes()
            ), kind

    def test_fault_run_emits_resilience_series(self, exports):
        (obs, _), _ = exports
        names = set(obs.registry.names())
        assert "resilience.attempts_total" in names
        assert "health.score" in names
