"""Tests for request-trace recording and cross-device replay."""

import numpy as np
import pytest

from repro.bfs import AlphaBetaPolicy, SemiExternalBFS
from repro.errors import ConfigurationError, StorageError
from repro.perfmodel.cost import DramCostModel
from repro.semiext import (
    NVMStore,
    PCIE_FLASH,
    SATA_SSD,
    RequestTrace,
    attach_recorder,
)


@pytest.fixture()
def traced_run(forward, backward, a_root, tmp_path):
    store = NVMStore(tmp_path / "rec", PCIE_FLASH)
    trace = attach_recorder(store)
    engine = SemiExternalBFS.offload(
        forward, backward, AlphaBetaPolicy(30, 30), store,
        cost_model=DramCostModel(),
    )
    engine.run(a_root)
    return trace, store


class TestRecording:
    def test_records_every_charge(self, traced_run):
        trace, store = traced_run
        assert trace.n_batches > 0
        # Requested payload >= bytes the device served (merging pads to
        # pages but the trace captures the *requested* extents).
        assert trace.total_bytes > 0

    def test_recording_does_not_perturb(
        self, forward, backward, a_root, tmp_path
    ):
        results = {}
        for tag, record in (("plain", False), ("traced", True)):
            store = NVMStore(tmp_path / tag, PCIE_FLASH)
            if record:
                attach_recorder(store)
            res = SemiExternalBFS.offload(
                forward, backward, AlphaBetaPolicy(30, 30), store,
                cost_model=DramCostModel(),
            ).run(a_root)
            results[tag] = (res.modeled_time_s, store.iostats.n_requests)
        assert results["plain"] == results["traced"]

    def test_records_carry_file_keys(self, traced_run):
        trace, _ = traced_run
        keys = {r.file_key for r in trace.records}
        assert any("index" in k for k in keys)
        assert any("value" in k for k in keys)


class TestPersistence:
    def test_round_trip(self, traced_run, tmp_path):
        trace, _ = traced_run
        path = tmp_path / "trace.npz"
        trace.save(path)
        back = RequestTrace.load(path)
        assert back.n_batches == trace.n_batches
        assert back.total_bytes == trace.total_bytes
        for a, b in zip(trace.records, back.records):
            assert a.file_key == b.file_key
            assert np.array_equal(a.offsets, b.offsets)
            assert np.array_equal(a.lengths, b.lengths)

    def test_empty_save_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            RequestTrace().save(tmp_path / "x.npz")


class TestReplay:
    def test_replay_reproduces_original_stats(self, traced_run, tmp_path):
        trace, store = traced_run
        replay = trace.replay(PCIE_FLASH, tmp_path / "replay")
        assert replay.n_requests == store.iostats.n_requests
        assert replay.total_bytes == store.iostats.total_bytes
        assert replay.avgrq_sz == pytest.approx(store.iostats.avgrq_sz)
        assert replay.busy_time_s == pytest.approx(store.iostats.busy_time_s)

    def test_replay_on_slower_device_takes_longer(self, traced_run, tmp_path):
        trace, store = traced_run
        slow = trace.replay(SATA_SSD, tmp_path / "slow")
        assert slow.busy_time_s > store.iostats.busy_time_s
        assert slow.n_requests == store.iostats.n_requests

    def test_replay_with_page_cache_reads_less(self, traced_run, tmp_path):
        trace, store = traced_run
        cached = trace.replay(
            PCIE_FLASH, tmp_path / "cached", page_cache_bytes=1 << 30
        )
        assert cached.total_bytes <= store.iostats.total_bytes

    def test_replay_async_mode(self, traced_run, tmp_path):
        trace, store = traced_run
        async_stats = trace.replay(
            PCIE_FLASH, tmp_path / "async", io_mode="async"
        )
        assert async_stats.busy_time_s <= store.iostats.busy_time_s

    def test_empty_replay_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RequestTrace().replay(PCIE_FLASH, tmp_path / "x")
