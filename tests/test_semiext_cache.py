"""Unit tests for partial backward-graph offloading (paper §VI-E)."""

import numpy as np
import pytest

from repro.bfs.bottomup import InMemoryScanner
from repro.csr.builder import build_csr
from repro.errors import ConfigurationError
from repro.semiext.cache import (
    DegreeThresholdScanner,
    PrefixOffloadScanner,
    split_prefix,
)
from repro.util.bitmap import Bitmap


@pytest.fixture()
def shard():
    # Degrees: 0->3, 1->1, 2->0, 3->2 (after symmetrization of a custom set)
    return build_csr(
        np.array([[0, 0, 0, 3], [1, 2, 3, 2]]), n_vertices=4
    )


class TestSplitPrefix:
    def test_split_preserves_order(self, shard):
        prefix, suffix = split_prefix(shard, 1)
        for v in range(4):
            full = shard.neighbors(v)
            merged = np.concatenate([prefix.neighbors(v), suffix.neighbors(v)])
            assert np.array_equal(merged, full)

    def test_prefix_capped_at_k(self, shard):
        prefix, _ = split_prefix(shard, 2)
        assert prefix.degrees().max() <= 2

    def test_k_zero_moves_everything(self, shard):
        prefix, suffix = split_prefix(shard, 0)
        assert prefix.n_directed_edges == 0
        assert suffix.n_directed_edges == shard.n_directed_edges

    def test_k_huge_keeps_everything(self, shard):
        prefix, suffix = split_prefix(shard, 10**6)
        assert suffix.n_directed_edges == 0
        assert prefix == shard

    def test_negative_k_rejected(self, shard):
        with pytest.raises(ConfigurationError):
            split_prefix(shard, -1)

    def test_k_exactly_max_degree_keeps_everything(self, shard):
        # Max degree is 3 (vertex 0): the boundary where the suffix first
        # becomes empty — k need not exceed the max, only reach it.
        k = int(shard.degrees().max())
        prefix, suffix = split_prefix(shard, k)
        assert suffix.n_directed_edges == 0
        assert prefix == shard

    def test_k_one_below_max_degree_moves_only_the_tail(self, shard):
        k = int(shard.degrees().max()) - 1
        prefix, suffix = split_prefix(shard, k)
        # Only vertex 0 (degree 3) has a tail, and it is exactly one edge.
        assert suffix.n_directed_edges == 1
        assert suffix.degrees().tolist() == [1, 0, 0, 0]
        assert prefix.n_directed_edges == shard.n_directed_edges - 1

    def test_all_isolated_shard_splits_to_two_empties(self):
        empty = build_csr(np.empty((2, 0), dtype=np.int64), n_vertices=4)
        prefix, suffix = split_prefix(empty, 1)
        assert prefix.n_directed_edges == 0
        assert suffix.n_directed_edges == 0
        assert prefix.n_rows == suffix.n_rows == 4


class TestPrefixScanner:
    def _frontier(self, n, members):
        return Bitmap.from_indices(n, np.array(members))

    def test_matches_in_memory_scanner(self, csr, store):
        k = 4
        scanner = PrefixOffloadScanner(csr, k, store, "p")
        plain = InMemoryScanner(csr)
        frontier = self._frontier(csr.n_rows, [0, 5, 100, 333])
        rows = np.arange(0, csr.n_rows, 7, dtype=np.int64)
        a = scanner.scan(rows, frontier)
        b = plain.scan(rows, frontier)
        assert np.array_equal(a.parents >= 0, b.parents >= 0)
        # Early-termination totals agree (rows are scanned in the same order).
        assert a.scanned == b.scanned

    def test_nvm_untouched_when_prefix_hits(self, shard, store):
        # Frontier contains every vertex: each scanned row hits within its
        # first entry, so the suffix is never fetched.
        scanner = PrefixOffloadScanner(shard, 1, store, "p")
        frontier = self._frontier(4, [0, 1, 2, 3])
        before = store.iostats.n_requests
        out = scanner.scan(np.array([0, 3]), frontier)
        assert (out.parents >= 0).all()
        assert out.scanned_nvm == 0
        assert store.iostats.n_requests == before

    def test_suffix_consulted_when_prefix_misses(self, shard, store):
        # Vertex 0's neighbors sorted: [1, 2, 3]; frontier = {3} only.
        scanner = PrefixOffloadScanner(shard, 1, store, "p")
        frontier = self._frontier(4, [3])
        out = scanner.scan(np.array([0]), frontier)
        assert out.parents.tolist() == [3]
        assert out.scanned_nvm > 0
        assert store.iostats.n_requests > 0

    def test_dram_reduction_monotone_in_k(self, csr, store):
        reductions = [
            PrefixOffloadScanner(csr, k, store, f"p{k}").dram_reduction
            for k in (1, 4, 16)
        ]
        assert reductions[0] > reductions[1] > reductions[2]

    def test_byte_accounting(self, shard, store):
        s = PrefixOffloadScanner(shard, 1, store, "p")
        assert s.dram_nbytes + s.nvm_nbytes >= shard.nbytes  # indexes dup'd
        assert 0.0 <= s.dram_reduction <= 1.0


class TestDegreeThresholdScanner:
    def test_matches_in_memory_scanner(self, csr, store):
        scanner = DegreeThresholdScanner(csr, 8, store, "d")
        plain = InMemoryScanner(csr)
        frontier = Bitmap.from_indices(csr.n_rows, np.array([0, 5, 100]))
        rows = np.arange(0, csr.n_rows, 11, dtype=np.int64)
        a = scanner.scan(rows, frontier)
        b = plain.scan(rows, frontier)
        assert np.array_equal(a.parents, b.parents)
        assert a.scanned == b.scanned

    def test_low_degree_rows_on_nvm(self, shard, store):
        scanner = DegreeThresholdScanner(shard, 1, store, "d")
        # Vertex 1 has degree 1 -> on NVM.
        frontier = Bitmap.from_indices(4, np.array([0]))
        out = scanner.scan(np.array([1]), frontier)
        assert out.parents.tolist() == [0]
        assert out.scanned_nvm == 1
        assert out.scanned_dram == 0

    def test_high_degree_rows_in_dram(self, shard, store):
        scanner = DegreeThresholdScanner(shard, 1, store, "d")
        frontier = Bitmap.from_indices(4, np.array([1]))
        out = scanner.scan(np.array([0]), frontier)  # deg 3 > 1
        assert out.scanned_nvm == 0
        assert out.scanned_dram > 0

    def test_size_reduction_monotone_in_k(self, csr, store):
        reductions = [
            DegreeThresholdScanner(csr, k, store, f"d{k}").dram_reduction
            for k in (1, 8, 64)
        ]
        assert reductions[0] < reductions[1] < reductions[2]

    def test_negative_k_rejected(self, shard, store):
        with pytest.raises(ConfigurationError):
            DegreeThresholdScanner(shard, -1, store, "d")

    def test_k_zero_keeps_nonisolated_in_dram(self, shard, store):
        s = DegreeThresholdScanner(shard, 0, store, "d")
        assert s.nvm.n_directed_edges == 0

    def test_all_isolated_shard_scans_to_no_parents(self, store):
        empty = build_csr(np.empty((2, 0), dtype=np.int64), n_vertices=6)
        scanner = DegreeThresholdScanner(empty, 2, store, "iso")
        frontier = Bitmap.from_indices(6, np.arange(6))
        out = scanner.scan(np.arange(6, dtype=np.int64), frontier)
        assert (out.parents == -1).all()
        assert out.scanned == 0
        assert out.scanned_nvm == 0

    def test_all_isolated_shard_offloads_nothing(self, store):
        empty = build_csr(np.empty((2, 0), dtype=np.int64), n_vertices=6)
        scanner = DegreeThresholdScanner(empty, 2, store, "iso2")
        assert scanner.dram.n_directed_edges == 0
        assert scanner.nvm.n_directed_edges == 0
