"""Per-NUMA-node memory-access accounting.

NETAL's central performance claim (paper §IV-A) is that both BFS directions
touch only node-local memory: the forward graph duplicates frontier vertices
per node so destination scans stay local, and the backward graph partitions
unvisited vertices so parent probes stay local.  This tracker lets the
reproduction *verify* that claim: the kernels report every (accessing node,
owning node, bytes) triple, and tests assert the remote fraction is zero for
the NUMA-partitioned layouts and non-zero for a naive layout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.numa.topology import NumaTopology

__all__ = ["AccessKind", "NumaMemoryTracker", "AccessCounters"]


class AccessKind(enum.Enum):
    """Classification of an access for the cost model."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"


@dataclass
class AccessCounters:
    """Aggregate counters for one (kind, locality) access class."""

    accesses: int = 0
    bytes: int = 0

    def add(self, n_accesses: int, n_bytes: int) -> None:
        """Accumulate a batch."""
        self.accesses += int(n_accesses)
        self.bytes += int(n_bytes)


@dataclass
class NumaMemoryTracker:
    """Counts local vs. remote DRAM traffic per NUMA node.

    The four buckets (sequential/random × local/remote) feed
    :class:`repro.perfmodel.cost.DramCostModel`, which charges remote
    accesses a higher latency (QPI/HT hop).
    """

    topology: NumaTopology
    local_seq: AccessCounters = field(default_factory=AccessCounters)
    local_rand: AccessCounters = field(default_factory=AccessCounters)
    remote_seq: AccessCounters = field(default_factory=AccessCounters)
    remote_rand: AccessCounters = field(default_factory=AccessCounters)

    def record(
        self,
        accessing_node: int,
        owning_node: int,
        n_accesses: int,
        n_bytes: int,
        kind: AccessKind = AccessKind.RANDOM,
    ) -> None:
        """Record a batch of accesses from one node to another's memory."""
        for node in (accessing_node, owning_node):
            if not 0 <= node < self.topology.n_nodes:
                raise ConfigurationError(
                    f"node {node} outside topology with {self.topology.n_nodes} nodes"
                )
        local = accessing_node == owning_node
        if kind is AccessKind.SEQUENTIAL:
            bucket = self.local_seq if local else self.remote_seq
        else:
            bucket = self.local_rand if local else self.remote_rand
        bucket.add(n_accesses, n_bytes)

    def record_vector(
        self,
        accessing_node: int,
        target_vertices: np.ndarray,
        n_vertices: int,
        bytes_per_access: int,
        kind: AccessKind = AccessKind.RANDOM,
    ) -> None:
        """Record per-vertex accesses, classifying locality in bulk.

        ``target_vertices`` are the vertices whose data is touched; each is
        charged ``bytes_per_access`` against the node that owns it.
        """
        targets = np.asarray(target_vertices, dtype=np.int64)
        if targets.size == 0:
            return
        owners = self.topology.owner_of(targets, n_vertices)
        n_local = int(np.count_nonzero(owners == accessing_node))
        n_remote = targets.size - n_local
        if n_local:
            self.record(accessing_node, accessing_node, n_local,
                        n_local * bytes_per_access, kind)
        if n_remote:
            # Attribute remote traffic to an arbitrary distinct node; the cost
            # model only distinguishes local vs. remote, not which hop.
            other = (accessing_node + 1) % self.topology.n_nodes
            self.record(accessing_node, other, n_remote,
                        n_remote * bytes_per_access, kind)

    # -- summaries -----------------------------------------------------------

    @property
    def total_accesses(self) -> int:
        """All recorded accesses."""
        return (
            self.local_seq.accesses
            + self.local_rand.accesses
            + self.remote_seq.accesses
            + self.remote_rand.accesses
        )

    @property
    def total_bytes(self) -> int:
        """All recorded bytes."""
        return (
            self.local_seq.bytes
            + self.local_rand.bytes
            + self.remote_seq.bytes
            + self.remote_rand.bytes
        )

    @property
    def remote_fraction(self) -> float:
        """Fraction of accesses that crossed a NUMA boundary (0 if none)."""
        total = self.total_accesses
        if total == 0:
            return 0.0
        return (self.remote_seq.accesses + self.remote_rand.accesses) / total

    def reset(self) -> None:
        """Zero every counter."""
        self.local_seq = AccessCounters()
        self.local_rand = AccessCounters()
        self.remote_seq = AccessCounters()
        self.remote_rand = AccessCounters()
