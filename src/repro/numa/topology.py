"""NUMA topology model and vertex partitioning.

Reproduces NETAL's static range partitioning (paper §V-B2): with ``n``
vertices and ``ℓ`` NUMA nodes, vertex ``v_i`` is owned by node
``k = min(i // ceil(n/ℓ), ℓ-1)`` — contiguous equal ranges, last node
taking the remainder.  Contiguity is essential: it lets the per-node CSR
files store a dense local index array and lets ownership tests compile to a
single integer divide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["NumaTopology", "VertexPartition"]


@dataclass(frozen=True)
class VertexPartition:
    """The contiguous vertex range ``[lo, hi)`` owned by one NUMA node."""

    node: int
    lo: int
    hi: int

    @property
    def size(self) -> int:
        """Number of vertices owned."""
        return self.hi - self.lo

    def local_ids(self, global_ids: np.ndarray) -> np.ndarray:
        """Translate global vertex IDs to node-local IDs (``id - lo``)."""
        return np.asarray(global_ids, dtype=np.int64) - self.lo

    def contains(self, global_ids: np.ndarray) -> np.ndarray:
        """Vectorized ownership test."""
        ids = np.asarray(global_ids, dtype=np.int64)
        return (ids >= self.lo) & (ids < self.hi)


class NumaTopology:
    """A machine with ``n_nodes`` NUMA nodes and ``cores_per_node`` cores.

    Parameters mirror Table I of the paper: the experimental machine is a
    4-socket, 12-core-per-socket Opteron 6172, i.e.
    ``NumaTopology(n_nodes=4, cores_per_node=12)``.

    The topology also carries the vertex partition for a given graph size
    via :meth:`partitions`; all per-node data structures (backward CSR
    shards, visited bitmaps, tree shards) are sized from these ranges.
    """

    def __init__(self, n_nodes: int = 4, cores_per_node: int = 12) -> None:
        if n_nodes <= 0:
            raise ConfigurationError(f"n_nodes must be positive, got {n_nodes}")
        if cores_per_node <= 0:
            raise ConfigurationError(
                f"cores_per_node must be positive, got {cores_per_node}"
            )
        self.n_nodes = int(n_nodes)
        self.cores_per_node = int(cores_per_node)

    @property
    def n_cores(self) -> int:
        """Total hardware threads available for BFS workers."""
        return self.n_nodes * self.cores_per_node

    # -- vertex partitioning -------------------------------------------------

    def chunk_size(self, n_vertices: int) -> int:
        """Vertices per node (ceil division; last node may own fewer)."""
        if n_vertices <= 0:
            raise ConfigurationError(f"n_vertices must be positive, got {n_vertices}")
        return -(-n_vertices // self.n_nodes)

    def partitions(self, n_vertices: int) -> list[VertexPartition]:
        """The per-node contiguous vertex ranges covering ``[0, n_vertices)``.

        >>> NumaTopology(n_nodes=4).partitions(10)[-1]
        VertexPartition(node=3, lo=9, hi=10)
        """
        step = self.chunk_size(n_vertices)
        parts = []
        for k in range(self.n_nodes):
            lo = min(k * step, n_vertices)
            hi = min((k + 1) * step, n_vertices)
            parts.append(VertexPartition(node=k, lo=lo, hi=hi))
        return parts

    def owner_of(self, vertex_ids: np.ndarray, n_vertices: int) -> np.ndarray:
        """Vectorized vertex→node map.

        >>> NumaTopology(n_nodes=2).owner_of(np.array([0, 5, 9]), 10)
        array([0, 1, 1])
        """
        ids = np.asarray(vertex_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or int(ids.max()) >= n_vertices):
            raise ConfigurationError("vertex id out of range for owner_of")
        step = self.chunk_size(n_vertices)
        return np.minimum(ids // step, self.n_nodes - 1)

    def __repr__(self) -> str:
        return (
            f"NumaTopology(n_nodes={self.n_nodes}, "
            f"cores_per_node={self.cores_per_node})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NumaTopology):
            return NotImplemented
        return (
            self.n_nodes == other.n_nodes
            and self.cores_per_node == other.cores_per_node
        )

    def __hash__(self) -> int:
        return hash((self.n_nodes, self.cores_per_node))
