"""Simulated NUMA topology and per-node memory accounting.

The paper's NETAL base system partitions every graph structure across the
NUMA nodes of a 4-socket Opteron: vertex ``v_i`` with
``i ∈ [k·n/ℓ, (k+1)·n/ℓ)`` belongs to node ``N_k`` (§V-B2).  This package
reproduces that partitioning in software: :class:`NumaTopology` owns the
vertex→node map and per-node core counts, and :class:`NumaMemoryTracker`
counts local vs. remote accesses so the locality claims of the paper are
checkable in tests and benchmarks.
"""

from repro.numa.topology import NumaTopology, VertexPartition
from repro.numa.memory import AccessKind, NumaMemoryTracker

__all__ = [
    "NumaTopology",
    "VertexPartition",
    "NumaMemoryTracker",
    "AccessKind",
]
