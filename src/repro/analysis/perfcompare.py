"""Scenario performance comparison (Figures 8 and 9).

For every (α, β) point on the x axis, runs the three Table I scenarios
plus the paper's three baselines (top-down only, bottom-up only, Graph500
reference) and reports median modeled TEPS — the full content of
Figure 8 (large SCALE, forward graph exceeding DRAM) and Figure 9 (small
SCALE, everything fitting).

Also exposes :func:`build_engine`, the canonical way to instantiate the
right engine for a scenario over prebuilt graphs (shared by the sweeps,
benches and examples).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bfs.hybrid import HybridBFS
from repro.bfs.metrics import Direction
from repro.bfs.policies import AlphaBetaPolicy, FixedPolicy
from repro.bfs.reference import ReferenceBFS
from repro.bfs.semi_external import SemiExternalBFS
from repro.core.config import ScenarioConfig
from repro.csr.graph import CSRGraph
from repro.csr.partition import BackwardGraph, ForwardGraph
from repro.graph500.driver import Graph500Driver
from repro.graph500.edgelist import EdgeList
from repro.semiext.storage import NVMStore

__all__ = ["ScenarioSeries", "compare_scenarios", "build_engine"]


def build_engine(
    scenario: ScenarioConfig,
    forward: ForwardGraph,
    backward: BackwardGraph,
    alpha: float,
    beta: float,
    workdir: str | Path,
    prefix: str = "fig",
):
    """Instantiate the engine a scenario prescribes over prebuilt graphs.

    Semi-external scenarios get a fresh :class:`NVMStore` under
    ``workdir`` (fresh clock and iostat meters per engine) whose page
    cache is the scenario's spare DRAM — budget minus the resident
    backward graph and status data, the same sizing the pipeline's
    planner derives; DRAM-only scenarios get a plain :class:`HybridBFS`.
    """
    policy = AlphaBetaPolicy(alpha=alpha, beta=beta)
    if scenario.is_semi_external:
        assert scenario.device is not None  # enforced by ScenarioConfig
        n = forward.n_vertices
        status_est = n * 8 + 2 * (n // 8) + 2 * n * 8
        resident = backward.nbytes + status_est
        spare = max(0, scenario.dram_budget(resident) - resident)
        store = NVMStore(
            Path(workdir) / f"{prefix}-{scenario.name}-{alpha:g}-{beta:g}",
            scenario.device,
            concurrency=scenario.topology.n_cores,
            page_cache_bytes=spare,
        )
        return SemiExternalBFS.offload(
            forward=forward,
            backward=backward,
            policy=policy,
            store=store,
            cost_model=scenario.cost_model,
        )
    return HybridBFS(
        forward=forward,
        backward=backward,
        policy=policy,
        cost_model=scenario.cost_model,
    )


@dataclass(frozen=True)
class ScenarioSeries:
    """One line of Figure 8/9: median TEPS per (α, β) x-axis point."""

    name: str
    points: tuple[tuple[float, float], ...]  # the (alpha, beta) x axis
    teps: np.ndarray  # len(points), NaN where the series is flat

    def best(self) -> tuple[float, float, float]:
        """``(alpha, beta, teps)`` at the series maximum."""
        i = int(np.nanargmax(self.teps))
        a, b = self.points[i]
        return a, b, float(self.teps[i])


def compare_scenarios(
    edges: EdgeList,
    csr: CSRGraph,
    forward: ForwardGraph,
    backward: BackwardGraph,
    scenarios: tuple[ScenarioConfig, ...],
    points: tuple[tuple[float, float], ...],
    workdir: str | Path,
    n_roots: int = 8,
    seed: int | None = None,
    include_baselines: bool = True,
) -> list[ScenarioSeries]:
    """Produce the Figure 8/9 series set.

    Parameters
    ----------
    points:
        The (α, β) x-axis; pass the rescaled paper grid from
        :func:`repro.analysis.sweep.scaled_alpha_grid` crossed with the
        β factors.
    include_baselines:
        Add the three constant baselines (top-down only, bottom-up only,
        reference), evaluated once and replicated across the x axis as in
        the paper's figure.
    """
    driver = Graph500Driver(edges, n_roots=n_roots, seed=seed, validate=False)
    series: list[ScenarioSeries] = []
    for scenario in scenarios:
        teps = np.empty(len(points))
        for i, (alpha, beta) in enumerate(points):
            engine = build_engine(
                scenario, forward, backward, alpha, beta, workdir, prefix=f"pt{i}"
            )
            teps[i] = driver.run(engine).stats_modeled.median_teps
        series.append(
            ScenarioSeries(name=scenario.name, points=points, teps=teps)
        )
    if include_baselines:
        base_cost = scenarios[0].cost_model
        baselines = {
            "Top-down only": HybridBFS(
                forward, backward, FixedPolicy(Direction.TOP_DOWN), base_cost
            ),
            "Bottom-up only": HybridBFS(
                forward, backward, FixedPolicy(Direction.BOTTOM_UP), base_cost
            ),
            "Graph500 reference": ReferenceBFS(csr, cost_model=base_cost),
        }
        for name, engine in baselines.items():
            teps_val = driver.run(engine).stats_modeled.median_teps
            series.append(
                ScenarioSeries(
                    name=name,
                    points=points,
                    teps=np.full(len(points), teps_val),
                )
            )
    return series
