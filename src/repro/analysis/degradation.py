"""Top-down degradation ratio versus average degree (Figure 11).

The paper's sharpest observation: the slowdown of an NVM-backed top-down
level over its DRAM twin is *not* uniform — it explodes as the level's
average degree approaches 1, because a frontier of low-degree vertices
turns into a storm of tiny random reads whose per-request latency nothing
amortizes (PCIe flash: 1.2×–5758×; SATA SSD: 2.8×–123482×).  The last
top-down levels of a BFS are exactly such levels (average degree ≈ 1
versus ~11 k for the first ones), which is why the semi-external tuning
delays the switch back to top-down.

:func:`degradation_by_degree` reproduces the figure by running the *same
graph and root* under a DRAM-only engine and an NVM engine with identical
switching parameters, pairing their top-down levels, and emitting
``(average degree, time ratio)`` points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bfs.metrics import BFSResult, Direction
from repro.errors import ConfigurationError

__all__ = ["DegradationPoint", "degradation_by_degree"]


@dataclass(frozen=True)
class DegradationPoint:
    """One Figure 11 point: a top-down level's degree and its slowdown."""

    level: int
    avg_degree: float
    dram_time_s: float
    nvm_time_s: float

    @property
    def ratio(self) -> float:
        """NVM time over DRAM time for this level (Fig. 11's y axis)."""
        if self.dram_time_s <= 0:
            return float("inf")
        return self.nvm_time_s / self.dram_time_s


def degradation_by_degree(
    dram_result: BFSResult, nvm_result: BFSResult
) -> list[DegradationPoint]:
    """Pair the top-down levels of a DRAM run and an NVM run.

    Both runs must come from the same graph, root and switching
    parameters so levels line up one-to-one; the function enforces the
    schedules match (same direction sequence) before pairing.
    """
    if dram_result.root != nvm_result.root:
        raise ConfigurationError(
            f"runs have different roots: {dram_result.root} vs {nvm_result.root}"
        )
    if dram_result.direction_schedule() != nvm_result.direction_schedule():
        raise ConfigurationError(
            "runs took different direction schedules "
            f"({dram_result.direction_schedule()} vs "
            f"{nvm_result.direction_schedule()}); use identical alpha/beta"
        )
    points = []
    for dram_t, nvm_t in zip(dram_result.traces, nvm_result.traces):
        if dram_t.direction is not Direction.TOP_DOWN:
            continue
        if dram_t.frontier_size == 0:
            continue
        points.append(
            DegradationPoint(
                level=dram_t.level,
                avg_degree=dram_t.avg_degree,
                dram_time_s=dram_t.modeled_time_s,
                nvm_time_s=nvm_t.modeled_time_s,
            )
        )
    return points
