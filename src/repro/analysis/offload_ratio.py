"""Backward-graph offload trade-off (Figure 14, §VI-E).

The paper estimates how much of the *backward* graph could follow the
forward graph onto NVM: keep a per-vertex DRAM budget of *k* edges and
measure (a) how many bytes leave DRAM and (b) what fraction of bottom-up
edge probes then hit NVM.  Its quoted numbers mix two readings of the
budget (see :mod:`repro.semiext.cache`), so the sweep evaluates both
strategies and reports both curves:

* **prefix** (first k edges of each row in DRAM) reproduces the *access*
  series — 38.2 % of probes on NVM at k=2 collapsing to 0.7 % at k=32;
* **degree-threshold** (rows of degree ≤ k offloaded whole) reproduces
  the *size* series — 2.6 % of bytes off DRAM at k=2 rising to 15.1 % at
  k=32.

Unlike the paper (which only estimates from access traces), the sweep
actually *runs* the partially offloaded BFS, so the numbers include the
real early-termination interplay between the DRAM and NVM portions.

:func:`tiered_offload_sweep` goes one step further and drives the
first-class engine tier (:class:`~repro.semiext.tiered.TieredBackwardStore`)
through the simulated clock, producing the **measured memory-vs-TEPS
frontier**: per k, the DRAM bytes actually resident, the per-vertex
fallthrough reads actually issued, and the modeled TEPS those reads cost.
This is the curve committed as ``BENCH_backward_offload.json`` and gated
by the CI perf gate (see ``docs/offload.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bfs.metrics import Direction
from repro.bfs.policies import AlphaBetaPolicy, DirectionPolicy
from repro.bfs.semi_external import SemiExternalBFS
from repro.csr.partition import BackwardGraph, ForwardGraph
from repro.errors import ConfigurationError
from repro.perfmodel.cost import DramCostModel
from repro.semiext.cache import DegreeThresholdScanner, PrefixOffloadScanner
from repro.semiext.device import DeviceModel
from repro.semiext.storage import NVMStore
from repro.semiext.tiered import TieredBackwardStore

__all__ = [
    "OffloadPoint",
    "TieredPoint",
    "backward_offload_sweep",
    "tiered_offload_sweep",
]


@dataclass(frozen=True)
class OffloadPoint:
    """One Figure 14 point: DRAM budget k → size and access consequences."""

    strategy: str
    k: int
    dram_reduction: float
    nvm_access_ratio: float
    nvm_bytes: int
    dram_bytes: int


def backward_offload_sweep(
    forward: ForwardGraph,
    backward: BackwardGraph,
    device: DeviceModel,
    workdir: str | Path,
    roots: np.ndarray,
    ks: tuple[int, ...] = (2, 4, 8, 16, 32, 64),
    alpha: float = 1e2,
    beta: float = 1e2,
    strategies: tuple[str, ...] = ("prefix", "degree-threshold"),
) -> list[OffloadPoint]:
    """Run the Figure 14 sweep.

    For each k and strategy, builds partially offloaded backward scanners,
    runs the semi-external BFS from every root, and measures the fraction
    of *bottom-up* edge probes served from NVM plus the DRAM bytes saved.
    """
    if not len(roots):
        raise ConfigurationError("need at least one root")
    workdir = Path(workdir)
    points: list[OffloadPoint] = []
    for strategy in strategies:
        scanner_cls = {
            "prefix": PrefixOffloadScanner,
            "degree-threshold": DegreeThresholdScanner,
        }.get(strategy)
        if scanner_cls is None:
            raise ConfigurationError(f"unknown strategy {strategy!r}")
        for k in ks:
            store = NVMStore(
                workdir / f"{strategy}-k{k}",
                device,
                concurrency=forward.topology.n_cores,
            )
            scanners = [
                scanner_cls(shard, k, store, f"bwd.{strategy}.k{k}.node{i}")
                for i, shard in enumerate(backward.shards)
            ]
            engine = SemiExternalBFS.offload(
                forward=forward,
                backward=backward,
                policy=AlphaBetaPolicy(alpha=alpha, beta=beta),
                store=store,
                backward_scanners=scanners,
            )
            bu_dram = 0
            bu_nvm = 0
            for root in roots:
                result = engine.run(int(root))
                for t in result.traces:
                    if t.direction is Direction.BOTTOM_UP:
                        bu_dram += t.edges_scanned - t.edges_scanned_nvm
                        bu_nvm += t.edges_scanned_nvm
            total = bu_dram + bu_nvm
            dram_bytes = sum(s.dram_nbytes for s in scanners)
            nvm_bytes = sum(s.nvm_nbytes for s in scanners)
            full = dram_bytes + nvm_bytes
            points.append(
                OffloadPoint(
                    strategy=strategy,
                    k=k,
                    dram_reduction=(nvm_bytes / full) if full else 0.0,
                    nvm_access_ratio=(bu_nvm / total) if total else 0.0,
                    nvm_bytes=nvm_bytes,
                    dram_bytes=dram_bytes,
                )
            )
    return points


@dataclass(frozen=True)
class TieredPoint:
    """One measured point of the memory-vs-TEPS offload frontier."""

    k: int
    dram_bytes: int
    nvm_bytes: int
    dram_reduction: float
    rows_scanned: int
    fallthrough_rows: int
    nvm_tail_edges: int
    modeled_time_s: float
    teps: float

    @property
    def fallthrough_rate(self) -> float:
        """Share of scanned rows that fell through to the NVM tail."""
        if self.rows_scanned == 0:
            return 0.0
        return self.fallthrough_rows / self.rows_scanned


def tiered_offload_sweep(
    forward: ForwardGraph,
    backward: BackwardGraph,
    device: DeviceModel,
    workdir: str | Path,
    roots: np.ndarray,
    ks: tuple[int, ...] = (2, 4, 8, 16, 32, 64),
    alpha: float = 1e2,
    beta: float = 1e2,
    policy: DirectionPolicy | None = None,
    cost_model: DramCostModel | None = None,
) -> list[TieredPoint]:
    """Measure the §VI-E memory-vs-TEPS frontier with the tiered store.

    For each k, builds a fresh :class:`TieredBackwardStore` on its own
    :class:`NVMStore` (own simulated clock and iostats), runs the
    semi-external BFS from every root, and reads the trade-off straight
    off the store: DRAM-resident bytes on one axis, modeled TEPS — with
    every per-vertex fallthrough charged through the device model — on
    the other.  ``policy`` overrides the default α/β rule (the Fig. 14
    bench pins bottom-up so every level exercises the tier); the DRAM
    cost model defaults on so prefix probes cost time too.
    """
    if not len(roots):
        raise ConfigurationError("need at least one root")
    workdir = Path(workdir)
    cost_model = cost_model if cost_model is not None else DramCostModel()
    points: list[TieredPoint] = []
    for k in ks:
        store = NVMStore(
            workdir / f"tiered-k{k}",
            device,
            concurrency=forward.topology.n_cores,
        )
        tiered = TieredBackwardStore.build(backward, k, store)
        engine = SemiExternalBFS.offload(
            forward=forward,
            backward=backward,
            policy=policy
            if policy is not None
            else AlphaBetaPolicy(alpha=alpha, beta=beta),
            store=store,
            cost_model=cost_model,
            backward_scanners=tiered.scanners,
        )
        traversed = 0
        t0 = store.clock.now()
        for root in roots:
            traversed += engine.run(int(root)).traversed_edges
        elapsed = store.clock.now() - t0
        points.append(
            TieredPoint(
                k=int(k),
                dram_bytes=tiered.dram_nbytes,
                nvm_bytes=tiered.nvm_nbytes,
                dram_reduction=tiered.dram_reduction,
                rows_scanned=tiered.rows_scanned,
                fallthrough_rows=tiered.fallthrough_rows,
                nvm_tail_edges=tiered.scanned_nvm,
                modeled_time_s=elapsed,
                teps=(traversed / elapsed) if elapsed > 0 else 0.0,
            )
        )
    return points
