"""Serving-run summary: throughput, latency, cache and amortization.

:class:`ServeSummary` condenses a :class:`~repro.serve.server.ServeReport`
into the block the ``serve`` CLI subcommand prints — request accounting
(served / rejected by reason), simulated-clock latency percentiles,
result-cache effectiveness, per-tenant fairness, and the batching
amortization ratio (frontier rows requested vs union rows actually
fetched from the device), which is the §V device-traffic story measured
online.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ServeSummary", "summarize_serve"]


@dataclass(frozen=True)
class ServeSummary:
    """Aggregated accounting of one :meth:`BFSServer.serve` run."""

    n_requests: int = 0
    n_served: int = 0
    n_from_cache: int = 0
    n_from_traversal: int = 0
    n_from_repair: int = 0
    n_mutations: int = 0
    n_repair_fallbacks: int = 0
    version_invalidated: int = 0
    n_rejected_queue_full: int = 0
    n_rejected_degraded: int = 0
    n_batches: int = 0
    n_traversals: int = 0
    cache_hit_rate: float = 0.0
    latency_p50_s: float = 0.0
    latency_p99_s: float = 0.0
    latency_max_s: float = 0.0
    rows_requested: int = 0
    rows_fetched: int = 0
    nvm_bytes_read: int = 0
    duration_s: float = 0.0
    served_by_tenant: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_report(cls, report) -> "ServeSummary":
        """Build from a :class:`~repro.serve.server.ServeReport`."""
        lat = np.asarray(report.latencies_s(), dtype=np.float64)
        return cls(
            n_requests=report.n_requests,
            n_served=report.n_served,
            n_from_cache=sum(
                1 for c in report.completions if c.source == "cache"
            ),
            n_from_traversal=sum(
                1 for c in report.completions if c.source == "batched"
            ),
            n_from_repair=sum(
                1 for c in report.completions if c.source == "repaired"
            ),
            n_mutations=report.n_mutations,
            n_repair_fallbacks=report.n_repair_fallbacks,
            version_invalidated=report.version_invalidated,
            n_rejected_queue_full=report.rejections.queue_full,
            n_rejected_degraded=report.rejections.degraded,
            n_batches=report.n_batches,
            n_traversals=report.n_traversals,
            cache_hit_rate=report.cache_hit_rate,
            latency_p50_s=float(np.percentile(lat, 50)) if lat.size else 0.0,
            latency_p99_s=float(np.percentile(lat, 99)) if lat.size else 0.0,
            latency_max_s=float(lat.max()) if lat.size else 0.0,
            rows_requested=report.rows_requested,
            rows_fetched=report.rows_fetched,
            nvm_bytes_read=report.nvm_bytes_read,
            duration_s=report.duration_s,
            served_by_tenant=report.served_by_tenant(),
        )

    @property
    def amortization(self) -> float:
        """Frontier rows requested per union row fetched (≥ 1 with sharing)."""
        if self.rows_fetched == 0:
            return 1.0
        return self.rows_requested / self.rows_fetched

    @property
    def queries_per_batch(self) -> float:
        """Mean distinct traversal queries coalesced per batch."""
        if self.n_batches == 0:
            return 0.0
        return self.n_traversals / self.n_batches

    def format(self) -> str:
        """Render the human-readable serving block."""
        lines = [
            "serving:",
            f"  requests:          {self.n_requests}"
            f" over {self.duration_s:.3f} simulated s",
            f"  served:            {self.n_served}"
            f" ({self.n_from_cache} cache, "
            f"{self.n_from_traversal} traversal"
            + (f", {self.n_from_repair} repaired"
               if self.n_from_repair else "") + ")",
            f"  rejected requests: "
            f"{self.n_rejected_queue_full + self.n_rejected_degraded}"
            f" ({self.n_rejected_queue_full} queue_full, "
            f"{self.n_rejected_degraded} degraded)",
            f"  cache hit rate:    {self.cache_hit_rate:.2%}",
            f"  batches:           {self.n_batches}"
            f" ({self.queries_per_batch:.2f} queries/batch)",
            f"  latency:           p50 {self.latency_p50_s * 1e3:.3f} ms, "
            f"p99 {self.latency_p99_s * 1e3:.3f} ms, "
            f"max {self.latency_max_s * 1e3:.3f} ms",
            f"  chunk sharing:     {self.rows_requested} rows wanted, "
            f"{self.rows_fetched} fetched "
            f"({self.amortization:.2f}x amortized)",
            f"  nvm bytes read:    {self.nvm_bytes_read}",
        ]
        if self.n_mutations:
            lines.insert(3, (
                f"  mutations:         {self.n_mutations} batches "
                f"({self.n_from_repair} repaired, "
                f"{self.n_repair_fallbacks} fallback, "
                f"{self.version_invalidated} invalidated)"
            ))
        if self.served_by_tenant:
            per_tenant = ", ".join(
                f"{t}={n}" for t, n in sorted(self.served_by_tenant.items())
            )
            lines.append(f"  by tenant:         {per_tenant}")
        return "\n".join(lines)


def summarize_serve(report) -> ServeSummary:
    """Convenience wrapper matching :func:`summarize_resilience`'s shape."""
    return ServeSummary.from_report(report)
