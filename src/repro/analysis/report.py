"""Plain-text table rendering for benchmark output.

The benchmarks print the same rows/series the paper's figures plot; these
helpers keep that output aligned and consistent without any plotting
dependency.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "ascii_table",
    "format_float",
    "format_teps",
    "ascii_heatmap",
    "metrics_table",
]


def format_float(x: float, sig: int = 4) -> str:
    """Compact significant-digit float formatting ('1.234e+06' style)."""
    if x == 0:
        return "0"
    if 1e-3 <= abs(x) < 1e5:
        return f"{x:.{sig}g}"
    return f"{x:.{max(sig - 1, 0)}e}"


def format_teps(teps: float) -> str:
    """Render a TEPS value with the paper's unit (GTEPS/MTEPS)."""
    if teps >= 1e9:
        return f"{teps / 1e9:.2f} GTEPS"
    if teps >= 1e6:
        return f"{teps / 1e6:.1f} MTEPS"
    return f"{teps:.3g} TEPS"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table.

    >>> print(ascii_table(["a", "b"], [[1, "x"], [22, "yy"]]))
    a  | b
    ---+---
    1  | x
    22 | yy
    """
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    if not rows:
        return ((title + "\n") if title else "") + " | ".join(headers)
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(
            " | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def metrics_table(
    registry,
    prefix: str | None = None,
    title: str | None = None,
) -> str:
    """Render a :class:`~repro.obs.MetricsRegistry` as an aligned table.

    One row per series, sorted by (name, labels); histograms render as
    their count/sum/mean summary.  ``prefix`` filters by metric-name
    prefix (``"nvm."``, ``"bfs."``, ...), matching the families
    documented in ``docs/observability.md``.

    >>> from repro.obs import MetricsRegistry
    >>> reg = MetricsRegistry()
    >>> reg.counter("bfs.runs_total", engine="HybridBFS").inc(2)
    >>> print(metrics_table(reg))
    metric                             | kind    | value
    -----------------------------------+---------+------
    bfs.runs_total{engine="HybridBFS"} | counter | 2
    """
    from repro.obs.registry import Histogram, format_labels

    rows = []
    # Sort here rather than trusting the registry's iteration order: the
    # key covers series of one metric whose label *keys* differ (e.g.
    # {reason=...} next to {tenant=...}), so the rendered table is stable
    # no matter what order the series were created or yielded in.
    ordered = sorted(registry.metrics(), key=lambda m: (m.name, m.labels))
    for metric in ordered:
        if prefix is not None and not metric.name.startswith(prefix):
            continue
        series = metric.name + format_labels(metric.labels)
        if isinstance(metric, Histogram):
            mean = metric.sum / metric.count if metric.count else 0.0
            rendered = (
                f"count={metric.count} sum={format_float(metric.sum)} "
                f"mean={format_float(mean)}"
            )
        else:
            rendered = format_float(metric.value)
        rows.append([series, metric.kind, rendered])
    return ascii_table(["metric", "kind", "value"], rows, title=title)


def ascii_heatmap(
    values,
    row_labels,
    col_labels,
    title: str | None = None,
    shades: str = " .:-=+*#%@",
) -> str:
    """Render a 2-D value grid as a character-shade heatmap.

    Values are mapped linearly onto ``shades`` (low → first character);
    used by the CLI to render Figure 7's α×β heatmaps without a plotting
    dependency.

    >>> print(ascii_heatmap([[0.0, 1.0]], ["r"], ["a", "b"]))
    r |   @
      | a b
    """
    import numpy as np

    grid = np.asarray(values, dtype=np.float64)
    if grid.ndim != 2 or grid.shape != (len(row_labels), len(col_labels)):
        raise ValueError(
            f"grid shape {grid.shape} does not match labels "
            f"({len(row_labels)} x {len(col_labels)})"
        )
    lo, hi = float(grid.min()), float(grid.max())
    span = (hi - lo) or 1.0
    idx = ((grid - lo) / span * (len(shades) - 1)).round().astype(int)
    label_w = max((len(str(r)) for r in row_labels), default=1)
    col_w = max((len(str(c)) for c in col_labels), default=1)
    lines = [title] if title else []
    for r, row in zip(row_labels, idx):
        cells = " ".join(
            (shades[i] * 1).rjust(col_w) for i in row
        )
        lines.append(f"{str(r).ljust(label_w)} | {cells}")
    footer = " ".join(str(c).rjust(col_w) for c in col_labels)
    lines.append(f"{' ' * label_w} | {footer}")
    return "\n".join(lines)
