"""Kronecker graph shape statistics.

The reproduction runs at SCALEs far below the paper's 27 and leans on the
self-similarity of Kronecker graphs for the transfer of its results; this
module quantifies that self-similarity so the claim is checkable rather
than asserted: degree-distribution skew, isolated-vertex fraction,
giant-component share and effective diameter are computed per SCALE, and
the test suite verifies the *normalized* shape metrics are stable across
SCALEs while absolute sizes double.

These are also the quantities that drive every paper mechanism
reproduced here: the heavy tail feeds the bottom-up early termination and
the k-edges offload curve (Fig. 14), the isolated fraction bounds the
traversed component, and the tiny effective diameter is why the hybrid
schedule has so few levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.csr.graph import CSRGraph
from repro.errors import GraphFormatError

__all__ = ["GraphShape", "graph_shape"]


@dataclass(frozen=True)
class GraphShape:
    """Scale-free shape metrics of one graph."""

    n_vertices: int
    n_directed_edges: int
    isolated_fraction: float
    max_degree_ratio: float  # max degree / mean nonzero degree
    gini_degree: float  # inequality of the degree distribution
    top1pct_edge_share: float  # edges held by the top 1% of vertices
    giant_component_fraction: float
    effective_diameter: int  # 90th-percentile BFS depth from a hub

    def format(self) -> str:
        """One-line summary."""
        return (
            f"n={self.n_vertices:,} 2m={self.n_directed_edges:,} "
            f"isolated={self.isolated_fraction:.1%} "
            f"gini={self.gini_degree:.3f} "
            f"top1%={self.top1pct_edge_share:.1%} "
            f"giant={self.giant_component_fraction:.1%} "
            f"d90={self.effective_diameter}"
        )


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, →1 = skewed)."""
    if values.size == 0:
        return 0.0
    sorted_vals = np.sort(values.astype(np.float64))
    total = sorted_vals.sum()
    if total == 0:
        return 0.0
    cum = np.cumsum(sorted_vals)
    n = values.size
    return float(1.0 - 2.0 * (cum.sum() / (n * total)) + 1.0 / n)


def _bfs_levels(csr: CSRGraph, root: int) -> np.ndarray:
    """Plain level BFS (analysis-only; engines live in repro.bfs)."""
    n = csr.n_rows
    levels = np.full(n, -1, dtype=np.int64)
    levels[root] = 0
    frontier = np.array([root], dtype=np.int64)
    depth = 0
    while frontier.size:
        starts = csr.indptr[frontier]
        counts = csr.indptr[frontier + 1] - starts
        if counts.sum() == 0:
            break
        from repro.util.gather import concat_ranges

        neighbors = csr.adj[concat_ranges(starts, counts)]
        fresh = np.unique(neighbors[levels[neighbors] < 0])
        if fresh.size == 0:
            break
        depth += 1
        levels[fresh] = depth
        frontier = fresh
    return levels


def graph_shape(csr: CSRGraph) -> GraphShape:
    """Compute the shape metrics of a (square, symmetric) CSR graph."""
    if csr.n_rows != csr.n_cols:
        raise GraphFormatError("graph_shape requires a square CSR")
    n = csr.n_rows
    deg = csr.degrees()
    nonzero = deg[deg > 0]
    isolated_fraction = 1.0 - nonzero.size / n if n else 0.0
    if nonzero.size:
        max_ratio = float(nonzero.max() / nonzero.mean())
        k = max(1, nonzero.size // 100)
        top = np.partition(nonzero, nonzero.size - k)[-k:]
        top_share = float(top.sum() / deg.sum()) if deg.sum() else 0.0
    else:
        max_ratio = 0.0
        top_share = 0.0

    # Giant component + effective diameter from the highest-degree hub.
    if nonzero.size:
        hub = int(np.argmax(deg))
        levels = _bfs_levels(csr, hub)
        reached = levels >= 0
        giant = float(reached.sum() / max(nonzero.size, 1))
        depths = levels[reached]
        d90 = int(np.quantile(depths, 0.9)) if depths.size else 0
    else:
        giant = 0.0
        d90 = 0

    return GraphShape(
        n_vertices=n,
        n_directed_edges=csr.n_directed_edges,
        isolated_fraction=float(isolated_fraction),
        max_degree_ratio=max_ratio,
        gini_degree=_gini(deg),
        top1pct_edge_share=top_share,
        giant_component_fraction=giant,
        effective_diameter=d90,
    )
