"""Resilience accounting report for fault-injection runs.

:class:`ResilienceSummary` condenses what the resilient read path did
during one run — attempts, retries, backoff/GC time charged to the
simulated clock, checksum verdicts, and the circuit breaker's state
transitions — into the block the CLI prints after a ``--faults`` run and
the ablation benchmark records per fault rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.semiext.faults import (
    CircuitState,
    DeviceHealthMonitor,
    ResilienceStats,
)

__all__ = ["ResilienceSummary", "summarize_resilience"]


@dataclass(frozen=True)
class ResilienceSummary:
    """Aggregated resilience accounting of one store/run.

    Attributes mirror :class:`~repro.semiext.faults.ResilienceStats`
    plus the circuit breaker's final state and transition history
    (``transitions`` holds ``(simulated_time_s, state)`` pairs).
    """

    n_attempts: int = 0
    n_retries: int = 0
    n_transient_errors: int = 0
    n_torn_reads: int = 0
    n_checksum_failures: int = 0
    n_timeouts: int = 0
    n_gc_pauses: int = 0
    n_hard_failures: int = 0
    n_refused_reads: int = 0
    backoff_time_s: float = 0.0
    gc_pause_time_s: float = 0.0
    degraded_levels: int = 0
    circuit_state: CircuitState = CircuitState.CLOSED
    transitions: tuple[tuple[float, CircuitState], ...] = field(
        default_factory=tuple
    )

    @classmethod
    def from_parts(
        cls,
        stats: ResilienceStats | None,
        health: DeviceHealthMonitor | None,
    ) -> "ResilienceSummary":
        """Build from a store's stats and health monitor (either optional)."""
        kwargs: dict = {}
        if stats is not None:
            kwargs.update(
                n_attempts=stats.n_attempts,
                n_retries=stats.n_retries,
                n_transient_errors=stats.n_transient_errors,
                n_torn_reads=stats.n_torn_reads,
                n_checksum_failures=stats.n_checksum_failures,
                n_timeouts=stats.n_timeouts,
                n_gc_pauses=stats.n_gc_pauses,
                n_hard_failures=stats.n_hard_failures,
                n_refused_reads=stats.n_refused_reads,
                backoff_time_s=stats.backoff_time_s,
                gc_pause_time_s=stats.gc_pause_time_s,
                degraded_levels=stats.degraded_levels,
            )
        if health is not None:
            kwargs.update(
                circuit_state=health.state,
                transitions=tuple(health.transitions),
            )
        return cls(**kwargs)

    @classmethod
    def from_store(cls, store) -> "ResilienceSummary":
        """Build from an :class:`~repro.semiext.storage.NVMStore`."""
        return cls.from_parts(store.resilience, store.health)

    @property
    def retry_rate(self) -> float:
        """Retries per read attempt (0 when no attempts were made)."""
        if self.n_attempts == 0:
            return 0.0
        return self.n_retries / self.n_attempts

    def format(self) -> str:
        """Render the human-readable accounting block."""
        lines = [
            "resilience:",
            f"  attempts:        {self.n_attempts}"
            f" ({self.n_retries} retries, {self.retry_rate:.2%} retry rate)",
            f"  transient errs:  {self.n_transient_errors}"
            f" ({self.n_torn_reads} torn, {self.n_timeouts} timed out)",
            f"  checksum fails:  {self.n_checksum_failures}",
            f"  gc pauses:       {self.n_gc_pauses}"
            f" ({self.gc_pause_time_s * 1e3:.2f} ms stalled)",
            f"  backoff time:    {self.backoff_time_s * 1e3:.2f} ms",
            f"  circuit:         {self.circuit_state.name}"
            + (
                f" ({self.n_hard_failures} hard failures,"
                f" {self.n_refused_reads} refused reads)"
                if self.n_hard_failures or self.n_refused_reads
                else ""
            ),
        ]
        if self.transitions:
            trail = " -> ".join(
                f"{s.name}@{t:.3f}s" for t, s in self.transitions
            )
            lines.append(f"  transitions:     {trail}")
        if self.degraded_levels:
            lines.append(
                f"  degraded levels: {self.degraded_levels}"
                " (bottom-up on in-DRAM backward graph)"
            )
        return "\n".join(lines)


def summarize_resilience(store) -> ResilienceSummary:
    """Convenience wrapper matching :func:`summarize_iostats`'s shape."""
    return ResilienceSummary.from_store(store)
