"""Device I/O traces and summaries (Figures 12 and 13).

The paper samples ``iostat`` during the 64-iteration benchmark and plots
the request-queue length (``avgqu-sz``, Fig. 12: averages 36.1 PCIe flash
/ 56.1 SATA SSD) and request size (``avgrq-sz``, Fig. 13: ≈22.6 / 22.7
sectors).  :func:`summarize_iostats` condenses an
:class:`~repro.semiext.iostats.IoStats` meter into the same two series
plus their benchmark-wide averages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.semiext.iostats import IoStats

__all__ = ["IoTraceSummary", "summarize_iostats"]


@dataclass(frozen=True)
class IoTraceSummary:
    """Figure 12/13 data for one device.

    ``times_s`` / ``queue`` / ``rq_sectors`` are the per-interval series
    (one point per I/O batch — one batch per NVM-touching BFS level);
    the ``avg*`` fields are the benchmark-wide averages the paper quotes.
    """

    device_name: str
    times_s: np.ndarray
    queue: np.ndarray
    rq_sectors: np.ndarray
    avgqu_sz: float
    avgrq_sz: float
    reads_per_s: float
    total_requests: int
    total_bytes: int

    def format(self) -> str:
        """Render the paper-quoted aggregates."""
        return (
            f"{self.device_name}: avgqu-sz={self.avgqu_sz:.1f}, "
            f"avgrq-sz={self.avgrq_sz:.1f} sectors, "
            f"r/s={self.reads_per_s:,.0f}, "
            f"requests={self.total_requests:,}"
        )


def summarize_iostats(stats: IoStats) -> IoTraceSummary:
    """Build the Figure 12/13 summary from a device meter."""
    samples = [s for s in stats.samples if s.n_requests > 0]
    times = np.array([s.t_start_s for s in samples])
    queue = np.array([s.mean_queue for s in samples])
    rq = np.array([s.avgrq_sectors for s in samples])
    return IoTraceSummary(
        device_name=stats.device_name,
        times_s=times,
        queue=queue,
        rq_sectors=rq,
        avgqu_sz=stats.avgqu_sz(),
        avgrq_sz=stats.avgrq_sz,
        reads_per_s=stats.reads_per_s(),
        total_requests=stats.n_requests,
        total_bytes=stats.total_bytes,
    )
