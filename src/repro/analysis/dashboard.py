"""One-page run dashboard: metrics + derived stats + SLO verdicts.

:func:`render_dashboard` fuses the three views of a recorded session —
the raw :class:`~repro.obs.MetricsRegistry` table, the
:class:`~repro.obs.DerivedReport` (quantiles, span stats, anomaly
flags) and the :class:`~repro.obs.SLOReport` (error budgets, burn
rates) — into a single aligned text report.  It is what ``repro-bfs
slo`` prints for an exported session and what ``repro-bfs serve
--slo`` appends to the serve summary.

Pure rendering: everything is computed by :mod:`repro.obs.derive` and
:mod:`repro.obs.slo`; the output is deterministic for deterministic
input (same-seed sessions render byte-identical dashboards).
"""

from __future__ import annotations

from repro.analysis.report import metrics_table

__all__ = ["render_dashboard"]

_RULE = "=" * 72


def render_dashboard(
    obs,
    slo=None,
    derived=None,
    title: str = "run dashboard",
    metric_prefixes: tuple[str, ...] = (),
) -> str:
    """Render one session as a sectioned text dashboard.

    ``slo`` / ``derived`` default to evaluating the stock serve SLOs
    and the full derived report against ``obs``; pass precomputed
    reports to reuse them.  ``metric_prefixes`` limits the raw-metrics
    section to the named families (default: every series).
    """
    from repro.obs.derive import derive
    from repro.obs.slo import evaluate

    if derived is None:
        derived = derive(obs)
    if slo is None:
        slo = evaluate(obs)

    n_series = len(obs.registry)
    n_spans = len(obs.tracer.spans)
    n_events = len(obs.tracer.events)
    sections = [
        _RULE,
        title,
        _RULE,
        f"session: {n_series} metric series, {n_spans} spans, "
        f"{n_events} events over {derived.duration_s:.4f} simulated s",
        "",
        "-- SLO verdicts " + "-" * 56,
        slo.format(),
        "",
        "-- derived metrics " + "-" * 53,
        derived.format(),
        "",
        "-- raw metrics " + "-" * 57,
    ]
    if metric_prefixes:
        for prefix in metric_prefixes:
            sections.append(
                metrics_table(obs.registry, prefix=prefix,
                              title=f"{prefix}* series")
            )
            sections.append("")
        sections.pop()
    else:
        sections.append(metrics_table(obs.registry))
    return "\n".join(sections)
