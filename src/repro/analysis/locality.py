"""NUMA locality audit (verifying the paper's §IV-A / §V-B2 claim).

NETAL's design premise is that both partitionings eliminate remote-node
memory traffic during traversal: the forward graph's column partitioning
means a node's threads only ever *write* node-local tree/bitmap entries,
and the backward graph's row partitioning means a node's threads only
ever *read* node-local adjacency.  The audit quantifies this: it assigns
every adjacency entry to the NUMA node that would access it under (a)
the NETAL layout and (b) a naive unpartitioned layout where the source
vertex's owner does the scanning, and reports the remote fractions.

The expected result — asserted by tests and printed by the bench — is
**0 % remote for the NETAL layout** versus ``(ℓ−1)/ℓ``-ish for the naive
layout on a well-mixed graph (≈75 % on the paper's 4-node machine).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.csr.graph import CSRGraph
from repro.csr.partition import BackwardGraph, ForwardGraph
from repro.numa.memory import AccessKind, NumaMemoryTracker
from repro.numa.topology import NumaTopology

__all__ = ["LocalityAudit", "audit_locality"]


@dataclass(frozen=True)
class LocalityAudit:
    """Remote-access fractions under the two layouts."""

    netal_remote_fraction: float
    naive_remote_fraction: float
    n_edges_audited: int

    @property
    def traffic_saved(self) -> float:
        """Share of edge traffic the partitioning keeps on-node."""
        return self.naive_remote_fraction - self.netal_remote_fraction


def audit_locality(
    csr: CSRGraph,
    forward: ForwardGraph,
    backward: BackwardGraph,
    topology: NumaTopology,
) -> LocalityAudit:
    """Classify every adjacency access by locality under both layouts."""
    n = csr.n_rows

    # NETAL layout: forward shard k is scanned by node k's threads and
    # contains only node-k destinations; backward shard k is scanned by
    # node k's threads over node-k rows.  Record and verify.
    netal = NumaMemoryTracker(topology)
    for part, shard in zip(forward.partitions, forward.shards):
        if shard.adj.size:
            owners = topology.owner_of(shard.adj, n)
            local = int(np.count_nonzero(owners == part.node))
            remote = int(shard.adj.size - local)
            netal.record(part.node, part.node, local, local * 8,
                         AccessKind.RANDOM)
            if remote:
                netal.record(part.node, (part.node + 1) % topology.n_nodes,
                             remote, remote * 8, AccessKind.RANDOM)
    for part, shard in zip(backward.partitions, backward.shards):
        # Row-partitioned: the scanning node owns every row it reads.
        netal.record(part.node, part.node, shard.n_directed_edges,
                     shard.n_directed_edges * 8, AccessKind.SEQUENTIAL)

    # Naive layout: the source vertex's owner scans its full row; each
    # destination write/test lands on the destination's owner.
    naive = NumaMemoryTracker(topology)
    degrees = csr.degrees()
    row_owner = topology.owner_of(np.arange(n), n)
    dst_owner = (
        topology.owner_of(csr.adj, n) if csr.adj.size else csr.adj
    )
    src_owner_per_edge = np.repeat(row_owner, degrees)
    for node in range(topology.n_nodes):
        mine = src_owner_per_edge == node
        if not mine.any():
            continue
        local = int(np.count_nonzero(dst_owner[mine] == node))
        remote = int(mine.sum()) - local
        naive.record(node, node, local, local * 8, AccessKind.RANDOM)
        if remote:
            naive.record(node, (node + 1) % topology.n_nodes,
                         remote, remote * 8, AccessKind.RANDOM)

    return LocalityAudit(
        netal_remote_fraction=netal.remote_fraction,
        naive_remote_fraction=naive.remote_fraction,
        n_edges_audited=csr.n_directed_edges,
    )
