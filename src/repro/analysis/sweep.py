"""α × β parameter sweep (Figure 7).

The paper sweeps α over 1e4…1e6 and β over {0.1, 1, 10}·α at SCALE 27 and
plots median TEPS per scenario as a heatmap.  α and β are *divisors of the
vertex count* (thresholds are ``n_all/α`` and ``n_all/β``), so the
interesting region shifts with graph size: at SCALE 27 an α of 1e4 puts
the top-down→bottom-up threshold at ~13 k frontier vertices, while at the
reproduction's SCALE 16 the same α puts it below 7 — every level would
qualify.  :func:`scaled_alpha_grid` maps the paper's grid onto an
arbitrary SCALE by preserving the *threshold vertex counts* rather than
the raw α values, so the heatmap's topology (where the plateau and the
cliffs sit) reproduces at any size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.graph500.driver import BFSEngine, Graph500Driver
from repro.graph500.edgelist import EdgeList

__all__ = ["SweepResult", "alpha_beta_sweep", "scaled_alpha_grid"]

_PAPER_N = 1 << 27
_PAPER_ALPHAS = (1e4, 1e5, 1e6)
"""The α grid of Figure 7, defined against the SCALE 27 vertex count."""

_PAPER_BETA_FACTORS = (0.1, 1.0, 10.0)
"""β expressed as multiples of α, as the paper sweeps it."""


def scaled_alpha_grid(n_vertices: int) -> tuple[float, ...]:
    """The paper's α grid translated to a graph of ``n_vertices``.

    Keeps the switch *thresholds* (``n/α`` in vertices) fixed:
    ``n/α_scaled == n_paper/α_paper`` ⇒ ``α_scaled = α_paper · n/n_paper``.

    >>> scaled_alpha_grid(1 << 27) == (1e4, 1e5, 1e6)
    True
    """
    if n_vertices <= 0:
        raise ConfigurationError(f"n_vertices must be positive: {n_vertices}")
    ratio = n_vertices / _PAPER_N
    return tuple(a * ratio for a in _PAPER_ALPHAS)


@dataclass(frozen=True)
class SweepResult:
    """Median-TEPS grid over (α, β·factor) — one Figure 7 heatmap.

    ``teps[i, j]`` is the median modeled TEPS at ``alphas[i]`` and
    ``beta = beta_factors[j] * alphas[i]``.
    """

    scenario_name: str
    alphas: tuple[float, ...]
    beta_factors: tuple[float, ...]
    teps: np.ndarray

    def best(self) -> tuple[float, float, float]:
        """``(alpha, beta, teps)`` of the grid maximum."""
        i, j = np.unravel_index(int(np.argmax(self.teps)), self.teps.shape)
        alpha = self.alphas[i]
        return alpha, self.beta_factors[j] * alpha, float(self.teps[i, j])

    def format(self) -> str:
        """Heatmap as text (rows = α, columns = β factor)."""
        from repro.analysis.report import ascii_table, format_teps

        rows = []
        for i, a in enumerate(self.alphas):
            rows.append(
                [f"alpha={a:.3g}"]
                + [format_teps(self.teps[i, j]) for j in range(len(self.beta_factors))]
            )
        headers = ["", *(f"beta={f}*a" for f in self.beta_factors)]
        return ascii_table(headers, rows, title=f"[{self.scenario_name}]")


def alpha_beta_sweep(
    engine_factory: Callable[[float, float], BFSEngine],
    edges: EdgeList,
    scenario_name: str,
    alphas: tuple[float, ...] | None = None,
    beta_factors: tuple[float, ...] = _PAPER_BETA_FACTORS,
    n_roots: int = 8,
    seed: int | None = None,
    validate: bool = False,
) -> SweepResult:
    """Run the Figure 7 sweep for one scenario.

    Parameters
    ----------
    engine_factory:
        ``(alpha, beta) -> engine``; called once per grid point.  The
        factory owns device/store setup so each point gets fresh iostat
        meters.
    edges:
        The benchmark graph (roots are sampled from it once and shared by
        every grid point, so points are comparable).
    alphas:
        α grid; defaults to the paper's grid rescaled to this graph.
    beta_factors:
        β as multiples of α (paper: 0.1, 1, 10).
    n_roots:
        Iterations per grid point (the paper uses 64; sweeps use fewer).
    """
    if alphas is None:
        alphas = scaled_alpha_grid(edges.n_vertices)
    driver = Graph500Driver(edges, n_roots=n_roots, seed=seed, validate=validate)
    grid = np.zeros((len(alphas), len(beta_factors)), dtype=np.float64)
    for i, alpha in enumerate(alphas):
        for j, factor in enumerate(beta_factors):
            engine = engine_factory(alpha, factor * alpha)
            output = driver.run(engine)
            grid[i, j] = output.stats_modeled.median_teps
    return SweepResult(
        scenario_name=scenario_name,
        alphas=tuple(alphas),
        beta_factors=tuple(beta_factors),
        teps=grid,
    )
