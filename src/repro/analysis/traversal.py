"""Traversed-edge split by direction (Figure 10).

The paper explains the offloading technique's viability by showing where
edge traffic actually goes: across the benchmark's runs, the bottom-up
direction performs the overwhelming majority of edge scans, while the
(NVM-bound) top-down direction is squeezed to a sliver — and the squeeze
grows with α.  :func:`traversal_split` computes the same averages from
engine traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.metrics import BFSResult, Direction

__all__ = ["TraversalSplit", "traversal_split"]


@dataclass(frozen=True)
class TraversalSplit:
    """Average per-run scanned edges by direction (one Figure 10 bar group)."""

    label: str
    top_down: float
    bottom_up: float

    @property
    def total(self) -> float:
        """Total average scanned edges per run."""
        return self.top_down + self.bottom_up

    @property
    def top_down_fraction(self) -> float:
        """Share of edge traffic the NVM-resident forward graph absorbs."""
        if self.total == 0:
            return 0.0
        return self.top_down / self.total


def traversal_split(results: list[BFSResult], label: str = "") -> TraversalSplit:
    """Average the per-direction scanned-edge counts over runs."""
    if not results:
        return TraversalSplit(label=label, top_down=0.0, bottom_up=0.0)
    td = np.array(
        [r.edges_by_direction()[Direction.TOP_DOWN] for r in results], dtype=float
    )
    bu = np.array(
        [r.edges_by_direction()[Direction.BOTTOM_UP] for r in results], dtype=float
    )
    return TraversalSplit(
        label=label, top_down=float(td.mean()), bottom_up=float(bu.mean())
    )
