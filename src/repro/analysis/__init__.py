"""Analysis routines producing each figure/table of the paper's evaluation.

Each module computes the *data* behind one figure (the benchmarks print
it; no plotting dependency):

=========================  ==================================================
Module                     Paper artifact
=========================  ==================================================
:mod:`~repro.analysis.sweep`          Figure 7 — α×β TEPS heatmaps
:mod:`~repro.analysis.perfcompare`    Figures 8–9 — scenario comparison
:mod:`~repro.analysis.traversal`      Figure 10 — traversed-edge split
:mod:`~repro.analysis.degradation`    Figure 11 — top-down slowdown vs degree
:mod:`~repro.analysis.iotrace`        Figures 12–13 — avgqu-sz / avgrq-sz
:mod:`~repro.analysis.offload_ratio`  Figure 14 — backward-graph offload
                                      (measured tiered frontier + the
                                      paper's two readings)
:mod:`~repro.analysis.locality`       §IV-A NUMA locality audit
:mod:`~repro.analysis.report`         ASCII rendering helpers
=========================  ==================================================
"""

from repro.analysis.dashboard import render_dashboard
from repro.analysis.degradation import DegradationPoint, degradation_by_degree
from repro.analysis.graphstats import GraphShape, graph_shape
from repro.analysis.iotrace import IoTraceSummary, summarize_iostats
from repro.analysis.locality import LocalityAudit, audit_locality
from repro.analysis.offload_ratio import (
    OffloadPoint,
    TieredPoint,
    backward_offload_sweep,
    tiered_offload_sweep,
)
from repro.analysis.perfcompare import ScenarioSeries, compare_scenarios
from repro.analysis.report import ascii_table, format_float
from repro.analysis.resilience import ResilienceSummary, summarize_resilience
from repro.analysis.schedule import ScheduleSummary, schedule_summary
from repro.analysis.serving import ServeSummary, summarize_serve
from repro.analysis.sweep import SweepResult, alpha_beta_sweep, scaled_alpha_grid
from repro.analysis.traversal import TraversalSplit, traversal_split

__all__ = [
    "SweepResult",
    "alpha_beta_sweep",
    "scaled_alpha_grid",
    "ScenarioSeries",
    "compare_scenarios",
    "TraversalSplit",
    "traversal_split",
    "DegradationPoint",
    "degradation_by_degree",
    "GraphShape",
    "graph_shape",
    "IoTraceSummary",
    "summarize_iostats",
    "LocalityAudit",
    "audit_locality",
    "OffloadPoint",
    "TieredPoint",
    "backward_offload_sweep",
    "tiered_offload_sweep",
    "ResilienceSummary",
    "summarize_resilience",
    "ScheduleSummary",
    "schedule_summary",
    "ServeSummary",
    "summarize_serve",
    "ascii_table",
    "format_float",
    "render_dashboard",
]
