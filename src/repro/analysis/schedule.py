"""Direction-schedule analysis (paper §VI-C's narrative).

"In general, during BFS execution, first several levels are conducted by
top-down approaches.  Then ... next several steps are conducted by
bottom-up approaches.  Finally ... last several steps are conducted by
top-down approaches.  The results show that first top-down approaches
search vertices with 11182.9 degree on average, while last top-down
approaches search vertices with 1 degree on average."

:func:`schedule_summary` decomposes a run's trace into that
head/middle/tail structure and reports the average degrees of the two
top-down phases, so the narrative is checkable at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bfs.metrics import BFSResult, Direction

__all__ = ["ScheduleSummary", "schedule_summary"]


@dataclass(frozen=True)
class ScheduleSummary:
    """Head/middle/tail decomposition of one run's direction schedule."""

    schedule: str
    n_td_head: int
    n_bu_mid: int
    n_td_tail: int
    n_other: int
    head_avg_degree: float
    tail_avg_degree: float

    @property
    def is_canonical(self) -> bool:
        """Matches the paper's T…TB…BT…T shape with no stray switches."""
        return self.n_other == 0 and self.n_bu_mid > 0


def schedule_summary(result: BFSResult) -> ScheduleSummary:
    """Decompose a trace as T^a B^b T^c (+ anything after as 'other').

    Head/tail average degrees are edge-scan-weighted means over the
    respective top-down levels (the x-axis values Figure 11 plots for
    the first and last top-down phases).
    """
    traces = result.traces
    i = 0
    head = []
    while i < len(traces) and traces[i].direction is Direction.TOP_DOWN:
        head.append(traces[i])
        i += 1
    mid = []
    while i < len(traces) and traces[i].direction is Direction.BOTTOM_UP:
        mid.append(traces[i])
        i += 1
    tail = []
    while i < len(traces) and traces[i].direction is Direction.TOP_DOWN:
        tail.append(traces[i])
        i += 1
    other = len(traces) - i

    def avg_degree(levels) -> float:
        frontier = sum(t.frontier_size for t in levels)
        if frontier == 0:
            return 0.0
        return sum(t.edges_scanned for t in levels) / frontier

    return ScheduleSummary(
        schedule=result.direction_schedule(),
        n_td_head=len(head),
        n_bu_mid=len(mid),
        n_td_tail=len(tail),
        n_other=other,
        head_avg_degree=avg_degree(head),
        tail_avg_degree=avg_degree(tail),
    )
