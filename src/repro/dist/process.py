"""Worker backends: same partition, in-process or in a forked process.

The coordinator drives workers through one small handle interface —
``step`` / ``restore`` / ``health`` / ``nvm_bytes`` / ``restart`` /
``close`` — with two implementations:

* :class:`LocalWorkerHandle` wraps a
  :class:`~repro.dist.worker.PartitionWorker` in-process (the default:
  deterministic, debuggable, and what the serve tier and most tests
  use);
* :class:`ProcessWorkerHandle` runs the same worker in a forked
  ``multiprocessing`` process that attaches the coordinator's
  shared-memory CSR segments (:mod:`repro.dist.shm`) and answers a
  tiny command protocol over a :class:`~multiprocessing.Pipe` — the
  "workers map the graph without copies, ship only frontier/parent
  messages" deployment shape.

Both backends raise the *same* typed errors on the coordinator side
(:class:`~repro.errors.ProcessCrashError`,
:class:`~repro.errors.DeviceFailedError`), so the coordinator's crash
and degradation handling is backend-agnostic.  ``restart()`` rebuilds a
worker from scratch in a fresh store generation with the one-shot crash
trigger disarmed (a restarted process does not immediately re-crash),
after which the coordinator replays state via ``restore`` and re-steps
the level.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
from pathlib import Path

import numpy as np

from repro.dist.shm import SharedCSR, ShmCSRHandle
from repro.dist.worker import PartitionWorker, WorkerScan
from repro.errors import DeviceFailedError, ProcessCrashError, StorageError
from repro.numa.topology import VertexPartition
from repro.obs.session import NULL, Observability
from repro.semiext.storage import NVMStore

__all__ = ["WorkerConfig", "LocalWorkerHandle", "ProcessWorkerHandle"]


@dataclasses.dataclass
class WorkerConfig:
    """Everything needed to (re)build one partition worker.

    ``workdir`` gains a ``gen{n}`` suffix per store generation, so a
    restarted worker's offloaded files never collide with the crashed
    generation's.
    """

    worker_id: int
    part: VertexPartition
    n_vertices: int
    workdir: Path
    device: object
    cost_model: object | None = None
    fault_plan: object | None = None
    concurrency: int = 48
    page_cache_bytes: int = 0
    retry: object | None = None
    collect_obs: bool = False

    def make_store(self, generation: int, obs=None) -> NVMStore:
        """Build this worker's store for one generation (crash disarmed
        on every generation after the first)."""
        plan = self.fault_plan
        if generation > 0 and plan is not None:
            # Disarm the one-shot crash for restarted generations.
            plan = dataclasses.replace(
                plan, crash_at_s=None, crash_at_level=None
            )
        return NVMStore(
            Path(self.workdir) / f"gen{generation}",
            self.device,
            concurrency=self.concurrency,
            page_cache_bytes=self.page_cache_bytes,
            fault_plan=plan,
            retry=self.retry,
            obs=obs,
        )

    def make_obs(self) -> Observability:
        """One worker-private obs session per generation (disabled
        unless the coordinator opted into collection)."""
        return Observability() if self.collect_obs else NULL


class LocalWorkerHandle:
    """In-process worker backend (the default)."""

    def __init__(self, config, forward_shard, backward_shard) -> None:
        self.config = config
        self._forward = forward_shard
        self._backward = backward_shard
        self.generation = 0
        self.worker = self._build()

    def _build(self) -> PartitionWorker:
        c = self.config
        self.obs = c.make_obs()
        return PartitionWorker(
            worker_id=c.worker_id,
            part=c.part,
            forward_shard=self._forward,
            backward_shard=self._backward,
            n_vertices=c.n_vertices,
            store=c.make_store(self.generation, obs=self.obs),
            cost_model=c.cost_model,
            obs=self.obs,
        )

    def step(self, direction, frontier, level, ctx=None) -> WorkerScan:
        """Scan one level on the wrapped worker."""
        return self.worker.step(direction, frontier, level, ctx=ctx)

    def reset(self) -> None:
        """Clear the worker's per-run search state."""
        self.worker.reset()

    def restore(self, visited_ids) -> None:
        """Replay visited state from the coordinator's merged tree."""
        self.worker.restore(visited_ids)

    def health(self) -> tuple[float, bool]:
        """Current ``(health_score, circuit_open)`` of the worker."""
        return self.worker.health()

    def nvm_bytes(self) -> int:
        """Bytes this worker has read from its device so far."""
        return self.worker.nvm_bytes()

    def restart(self) -> None:
        """Rebuild the worker in a fresh store generation (with a fresh
        obs session — span ids and metric baselines restart at zero,
        exactly like a respawned process)."""
        self.worker.close()
        self.generation += 1
        self.worker = self._build()

    def drain_obs(self) -> dict | None:
        """Take the worker's recordings since the previous drain."""
        return self.obs.drain()

    def close(self) -> None:
        """Release the worker's store resources."""
        self.worker.close()


def _worker_main(conn, config, fwd_handle, bwd_handle, generation) -> None:
    """Forked child: attach shared CSRs, build the worker, serve commands."""
    fwd = SharedCSR.attach(fwd_handle)
    bwd = SharedCSR.attach(bwd_handle)
    try:
        obs = config.make_obs()
        worker = PartitionWorker(
            worker_id=config.worker_id,
            part=config.part,
            forward_shard=fwd.csr,
            backward_shard=bwd.csr,
            n_vertices=config.n_vertices,
            store=config.make_store(generation, obs=obs),
            cost_model=config.cost_model,
            obs=obs,
        )
        conn.send(("ready", None))
        while True:
            cmd, payload = conn.recv()
            if cmd == "close":
                worker.close()
                conn.send(("ok", obs.drain()))
                return
            try:
                if cmd == "step":
                    direction, frontier, level, ctx = payload
                    scan = worker.step(direction, frontier, level, ctx=ctx)
                    conn.send((
                        "scan",
                        (
                            (
                                scan.winners,
                                scan.parents,
                                scan.scanned_dram,
                                scan.scanned_nvm,
                                scan.clock_delta_s,
                                scan.health_score,
                                scan.circuit_open,
                            ),
                            obs.drain(),
                        ),
                    ))
                elif cmd == "reset":
                    worker.reset()
                    conn.send(("ok", None))
                elif cmd == "restore":
                    worker.restore(payload)
                    conn.send(("ok", None))
                elif cmd == "health":
                    conn.send(("ok", worker.health()))
                elif cmd == "nvm_bytes":
                    conn.send(("ok", worker.nvm_bytes()))
                else:
                    conn.send(("error", f"unknown command {cmd!r}"))
            except ProcessCrashError as exc:
                # Report (shipping the dead generation's spans), then
                # die for real: the parent respawns us.
                conn.send((
                    "crash",
                    (str(exc), exc.crashed_at_s, exc.level, obs.drain()),
                ))
                return
            except DeviceFailedError as exc:
                conn.send(("device_failed", str(exc)))
    except Exception as exc:  # pragma: no cover - defensive
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        fwd.close()
        bwd.close()


class ProcessWorkerHandle:
    """Worker in a forked process, graph mapped from shared memory.

    The parent keeps the :class:`~repro.dist.shm.SharedCSR` owners alive
    (and their picklable handles); children only ever see handle names.
    """

    def __init__(
        self,
        config,
        fwd_handle: ShmCSRHandle,
        bwd_handle: ShmCSRHandle,
    ) -> None:
        self.config = config
        self._fwd_handle = fwd_handle
        self._bwd_handle = bwd_handle
        self.generation = 0
        self._ctx = mp.get_context("fork")
        self._last_health: tuple[float, bool] = (1.0, False)
        self._pending_obs: dict | None = None
        self._spawn()

    def _spawn(self) -> None:
        parent, child = self._ctx.Pipe()
        self._conn = parent
        self._proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child,
                self.config,
                self._fwd_handle,
                self._bwd_handle,
                self.generation,
            ),
            daemon=True,
        )
        self._proc.start()
        child.close()
        kind, _ = self._recv()
        if kind != "ready":
            raise StorageError(
                f"worker {self.config.worker_id} failed to start"
            )

    def _recv(self):
        try:
            return self._conn.recv()
        except EOFError:
            raise StorageError(
                f"worker {self.config.worker_id} died without replying"
            ) from None

    def _call(self, cmd, payload=None):
        self._conn.send((cmd, payload))
        kind, data = self._recv()
        if kind == "crash":
            msg, crashed_at_s, level, obs_payload = data
            self._stash_obs(obs_payload)
            self._proc.join()
            raise ProcessCrashError(
                msg, crashed_at_s=crashed_at_s, level=level
            )
        if kind == "device_failed":
            raise DeviceFailedError(data)
        if kind == "error":
            raise StorageError(
                f"worker {self.config.worker_id}: {data}"
            )
        return data

    def _stash_obs(self, payload: dict | None) -> None:
        """Cache an obs payload shipped with a reply until the
        coordinator drains it (payloads never overlap: every reply that
        carries one is immediately followed by a drain)."""
        if payload is not None:
            self._pending_obs = payload

    def step(self, direction, frontier, level, ctx=None) -> WorkerScan:
        """Scan one level in the child; re-raises its typed errors."""
        data, obs_payload = self._call(
            "step",
            (direction, np.asarray(frontier, dtype=np.int64), level, ctx),
        )
        self._stash_obs(obs_payload)
        scan = WorkerScan(*data)
        self._last_health = (scan.health_score, scan.circuit_open)
        return scan

    def reset(self) -> None:
        """Clear the child worker's per-run search state."""
        self._call("reset")

    def restore(self, visited_ids) -> None:
        """Replay visited state into the child from the merged tree."""
        self._call("restore", np.asarray(visited_ids, dtype=np.int64))

    def health(self) -> tuple[float, bool]:
        """Last known ``(health_score, circuit_open)`` of the child."""
        if self._proc.is_alive():
            self._last_health = self._call("health")
        return self._last_health

    def nvm_bytes(self) -> int:
        """Bytes the child has read from its device (0 once dead)."""
        if not self._proc.is_alive():
            return 0
        return int(self._call("nvm_bytes"))

    def restart(self) -> None:
        """Respawn the child in a fresh store generation."""
        if self._proc.is_alive():
            self._proc.terminate()
        self._proc.join()
        self._conn.close()
        self.generation += 1
        self._spawn()

    def drain_obs(self) -> dict | None:
        """Hand over the obs payload cached from the latest reply."""
        payload = self._pending_obs
        self._pending_obs = None
        return payload

    def close(self) -> None:
        """Shut the child down and reap it (idempotent)."""
        if self._proc.is_alive():
            try:
                self._stash_obs(self._call("close"))
            except (StorageError, OSError, BrokenPipeError):
                pass
        self._proc.join(timeout=5)
        if self._proc.is_alive():  # pragma: no cover - defensive
            self._proc.terminate()
            self._proc.join()
        self._conn.close()
