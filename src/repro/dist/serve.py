"""Serving over a partitioned deployment: catalog entry + query engine.

A :class:`PartitionedGraph` is the catalog-resident description of one
graph deployed across partition workers — duck-compatible with
:class:`~repro.serve.catalog.PinnedGraph` everywhere the server touches
it (``pins``, ``circuit_open``, ``store``, ``degrees``), with
``store=None`` so the checkpointing machinery stays naturally inert (a
distributed traversal's durability story is worker restart, not
engine-level epochs).

:class:`DistributedEngine` is the server-side query engine: it answers
each batched root through the lockstep coordinator, and once a graph
turns *hot* (``replicate_after`` completed queries) it replicates the
full graph to every worker — each replica is a single-partition
deployment on that worker's own store — and round-robins subsequent
queries across replicas, trading device bytes for coordination-free
fan-out.  Both routes produce byte-identical trees (each is
byte-identical to ``SemiExternalBFS``), so routing is invisible to
correctness, and both are accounted through ``dist.query`` events and
the ``dist.queries_total{route=partitioned|replica}`` counter.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.bfs.metrics import BFSResult
from repro.bfs.policies import AlphaBetaPolicy
from repro.csr.graph import CSRGraph
from repro.dist.coordinator import DistributedBFS
from repro.dist.partition import (
    ContiguousPartitioner,
    DegreeBalancedPartitioner,
    Partitioner,
)
from repro.errors import ConfigurationError
from repro.obs.schema import (
    M_DIST_QUERIES,
    M_DIST_REPLICAS,
    M_DIST_REPLICATIONS,
)
from repro.obs.session import NULL, Observability
from repro.obs.spans import TraceContext

__all__ = ["PartitionedGraph", "DistributedEngine", "make_partitioner"]


def make_partitioner(
    strategy: str, n_parts: int, degrees: np.ndarray
) -> Partitioner:
    """Build a partitioner by strategy name (CLI/catalog surface)."""
    if strategy == "contiguous":
        return ContiguousPartitioner(n_parts)
    if strategy == "degree":
        return DegreeBalancedPartitioner(n_parts, degrees)
    raise ConfigurationError(
        f"unknown partition strategy {strategy!r} "
        f"(have 'contiguous', 'degree')"
    )


class PartitionedGraph:
    """One catalog graph deployed across partition workers.

    Construction happens in
    :meth:`~repro.serve.catalog.GraphCatalog.build_partitioned`; treat
    instances as immutable apart from the replication state.
    """

    is_partitioned = True

    def __init__(
        self,
        name: str,
        scenario,
        scale: int,
        csr: CSRGraph,
        coordinator: DistributedBFS,
        workdir: Path,
        alpha: float,
        beta: float,
        obs: Observability,
        replicate_after: int | None = None,
    ) -> None:
        self.name = name
        self.scenario = scenario
        self.scale = scale
        self.csr = csr
        self.coordinator = coordinator
        self.workdir = Path(workdir)
        self.alpha = alpha
        self.beta = beta
        self.obs = obs if obs is not None else NULL
        self.replicate_after = replicate_after
        self.n_vertices = csr.n_rows
        self.degrees = csr.degrees()
        self.clock = coordinator.clock
        # PinnedGraph duck surface the server relies on: no single store
        # (each worker owns one), so checkpoint managers are never built
        # and the catalog's byte accounting asks worker_nvm_bytes().
        self.store = None
        self.pins = 0
        self.queries_completed = 0
        self.replicas: list[DistributedBFS] = []

    @property
    def n_workers(self) -> int:
        """Number of partition workers behind this deployment."""
        return self.coordinator.n_workers

    @property
    def circuit_open(self) -> bool:
        """Open when *every* worker's breaker is open (any partition
        still healthy can make progress bottom-up)."""
        states = [h.health()[1] for h in self.coordinator.workers]
        return bool(states) and all(states)

    def device_health(self) -> float:
        """Min health score over workers (the global PolicyInputs value)."""
        return self.coordinator._device_health()

    def make_policy(self) -> AlphaBetaPolicy:
        """A fresh per-query direction policy with this graph's α/β."""
        return AlphaBetaPolicy(alpha=self.alpha, beta=self.beta)

    def worker_nvm_bytes(self) -> int:
        """Device bytes read across all workers and replicas."""
        total = self.coordinator._nvm_bytes()
        for replica in self.replicas:
            total += replica._nvm_bytes()
        return total

    @property
    def hot(self) -> bool:
        """Whether the replication threshold has been crossed."""
        return (
            self.replicate_after is not None
            and self.queries_completed >= self.replicate_after
        )

    def ensure_replicated(self) -> None:
        """Replicate the full graph to every worker (idempotent).

        Each replica is a single-partition deployment on its own store
        under ``workdir/replica{k}`` — the coordination-free fast path
        for hot graphs.
        """
        if self.replicas:
            return
        obs = self.obs
        with obs.span(
            "dist.replicate", graph=self.name, workers=self.n_workers
        ):
            for k in range(self.n_workers):
                self.replicas.append(
                    DistributedBFS.build(
                        self.csr,
                        ContiguousPartitioner(1),
                        self.make_policy(),
                        self.workdir / f"replica{k}",
                        self.scenario.device,
                        cost_model=self.scenario.cost_model,
                        clock=self.clock,
                        obs=obs,
                    )
                )
            obs.counter(M_DIST_REPLICATIONS).inc()
            obs.gauge(M_DIST_REPLICAS).set(len(self.replicas))

    def close(self) -> None:
        """Stop the coordinator's workers and any replicas (idempotent)."""
        self.coordinator.close()
        for replica in self.replicas:
            replica.close()
        self.replicas = []

    def __repr__(self) -> str:
        return (
            f"PartitionedGraph({self.name!r}, scale={self.scale}, "
            f"workers={self.n_workers}, replicas={len(self.replicas)}, "
            f"pins={self.pins})"
        )


class DistributedEngine:
    """Batched query engine routing through a partitioned deployment.

    Presents the slice of the :class:`~repro.serve.engine.BatchedBFS`
    surface the server drives (``run_batch``, ``rows_requested`` /
    ``rows_fetched``); queries run one at a time through the coordinator
    (or a replica once the graph is hot) — the deployment's concurrency
    lives *across* partitions rather than across roots.
    """

    def __init__(
        self, graph: PartitionedGraph, obs: Observability | None = None
    ) -> None:
        self.graph = graph
        self.obs = obs if obs is not None else graph.obs
        # Row-dedup accounting is a shared-store concept; partitioned
        # deployments report device traffic per worker instead.
        self.rows_requested = 0
        self.rows_fetched = 0
        self._rr = 0

    def run_batch(
        self,
        roots: list[int],
        max_levels: int | None = None,
        checkpointer=None,
        trace_ids: dict[int, str] | None = None,
    ) -> list[BFSResult]:
        """Answer each root; route hot graphs through worker replicas.

        ``trace_ids`` maps roots to their admission-assigned trace ids;
        each query's whole traversal (``dist.run`` down to worker-side
        scans) runs under that trace, and the ``dist.query`` event
        carries it so per-request latency joins the span tree.
        """
        if len(set(roots)) != len(roots):
            raise ConfigurationError(
                f"duplicate roots in batch: {sorted(roots)}"
            )
        graph = self.graph
        obs = self.obs
        results: list[BFSResult] = []
        for root in roots:
            if graph.hot:
                graph.ensure_replicated()
            route = "replica" if graph.replicas else "partitioned"
            if graph.replicas:
                engine = graph.replicas[self._rr % len(graph.replicas)]
                worker = self._rr % len(graph.replicas)
                self._rr += 1
            else:
                engine = graph.coordinator
                worker = -1
            trace_id = (trace_ids or {}).get(int(root))
            ctx = (
                TraceContext(trace_id=trace_id)
                if trace_id is not None
                else None
            )
            t0 = graph.clock.now()
            with obs.activate(ctx):
                result = engine.run(int(root), max_levels=max_levels)
            latency = graph.clock.now() - t0
            obs.counter(M_DIST_QUERIES, route=route).inc()
            attrs = dict(
                graph=graph.name,
                root=int(root),
                route=route,
                worker=worker,
                latency_s=latency,
            )
            if trace_id is not None:
                attrs["trace_id"] = trace_id
            obs.event("dist.query", **attrs)
            graph.queries_completed += 1
            results.append(result)
        return results
