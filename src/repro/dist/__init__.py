"""Distributed BFS tier: 1D vertex partitions, lockstep workers.

The :mod:`repro.dist` subsystem generalizes the NUMA shard layer into a
:class:`~repro.dist.partition.Partitioner` abstraction and runs one BFS
across multiple workers — each owning a partition's forward/backward
stores on its own NVM handle — under a lockstep coordinator
(:class:`~repro.dist.coordinator.DistributedBFS`).  See
``docs/partitioning.md``.
"""

from repro.dist.coordinator import (
    DistributedBFS,
    csr_from_backward,
    register_dist_schema,
)
from repro.dist.partition import (
    ContiguousPartitioner,
    DegreeBalancedPartitioner,
    Partitioner,
    column_shards,
    row_shards,
)
from repro.dist.process import (
    LocalWorkerHandle,
    ProcessWorkerHandle,
    WorkerConfig,
)
from repro.dist.shm import SharedCSR, ShmCSRHandle
from repro.dist.worker import PartitionWorker, WorkerScan

__all__ = [
    "DistributedBFS",
    "register_dist_schema",
    "csr_from_backward",
    "Partitioner",
    "ContiguousPartitioner",
    "DegreeBalancedPartitioner",
    "column_shards",
    "row_shards",
    "PartitionWorker",
    "WorkerScan",
    "LocalWorkerHandle",
    "ProcessWorkerHandle",
    "WorkerConfig",
    "SharedCSR",
    "ShmCSRHandle",
]
