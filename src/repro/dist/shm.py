"""Shared-memory CSR segments: workers map the graph without copies.

A :class:`SharedCSR` places one CSR's ``indptr``/``adj`` arrays into two
POSIX shared-memory blocks (:mod:`multiprocessing.shared_memory`).  The
coordinator :meth:`creates <SharedCSR.create>` the segments once; each
worker process :meth:`attaches <SharedCSR.attach>` by name and gets a
:class:`~repro.csr.graph.CSRGraph` whose arrays are zero-copy views of
the shared buffers — the FlashGraph lesson restated for processes: ship
frontier/parent messages, never the graph.

Lifecycle: the creator ``close()``s *and* ``unlink()``s (removing the
backing object); attachers only ``close()``.  A :class:`ShmCSRHandle` is
the picklable description sent to workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.csr.graph import CSRGraph

__all__ = ["ShmCSRHandle", "SharedCSR"]


@dataclass(frozen=True)
class ShmCSRHandle:
    """Picklable locator of one shared CSR (names + shape)."""

    indptr_name: str
    adj_name: str
    n_rows: int
    nnz: int
    n_cols: int


class SharedCSR:
    """One CSR mapped into shared memory (creator or attacher side)."""

    def __init__(
        self,
        indptr_shm: shared_memory.SharedMemory,
        adj_shm: shared_memory.SharedMemory,
        handle: ShmCSRHandle,
        owner: bool,
    ) -> None:
        self._indptr_shm = indptr_shm
        self._adj_shm = adj_shm
        self.handle = handle
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls, csr: CSRGraph) -> "SharedCSR":
        """Copy ``csr`` into fresh shared-memory segments (coordinator)."""
        # SharedMemory refuses zero-byte segments; pad empty adjacency.
        indptr_shm = shared_memory.SharedMemory(
            create=True, size=max(csr.indptr.nbytes, 8)
        )
        adj_shm = shared_memory.SharedMemory(
            create=True, size=max(csr.adj.nbytes, 8)
        )
        handle = ShmCSRHandle(
            indptr_name=indptr_shm.name,
            adj_name=adj_shm.name,
            n_rows=csr.n_rows,
            nnz=int(csr.adj.size),
            n_cols=int(csr.n_cols),
        )
        shared = cls(indptr_shm, adj_shm, handle, owner=True)
        np.copyto(shared._indptr_view(), csr.indptr)
        np.copyto(shared._adj_view(), csr.adj)
        return shared

    @classmethod
    def attach(cls, handle: ShmCSRHandle) -> "SharedCSR":
        """Map an existing shared CSR by name (worker side)."""
        indptr_shm = shared_memory.SharedMemory(name=handle.indptr_name)
        adj_shm = shared_memory.SharedMemory(name=handle.adj_name)
        return cls(indptr_shm, adj_shm, handle, owner=False)

    def _indptr_view(self) -> np.ndarray:
        n = self.handle.n_rows + 1
        return np.ndarray(
            (n,), dtype=np.int64, buffer=self._indptr_shm.buf
        )

    def _adj_view(self) -> np.ndarray:
        return np.ndarray(
            (self.handle.nnz,), dtype=np.int64, buffer=self._adj_shm.buf
        )

    @property
    def csr(self) -> CSRGraph:
        """The shared graph as zero-copy numpy views."""
        return CSRGraph(
            indptr=self._indptr_view(),
            adj=self._adj_view(),
            n_cols=self.handle.n_cols,
        )

    @property
    def nbytes(self) -> int:
        """Bytes held in shared memory for this CSR."""
        return self._indptr_shm.size + self._adj_shm.size

    def close(self) -> None:
        """Detach the mapping (idempotent); creators also unlink."""
        if self._closed:
            return
        self._closed = True
        self._indptr_shm.close()
        self._adj_shm.close()
        if self._owner:
            self._indptr_shm.unlink()
            self._adj_shm.unlink()

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        side = "owner" if self._owner else "attached"
        return (
            f"SharedCSR({self.handle.n_rows}x{self.handle.n_cols}, "
            f"nnz={self.handle.nnz}, {side})"
        )
