"""Lockstep distributed BFS: a coordinator over partition workers.

:class:`DistributedBFS` runs the same hybrid level loop as
:class:`~repro.bfs.hybrid.HybridBFS`, but each level's scan is a
broadcast to :class:`~repro.dist.worker.PartitionWorker` instances
(in-process or forked — see :mod:`repro.dist.process`):

1. decide the direction from *globally reduced* quantities — frontier
   size, frontier out-degree sum, remaining unvisited edges, min device
   health over workers — through the unchanged α/β policy;
2. broadcast the frontier; every worker scans its own partition
   (top-down against its NVM-resident forward column shard, bottom-up
   over its DRAM backward rows);
3. merge: per-partition winners are disjoint by construction, so the
   commit is a plain concatenation of parent deltas in partition order
   plus one sort of the next frontier;
4. reconcile clocks: the coordinator's simulated clock advances by the
   *max* worker step time plus a per-vertex merge cost — the lockstep
   (BSP) execution model of the Buluç/Beamer distributed-BFS taxonomy.

Because first-parent-wins resolves per destination inside its single
owning partition (top-down) or per source row (bottom-up), the merged
tree is byte-identical to :class:`~repro.bfs.semi_external.SemiExternalBFS`
at every partition count — pinned by the ``partitioned`` conformance
engine and the ``dist-smoke`` CI job.

Failure handling reuses the existing machinery end to end: a worker's
:class:`~repro.errors.DeviceFailedError` degrades the whole traversal to
bottom-up (the backward rows are in DRAM on every worker), and a
:class:`~repro.errors.ProcessCrashError` restarts just that worker —
the coordinator rebuilds it in a fresh store generation, replays
``visited`` from its merged parent array, and re-steps the level.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bfs.metrics import BFSResult, Direction, LevelTrace
from repro.bfs.policies import DirectionPolicy, PolicyInputs
from repro.bfs.state import BFSState
from repro.csr.graph import CSRGraph
from repro.csr.partition import BackwardGraph
from repro.dist.partition import Partitioner, column_shards, row_shards
from repro.dist.process import (
    LocalWorkerHandle,
    ProcessWorkerHandle,
    WorkerConfig,
)
from repro.dist.shm import SharedCSR
from repro.errors import ConfigurationError, DeviceFailedError, ProcessCrashError
from repro.obs.schema import (
    M_DIST_BROADCAST,
    M_DIST_IMBALANCE,
    M_DIST_LEVELS,
    M_DIST_MERGE_SECONDS,
    M_DIST_MERGED,
    M_DIST_QUERIES,
    M_DIST_REPLICAS,
    M_DIST_REPLICATIONS,
    M_DIST_RESTARTS,
    M_DIST_WORKER_EDGES,
    M_DIST_WORKER_SECONDS,
    M_DIST_WORKERS,
)
from repro.obs.session import NULL, Observability
from repro.obs.spans import TraceContext
from repro.perfmodel.cost import DramCostModel
from repro.semiext.clock import SimulatedClock
from repro.util.timer import Timer

__all__ = [
    "DistributedBFS",
    "LevelLoad",
    "register_dist_schema",
    "csr_from_backward",
]

_MAX_RESTARTS_PER_LEVEL = 3


@dataclass(frozen=True)
class LevelLoad:
    """Per-level worker load summary (imbalance = max / mean)."""

    level: int
    worker_max_s: float
    worker_mean_s: float


def register_dist_schema(obs: Observability, n_workers: int) -> None:
    """Pre-register every ``dist.*`` series a deployment can emit.

    Zero-increments instantiate the full label space at startup, so a
    zero-traffic deployment exports a byte-identical metric schema to a
    busy one — the same fix pattern as the ``offload.*`` family.
    """
    if not obs.enabled:
        return
    obs.gauge(M_DIST_WORKERS).set(n_workers)
    for direction in ("top-down", "bottom-up"):
        obs.counter(M_DIST_LEVELS, direction=direction).inc(0)
    obs.counter(M_DIST_BROADCAST).inc(0)
    obs.counter(M_DIST_MERGED).inc(0)
    obs.counter(M_DIST_MERGE_SECONDS).inc(0)
    obs.histogram(M_DIST_IMBALANCE)
    for k in range(n_workers):
        worker = str(k)
        obs.counter(M_DIST_WORKER_SECONDS, worker=worker).inc(0)
        for medium in ("dram", "nvm"):
            obs.counter(M_DIST_WORKER_EDGES, worker=worker, medium=medium).inc(0)
        obs.counter(M_DIST_RESTARTS, worker=worker).inc(0)
    for route in ("partitioned", "replica"):
        obs.counter(M_DIST_QUERIES, route=route).inc(0)
    obs.gauge(M_DIST_REPLICAS).set(0)
    obs.counter(M_DIST_REPLICATIONS).inc(0)


def csr_from_backward(backward: BackwardGraph) -> CSRGraph:
    """Reassemble the full CSR from a row-partitioned backward graph.

    The backward shards hold every row's complete adjacency in row
    order, so concatenating them reproduces the original CSR exactly —
    how the conformance runner recovers a case's graph for partitioning.
    """
    degrees = np.concatenate(
        [np.diff(shard.indptr) for shard in backward.shards]
    )
    adj = np.concatenate([shard.adj for shard in backward.shards])
    indptr = np.zeros(degrees.size + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    return CSRGraph(
        indptr=indptr, adj=adj.astype(np.int64), n_cols=backward.n_vertices
    )


class DistributedBFS:
    """One BFS across partition workers, driven in lockstep levels.

    Build instances with :meth:`build`, which shards the graph, spins up
    the workers (offloading each forward shard to that worker's own NVM
    store) and wires clocks and observability together.
    """

    def __init__(
        self,
        n_vertices: int,
        partitioner: Partitioner,
        policy: DirectionPolicy,
        workers: list,
        degrees: np.ndarray,
        cost_model: DramCostModel | None = None,
        clock: SimulatedClock | None = None,
        obs: Observability | None = None,
        merge_cost_per_vertex_s: float | None = None,
        shared_segments: list[SharedCSR] | None = None,
    ) -> None:
        if len(workers) != partitioner.n_parts:
            raise ConfigurationError(
                f"need {partitioner.n_parts} workers, got {len(workers)}"
            )
        self.n_vertices = int(n_vertices)
        self.partitioner = partitioner
        self.policy = policy
        self.workers = workers
        self.cost_model = cost_model
        self.clock = clock if clock is not None else SimulatedClock()
        self.obs = obs if obs is not None else NULL
        self.obs.bind_clock(self.clock)
        self._degrees = np.asarray(degrees, dtype=np.int64)
        self._total_directed = int(self._degrees.sum())
        self._shared = shared_segments if shared_segments is not None else []
        self._degraded = False
        self.restarts = 0
        self.level_imbalance: list[LevelLoad] = []
        if merge_cost_per_vertex_s is None:
            merge_cost_per_vertex_s = (
                cost_model.level_time_s(0, 1, 0)
                if cost_model is not None
                else 0.0
            )
        self.merge_cost_per_vertex_s = float(merge_cost_per_vertex_s)
        register_dist_schema(self.obs, len(workers))

    @classmethod
    def build(
        cls,
        csr: CSRGraph,
        partitioner: Partitioner,
        policy: DirectionPolicy,
        workdir: str | Path,
        device,
        cost_model: DramCostModel | None = None,
        clock: SimulatedClock | None = None,
        obs: Observability | None = None,
        fault_plans=None,
        backend: str = "local",
        concurrency: int = 48,
        page_cache_bytes: int = 0,
        retry=None,
        merge_cost_per_vertex_s: float | None = None,
    ) -> "DistributedBFS":
        """Shard ``csr``, start one worker per partition, return the engine.

        ``fault_plans`` is ``None``, one plan applied to every worker, or
        a per-worker sequence (``None`` entries allowed) — how tests
        crash exactly one worker.  ``backend`` is ``"local"``
        (in-process) or ``"process"`` (forked workers attached to
        shared-memory CSR segments).
        """
        if backend not in ("local", "process"):
            raise ConfigurationError(
                f"backend must be 'local' or 'process', got {backend!r}"
            )
        n = csr.n_rows
        parts = partitioner.partitions(n)
        fwd = column_shards(csr, partitioner)
        bwd = row_shards(csr, partitioner)
        if fault_plans is None or not isinstance(fault_plans, (list, tuple)):
            fault_plans = [fault_plans] * len(parts)
        if len(fault_plans) != len(parts):
            raise ConfigurationError(
                f"need {len(parts)} fault plans, got {len(fault_plans)}"
            )
        workdir = Path(workdir)
        workers: list = []
        shared: list[SharedCSR] = []
        collect_obs = bool(obs is not None and obs.enabled)
        for k, part in enumerate(parts):
            config = WorkerConfig(
                worker_id=k,
                part=part,
                n_vertices=n,
                workdir=workdir / f"worker{k}",
                device=device,
                cost_model=cost_model,
                fault_plan=fault_plans[k],
                concurrency=concurrency,
                page_cache_bytes=page_cache_bytes,
                retry=retry,
                collect_obs=collect_obs,
            )
            if backend == "process":
                shared_fwd = SharedCSR.create(fwd[k])
                shared_bwd = SharedCSR.create(bwd[k])
                shared.extend([shared_fwd, shared_bwd])
                workers.append(
                    ProcessWorkerHandle(
                        config, shared_fwd.handle, shared_bwd.handle
                    )
                )
            else:
                workers.append(LocalWorkerHandle(config, fwd[k], bwd[k]))
        return cls(
            n_vertices=n,
            partitioner=partitioner,
            policy=policy,
            workers=workers,
            degrees=csr.degrees(),
            cost_model=cost_model,
            clock=clock,
            obs=obs,
            merge_cost_per_vertex_s=merge_cost_per_vertex_s,
            shared_segments=shared,
        )

    # -- health / degradation ------------------------------------------------------

    def _device_health(self) -> float:
        scores = [h.health()[0] for h in self.workers]
        return min(scores) if scores else 1.0

    @property
    def degraded_mode(self) -> bool:
        """Whether the traversal has fallen back to bottom-up-only levels."""
        if self._degraded:
            return True
        return any(h.health()[1] for h in self.workers)

    def _restart_worker(self, k: int, state: BFSState, level: int) -> None:
        """Rebuild worker ``k`` and replay its state from the merged tree."""
        self.workers[k].restart()
        self.workers[k].restore(np.flatnonzero(state.parent >= 0))
        self.restarts += 1
        self.obs.counter(M_DIST_RESTARTS, worker=str(k)).inc()
        self.obs.event("dist.restart", worker=k, level=level)

    def _absorb_worker(self, k: int) -> None:
        """Merge worker ``k``'s drained recordings into the session,
        labeled with its *current* generation (call before a restart so
        a dead generation's spans land under the dead generation)."""
        if not self.obs.enabled:
            return
        handle = self.workers[k]
        self.obs.absorb(
            handle.drain_obs(), worker=k, generation=handle.generation
        )

    def _step_all(
        self, dirname: str, frontier: np.ndarray, level: int, state: BFSState
    ) -> list:
        """One lockstep level: every worker steps, crashed workers restart.

        Opens the level's ``dist.step`` span and ships its id to every
        worker as the :class:`~repro.obs.spans.TraceContext` — worker
        spans come back linked to it by flow events.  Each worker's
        recordings are absorbed as soon as its reply (success *or*
        crash) lands, so a dead generation's spans are retained and the
        restarted generation is labeled separately.

        Raises :class:`~repro.errors.DeviceFailedError` through to the
        level loop (which re-runs the level bottom-up); absorbs
        :class:`~repro.errors.ProcessCrashError` by restarting only the
        crashed worker and re-stepping it — the other partitions are
        unaffected, which is the graceful single-worker degradation the
        serve tier's watchdog relies on.
        """
        obs = self.obs
        scans = []
        with obs.span(
            "dist.step",
            level=level,
            direction=dirname,
            frontier=int(frontier.size),
            workers=len(self.workers),
        ) as step_span:
            ctx = None
            if obs.enabled:
                active = obs.tracer.active_context
                trace_id = (
                    active.trace_id
                    if active is not None
                    else obs.new_trace_id()
                )
                ctx = TraceContext(
                    trace_id=trace_id, parent_span_id=step_span.span_id
                )
            for k, handle in enumerate(self.workers):
                for attempt in range(_MAX_RESTARTS_PER_LEVEL + 1):
                    try:
                        scans.append(
                            handle.step(dirname, frontier, level, ctx=ctx)
                        )
                        self._absorb_worker(k)
                        break
                    except ProcessCrashError:
                        self._absorb_worker(k)
                        if attempt >= _MAX_RESTARTS_PER_LEVEL:
                            raise
                        self._restart_worker(k, state, level)
        return scans

    # -- the level loop ------------------------------------------------------------

    def run(
        self,
        root: int,
        max_levels: int | None = None,
        checkpointer=None,
    ) -> BFSResult:
        """Run one distributed BFS from ``root``.

        The signature (``checkpointer`` included) matches
        :meth:`HybridBFS.run <repro.bfs.hybrid.HybridBFS.run>`, so the
        serve tier and tests drive either engine interchangeably.
        """
        state = BFSState(self.n_vertices, self.partitioner, root)
        self.policy.reset()
        self.level_imbalance = []
        for handle in self.workers:
            handle.reset()
        obs = self.obs
        traces: list[LevelTrace] = []
        total_wall = Timer()
        modeled_start = self.clock.now()
        level = 0
        direction = Direction.TOP_DOWN
        prev_frontier = 0
        visited_deg_sum = int(self._degrees[root])
        nvm_bytes_prev = self._nvm_bytes()
        # Each run traces under one id: reuse an already-active context
        # (the serve tier's per-query trace) or mint a fresh run-scoped
        # one, so every span — coordinator and worker side — carries it.
        run_ctx = None
        if obs.enabled and obs.tracer.active_context is None:
            run_ctx = TraceContext(trace_id=obs.new_trace_id())
        with obs.activate(run_ctx), obs.span(
            "dist.run", root=root, workers=len(self.workers)
        ):
            while state.frontier_size > 0:
                if max_levels is not None and level >= max_levels:
                    break
                frontier = state.frontier_queue
                frontier_size = state.frontier_size
                frontier_edges = int(self._degrees[frontier].sum())
                direction = self.policy.decide(
                    PolicyInputs(
                        level=level,
                        current=direction,
                        n_frontier=frontier_size,
                        n_frontier_prev=prev_frontier,
                        n_all=self.n_vertices,
                        frontier_edges=frontier_edges,
                        unvisited_edges=self._total_directed - visited_deg_sum,
                        device_health=self._device_health(),
                    )
                )
                if self.degraded_mode:
                    self._degraded = True
                    direction = Direction.BOTTOM_UP
                was_degraded = self._degraded
                wall = Timer()
                t_level0 = self.clock.now()
                with total_wall, wall, obs.span(
                    "dist.level", level=level, direction=direction.value
                ):
                    try:
                        scans = self._step_all(
                            direction.value, frontier, level, state
                        )
                    except DeviceFailedError:
                        # One worker's device died mid-gather; no state
                        # was committed, and every worker's backward rows
                        # are in DRAM — re-run the level bottom-up, stay
                        # degraded for the rest of the traversal.
                        self._degraded = True
                        direction = Direction.BOTTOM_UP
                        scans = self._step_all(
                            direction.value, frontier, level, state
                        )
                    next_parts: list[np.ndarray] = []
                    for scan in scans:
                        if scan.winners.size:
                            state.discover(scan.winners, scan.parents)
                            next_parts.append(scan.winners)
                    if next_parts:
                        next_queue = np.concatenate(next_parts)
                        next_queue.sort()
                    else:
                        next_queue = np.empty(0, dtype=np.int64)
                    next_size = int(next_queue.size)
                    deltas = [scan.clock_delta_s for scan in scans]
                    worker_max = max(deltas)
                    self.clock.advance(worker_max)
                    merge_s = self.merge_cost_per_vertex_s * (
                        frontier_size + next_size
                    )
                    with obs.span("dist.merge", merged=next_size):
                        self.clock.advance(merge_s)
                t_level1 = self.clock.now()
                dirname = direction.value
                scanned_dram = sum(s.scanned_dram for s in scans)
                scanned_nvm = sum(s.scanned_nvm for s in scans)
                obs.counter(M_DIST_LEVELS, direction=dirname).inc()
                obs.counter(M_DIST_BROADCAST).inc(
                    frontier_size * len(self.workers)
                )
                obs.counter(M_DIST_MERGED).inc(next_size)
                obs.counter(M_DIST_MERGE_SECONDS).inc(merge_s)
                for k, scan in enumerate(scans):
                    worker = str(k)
                    obs.counter(M_DIST_WORKER_SECONDS, worker=worker).inc(
                        scan.clock_delta_s
                    )
                    if scan.scanned_dram:
                        obs.counter(
                            M_DIST_WORKER_EDGES, worker=worker, medium="dram"
                        ).inc(scan.scanned_dram)
                    if scan.scanned_nvm:
                        obs.counter(
                            M_DIST_WORKER_EDGES, worker=worker, medium="nvm"
                        ).inc(scan.scanned_nvm)
                mean_delta = sum(deltas) / len(deltas)
                obs.histogram(M_DIST_IMBALANCE).observe(
                    worker_max / mean_delta if mean_delta > 0 else 1.0
                )
                self.level_imbalance.append(
                    LevelLoad(
                        level=level,
                        worker_max_s=worker_max,
                        worker_mean_s=mean_delta,
                    )
                )
                nvm_bytes_now = self._nvm_bytes()
                traces.append(
                    LevelTrace(
                        level=level,
                        direction=direction,
                        frontier_size=frontier_size,
                        next_size=next_size,
                        edges_scanned=scanned_dram + scanned_nvm,
                        wall_time_s=wall.elapsed,
                        modeled_time_s=t_level1 - t_level0,
                        edges_scanned_nvm=scanned_nvm,
                        nvm_bytes=nvm_bytes_now - nvm_bytes_prev,
                        degraded=was_degraded or self._degraded,
                    )
                )
                nvm_bytes_prev = nvm_bytes_now
                visited_deg_sum += int(self._degrees[next_queue].sum())
                prev_frontier = frontier_size
                state.promote_next(next_queue)
                level += 1
                if checkpointer is not None:
                    checkpointer(
                        state, level, direction, prev_frontier, visited_deg_sum
                    )
        traversed = int(self._degrees[state.parent >= 0].sum()) // 2
        return BFSResult(
            parent=state.parent,
            root=root,
            traces=tuple(traces),
            traversed_edges=traversed,
            wall_time_s=total_wall.elapsed,
            modeled_time_s=self.clock.now() - modeled_start,
        )

    # -- accounting / lifecycle ----------------------------------------------------

    def _nvm_bytes(self) -> int:
        return sum(h.nvm_bytes() for h in self.workers)

    @property
    def n_workers(self) -> int:
        """Number of partition workers this coordinator drives."""
        return len(self.workers)

    def nvm_bytes_per_worker(self) -> list[int]:
        """Device bytes read so far, per worker (serve-tier accounting)."""
        return [h.nvm_bytes() for h in self.workers]

    def close(self) -> None:
        """Stop workers and release shared segments (idempotent).

        Teardown is the final drain point: whatever a worker recorded
        since its last step reply (e.g. restore spans) is absorbed here.
        """
        for k, handle in enumerate(self.workers):
            handle.close()
            self._absorb_worker(k)
        for seg in self._shared:
            seg.close()
        self._shared = []

    def __enter__(self) -> "DistributedBFS":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DistributedBFS(n={self.n_vertices}, "
            f"workers={len(self.workers)}, policy={self.policy!r})"
        )
