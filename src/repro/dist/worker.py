"""Per-partition BFS worker: one vertex range, one NVM store, one clock.

A :class:`PartitionWorker` owns everything partition-local of a
distributed traversal: the forward column shard offloaded to its own
:class:`~repro.semiext.storage.NVMStore` (top-down levels read it back
through the same chunked, fault-injectable path as
:class:`~repro.bfs.semi_external.SemiExternalBFS`), the backward row
shard scanned in DRAM, a visited bitmap maintained from the
coordinator's frontier broadcasts, and the partition's shrinking
bottom-up candidate list.

The worker never decides directions and never merges: it answers one
:meth:`step` per level — apply the broadcast frontier, scan in the
direction the coordinator chose, return a :class:`WorkerScan` of
partition-local discoveries plus its clock delta and device health.
Applying the frontier is idempotent, which is what lets the coordinator
replay a level into a freshly :meth:`restore`-d worker after a process
crash.

Charging parity with the single-process engine: NVM-fetched edges pay
device service plus per-request think time on the worker's own clock
and page-cache hits pay ``cache_hit_time_per_byte``, while DRAM-resident
probes are charged through ``cost_model.level_time_s`` — the same split
as ``SemiExternalBFS._charge_level``, just on a per-worker time axis the
coordinator reconciles by taking the max.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.bottomup import InMemoryScanner
from repro.csr.graph import CSRGraph
from repro.csr.io import ExternalCSR, offload_csr
from repro.errors import ConfigurationError, ProcessCrashError
from repro.numa.topology import VertexPartition
from repro.obs.session import NULL, Observability
from repro.obs.spans import TraceContext
from repro.perfmodel.cost import DramCostModel
from repro.semiext.storage import NVMStore
from repro.util.bitmap import Bitmap

__all__ = ["WorkerScan", "PartitionWorker"]

TOP_DOWN = "top-down"
BOTTOM_UP = "bottom-up"


@dataclass(frozen=True)
class WorkerScan:
    """One worker's answer to one level step (picklable).

    ``winners``/``parents`` are the partition-local discoveries —
    globally disjoint across workers because every winner is owned by
    exactly one partition.  ``clock_delta_s`` is the simulated time this
    step cost on the worker's private clock; the coordinator advances
    the global clock by the max over workers.
    """

    winners: np.ndarray
    parents: np.ndarray
    scanned_dram: int
    scanned_nvm: int
    clock_delta_s: float
    health_score: float
    circuit_open: bool

    @property
    def scanned(self) -> int:
        """Total edges probed this step, both media."""
        return self.scanned_dram + self.scanned_nvm


_EMPTY = np.empty(0, dtype=np.int64)


class PartitionWorker:
    """BFS executor for one vertex partition.

    Parameters
    ----------
    worker_id:
        Partition index (names the offloaded forward files).
    part:
        The owned contiguous vertex range.
    forward_shard:
        Column shard of the forward graph — all ``n`` rows, destinations
        restricted to ``[part.lo, part.hi)``.  Offloaded to ``store`` at
        construction; the DRAM copy may be dropped afterwards.
    backward_shard:
        Row shard of the backward graph — rows ``[part.lo, part.hi)``
        shifted to local indices, kept in DRAM.
    n_vertices:
        Global vertex count (sizes the visited bitmap).
    store:
        This worker's private NVM store (own clock, own fault plan, own
        health monitor).
    cost_model:
        DRAM cost model; ``None`` disables DRAM-side charges (device
        charges still tick the worker clock).
    obs:
        This worker's *private* observability session, bound to the
        worker's clock (pass the same session into the store so its
        ``nvm.charge`` spans nest under the scan spans).  Recordings are
        shipped to the coordinator via
        :meth:`~repro.obs.session.Observability.drain` and merged with
        :meth:`~repro.obs.session.Observability.absorb`; defaults to
        the disabled :data:`~repro.obs.NULL` session.
    """

    def __init__(
        self,
        worker_id: int,
        part: VertexPartition,
        forward_shard: CSRGraph,
        backward_shard: CSRGraph,
        n_vertices: int,
        store: NVMStore,
        cost_model: DramCostModel | None = None,
        obs: Observability | None = None,
    ) -> None:
        if part.hi - part.lo != backward_shard.n_rows:
            raise ConfigurationError(
                f"backward shard has {backward_shard.n_rows} rows for "
                f"partition [{part.lo}, {part.hi})"
            )
        if forward_shard.n_rows != n_vertices:
            raise ConfigurationError(
                f"forward column shard must keep all {n_vertices} rows, "
                f"got {forward_shard.n_rows}"
            )
        self.worker_id = int(worker_id)
        self.part = part
        self.n_vertices = int(n_vertices)
        self.store = store
        self.cost_model = cost_model
        self.obs = obs if obs is not None else NULL
        self.obs.bind_clock(store.clock)
        self.external: ExternalCSR = offload_csr(
            forward_shard, store, f"forward.part{worker_id}"
        )
        self.scanner = InMemoryScanner(backward_shard)
        self.visited = Bitmap(n_vertices)
        self._candidates = np.arange(part.lo, part.hi, dtype=np.int64)
        if cost_model is not None:
            per_edge_s = cost_model.level_time_s(1, 0, 0)
            store.cache_hit_time_per_byte = per_edge_s / 8.0

    # -- state maintenance ---------------------------------------------------------

    def apply_frontier(self, frontier: np.ndarray) -> None:
        """Mark the broadcast frontier visited and prune candidates.

        Idempotent: re-applying a frontier after a crash-restart reaches
        the same bitmap and candidate list a continuously-live worker
        holds.
        """
        with self.obs.span(
            "dist.worker_apply",
            worker=self.worker_id,
            frontier=int(frontier.size),
        ):
            if frontier.size:
                self.visited.set_many(frontier)
            cand = self._candidates
            if cand.size:
                still = ~self.visited.test_many(cand)
                if not still.all():
                    self._candidates = cand[still]

    def reset(self) -> None:
        """Clear per-run state (visited bitmap, candidate list).

        The coordinator resets every worker at the top of each ``run``—
        workers are long-lived across queries, their search state is not.
        """
        self.visited = Bitmap(self.n_vertices)
        self._candidates = np.arange(
            self.part.lo, self.part.hi, dtype=np.int64
        )

    def restore(self, visited_ids: np.ndarray) -> None:
        """Rebuild visited/candidate state from the coordinator's tree.

        ``visited_ids`` is ``np.flatnonzero(parent >= 0)`` of the
        coordinator's merged parent array — everything discovered up to
        and including the frontier about to be (re)stepped.
        """
        with self.obs.span(
            "dist.worker_restore",
            worker=self.worker_id,
            visited=int(np.asarray(visited_ids).size),
        ):
            self.visited = Bitmap.from_indices(self.n_vertices, visited_ids)
            local = np.arange(self.part.lo, self.part.hi, dtype=np.int64)
            self._candidates = local[~self.visited.test_many(local)]

    # -- level step ---------------------------------------------------------------

    def step(
        self,
        direction: str,
        frontier: np.ndarray,
        level: int,
        ctx: TraceContext | None = None,
    ) -> WorkerScan:
        """Scan one level and return partition-local discoveries.

        ``ctx`` is the coordinator's propagated trace context: while the
        step runs, every span this worker records carries its trace id,
        and the top-level ``dist.worker`` span carries a ``flow_parent``
        link back to the coordinator's ``dist.step`` span.

        Raises :class:`~repro.errors.ProcessCrashError` when this
        worker's fault plan schedules a crash at this level boundary, and
        :class:`~repro.errors.DeviceFailedError` when its device dies
        mid-gather (no state was mutated; the coordinator re-runs the
        level bottom-up).
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        # Nothing before the scan advances the worker clock, so the
        # dist.worker span's virtual duration equals clock_delta_s — the
        # profile's per-worker self-time sums therefore reconcile with
        # dist.worker_seconds_total exactly.
        with self.obs.activate(ctx):
            with self.obs.span(
                "dist.worker",
                worker=self.worker_id,
                level=int(level),
                direction=direction,
            ) as worker_span:
                self.apply_frontier(frontier)
                injector = self.store.injector
                now = self.store.clock.now()
                if injector is not None and injector.crash_due(now, level):
                    worker_span.set(crashed=True)
                    raise ProcessCrashError(
                        f"injected crash of worker {self.worker_id} at level "
                        f"{level}, t={now:.6f}s",
                        crashed_at_s=now,
                        level=level,
                    )
                t0 = self.store.clock.now()
                with self.obs.span(
                    "dist.worker_scan",
                    worker=self.worker_id,
                    level=int(level),
                    direction=direction,
                    frontier=int(frontier.size),
                ) as scan_span:
                    if direction == TOP_DOWN:
                        winners, parents, dram, nvm, next_size = (
                            self._top_down(frontier)
                        )
                    elif direction == BOTTOM_UP:
                        winners, parents, dram, nvm, next_size = (
                            self._bottom_up(frontier)
                        )
                    else:
                        raise ConfigurationError(
                            f"unknown direction {direction!r}"
                        )
                    if self.cost_model is not None:
                        self.store.clock.advance(
                            self.cost_model.level_time_s(
                                edges_scanned=dram,
                                frontier_size=int(frontier.size),
                                next_size=next_size,
                            )
                        )
                    scan_span.set(
                        scanned_dram=int(dram),
                        scanned_nvm=int(nvm),
                        winners=int(winners.size),
                    )
                return WorkerScan(
                    winners=winners,
                    parents=parents,
                    scanned_dram=dram,
                    scanned_nvm=nvm,
                    clock_delta_s=self.store.clock.now() - t0,
                    health_score=self.store.health.health_score(),
                    circuit_open=self.store.health.circuit_open,
                )

    def _think_time_s(self) -> float:
        if self.cost_model is None:
            return 0.0
        edges_per_request = self.store.chunk_bytes / 8.0
        return self.cost_model.per_request_think_time_s(edges_per_request)

    def _top_down(
        self, frontier: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int, int, int]:
        """Gather the frontier's out-edges landing in this partition.

        First-parent-wins per destination: every destination in this
        shard is owned here, so ``np.unique``'s first-occurrence
        reduction resolves each vertex exactly as the single-process
        shard scan does — partition boundaries cannot change winners.
        """
        neighbors, counts = self.external.gather_rows(
            frontier, think_time_s=self._think_time_s()
        )
        scanned = int(counts.sum()) if counts.size else 0
        if neighbors.size == 0:
            return _EMPTY, _EMPTY, 0, scanned, 0
        sources = np.repeat(frontier, counts)
        unvisited = ~self.visited.test_many(neighbors)
        if not unvisited.any():
            return _EMPTY, _EMPTY, 0, scanned, 0
        cand_w = neighbors[unvisited]
        cand_v = sources[unvisited]
        winners, first_idx = np.unique(cand_w, return_index=True)
        return winners, cand_v[first_idx].copy(), 0, scanned, int(winners.size)

    def _bottom_up(
        self, frontier: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int, int, int]:
        """Scan this partition's unvisited rows against the frontier."""
        cand = self._candidates
        if cand.size == 0:
            return _EMPTY, _EMPTY, 0, 0, 0
        bitmap = Bitmap.from_indices(self.n_vertices, frontier)
        outcome = self.scanner.scan(cand - self.part.lo, bitmap)
        found = outcome.parents >= 0
        winners = cand[found]
        parents = outcome.parents[found]
        return (
            winners,
            parents,
            outcome.scanned_dram,
            outcome.scanned_nvm,
            int(winners.size),
        )

    def health(self) -> tuple[float, bool]:
        """Current ``(health_score, circuit_open)`` of this worker's device."""
        return self.store.health.health_score(), self.store.health.circuit_open

    def nvm_bytes(self) -> int:
        """Total bytes this worker has read from its device."""
        return self.store.iostats.total_bytes

    def close(self) -> None:
        """Release store resources (idempotent)."""
        close = getattr(self.store, "close", None)
        if close is not None:
            close()

    def __repr__(self) -> str:
        return (
            f"PartitionWorker(id={self.worker_id}, "
            f"range=[{self.part.lo}, {self.part.hi}))"
        )
