"""1D vertex partitioners: the NUMA shard layer, generalized.

The paper's NETAL base system statically assigns vertex ``v_i`` with
``i ∈ [k·n/ℓ, (k+1)·n/ℓ)`` to NUMA node ``N_k`` (§V-B2);
:class:`~repro.numa.topology.NumaTopology` hard-codes that ceil-division
split.  The distributed tier needs the same *shape* — contiguous vertex
ranges, a vectorized owner map — decoupled from the machine: a
:class:`Partitioner` answers ``partitions(n)`` and ``owner_of(ids, n)``
for any worker count, and two strategies are provided:

* :class:`ContiguousPartitioner` — the paper's ceil-division ranges,
  bit-compatible with ``NumaTopology.partitions`` at equal counts;
* :class:`DegreeBalancedPartitioner` — boundaries placed on the
  cumulative (degree + 1) curve so each worker owns roughly equal
  *work* (edges to scan) instead of equal vertex counts — the standard
  1D load-balancing refinement in the Buluç/Beamer distributed-BFS
  taxonomy.

Partition boundaries never change BFS answers (pinned by
``tests/test_dist_bfs.py`` and the ``partitioned`` conformance engine):
top-down first-parent-wins resolves per destination vertex inside its
single owning partition, and bottom-up resolves per source row, whole
rows never straddling a boundary.

:func:`column_shards` / :func:`row_shards` build the per-partition CSR
pair — the forward graph split by *destination* owner (each worker scans
any frontier against only its own columns) and the backward graph split
by *source* row (each worker scans only its own unvisited rows) — the
same construction as :class:`~repro.csr.partition.ForwardGraph` /
:class:`~repro.csr.partition.BackwardGraph` over arbitrary boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.csr.graph import CSRGraph
from repro.errors import ConfigurationError
from repro.numa.topology import VertexPartition

__all__ = [
    "Partitioner",
    "ContiguousPartitioner",
    "DegreeBalancedPartitioner",
    "column_shards",
    "row_shards",
]


class Partitioner:
    """Base of the 1D vertex partition strategies.

    A partitioner is duck-compatible with the slice of
    :class:`~repro.numa.topology.NumaTopology` the BFS state machinery
    uses (``partitions(n)`` yielding contiguous, covering
    :class:`~repro.numa.topology.VertexPartition` ranges), so it can
    stand in as the ``topology`` of a coordinator-side
    :class:`~repro.bfs.state.BFSState`.
    """

    def __init__(self, n_parts: int) -> None:
        if n_parts <= 0:
            raise ConfigurationError(
                f"partition count must be positive, got {n_parts}"
            )
        self.n_parts = int(n_parts)

    def partitions(self, n_vertices: int) -> list[VertexPartition]:
        """Contiguous, covering vertex ranges, one per worker."""
        raise NotImplementedError

    def owner_of(self, vertex_ids: np.ndarray, n_vertices: int) -> np.ndarray:
        """Owning partition index of each vertex id (vectorized)."""
        raise NotImplementedError

    def _bounds(self, n_vertices: int) -> np.ndarray:
        """``int64[n_parts + 1]`` non-decreasing range boundaries."""
        raise NotImplementedError

    def _check_range(self, vertex_ids: np.ndarray, n_vertices: int) -> None:
        if vertex_ids.size and (
            int(vertex_ids.min()) < 0 or int(vertex_ids.max()) >= n_vertices
        ):
            raise ConfigurationError(
                f"vertex id outside [0, {n_vertices}): "
                f"min={vertex_ids.min()}, max={vertex_ids.max()}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_parts={self.n_parts})"


class ContiguousPartitioner(Partitioner):
    """Equal-width contiguous ranges — the paper's §V-B2 split.

    Produces exactly the ranges of
    ``NumaTopology(n_nodes=n_parts).partitions(n)``: a ceil-division
    step, trailing partitions possibly empty when ``n_parts > n``.
    """

    def partitions(self, n_vertices: int) -> list[VertexPartition]:
        """Equal-width ceil-division ranges over ``[0, n_vertices)``."""
        if n_vertices <= 0:
            raise ConfigurationError(
                f"n_vertices must be positive, got {n_vertices}"
            )
        step = -(-n_vertices // self.n_parts)
        out = []
        for k in range(self.n_parts):
            lo = min(k * step, n_vertices)
            hi = min((k + 1) * step, n_vertices)
            out.append(VertexPartition(node=k, lo=lo, hi=hi))
        return out

    def owner_of(self, vertex_ids: np.ndarray, n_vertices: int) -> np.ndarray:
        """Owning partition of each id under the ceil-division split."""
        self._check_range(vertex_ids, n_vertices)
        step = -(-n_vertices // self.n_parts)
        return np.minimum(vertex_ids // step, self.n_parts - 1)

    def _bounds(self, n_vertices: int) -> np.ndarray:
        parts = self.partitions(n_vertices)
        return np.array([parts[0].lo] + [p.hi for p in parts], dtype=np.int64)


class DegreeBalancedPartitioner(Partitioner):
    """Boundaries on the cumulative degree curve: equal *edge* work.

    Parameters
    ----------
    n_parts:
        Worker count.
    degrees:
        ``int64[n]`` per-vertex degrees of the graph being partitioned
        (each vertex is weighted ``degree + 1`` so zero-degree runs
        still spread across workers).
    """

    def __init__(self, n_parts: int, degrees: np.ndarray) -> None:
        super().__init__(n_parts)
        degrees = np.asarray(degrees, dtype=np.int64)
        if degrees.ndim != 1 or degrees.size == 0:
            raise ConfigurationError(
                f"degrees must be a non-empty 1-D array, got {degrees.shape}"
            )
        if degrees.size and int(degrees.min()) < 0:
            raise ConfigurationError("degrees must be non-negative")
        self.n_vertices = int(degrees.size)
        cumulative = np.cumsum(degrees + 1)
        total = int(cumulative[-1])
        bounds = np.zeros(self.n_parts + 1, dtype=np.int64)
        for k in range(1, self.n_parts):
            target = total * k / self.n_parts
            b = int(np.searchsorted(cumulative, target, side="left"))
            bounds[k] = max(b, int(bounds[k - 1]))
        bounds[self.n_parts] = self.n_vertices
        self.bounds = bounds

    def partitions(self, n_vertices: int) -> list[VertexPartition]:
        """The precomputed degree-balanced ranges (possibly empty)."""
        self._check_n(n_vertices)
        return [
            VertexPartition(
                node=k, lo=int(self.bounds[k]), hi=int(self.bounds[k + 1])
            )
            for k in range(self.n_parts)
        ]

    def owner_of(self, vertex_ids: np.ndarray, n_vertices: int) -> np.ndarray:
        """Owning partition of each id via the precomputed boundaries."""
        self._check_n(n_vertices)
        self._check_range(vertex_ids, n_vertices)
        # side="right" lands duplicated (empty-partition) boundaries on
        # the first non-empty range, matching partitions() ownership.
        return np.searchsorted(self.bounds, vertex_ids, side="right") - 1

    def _bounds(self, n_vertices: int) -> np.ndarray:
        self._check_n(n_vertices)
        return self.bounds

    def _check_n(self, n_vertices: int) -> None:
        if n_vertices != self.n_vertices:
            raise ConfigurationError(
                f"partitioner built for {self.n_vertices} vertices, "
                f"asked about {n_vertices}"
            )


def column_shards(csr: CSRGraph, partitioner: Partitioner) -> list[CSRGraph]:
    """Split the forward graph by *destination* owner (one shard/worker).

    Shard ``k`` keeps, for every source row, only the destinations owned
    by partition ``k`` — the forward-graph layout of
    :class:`~repro.csr.partition.ForwardGraph` over arbitrary
    boundaries.  Every shard has all ``n`` rows.
    """
    if csr.n_rows != csr.n_cols:
        raise ConfigurationError(
            f"column sharding needs a square CSR, got "
            f"{csr.n_rows}x{csr.n_cols}"
        )
    n = csr.n_rows
    degrees = np.diff(csr.indptr)
    row_of_entry = np.repeat(np.arange(n, dtype=np.int64), degrees)
    owners = partitioner.owner_of(csr.adj, n)
    shards = []
    for part in partitioner.partitions(n):
        mask = owners == part.node
        counts = np.bincount(row_of_entry[mask], minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        shards.append(
            CSRGraph(indptr=indptr, adj=csr.adj[mask].copy(), n_cols=n)
        )
    return shards


def row_shards(csr: CSRGraph, partitioner: Partitioner) -> list[CSRGraph]:
    """Split the backward graph by *source* row (one shard/worker).

    Shard ``k`` holds the full adjacency of rows ``[lo_k, hi_k)``, row
    indices shifted to shard-local — the backward-graph layout of
    :class:`~repro.csr.partition.BackwardGraph` over arbitrary
    boundaries.
    """
    if csr.n_rows != csr.n_cols:
        raise ConfigurationError(
            f"row sharding needs a square CSR, got {csr.n_rows}x{csr.n_cols}"
        )
    n = csr.n_rows
    shards = []
    for part in partitioner.partitions(n):
        base = int(csr.indptr[part.lo])
        indptr = (csr.indptr[part.lo:part.hi + 1] - base).copy()
        adj = csr.adj[base:int(csr.indptr[part.hi])].copy()
        shards.append(CSRGraph(indptr=indptr, adj=adj, n_cols=n))
    return shards
