"""Crash recovery: checkpointed traversals, crash injection, resume.

See ``docs/recovery.md`` for the checkpoint format, the crash-injection
knobs and a resume walkthrough.
"""

from repro.recovery.checkpoint import (
    CheckpointManager,
    QuerySnapshot,
    RestoredQuery,
    RestoredRun,
    load_run,
)
from repro.recovery.resume import RecoverableBFS

__all__ = [
    "CheckpointManager",
    "QuerySnapshot",
    "RestoredQuery",
    "RestoredRun",
    "load_run",
    "RecoverableBFS",
]
