"""CRC32-framed, epoch-numbered checkpoints of BFS traversal state.

A long semi-external traversal is exactly the regime where a process
crash is catastrophic (FlashGraph and Graphyti anchor semi-external
computation on SSD-resident state for the same reason), so the recovery
layer persists the loop-carried state of every engine at level
boundaries:

* the **parent array as a delta chain** — each epoch stores only the
  ``(index, parent)`` pairs discovered since the previous epoch, so the
  chain's total size is ~16 bytes per vertex regardless of how many
  epochs are written;
* the **frontier queue** entering the next level (the bitmap form is
  derived — the engines rebuild it lazily);
* the **visited bitmap** (packed bits), doubling as a restore-time
  cross-check that the delta chain reassembled the exact parent array;
* the **schedule cursor** (level, direction, previous frontier size,
  visited-degree sum) and the **simulated-clock offset**, in the JSON
  header.

Every byte sequence is framed as ``length | payload | crc32(payload)``,
so a torn write — a crash mid-checkpoint, injected or real — is detected
at restore time and recovery falls back to the longest valid epoch
prefix.  Writes are charged to the simulated clock through
:meth:`repro.semiext.storage.NVMStore.charge_write`: durability costs
time on the same axis as the traversal's reads.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError, StorageError
from repro.obs.schema import (
    M_REC_CHECKPOINT_BYTES,
    M_REC_CHECKPOINT_SECONDS,
    M_REC_CHECKPOINTS,
)
from repro.obs.session import NULL
from repro.semiext.storage import NVMStore

__all__ = [
    "QuerySnapshot",
    "RestoredQuery",
    "RestoredRun",
    "CheckpointManager",
    "load_run",
]

MAGIC = b"RPCK1\n"
_LEN = struct.Struct("<Q")
_CRC = struct.Struct("<I")


@dataclass(frozen=True)
class QuerySnapshot:
    """One traversal's loop-carried state at a level boundary.

    ``key`` distinguishes concurrent queries in a batched checkpoint
    (the serve tier uses the graph name); a single-engine run uses
    ``""``.  ``direction`` is the :class:`~repro.bfs.metrics.Direction`
    *value* string so headers stay JSON-serializable.
    """

    key: str
    root: int
    level: int
    direction: str
    prev_frontier: int
    visited_deg_sum: int
    parent: np.ndarray
    frontier_queue: np.ndarray


@dataclass
class RestoredQuery:
    """One query's state reassembled from the valid epoch prefix."""

    key: str
    root: int
    level: int
    direction: str
    prev_frontier: int
    visited_deg_sum: int
    n_vertices: int
    parent: np.ndarray
    frontier_queue: np.ndarray


@dataclass
class RestoredRun:
    """Outcome of :func:`load_run` over one checkpoint directory.

    ``epoch`` is the newest epoch that survived CRC validation (-1 when
    nothing did); ``n_torn`` counts rejected epochs — files whose
    framing, checksum or visited-bitmap cross-check failed, which
    recovery skips by falling back to the prefix before them.
    """

    epoch: int = -1
    clock_s: float = 0.0
    queries: list[RestoredQuery] = field(default_factory=list)
    n_epochs_seen: int = 0
    n_torn: int = 0
    nbytes: int = 0


def _write_frame(buf: io.BytesIO, payload: bytes) -> None:
    buf.write(_LEN.pack(len(payload)))
    buf.write(payload)
    buf.write(_CRC.pack(zlib.crc32(payload)))


def _read_frame(f: io.BufferedReader, limit: int) -> bytes:
    head = f.read(_LEN.size)
    if len(head) != _LEN.size:
        raise StorageError("checkpoint frame truncated (length header)")
    (length,) = _LEN.unpack(head)
    if length > limit:
        raise StorageError(f"checkpoint frame length {length} implausible")
    payload = f.read(length)
    if len(payload) != length:
        raise StorageError("checkpoint frame truncated (payload)")
    tail = f.read(_CRC.size)
    if len(tail) != _CRC.size:
        raise StorageError("checkpoint frame truncated (checksum)")
    (crc,) = _CRC.unpack(tail)
    if zlib.crc32(payload) != crc:
        raise StorageError("checkpoint frame failed CRC32 verification")
    return payload


class CheckpointManager:
    """Persists epoch-numbered traversal snapshots to an NVM store.

    Parameters
    ----------
    store:
        The :class:`~repro.semiext.storage.NVMStore` whose root hosts
        the checkpoint directory and whose clock is charged per write.
    run_id:
        Namespace under ``<store root>/checkpoints/``; one traversal (or
        one serve batch) per id.
    every:
        Cadence in levels: an epoch is written at every ``every``-th
        level boundary.  1 = every level (the durability maximum); the
        default 2 halves the write amplification while losing at most
        one extra level on a crash.
    obs:
        Observability session for the ``recovery.*`` metrics and the
        ``recovery.checkpoint`` span; defaults to the store's session.
    """

    def __init__(
        self,
        store: NVMStore,
        run_id: str = "bfs",
        every: int = 2,
        obs=None,
    ) -> None:
        if every < 1:
            raise ConfigurationError(f"checkpoint cadence must be >= 1: {every}")
        if "/" in run_id or run_id.startswith("."):
            raise ConfigurationError(f"invalid checkpoint run id: {run_id!r}")
        self.store = store
        self.run_id = run_id
        self.every = int(every)
        self.obs = obs if obs is not None else store.obs
        if self.obs is None:  # a store always has one, but be safe
            self.obs = NULL
        self.dir = store.root / "checkpoints" / run_id
        self.dir.mkdir(parents=True, exist_ok=True)
        self.next_epoch = 0
        self.bytes_written = 0
        self.n_checkpoints = 0
        self._prev_visited: dict[tuple[str, int], np.ndarray] = {}
        self._last_path: Path | None = None

    def epoch_path(self, epoch: int) -> Path:
        """File of epoch number ``epoch``."""
        return self.dir / f"epoch_{epoch:06d}.ckpt"

    def save(self, snapshots: list[QuerySnapshot]) -> Path:
        """Write one epoch covering ``snapshots`` and charge the clock."""
        if not snapshots:
            raise ConfigurationError("cannot checkpoint zero queries")
        epoch = self.next_epoch
        header = {
            "epoch": epoch,
            "clock_s": float(self.store.clock.now()),
            "queries": [],
        }
        arrays: list[np.ndarray] = []
        for snap in snapshots:
            parent = np.asarray(snap.parent, dtype=np.int64)
            visited = parent >= 0
            prev = self._prev_visited.get((snap.key, snap.root))
            fresh = visited if prev is None else (visited & ~prev)
            delta_idx = np.flatnonzero(fresh).astype(np.int64)
            header["queries"].append({
                "key": snap.key,
                "root": int(snap.root),
                "level": int(snap.level),
                "direction": snap.direction,
                "prev_frontier": int(snap.prev_frontier),
                "visited_deg_sum": int(snap.visited_deg_sum),
                "n_vertices": int(parent.size),
            })
            arrays.append(np.asarray(snap.frontier_queue, dtype=np.int64))
            arrays.append(delta_idx)
            arrays.append(parent[delta_idx])
            arrays.append(np.packbits(visited))
            self._prev_visited[(snap.key, snap.root)] = visited
        buf = io.BytesIO()
        buf.write(MAGIC)
        _write_frame(buf, json.dumps(header, sort_keys=True).encode())
        for arr in arrays:
            _write_frame(buf, arr.tobytes())
        payload = buf.getvalue()
        path = self.epoch_path(epoch)
        obs = self.obs
        with obs.span(
            "recovery.checkpoint",
            epoch=epoch,
            bytes=len(payload),
            queries=len(snapshots),
        ):
            path.write_bytes(payload)
            elapsed = self.store.charge_write(
                len(payload), file_key=f"ckpt:{self.run_id}"
            )
        self.next_epoch = epoch + 1
        self.bytes_written += len(payload)
        self.n_checkpoints += 1
        self._last_path = path
        obs.counter(M_REC_CHECKPOINTS).inc()
        obs.counter(M_REC_CHECKPOINT_BYTES).inc(len(payload))
        obs.counter(M_REC_CHECKPOINT_SECONDS).inc(elapsed)
        return path

    def corrupt_last(self) -> None:
        """Tear the newest epoch (crash-during-checkpoint injection).

        Truncates the file mid-frame, exactly what an interrupted write
        leaves behind; :func:`load_run` must reject it by CRC and fall
        back to the previous epoch.  No-op when nothing was written yet.
        """
        if self._last_path is None or not self._last_path.exists():
            return
        data = self._last_path.read_bytes()
        self._last_path.write_bytes(data[: max(len(MAGIC), len(data) - 7)])

    def adopt(self, restored: RestoredRun) -> None:
        """Continue an existing chain after :func:`load_run`.

        Primes the delta baseline with the restored parent arrays and
        points :attr:`next_epoch` past the valid prefix, so the resumed
        traversal's next epoch extends the chain instead of restarting
        it.  Epochs after the valid prefix (torn or from the crashed
        attempt) are removed — they would shadow the resumed chain.
        """
        self.next_epoch = restored.epoch + 1
        for q in restored.queries:
            self._prev_visited[(q.key, q.root)] = q.parent >= 0
        for path in sorted(self.dir.glob("epoch_*.ckpt")):
            try:
                num = int(path.stem.split("_")[1])
            except (IndexError, ValueError):  # pragma: no cover - foreign file
                continue
            if num > restored.epoch:
                path.unlink()

    def __repr__(self) -> str:
        return (
            f"CheckpointManager({str(self.dir)!r}, every={self.every}, "
            f"epochs={self.next_epoch})"
        )


def _parse_epoch(
    path: Path,
    visited_acc: dict[tuple[str, int], np.ndarray],
) -> tuple[dict, list[tuple[dict, np.ndarray, np.ndarray, np.ndarray]]]:
    """Parse + validate one epoch file without mutating ``visited_acc``.

    Returns the header and, per query, ``(query_header, frontier,
    delta_idx, delta_val)``.  Raises :class:`~repro.errors.StorageError`
    on any framing, CRC or cross-check violation — the caller treats the
    epoch (and everything after it) as torn.
    """
    limit = path.stat().st_size
    with path.open("rb") as f:
        if f.read(len(MAGIC)) != MAGIC:
            raise StorageError(f"{path.name}: bad checkpoint magic")
        header = json.loads(_read_frame(f, limit).decode())
        parsed = []
        for q in header["queries"]:
            frontier = np.frombuffer(_read_frame(f, limit), dtype=np.int64)
            delta_idx = np.frombuffer(_read_frame(f, limit), dtype=np.int64)
            delta_val = np.frombuffer(_read_frame(f, limit), dtype=np.int64)
            packed = np.frombuffer(_read_frame(f, limit), dtype=np.uint8)
            n = int(q["n_vertices"])
            if delta_idx.size != delta_val.size:
                raise StorageError(f"{path.name}: delta index/value mismatch")
            if delta_idx.size and (
                delta_idx.min() < 0 or int(delta_idx.max()) >= n
            ):
                raise StorageError(f"{path.name}: delta index out of range")
            prev = visited_acc.get((q["key"], q["root"]))
            visited = (
                np.zeros(n, dtype=bool) if prev is None else prev.copy()
            )
            visited[delta_idx] = True
            stored = np.unpackbits(packed, count=n).astype(bool)
            if not np.array_equal(visited, stored):
                raise StorageError(
                    f"{path.name}: visited bitmap disagrees with the "
                    f"delta chain"
                )
            parsed.append((q, frontier, delta_idx, delta_val))
    return header, parsed


def load_run(directory: str | Path) -> RestoredRun:
    """Reassemble traversal state from the longest valid epoch prefix.

    Epoch files are read in epoch order; the first file that fails its
    framing, CRC32 or visited-bitmap cross-check ends the prefix — it
    and everything after it count as torn, and the returned state is
    what the previous epoch persisted.  An empty or fully-torn directory
    returns ``epoch == -1`` (nothing to resume from).
    """
    directory = Path(directory)
    run = RestoredRun()
    if not directory.is_dir():
        return run
    parents: dict[tuple[str, int], np.ndarray] = {}
    visited_acc: dict[tuple[str, int], np.ndarray] = {}
    last_header: dict | None = None
    last_frontiers: dict[tuple[str, int], np.ndarray] = {}
    paths = sorted(directory.glob("epoch_*.ckpt"))
    run.n_epochs_seen = len(paths)
    for i, path in enumerate(paths):
        try:
            expected = int(path.stem.split("_")[1])
            if expected != i:
                raise StorageError(
                    f"{path.name}: epoch chain has a gap (expected {i})"
                )
            header, parsed = _parse_epoch(path, visited_acc)
            if header.get("epoch") != i:
                raise StorageError(f"{path.name}: header epoch mismatch")
        except (StorageError, KeyError, ValueError, json.JSONDecodeError):
            run.n_torn = len(paths) - i
            break
        # The epoch is fully validated: apply its deltas.
        last_frontiers = {}
        for q, frontier, delta_idx, delta_val in parsed:
            qk = (q["key"], q["root"])
            if qk not in parents:
                parents[qk] = np.full(
                    int(q["n_vertices"]), -1, dtype=np.int64
                )
                visited_acc[qk] = np.zeros(int(q["n_vertices"]), dtype=bool)
            parents[qk][delta_idx] = delta_val
            visited_acc[qk][delta_idx] = True
            last_frontiers[qk] = frontier
        run.epoch = i
        run.clock_s = float(header["clock_s"])
        run.nbytes += path.stat().st_size
        last_header = header
    if last_header is not None:
        for q in last_header["queries"]:
            qk = (q["key"], q["root"])
            run.queries.append(RestoredQuery(
                key=q["key"],
                root=int(q["root"]),
                level=int(q["level"]),
                direction=q["direction"],
                prev_frontier=int(q["prev_frontier"]),
                visited_deg_sum=int(q["visited_deg_sum"]),
                n_vertices=int(q["n_vertices"]),
                parent=parents[qk].copy(),
                frontier_queue=last_frontiers[qk].copy(),
            ))
    return run
