"""Resumable traversal wrappers: checkpoint, crash, reload, re-enter.

:class:`RecoverableBFS` wraps any single-query engine —
:class:`~repro.bfs.hybrid.HybridBFS`,
:class:`~repro.bfs.semi_external.SemiExternalBFS` or
:class:`~repro.bfs.fully_external.FullyExternalBFS` — with a
level-boundary checkpointer and the seeded process-crash injection of
the store's :class:`~repro.semiext.faults.FaultPlan`.  The recovered
tree is **bit-identical** to an uninterrupted run: the engines are
deterministic and their level loops carry exactly the state a checkpoint
records (parent/visited/frontier plus the schedule cursor — the α/β
policy itself is stateless between levels), so re-entering at the saved
level replays the remaining levels exactly.

The wrapper resumes on the *same* store (an in-process model of a
process restart against the surviving NVM contents).  The simulated
clock is monotonic, so resume never rewinds it; resuming on a fresh
clock first advances to the checkpoint's recorded offset, then charges
the restore read.
"""

from __future__ import annotations

from repro.bfs.metrics import BFSResult, Direction
from repro.bfs.state import BFSState
from repro.errors import ConfigurationError, ProcessCrashError, StorageError
from repro.obs.schema import M_REC_CRASHES, M_REC_RESTORES, M_REC_TORN_EPOCHS
from repro.recovery.checkpoint import (
    CheckpointManager,
    QuerySnapshot,
    RestoredRun,
    load_run,
)
from repro.semiext.storage import NVMStore

__all__ = ["RecoverableBFS"]


class RecoverableBFS:
    """Crash-consistent wrapper around one BFS engine.

    Parameters
    ----------
    engine:
        The engine to run.  Engines exposing ``topology`` (the
        :class:`~repro.bfs.hybrid.HybridBFS` family) resume through
        :meth:`~repro.bfs.state.BFSState.restore`; the fully-external
        engine resumes its (parent, frontier) cursor directly.
    store:
        Store holding the checkpoints (and whose fault plan supplies the
        crash injection); defaults to ``engine.store``.
    run_id:
        Checkpoint namespace under ``<store root>/checkpoints/``.
    checkpoint_every:
        Epoch cadence in levels (see
        :class:`~repro.recovery.checkpoint.CheckpointManager`).
    """

    def __init__(
        self,
        engine,
        store: NVMStore | None = None,
        run_id: str = "bfs",
        checkpoint_every: int = 2,
        obs=None,
    ) -> None:
        store = store if store is not None else getattr(engine, "store", None)
        if store is None:
            raise ConfigurationError(
                "RecoverableBFS needs a store for checkpoints (the engine "
                "has none; pass store=...)"
            )
        self.engine = engine
        self.store = store
        self.obs = obs if obs is not None else store.obs
        self.manager = CheckpointManager(
            store, run_id=run_id, every=checkpoint_every, obs=self.obs
        )
        self._last_root: int | None = None

    # -- the level-boundary hook ----------------------------------------------

    def _checkpointer(self, state, level, direction, prev_frontier,
                      visited_deg_sum) -> None:
        mgr = self.manager
        if state.frontier_size > 0 and level % mgr.every == 0:
            mgr.save([QuerySnapshot(
                key="",
                root=int(state.root),
                level=int(level),
                direction=direction.value,
                prev_frontier=int(prev_frontier),
                visited_deg_sum=int(visited_deg_sum),
                parent=state.parent,
                frontier_queue=state.frontier_queue,
            )])
        injector = self.store.injector
        now = self.store.clock.now()
        if injector is not None and injector.crash_due(now, level - 1):
            if injector.plan.crash_torn:
                mgr.corrupt_last()
            self.obs.counter(M_REC_CRASHES).inc()
            self.obs.event("recovery.crash", level=level - 1, t=now)
            raise ProcessCrashError(
                f"injected process crash after level {level - 1} "
                f"at t={now:.6f}s",
                crashed_at_s=now,
                level=level - 1,
            )

    # -- run / resume ----------------------------------------------------------

    def run(self, root: int, max_levels: int | None = None) -> BFSResult:
        """Run from scratch, checkpointing at the configured cadence.

        Raises :class:`~repro.errors.ProcessCrashError` when the store's
        fault plan schedules a crash; the checkpoints written so far
        survive for :meth:`resume`.
        """
        self._last_root = int(root)
        return self.engine.run(
            root, max_levels=max_levels, checkpointer=self._checkpointer
        )

    def resume(self, max_levels: int | None = None) -> BFSResult:
        """Reload the newest valid checkpoint and re-enter the traversal.

        Torn epochs (CRC failure — e.g. a crash mid-checkpoint) are
        skipped by falling back to the previous epoch.  When no epoch
        survives at all, the traversal restarts from scratch (the
        engines are deterministic, so the result is still bit-identical
        to an uninterrupted run).  The returned result's parent array is
        the full tree; its traces cover the resumed levels only.
        """
        with self.obs.span("recovery.restore", run_id=self.manager.run_id):
            restored = load_run(self.manager.dir)
            self.obs.counter(M_REC_RESTORES).inc()
            if restored.n_torn:
                self.obs.counter(M_REC_TORN_EPOCHS).inc(restored.n_torn)
            if restored.epoch < 0:
                if self._last_root is None:
                    raise StorageError(
                        f"no valid checkpoint under {self.manager.dir} and "
                        f"no previous run to restart"
                    )
                return self.run(self._last_root, max_levels=max_levels)
            self._prepare_clock(restored)
            self.manager.adopt(restored)
            query = restored.queries[0]
        engine = self.engine
        if hasattr(engine, "topology"):
            state = BFSState.restore(
                engine.n_vertices,
                engine.topology,
                query.root,
                query.parent,
                query.frontier_queue,
            )
            return engine.resume(
                state,
                level=query.level,
                direction=Direction(query.direction),
                prev_frontier=query.prev_frontier,
                visited_deg_sum=query.visited_deg_sum,
                max_levels=max_levels,
                checkpointer=self._checkpointer,
            )
        return engine.resume(
            query.parent,
            query.frontier_queue,
            root=query.root,
            level=query.level,
            max_levels=max_levels,
            checkpointer=self._checkpointer,
        )

    def _prepare_clock(self, restored: RestoredRun) -> None:
        """Catch the clock up to the checkpoint and charge the restore.

        On an in-process resume the shared clock already sits past the
        checkpoint offset (monotonic — never rewound); a fresh-process
        resume advances to it first.  Reading the epoch chain back is
        then charged as one sequential stream.
        """
        clock = self.store.clock
        if clock.now() < restored.clock_s:
            clock.advance(restored.clock_s - clock.now())
        self.store.charge_write(
            restored.nbytes, file_key=f"ckpt:{self.manager.run_id}"
        )

    def run_with_recovery(
        self,
        root: int,
        max_levels: int | None = None,
        max_restarts: int = 4,
    ) -> BFSResult:
        """Run; on an injected crash, resume (up to ``max_restarts``)."""
        try:
            return self.run(root, max_levels=max_levels)
        except ProcessCrashError:
            restarts = 0
            while True:
                restarts += 1
                try:
                    return self.resume(max_levels=max_levels)
                except ProcessCrashError:
                    if restarts >= max_restarts:
                        raise

    def __repr__(self) -> str:
        return (
            f"RecoverableBFS({type(self.engine).__name__}, "
            f"run_id={self.manager.run_id!r})"
        )
