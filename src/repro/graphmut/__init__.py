"""Dynamic graphs: versioned edge streams and incremental BFS repair.

The paper's semi-external design freezes the CSR at build time; this
package opens the workload class the ROADMAP calls out — graphs that
change under serving load.  Three layers:

* :mod:`repro.graphmut.stream` — seeded insert/delete mutation batches
  (the dynamic analogue of the Kronecker generator: one integer seed
  reproduces the whole edge stream).
* :mod:`repro.graphmut.delta` — an in-DRAM delta overlay over a base
  CSR: each applied batch is one graph *version*; reads merge the
  NVM-resident base rows with the DRAM delta, and compaction folds the
  overlay back into a canonical CSR.
* :mod:`repro.graphmut.repair` — incremental BFS-tree repair after a
  mutation batch (Meyer, *On Dynamic Breadth-First Search in
  External-Memory*): re-expand only from endpoints whose level can
  change, falling back to full recomputation when the dirty region
  exceeds a threshold.  Repaired trees are **byte-identical** to a full
  recomputation on the post-mutation graph, because every engine in this
  tree produces the same canonical tree (each vertex's parent is its
  minimum-id neighbour one level up — pinned by the conformance suite).
* :mod:`repro.graphmut.versioned` — :class:`GraphMutator`, which applies
  the above to a pinned catalog graph: version bumps, delta-aware NVM
  shards, batched compaction charged through
  :meth:`~repro.semiext.storage.NVMStore.charge_write`, and the serve
  tier's repair-or-recompute decision.
"""

from repro.graphmut.delta import DeltaOverlay
from repro.graphmut.repair import RepairOutcome, repair_tree
from repro.graphmut.stream import (
    MutationBatch,
    draw_batch,
    generate_stream,
    merge_batches,
    normalize_edges,
)
from repro.graphmut.versioned import GraphMutator

__all__ = [
    "MutationBatch",
    "draw_batch",
    "generate_stream",
    "merge_batches",
    "normalize_edges",
    "DeltaOverlay",
    "RepairOutcome",
    "repair_tree",
    "GraphMutator",
]
