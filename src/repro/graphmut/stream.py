"""Seeded edge-mutation streams.

A mutation stream is the dynamic analogue of the Kronecker generator: a
single integer seed reproduces the whole sequence of insert/delete
batches, so every mutating experiment — serve runs, conformance trials,
perf baselines — is replayable from its seed alone.

Edges are undirected and *normalized*: ``(u, v)`` with ``u < v``, no
self-loops, no duplicates within a batch, and a batch never both inserts
and deletes the same edge.  Application semantics are idempotent
(insert-existing and delete-absent are no-ops), which makes batches
composable via :func:`merge_batches`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.csr.graph import CSRGraph
from repro.errors import GraphFormatError
from repro.util.rng import derive_rng

__all__ = [
    "MutationBatch",
    "normalize_edges",
    "draw_batch",
    "generate_stream",
    "merge_batches",
]


def normalize_edges(
    pairs: object, n_vertices: int
) -> tuple[tuple[int, int], ...]:
    """Canonicalize undirected edge pairs: ``u < v``, deduped, sorted.

    Self-loops are dropped (BFS ignores them and :func:`build_csr` drops
    them too); out-of-range endpoints raise.

    >>> normalize_edges([(3, 1), (1, 3), (2, 2), (0, 4)], 5)
    ((0, 4), (1, 3))
    """
    out: set[tuple[int, int]] = set()
    for pair in pairs:  # type: ignore[attr-defined]
        u, v = int(pair[0]), int(pair[1])
        if not (0 <= u < n_vertices and 0 <= v < n_vertices):
            raise GraphFormatError(
                f"edge endpoint outside [0, {n_vertices}): ({u}, {v})"
            )
        if u == v:
            continue
        out.add((u, v) if u < v else (v, u))
    return tuple(sorted(out))


@dataclass(frozen=True)
class MutationBatch:
    """One atomic batch of undirected edge mutations (one graph version).

    ``inserts`` and ``deletes`` are normalized pairs and disjoint: a batch
    is a *set* of mutations applied atomically, so inserting and deleting
    the same edge in one batch is contradictory and rejected.
    """

    inserts: tuple[tuple[int, int], ...] = ()
    deletes: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        overlap = set(self.inserts) & set(self.deletes)
        if overlap:
            raise GraphFormatError(
                f"batch inserts and deletes overlap: {sorted(overlap)[:4]}"
            )

    @classmethod
    def make(
        cls, inserts: object, deletes: object, n_vertices: int
    ) -> "MutationBatch":
        """Build a batch from raw pairs, normalizing both sides."""
        return cls(
            inserts=normalize_edges(inserts, n_vertices),
            deletes=normalize_edges(deletes, n_vertices),
        )

    @property
    def n_mutations(self) -> int:
        """Total edge mutations (inserts plus deletes) in the batch."""
        return len(self.inserts) + len(self.deletes)

    def inverse(self) -> "MutationBatch":
        """The batch that undoes this one on any graph where it applied
        cleanly (every insert was new, every delete hit an edge)."""
        return MutationBatch(inserts=self.deletes, deletes=self.inserts)

    def to_dict(self) -> dict:
        """JSON-safe form (inverse of :meth:`from_dict`)."""
        return {
            "inserts": [list(e) for e in self.inserts],
            "deletes": [list(e) for e in self.deletes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MutationBatch":
        """Rebuild a batch from its :meth:`to_dict` form."""
        return cls(
            inserts=tuple((int(u), int(v)) for u, v in data.get("inserts", ())),
            deletes=tuple((int(u), int(v)) for u, v in data.get("deletes", ())),
        )


def _undirected_pairs(csr: CSRGraph) -> set[tuple[int, int]]:
    src = np.repeat(np.arange(csr.n_rows, dtype=np.int64), csr.degrees())
    keep = src < csr.adj
    return set(zip(src[keep].tolist(), csr.adj[keep].tolist()))


def draw_batch(
    csr: CSRGraph,
    rng: np.random.Generator,
    n_inserts: int,
    n_deletes: int,
) -> MutationBatch:
    """One effective batch against ``csr`` from a caller-owned generator.

    The single-batch core of :func:`generate_stream`: deletes sampled
    from edges present in ``csr``, inserts rejection-sampled from absent
    pairs (bounded, so dense graphs yield a short batch rather than
    spinning).  Conformance relations and the ``dynamic`` engine seed
    the generator from their trial instead of the run-seed paths.
    """
    if n_inserts < 0 or n_deletes < 0:
        raise GraphFormatError("batch sizes must be non-negative")
    n = csr.n_rows
    edges = _undirected_pairs(csr)
    deletes: list[tuple[int, int]] = []
    if n_deletes and edges:
        pool = sorted(edges)
        take = min(n_deletes, len(pool))
        idx = rng.choice(len(pool), size=take, replace=False)
        deletes = [pool[i] for i in sorted(idx.tolist())]
    inserts: list[tuple[int, int]] = []
    chosen: set[tuple[int, int]] = set()
    attempts = 0
    while len(inserts) < n_inserts and attempts < 32 * (n_inserts + 1):
        attempts += 1
        a = int(rng.integers(0, n))
        b = int(rng.integers(0, n))
        if a == b:
            continue
        e = (a, b) if a < b else (b, a)
        if e in chosen or e in edges:
            continue
        chosen.add(e)
        inserts.append(e)
    return MutationBatch(
        inserts=tuple(sorted(inserts)), deletes=tuple(deletes)
    )


def generate_stream(
    csr: CSRGraph,
    n_batches: int,
    n_inserts: int,
    n_deletes: int,
    seed: int | None,
    *path: str,
) -> list[MutationBatch]:
    """Draw a deterministic mutation stream against ``csr``.

    Deletes are sampled from the edges *currently present* (the evolving
    edge set, not just the base graph) and inserts from pairs currently
    absent, so every mutation in the stream is effective — no silent
    no-ops inflating the apparent delta size.

    ``path`` extends the rng derivation path (default ``("graphmut",
    "stream")``), so distinct consumers of the same seed get independent
    streams.
    """
    if n_batches < 0 or n_inserts < 0 or n_deletes < 0:
        raise GraphFormatError("stream sizes must be non-negative")
    n = csr.n_rows
    rng = derive_rng(seed, *(path or ("graphmut", "stream")))
    edges = _undirected_pairs(csr)
    batches: list[MutationBatch] = []
    for _ in range(n_batches):
        deletes: list[tuple[int, int]] = []
        if n_deletes and edges:
            pool = sorted(edges)
            take = min(n_deletes, len(pool))
            idx = rng.choice(len(pool), size=take, replace=False)
            deletes = [pool[i] for i in sorted(idx.tolist())]
        inserts: list[tuple[int, int]] = []
        chosen: set[tuple[int, int]] = set()
        attempts = 0
        # Rejection-sample absent pairs; bounded so pathological dense
        # graphs terminate with a short batch rather than spinning.
        while len(inserts) < n_inserts and attempts < 32 * (n_inserts + 1):
            attempts += 1
            a = int(rng.integers(0, n))
            b = int(rng.integers(0, n))
            if a == b:
                continue
            e = (a, b) if a < b else (b, a)
            if e in chosen or e in deletes or e in edges:
                continue
            chosen.add(e)
            inserts.append(e)
        for e in deletes:
            edges.discard(e)
        edges.update(inserts)
        batches.append(
            MutationBatch(inserts=tuple(sorted(inserts)), deletes=tuple(deletes))
        )
    return batches


def merge_batches(batches: object) -> MutationBatch:
    """Compose sequential batches into one net batch.

    Idempotent application semantics make composition cancellative:
    insert-then-delete (or delete-then-insert) of the same edge nets to
    no mutation at all.  The result applied as one batch reaches the same
    effective graph as the sequence applied in order.
    """
    net: dict[tuple[int, int], int] = {}
    for batch in batches:  # type: ignore[attr-defined]
        for e in batch.inserts:
            cur = net.get(e, 0)
            if cur == -1:
                del net[e]
            else:
                net[e] = 1
        for e in batch.deletes:
            cur = net.get(e, 0)
            if cur == 1:
                del net[e]
            else:
                net[e] = -1
    return MutationBatch(
        inserts=tuple(sorted(e for e, s in net.items() if s == 1)),
        deletes=tuple(sorted(e for e, s in net.items() if s == -1)),
    )
