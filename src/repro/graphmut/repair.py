"""Incremental BFS-tree repair after an edge-mutation batch.

Meyer's dynamic external-memory BFS observes that after a small batch of
edge updates, most of the BFS tree is still correct: only the region
whose *levels* can change needs re-expansion.  This module repairs an
existing canonical tree into the exact tree a full recomputation on the
post-mutation graph would produce, reading only rows in and around the
affected region.

The repair has three phases:

1. **Orphan cascade** (deletions can raise levels).  Starting from the
   deeper endpoint of each deleted tree-feasible edge, find the maximal
   *orphan* set ``O``: vertices with no neighbour outside ``O`` at a
   strictly lower old level.  Vertices outside ``O`` provably keep their
   old level as an upper bound (a support chain of strictly decreasing
   levels reaches the root through surviving edges).  Orphan levels are
   then settled exactly within the region by a unit-weight Dijkstra
   whose boundary values are the non-orphan levels.
2. **Insert relaxation** (insertions can lower levels).  Label-correcting
   relaxation to fixpoint, seeded with every insert endpoint plus every
   vertex phase 1 moved — the only places a tense edge can originate.
3. **Parent patch.**  Every engine in this tree produces the *canonical*
   tree — ``parent(v)`` is the minimum-id neighbour one level up (pinned
   by the conformance suite) — so after levels are exact, the old parent
   survives unless it stopped being a candidate (full-row rescan) or a
   smaller candidate appeared (an in-place min-update, no I/O); the
   result is byte-identical to full recomputation.

Phases 1a and 3 additionally use the old tree's parent pointers to avoid
I/O: a surviving tree edge is a support witness during the cascade, and
an untouched parent needs no rescan — so a batch that misses the tree
entirely repairs with (near) zero row reads.

If the affected region exceeds ``max_dirty_frac`` of the graph the
repair aborts (returns ``None``) and the caller recomputes from scratch
— repair only wins when deltas are small, which is the serving-tier
common case the paper's workload model implies.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graph500.validate import compute_levels
from repro.graphmut.stream import MutationBatch

__all__ = ["RepairOutcome", "repair_tree"]

_INF = np.int64(np.iinfo(np.int64).max // 4)


@dataclass(frozen=True)
class RepairOutcome:
    """Result of a successful incremental repair."""

    parent: np.ndarray
    n_dirty: int
    """Vertices whose level changed (including reachability changes)."""
    n_rows_read: int
    """Distinct adjacency rows fetched while repairing."""


def repair_tree(
    row_of: Callable[[int], np.ndarray],
    n_vertices: int,
    root: int,
    old_parent: np.ndarray,
    batch: MutationBatch,
    max_dirty_frac: float = 0.25,
    fetch_rows: "Callable[[list[int]], dict[int, np.ndarray]] | None" = None,
) -> RepairOutcome | None:
    """Repair ``old_parent`` (canonical tree on the pre-mutation graph)
    into the canonical tree of the post-mutation graph.

    ``row_of(v)`` must return the sorted **post-mutation** adjacency of
    ``v``; it is the unit of repair cost, memoized so each affected row
    is fetched at most once.  ``fetch_rows(vs)``, when given, batch-reads
    several rows at once: the repair loops are wave-structured, and all
    rows one wave needs are requested in a single call — on a charged
    NVM path this is what lets the device queue overlap the reads (the
    same per-level amortization the batched serving engine relies on)
    instead of paying full latency per row.  Returns ``None`` when the
    dirty region exceeds ``max_dirty_frac * n_vertices`` (caller should
    recompute) or when ``old_parent`` is not a consistent tree.
    """
    levels, err = compute_levels(old_parent, root)
    if err is not None:
        return None
    lv = levels.astype(np.int64, copy=True)
    lv[lv < 0] = _INF
    lv_orig = lv.copy()
    limit = max(1.0, max_dirty_frac * n_vertices)

    rows: dict[int, np.ndarray] = {}

    def nbr(v: int) -> np.ndarray:
        row = rows.get(v)
        if row is None:
            row = row_of(v)
            rows[v] = row
        return row

    def prefetch(vs) -> None:
        if fetch_rows is None:
            return
        missing = sorted({int(v) for v in vs} - rows.keys())
        if missing:
            rows.update(fetch_rows(missing))

    # -- phase 1a: orphan cascade ---------------------------------------------
    # Wave-structured FIFO: each wave's support checks are batched into
    # one row fetch; processing order (and hence the orphan set) is
    # identical to a plain queue.  Before paying a row read, try the
    # parent pointer: if w's old tree edge survives the batch and its
    # parent is not itself an orphan, that edge *is* a support witness
    # (parent sits exactly one level up), and no I/O is needed — the
    # common case for deletes that miss the tree.
    deleted = {(u, v) for u, v in batch.deletes}
    orphan: set[int] = set()
    pending: list[int] = []
    for u, v in batch.deletes:
        for a, b in ((u, v), (v, u)):
            if lv[b] < _INF and lv[a] == lv[b] - 1:
                pending.append(b)

    def tree_edge_survives(w: int) -> bool:
        p = int(old_parent[w])
        if p < 0 or p in orphan:
            return False
        e = (w, p) if w < p else (p, w)
        return e not in deleted

    while pending:
        prefetch(w for w in pending
                 if w not in orphan and w != root and lv[w] < _INF
                 and not tree_edge_survives(w))
        nxt: list[int] = []
        for w in pending:
            if w in orphan or w == root or lv[w] >= _INF:
                continue
            if tree_edge_survives(w):
                continue
            row = nbr(w)
            supported = False
            for x in row.tolist():
                if lv[x] <= lv[w] - 1 and x not in orphan:
                    supported = True
                    break
            if supported:
                continue
            orphan.add(w)
            if len(orphan) > limit:
                return None
            # Vertices that may have counted w as support get rechecked.
            for y in row.tolist():
                if lv[y] < _INF and lv[y] >= lv[w] + 1 and y not in orphan:
                    nxt.append(y)
        pending = nxt

    # -- phase 1b: settle orphan levels (unit-weight Dijkstra) ----------------
    if orphan:
        # The Dijkstra only ever reads orphan rows (boundary values come
        # from them too), so one batched fetch covers the whole phase.
        prefetch(orphan)
        for w in orphan:
            lv[w] = _INF
        best: dict[int, int] = {}
        heap: list[tuple[int, int]] = []
        for w in orphan:
            t = _INF
            for x in nbr(w).tolist():
                if x not in orphan and lv[x] + 1 < t:
                    t = int(lv[x] + 1)
            if t < _INF:
                best[w] = t
                heapq.heappush(heap, (t, w))
        settled: set[int] = set()
        while heap:
            d, w = heapq.heappop(heap)
            if w in settled or d > best.get(w, _INF):
                continue
            settled.add(w)
            lv[w] = d
            for y in nbr(w).tolist():
                if y in orphan and y not in settled and d + 1 < best.get(y, _INF):
                    best[y] = d + 1
                    heapq.heappush(heap, (d + 1, y))

    # -- phase 2: insert relaxation to fixpoint -------------------------------
    # Wave-structured label correction: the fixpoint (and therefore the
    # changed set and the fallback decision) is order-independent, so
    # batching each wave's row reads changes only the I/O schedule.
    # Before phase 2 the only possibly-tense edges are (a) the inserted
    # edges themselves and (b) edges out of phase-1-moved vertices: old
    # edges between unmoved vertices were relaxed by the old tree, and
    # phase 1b settles orphans to exact distances within their region.
    # So the inserted edges are relaxed *directly* (both directions, no
    # row read), and a full-row relaxation is paid only for vertices
    # whose level actually moved.
    changed: set[int] = {v for v in orphan if lv[v] != lv_orig[v]}
    relax: list[int] = list(changed)
    for u, v in batch.inserts:
        for a, b in ((u, v), (v, u)):
            if lv[a] < _INF and lv[a] + 1 < lv[b]:
                lv[b] = lv[a] + 1
                changed.add(b)
                if len(changed) > limit:
                    return None
                relax.append(b)
    while relax:
        prefetch(w for w in relax if lv[w] < _INF)
        nxt = []
        for w in relax:
            if lv[w] >= _INF:
                continue
            base = int(lv[w]) + 1
            for y in nbr(w).tolist():
                if base < lv[y]:
                    lv[y] = base
                    changed.add(y)
                    if len(changed) > limit:
                        return None
                    nxt.append(y)
        relax = nxt

    changed.update(v for v in orphan if lv[v] != lv_orig[v])

    # -- phase 3: canonical parent patch --------------------------------------
    # parent(v) is the minimum-id neighbour one level up.  A vertex whose
    # level is unchanged keeps that minimum unless (a) a *new* candidate
    # appears — a smaller id dropping into level(v)-1, or an inserted
    # edge from one — which is a min-update needing no row read, or
    # (b) its current parent stops being a candidate (tree edge deleted,
    # or the parent's level moved), which forces a full-row rescan.
    # Changed vertices are always rescanned; their rows are already in
    # the memo (phase 1b prefetches orphans, phase 2 reads moved rows).
    parent = old_parent.copy()
    rescan: set[int] = set()
    for w in changed:
        if w == root:
            continue
        if lv[w] >= _INF:
            parent[w] = -1
        else:
            rescan.add(w)
    prefetch(changed)  # normally memoized already by phases 1b and 2
    for w in changed:
        lw, lw0 = int(lv[w]), int(lv_orig[w])
        for y in nbr(w).tolist():
            if y == root or y in changed or lv[y] >= _INF:
                continue
            if lw == lv[y] - 1:  # w became a candidate parent for y
                if w < parent[y]:
                    parent[y] = w
            elif lw0 == lv[y] - 1 and parent[y] == w:
                rescan.add(y)  # y's parent moved away: recompute the min
    for u, v in batch.deletes:
        for a, b in ((u, v), (v, u)):
            if b != root and lv[b] < _INF and old_parent[b] == a:
                rescan.add(b)  # b's tree edge is gone
    for u, v in batch.inserts:
        for a, b in ((u, v), (v, u)):
            if (b != root and b not in changed and lv[b] < _INF
                    and lv[a] == lv[b] - 1 and a < parent[b]):
                parent[b] = a  # new edge from one level up, smaller id

    prefetch(rescan)
    for t in sorted(rescan):
        row = nbr(t)
        # Rows are sorted ascending, so the first neighbour one level up
        # is the minimum — exactly the canonical engines' choice.
        want = int(lv[t]) - 1
        cand = row[lv[row] == want]
        if cand.size == 0:  # inconsistent tree; refuse rather than guess
            return None
        parent[t] = int(cand[0])

    return RepairOutcome(
        parent=parent, n_dirty=len(changed), n_rows_read=len(rows)
    )
