"""Versioned mutation of pinned catalog graphs.

:class:`GraphMutator` attaches to a :class:`~repro.serve.catalog.PinnedGraph`
and turns it into a *versioned* graph: each applied
:class:`~repro.graphmut.stream.MutationBatch` bumps the version, patches
the DRAM-resident structures wholesale (forward/backward shards,
degrees, bottom-up scanners — cheap, they live in DRAM by the paper's
design) and overlays the NVM-resident forward shards with
:class:`DeltaShard` views that read base rows from the device at full
charge and patch the few dirty rows from the DRAM overlay for free.

Compaction folds the overlay back into fresh NVM array files — built
completely under new (versioned) names, swapped in one reference
assignment, old files dropped after — so a reader can never observe a
half-compacted graph, and the write is charged to the simulated clock as
one sequential stream via
:meth:`~repro.semiext.storage.NVMStore.charge_write`.

The mutator also owns the serve tier's repair-or-recompute decision:
given a cached tree at an older version it merges the effective batch
history and runs :func:`~repro.graphmut.repair.repair_tree`, reading
only affected rows (charged through the delta shards).  History is
pruned at compaction, so trees older than the compaction base are
unrepairable — callers must invalidate them (see
:meth:`ResultCache.invalidate_versions`).
"""

from __future__ import annotations

import numpy as np

from repro.bfs.bottomup import InMemoryScanner
from repro.csr.builder import build_csr
from repro.csr.graph import CSRGraph
from repro.csr.io import ExternalCSR, offload_csr
from repro.csr.partition import BackwardGraph, ForwardGraph
from repro.errors import ConfigurationError
from repro.graph500.edgelist import EdgeList
from repro.graphmut.delta import DeltaOverlay
from repro.graphmut.repair import RepairOutcome, repair_tree
from repro.graphmut.stream import MutationBatch, merge_batches
from repro.obs.schema import (
    M_MUT_APPLIED,
    M_MUT_BATCHES,
    M_MUT_COMPACT_BYTES,
    M_MUT_COMPACTIONS,
    M_MUT_OVERLAY_BYTES,
    M_MUT_REPAIR_DIRTY,
    M_MUT_REPAIR_ROWS,
    M_MUT_REPAIRS,
    M_MUT_VERSION,
)

__all__ = ["DeltaShard", "GraphMutator"]


class DeltaShard(ExternalCSR):
    """A forward NVM shard patched with the DRAM delta overlay.

    Reads of clean rows are byte-for-byte the base shard's charged
    device reads; dirty rows still pay the base row's device read (the
    stale bytes come off NVM) and are then patched from the overlay in
    DRAM — insertions cost nothing on the read path until compaction
    folds them in.  Subclasses :class:`ExternalCSR` so the batched
    engine's charged top-down path engages unchanged.
    """

    def __init__(
        self, base: ExternalCSR, overlay: DeltaOverlay, lo: int, hi: int
    ) -> None:
        super().__init__(base.index, base.value, base.n_cols)
        self.base = base
        self.overlay = overlay
        self.lo = int(lo)
        self.hi = int(hi)

    def _shard_row(self, row: int) -> np.ndarray:
        """Effective destinations of ``row`` owned by this shard."""
        full = self.overlay.row(row)
        return full[(full >= self.lo) & (full < self.hi)]

    def _patch(
        self, rows: np.ndarray, values: np.ndarray, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        dirty = [
            i for i, r in enumerate(rows.tolist())
            if self.overlay.row_is_dirty(int(r))
        ]
        if not dirty:
            return values, counts
        counts = counts.copy()
        segments = np.split(values, np.cumsum(counts)[:-1]) if rows.size else []
        for i in dirty:
            segments[i] = self._shard_row(int(rows[i]))
            counts[i] = segments[i].size
        merged = (
            np.concatenate(segments).astype(np.int64, copy=False)
            if segments else values
        )
        return merged, counts

    def row_extents(
        self, rows: np.ndarray, think_time_s: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Charged extents with effective counts (starts refer to the
        base value file and are only valid for clean rows)."""
        rows = np.asarray(rows, dtype=np.int64)
        starts, counts = self.base.row_extents(rows, think_time_s=think_time_s)
        counts = counts.copy()
        for i, r in enumerate(rows.tolist()):
            if self.overlay.row_is_dirty(int(r)):
                counts[i] = self._shard_row(int(r)).size
        return starts, counts

    def gather_rows(
        self, rows: np.ndarray, think_time_s: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Charged batch read of ``rows``, dirty rows patched from DRAM."""
        rows = np.asarray(rows, dtype=np.int64)
        values, counts = self.base.gather_rows(rows, think_time_s=think_time_s)
        return self._patch(rows, values, counts)

    def gather_rows_deferred(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, list]:
        """Like :meth:`gather_rows` with the device charges handed back."""
        rows = np.asarray(rows, dtype=np.int64)
        values, counts, charges = self.base.gather_rows_deferred(rows)
        values, counts = self._patch(rows, values, counts)
        return values, counts, charges

    def to_csr_uncharged(self) -> CSRGraph:
        """The shard's effective CSR without touching the clock."""
        base = self.base.to_csr_uncharged()
        if self.overlay.is_empty:
            return base
        n = base.n_rows
        counts = base.degrees().astype(np.int64, copy=True)
        parts: list[np.ndarray] = []
        prev = 0
        for r in self.overlay.dirty_rows().tolist():
            start = int(base.indptr[r])
            parts.append(base.adj[prev:start])
            eff = self._shard_row(r)
            parts.append(eff)
            counts[r] = eff.size
            prev = int(base.indptr[r + 1])
        parts.append(base.adj[prev:])
        indptr = np.empty(n + 1, dtype=np.int64)
        indptr[0] = 0
        np.cumsum(counts, out=indptr[1:])
        return CSRGraph(
            indptr=indptr,
            adj=np.concatenate(parts).astype(np.int64, copy=False),
            n_cols=base.n_cols,
        )

    def degrees_uncharged(self) -> np.ndarray:
        """Effective per-row degrees without touching the clock."""
        deg = self.base.degrees_uncharged().astype(np.int64, copy=True)
        for r in self.overlay.dirty_rows().tolist():
            deg[r] = self._shard_row(int(r)).size
        return deg

    def __repr__(self) -> str:
        return (
            f"DeltaShard([{self.lo}, {self.hi}), "
            f"dirty={self.overlay.dirty_rows().size}, base={self.base!r})"
        )


def _edge_list(csr: CSRGraph) -> EdgeList:
    """The undirected edge list (u < v once each) of a symmetric CSR."""
    src = np.repeat(np.arange(csr.n_rows, dtype=np.int64), csr.degrees())
    keep = src < csr.adj
    return EdgeList(
        np.stack((src[keep], csr.adj[keep])).astype(np.int64), csr.n_rows
    )


class GraphMutator:
    """Apply versioned mutation batches to one pinned catalog graph.

    Parameters
    ----------
    graph:
        The :class:`~repro.serve.catalog.PinnedGraph` to mutate in
        place.  Partitioned deployments are not mutable (the conformance
        contract for them is byte-equality of *recomputation* on the
        post-mutation graph, see ``tools/mutation_smoke_gate.py``).
    repair_threshold:
        Maximum dirty fraction (level-changed vertices / n) an
        incremental repair may touch before falling back to recompute.
    compact_every:
        Fold the overlay back into the NVM CSR after this many applied
        batches (``0`` disables automatic compaction).
    """

    def __init__(
        self,
        graph,
        obs=None,
        repair_threshold: float = 0.25,
        compact_every: int = 8,
    ) -> None:
        if getattr(graph, "is_partitioned", False):
            raise ConfigurationError(
                f"graph {graph.name!r} is a partitioned deployment; "
                f"mutation streams attach to locally pinned graphs"
            )
        if not (0.0 <= repair_threshold <= 1.0):
            raise ConfigurationError(
                f"repair threshold must be in [0, 1]: {repair_threshold}"
            )
        self.graph = graph
        self.obs = obs if obs is not None else graph.obs
        self.repair_threshold = float(repair_threshold)
        self.compact_every = int(compact_every)
        base = build_csr(graph.edges)
        self._base_csr = base
        self.overlay = DeltaOverlay(base)
        self.version = 0
        self._base_version = 0
        self._batches: list[MutationBatch] = []
        self.n_compactions = 0
        if graph.semi_external:
            self._base_external: list[ExternalCSR] | None = list(
                graph.external_shards
            )
            self._prefixes = [
                f"forward.node{k}" for k in range(len(graph.external_shards))
            ]
        else:
            self._base_external = None
            self._prefixes = []
        graph.version = 0

    # -- state -----------------------------------------------------------------

    @property
    def effective_csr(self) -> CSRGraph:
        """The current (post-all-batches) graph as a canonical CSR."""
        return self.overlay.to_csr()

    @property
    def min_repairable_version(self) -> int:
        """Oldest version a cached tree may have and still be repairable
        (compaction prunes the batch history behind it)."""
        return self._base_version

    def can_repair(self, from_version: int) -> bool:
        """Whether a tree at ``from_version`` is within the repair window."""
        return self._base_version <= from_version <= self.version

    def batches_since(self, from_version: int) -> list[MutationBatch]:
        """Effective batches applied after ``from_version``."""
        if not self.can_repair(from_version):
            raise ConfigurationError(
                f"version {from_version} outside repairable window "
                f"[{self._base_version}, {self.version}]"
            )
        return list(self._batches[from_version - self._base_version:])

    # -- mutation --------------------------------------------------------------

    def apply(self, batch: MutationBatch) -> MutationBatch:
        """Apply one batch atomically; returns the effective sub-batch.

        Bumps ``graph.version`` and rebuilds the DRAM-resident
        structures so the next query (local engine or scanner) sees the
        new version in full — there is no intermediate state.
        """
        g = self.graph
        with self.obs.span(
            "mut.apply",
            graph=g.name,
            version=self.version + 1,
            inserts=len(batch.inserts),
            deletes=len(batch.deletes),
        ):
            effective = self.overlay.apply(batch)
            self.version += 1
            self._batches.append(effective)
            self._refresh_graph()
            self.obs.counter(M_MUT_BATCHES, graph=g.name).inc()
            if effective.inserts:
                self.obs.counter(
                    M_MUT_APPLIED, graph=g.name, kind="insert"
                ).inc(len(effective.inserts))
            if effective.deletes:
                self.obs.counter(
                    M_MUT_APPLIED, graph=g.name, kind="delete"
                ).inc(len(effective.deletes))
            self.obs.gauge(M_MUT_VERSION, graph=g.name).set(self.version)
            self.obs.gauge(M_MUT_OVERLAY_BYTES, graph=g.name).set(
                self.overlay.overlay_nbytes
            )
        self.maybe_compact()
        return effective

    def _refresh_graph(self) -> None:
        """Swap the pinned graph's derived structures to the new version."""
        g = self.graph
        eff = self.overlay.to_csr()
        forward = ForwardGraph(eff, g.topology)
        backward = BackwardGraph(eff, g.topology)
        # One reference assignment per structure; the batched engine
        # re-reads them every round, so between-batch application is a
        # clean version transition.
        g.forward = forward
        g.backward = backward
        g.degrees = backward.global_degrees()
        g.scanners = [InMemoryScanner(s) for s in backward.shards]
        g.edges = _edge_list(eff)
        if self._base_external is not None:
            g.external_shards = [
                DeltaShard(self._base_external[k], self.overlay,
                           part.lo, part.hi)
                for k, part in enumerate(forward.partitions)
            ]
        g.version = self.version

    # -- compaction ------------------------------------------------------------

    def maybe_compact(self) -> bool:
        """Compact when due and safe (pins closed); returns whether it ran."""
        if self.compact_every <= 0:
            return False
        if len(self._batches) < self.compact_every:
            return False
        if self.graph.pins > 0:
            return False
        self.compact()
        return True

    def compact(self) -> None:
        """Fold the overlay into a fresh base CSR (and NVM files).

        Refuses while read handles are open: compaction swaps the
        arrays under the forward shards, and a pinned traversal must
        never observe half of that swap.  The NVM write is charged as
        one sequential stream through ``charge_write``.
        """
        g = self.graph
        if g.pins > 0:
            raise ConfigurationError(
                f"graph {g.name!r} still has {g.pins} open handle(s); "
                f"compaction would tear the version they pinned"
            )
        with self.obs.span(
            "mut.compact", graph=g.name, version=self.version,
            overlay_entries=self.overlay.n_overlay_entries,
        ):
            eff = self.overlay.to_csr()
            store = g.store
            if store is not None and self._base_external is not None:
                forward = ForwardGraph(eff, g.topology)
                prefixes = [
                    f"forward.v{self.version}.node{k}"
                    for k in range(len(forward.shards))
                ]
                # Build the new files completely before any reference
                # moves: a crash or an observer mid-build still sees the
                # old, whole version.
                shards = [
                    offload_csr(shard, store, prefix)
                    for shard, prefix in zip(forward.shards, prefixes)
                ]
                nbytes = sum(s.nbytes for s in shards)
                store.charge_write(nbytes, file_key="compact")
                old_prefixes = self._prefixes
                self._base_external = shards
                self._prefixes = prefixes
                for prefix in old_prefixes:
                    store.drop_array(f"{prefix}.index")
                    store.drop_array(f"{prefix}.value")
                self.obs.counter(
                    M_MUT_COMPACT_BYTES, graph=g.name
                ).inc(nbytes)
            self._base_csr = eff
            self.overlay = DeltaOverlay(eff)
            self._batches = []
            self._base_version = self.version
            self.n_compactions += 1
            self._refresh_graph()
            self.obs.counter(M_MUT_COMPACTIONS, graph=g.name).inc()
            self.obs.gauge(M_MUT_OVERLAY_BYTES, graph=g.name).set(0)

    # -- incremental repair ----------------------------------------------------

    def _charged_row(self, vertex: int) -> np.ndarray:
        """One effective adjacency row at the current version, charged.

        Semi-external graphs pay the device read of the base row on
        every shard (the affected-region I/O Meyer's algorithm is
        bounded by); DRAM graphs read the overlay for free.
        """
        g = self.graph
        if g.semi_external:
            return self._charged_rows([int(vertex)])[int(vertex)]
        return self.overlay.row(vertex)

    def _charged_rows(self, vertices: list) -> dict:
        """Batched charged row reads — one gather per shard per call.

        :func:`~repro.graphmut.repair.repair_tree` requests each wave's
        rows together, so the store's queueing model overlaps them the
        same way the batched engine overlaps a frontier's chunk fetches;
        per-row serial latency would make repair lose to recompute on
        modeled time regardless of how few rows it touches.
        """
        g = self.graph
        vertices = [int(v) for v in vertices]
        if not g.semi_external:
            return {v: self.overlay.row(v) for v in vertices}
        req = np.array(vertices, dtype=np.int64)
        think = g.think_time_s()
        per_shard = []
        for shard in g.external_shards:
            values, counts = shard.gather_rows(req, think_time_s=think)
            per_shard.append(
                np.split(values, np.cumsum(counts)[:-1])
                if req.size else []
            )
        out: dict[int, np.ndarray] = {}
        for i, v in enumerate(vertices):
            # Shards partition the destination range in ascending order,
            # so concatenation preserves sortedness.
            out[v] = np.concatenate(
                [parts[i] for parts in per_shard]
            ).astype(np.int64, copy=False)
        return out

    def repair(
        self, old_parent: np.ndarray, root: int, from_version: int
    ) -> RepairOutcome | None:
        """Repair a tree computed at ``from_version`` to the current
        version, or ``None`` (unrepairable history / dirty fallback)."""
        g = self.graph
        if not self.can_repair(from_version):
            return None
        batches = self.batches_since(from_version)
        merged = merge_batches(batches)
        with self.obs.span(
            "mut.repair", graph=g.name, root=int(root),
            from_version=from_version, to_version=self.version,
            mutations=merged.n_mutations,
        ):
            outcome = repair_tree(
                self._charged_row,
                g.n_vertices,
                int(root),
                old_parent,
                merged,
                max_dirty_frac=self.repair_threshold,
                fetch_rows=self._charged_rows,
            )
            if outcome is None:
                self.obs.counter(
                    M_MUT_REPAIRS, graph=g.name, outcome="fallback"
                ).inc()
                return None
            self.obs.counter(
                M_MUT_REPAIRS, graph=g.name, outcome="repaired"
            ).inc()
            self.obs.histogram(
                M_MUT_REPAIR_ROWS, graph=g.name
            ).observe(outcome.n_rows_read)
            self.obs.histogram(
                M_MUT_REPAIR_DIRTY, graph=g.name
            ).observe(outcome.n_dirty)
            return outcome

    def __repr__(self) -> str:
        return (
            f"GraphMutator({self.graph.name!r}, version={self.version}, "
            f"base={self._base_version}, "
            f"overlay_entries={self.overlay.n_overlay_entries})"
        )
