"""In-DRAM delta overlay over an NVM-resident base CSR.

The paper's CSR is immutable once built (§V-B1); mutating it in place on
NVM would cost a random-write per edge.  Instead each graph version is
the *base* CSR plus a small DRAM overlay: per-row sets of inserted and
deleted destinations.  Reads merge on the fly (base row from the store,
patched with the overlay), and a batched compaction folds the overlay
back into a fresh canonical CSR — one sequential NVM write instead of
scattered updates.

Invariants maintained by :meth:`DeltaOverlay.apply`:

* inserted destinations are never present in the base row,
* deleted destinations are always present in the base row,
* the two sets are disjoint per row.

Hence every effective row is the base row minus deletions plus
insertions, already deduped; sorting the merge keeps rows in the CSR
canonical form every scanner in this tree assumes.
"""

from __future__ import annotations

import numpy as np

from repro.csr.graph import CSRGraph
from repro.errors import GraphFormatError
from repro.graphmut.stream import MutationBatch

__all__ = ["DeltaOverlay"]


class DeltaOverlay:
    """Mutable undirected edge delta over an immutable base :class:`CSRGraph`."""

    def __init__(self, base: CSRGraph) -> None:
        if base.n_rows != base.n_cols:
            raise GraphFormatError(
                f"overlay requires a square CSR, got {base.n_rows}x{base.n_cols}"
            )
        self.base = base
        self._ins: dict[int, set[int]] = {}
        self._del: dict[int, set[int]] = {}

    # -- size ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """Whether the overlay holds no pending mutations at all."""
        return not self._ins and not self._del

    @property
    def n_overlay_entries(self) -> int:
        """Directed delta entries resident in DRAM (2 per undirected edge)."""
        return sum(len(s) for s in self._ins.values()) + sum(
            len(s) for s in self._del.values()
        )

    @property
    def overlay_nbytes(self) -> int:
        """Modeled DRAM footprint of the overlay (int64 per entry)."""
        return 8 * self.n_overlay_entries

    def dirty_rows(self) -> np.ndarray:
        """Sorted rows whose effective adjacency differs from the base."""
        return np.fromiter(
            sorted(set(self._ins) | set(self._del)),
            dtype=np.int64,
            count=len(set(self._ins) | set(self._del)),
        )

    # -- mutation --------------------------------------------------------------

    def apply(self, batch: MutationBatch) -> MutationBatch:
        """Apply one batch; returns the *effective* sub-batch.

        Idempotent semantics: inserting a present edge or deleting an
        absent one is a no-op and is excluded from the returned batch.
        Consumers that keep a batch history for incremental repair must
        record the effective batch — effective batches compose by
        cancellation (:func:`~repro.graphmut.stream.merge_batches`),
        raw ones do not.
        """
        eff_del = []
        for u, v in batch.deletes:
            if self.has_edge(u, v):
                eff_del.append((u, v))
                self._delete_half(u, v)
                self._delete_half(v, u)
        eff_ins = []
        for u, v in batch.inserts:
            if not self.has_edge(u, v):
                eff_ins.append((u, v))
                self._insert_half(u, v)
                self._insert_half(v, u)
        return MutationBatch(inserts=tuple(eff_ins), deletes=tuple(eff_del))

    def _insert_half(self, row: int, dest: int) -> None:
        dels = self._del.get(row)
        if dels and dest in dels:
            dels.discard(dest)
            if not dels:
                del self._del[row]
        else:
            self._ins.setdefault(row, set()).add(dest)

    def _delete_half(self, row: int, dest: int) -> None:
        ins = self._ins.get(row)
        if ins and dest in ins:
            ins.discard(dest)
            if not ins:
                del self._ins[row]
        else:
            self._del.setdefault(row, set()).add(dest)

    def clear(self) -> None:
        """Drop the overlay (after compaction folded it into a new base)."""
        self._ins.clear()
        self._del.clear()

    # -- reads -----------------------------------------------------------------

    def has_edge(self, u: int, v: int) -> bool:
        """Effective (post-delta) membership test."""
        ins = self._ins.get(u)
        if ins and v in ins:
            return True
        dels = self._del.get(u)
        if dels and v in dels:
            return False
        return self.base.has_edge(u, v)

    def row_is_dirty(self, row: int) -> bool:
        """Whether ``row`` has pending inserts or deletes."""
        return row in self._ins or row in self._del

    def patch_row(self, row: int, base_row: np.ndarray) -> np.ndarray:
        """Effective row given its base adjacency (sorted in, sorted out).

        Split out from :meth:`row` so charged readers — which already
        fetched the base row from the NVM store — can patch without a
        second uncharged read.
        """
        dels = self._del.get(row)
        ins = self._ins.get(row)
        if not dels and not ins:
            return base_row
        eff = base_row
        if dels:
            drop = np.fromiter(sorted(dels), dtype=np.int64, count=len(dels))
            eff = eff[~np.isin(eff, drop)]
        if ins:
            add = np.fromiter(sorted(ins), dtype=np.int64, count=len(ins))
            eff = np.concatenate((eff, add))
            eff.sort()
        return eff

    def row(self, row: int) -> np.ndarray:
        """Effective sorted adjacency of one row (uncharged DRAM read)."""
        return self.patch_row(row, self.base.neighbors(row))

    def degrees(self) -> np.ndarray:
        """Exact effective degree per row: base ± overlay counts."""
        deg = self.base.degrees().astype(np.int64, copy=True)
        for r, s in self._ins.items():
            deg[r] += len(s)
        for r, s in self._del.items():
            deg[r] -= len(s)
        return deg

    def degree(self, row: int) -> int:
        """Effective degree of ``row`` (base plus overlay, exact)."""
        return int(
            self.base.degree(row)
            + len(self._ins.get(row, ()))
            - len(self._del.get(row, ()))
        )

    # -- materialization -------------------------------------------------------

    def to_csr(self) -> CSRGraph:
        """Materialize the effective graph as a canonical CSR.

        Clean rows are copied as whole spans of the base value array;
        only dirty rows are re-merged, so compaction cost scales with the
        delta, not the graph.
        """
        base = self.base
        if self.is_empty:
            return CSRGraph(
                indptr=base.indptr.copy(), adj=base.adj.copy(), n_cols=base.n_cols
            )
        counts = base.degrees().astype(np.int64, copy=True)
        parts: list[np.ndarray] = []
        prev = 0
        for r in self.dirty_rows().tolist():
            start = int(base.indptr[r])
            parts.append(base.adj[prev:start])
            eff = self.row(r)
            parts.append(eff)
            counts[r] = eff.size
            prev = int(base.indptr[r + 1])
        parts.append(base.adj[prev:])
        adj = np.concatenate(parts).astype(np.int64, copy=False)
        indptr = np.empty(base.n_rows + 1, dtype=np.int64)
        indptr[0] = 0
        np.cumsum(counts, out=indptr[1:])
        return CSRGraph(indptr=indptr, adj=adj, n_cols=base.n_cols)
