"""repro — Hybrid BFS with semi-external memory.

A from-scratch reproduction of *"Hybrid BFS Approach Using Semi-External
Memory"* (Iwabuchi, Sato, Mizote, Yasui, Fujisawa, Matsuoka — IPDPS
Workshops 2014): NUMA-aware direction-optimizing BFS over Graph500
Kronecker graphs, with the top-down forward graph offloaded to a modeled
NVM device and read through 4 KB-chunked requests.

Quick start
-----------
>>> from repro import run_graph500, DRAM_PCIE_FLASH
>>> result = run_graph500(DRAM_PCIE_FLASH, scale=12, n_roots=2, seed=1)
>>> result.output.all_valid
True
>>> result.median_teps > 0
True

Package map
-----------
=====================  ====================================================
``repro.graph500``     Benchmark substrate: Kronecker generator, edge
                       lists, validator, 64-root driver, official stats.
``repro.csr``          CSR construction, NUMA-partitioned forward/backward
                       graphs, NVM-resident CSR files.
``repro.numa``         Simulated NUMA topology and locality accounting.
``repro.semiext``      NVM device models, simulated clock, iostat
                       equivalents, file-backed arrays, partial offload.
``repro.bfs``          The hybrid BFS engines and direction policies.
``repro.perfmodel``    Cost/size/power models (modeled TEPS, Table II,
                       Figure 3, MTEPS/W).
``repro.core``         Scenario presets (Table I) and the §V-A pipeline.
``repro.analysis``     Per-figure analysis (Figures 7–14 data).
``repro.obs``          Observability: metrics registry, simulated-clock
                       tracer, JSONL/Chrome-trace/Prometheus exporters.
``repro.serve``        Concurrent query serving: graph catalog, batched
                       multi-source BFS with shared chunk fetches, result
                       cache, deterministic workload replay.
=====================  ====================================================
"""

from repro._version import __version__
from repro.bfs import (
    AlphaBetaPolicy,
    BeamerPolicy,
    BFSResult,
    Direction,
    FixedPolicy,
    HybridBFS,
    ReferenceBFS,
    SemiExternalBFS,
)
from repro.core import (
    DRAM_ONLY,
    DRAM_PCIE_FLASH,
    DRAM_SSD,
    PAPER_SCENARIOS,
    ScenarioConfig,
    ScenarioKind,
    run_graph500,
)
from repro.csr import BackwardGraph, build_csr, CSRGraph, ForwardGraph
from repro.errors import (
    CapacityError,
    ConfigurationError,
    GraphFormatError,
    ReproError,
    StorageError,
    ValidationError,
)
from repro.graph500 import (
    EdgeList,
    generate_edges,
    Graph500Driver,
    Graph500Stats,
    sample_roots,
    validate_bfs_tree,
)
from repro.numa import NumaTopology
from repro.obs import MetricsRegistry, Observability
from repro.perfmodel import DramCostModel, GraphSizeModel, MachinePowerModel
from repro.semiext import (
    DeviceModel,
    NVMStore,
    PCIE_FLASH,
    SATA_SSD,
    SimulatedClock,
)
from repro.serve import (
    BatchedBFS,
    BFSServer,
    GraphCatalog,
    WorkloadSpec,
    generate_workload,
)

__all__ = [
    "__version__",
    # engines & policies
    "HybridBFS",
    "SemiExternalBFS",
    "ReferenceBFS",
    "AlphaBetaPolicy",
    "BeamerPolicy",
    "FixedPolicy",
    "Direction",
    "BFSResult",
    # pipeline & scenarios
    "run_graph500",
    "ScenarioConfig",
    "ScenarioKind",
    "DRAM_ONLY",
    "DRAM_PCIE_FLASH",
    "DRAM_SSD",
    "PAPER_SCENARIOS",
    # graph500
    "EdgeList",
    "generate_edges",
    "sample_roots",
    "Graph500Driver",
    "Graph500Stats",
    "validate_bfs_tree",
    # graph structures
    "CSRGraph",
    "build_csr",
    "ForwardGraph",
    "BackwardGraph",
    "NumaTopology",
    # semi-external memory
    "NVMStore",
    "DeviceModel",
    "PCIE_FLASH",
    "SATA_SSD",
    "SimulatedClock",
    # observability
    "Observability",
    "MetricsRegistry",
    # serving
    "GraphCatalog",
    "BatchedBFS",
    "BFSServer",
    "WorkloadSpec",
    "generate_workload",
    # models
    "DramCostModel",
    "GraphSizeModel",
    "MachinePowerModel",
    # errors
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "ValidationError",
    "StorageError",
    "GraphFormatError",
]
