"""The registry of named, seeded benchmark scenarios.

Each :class:`BenchScenario` wraps one of the repo's benchmark shapes
(``benchmarks/bench_*.py``) into a headless callable: fixed problem
size, seeded inputs, simulated clock only — so a scenario run is a pure
function of its seed and its :class:`~repro.perf.artifact.BenchArtifact`
is byte-reproducible.  ``tools/bench_runner.py`` executes these and
``tools/perf_gate.py`` diffs the artifacts against the committed
baselines in ``benchmarks/baselines/``.

The two stock scenarios cover the paper's two performance claims:

* :func:`run_degradation` — the Fig. 8/11 claim (semi-external TEPS
  degradation on PCIe flash vs SSD relative to DRAM-only);
* :func:`run_serve_batching` — the serving-tier restatement of §V
  device-traffic minimization (bytes/query amortization from batched
  union-frontier fetches);
* :func:`run_checkpoint_overhead` — the durability tax: checkpoint
  write amplification and modeled-time overhead of the crash-recovery
  subsystem at its default cadence (pinned ≤ 5 % of traversal bytes);
* :func:`run_backward_offload` — the §VI-E memory-vs-TEPS frontier of
  the tiered backward store, measured (DRAM bytes strictly shrink and
  fallthrough reads strictly grow as k shrinks);
* :func:`run_dist_scaling` — the beyond-paper partitioned traversal's
  scaling curve (1/2/4 workers), with byte-identity to the
  single-process engine asserted in-runner;
* :func:`run_profile_overhead` — the observability tax: modeled-time
  overhead of worker-side span collection and shipping at 4 forked
  partitions (pinned ≤ 5 % in-runner; by design it is exactly zero —
  spans never advance the simulated clock);
* :func:`run_incremental_serve` — the dynamic-graph claim: after a
  small mutation batch, incrementally repairing a cached tree
  (:mod:`repro.graphmut`) must beat recomputing it from scratch on the
  modeled clock, with byte-identical answers asserted in-runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core import (
    DRAM_ONLY,
    DRAM_PCIE_FLASH,
    DRAM_SSD,
    run_graph500,
)
from repro.errors import ConfigurationError
from repro.perf.artifact import BenchArtifact, BenchMetric
from repro.serve import BatchedBFS, GraphCatalog

__all__ = ["BenchScenario", "SCENARIOS", "get_scenario", "scenario_names"]


@dataclass(frozen=True)
class BenchScenario:
    """One registered benchmark: a seeded artifact factory."""

    name: str
    description: str
    paper_ref: str
    runner: Callable[[int, Path], BenchArtifact]

    def run(self, seed: int, workdir: str | Path) -> BenchArtifact:
        """Execute headlessly; ``workdir`` holds the NVM backing files."""
        return self.runner(seed, Path(workdir))


def run_degradation(seed: int, workdir: Path) -> BenchArtifact:
    """Modeled TEPS for DRAM / PCIe-flash / SSD and their degradation.

    A small-scale analogue of the paper's Fig. 8/11 measurement: the
    same Kronecker graph and roots through all three scenarios, TEPS on
    the simulated clock, degradation as the percentage lost vs
    DRAM-only (paper, SCALE 27: PCIe −19.18 %, SSD −47.1 %).
    """
    scale, n_roots = 11, 4
    teps: dict[str, float] = {}
    sim_s = 0.0
    for key, scenario in (
        ("dram", DRAM_ONLY),
        ("pcie", DRAM_PCIE_FLASH),
        ("ssd", DRAM_SSD),
    ):
        result = run_graph500(
            scenario, scale=scale, n_roots=n_roots, seed=seed,
            validate=False, workdir=workdir / key,
        )
        teps[key] = result.median_teps
        stats = result.output.stats_modeled
        sim_s += stats.mean_time_s * stats.n_runs
    degradation = {
        key: 100.0 * (1.0 - teps[key] / teps["dram"])
        for key in ("pcie", "ssd")
    }
    metrics = {
        "teps_dram": BenchMetric(teps["dram"], "TEPS", True),
        "teps_pcie": BenchMetric(teps["pcie"], "TEPS", True),
        "teps_ssd": BenchMetric(teps["ssd"], "TEPS", True),
        "degradation_pcie_pct": BenchMetric(
            degradation["pcie"], "%", False, tolerance=0.10
        ),
        "degradation_ssd_pct": BenchMetric(
            degradation["ssd"], "%", False, tolerance=0.10
        ),
    }
    return BenchArtifact(
        name="fig11_degradation",
        description="Semi-external TEPS degradation vs DRAM-only "
                    "(PCIe flash and SATA SSD), modeled clock.",
        seed=seed,
        params={"scale": scale, "n_roots": n_roots, "edge_factor": 16},
        simulated_seconds=sim_s,
        metrics=metrics,
    )


def run_serve_batching(seed: int, workdir: Path) -> BenchArtifact:
    """Bytes/query amortization of batched serving (batch 1 vs 8).

    The bench_serve_batching shape at a CI-friendly scale: 8 queries on
    the PCIe-flash scenario with result and page caches disabled, so
    the only sharing left is the union-frontier chunk fetch.
    """
    scale, n_queries = 10, 8
    n = 1 << scale
    alpha = beta = n / 128.0  # keep several levels top-down at this scale

    def run_at(batch_size: int) -> dict:
        catalog = GraphCatalog(workdir=workdir / f"b{batch_size}")
        graph = catalog.build(
            "g", DRAM_PCIE_FLASH, scale=scale, seed=seed,
            alpha=alpha, beta=beta, page_cache_bytes=0,
        )
        roots = [
            int(r) for r in np.flatnonzero(graph.degrees > 0)[:n_queries]
        ]
        engine = BatchedBFS(graph)
        traversed = 0
        t0 = graph.clock.now()
        for i in range(0, len(roots), batch_size):
            for res in engine.run_batch(roots[i:i + batch_size]):
                traversed += res.traversed_edges
        modeled_s = graph.clock.now() - t0
        nvm_bytes = graph.store.iostats.total_bytes
        sharing = (
            engine.rows_requested / engine.rows_fetched
            if engine.rows_fetched else 1.0
        )
        catalog.close()
        return {
            "bytes_per_query": nvm_bytes / n_queries,
            "teps": traversed / modeled_s if modeled_s else 0.0,
            "sharing": sharing,
            "modeled_s": modeled_s,
        }

    solo = run_at(1)
    batched = run_at(8)
    metrics = {
        "bytes_per_query_unbatched": BenchMetric(
            solo["bytes_per_query"], "B", False
        ),
        "bytes_per_query_batch8": BenchMetric(
            batched["bytes_per_query"], "B", False
        ),
        "amortization_x": BenchMetric(
            solo["bytes_per_query"] / batched["bytes_per_query"]
            if batched["bytes_per_query"] else 1.0,
            "x", True,
        ),
        "row_sharing_x": BenchMetric(batched["sharing"], "x", True),
        "teps_batch8": BenchMetric(batched["teps"], "TEPS", True),
    }
    return BenchArtifact(
        name="serve_batching",
        description="NVM bytes/query amortization from batched "
                    "union-frontier fetches (batch 1 vs 8).",
        seed=seed,
        params={
            "scale": scale, "n_queries": n_queries,
            "alpha": alpha, "beta": beta,
        },
        simulated_seconds=solo["modeled_s"] + batched["modeled_s"],
        metrics=metrics,
    )


def run_checkpoint_overhead(seed: int, workdir: Path) -> BenchArtifact:
    """The durability tax of level-boundary checkpointing.

    One semi-external traversal on the PCIe-flash scenario, clean vs
    wrapped in :class:`~repro.recovery.RecoverableBFS` at the default
    cadence (every 2 levels, no crash).  The schedule is pinned
    top-down so *every* level's edge scan reads the device — the
    configuration where durability writes compete directly with
    traversal reads (the hybrid schedule's NVM traffic is a sliver by
    design, which would make any percentage meaningless).  Write
    amplification is the checkpoint bytes written as a percentage of
    the traversal's NVM bytes read — the delta-chain format keeps it
    small (pinned ≤ 5 % by the committed baseline and
    ``tests/test_recovery.py``); time overhead is the modeled-clock
    cost of charging those writes.
    """
    from repro.bfs.metrics import Direction
    from repro.bfs.policies import FixedPolicy
    from repro.bfs.semi_external import SemiExternalBFS
    from repro.csr import BackwardGraph, ForwardGraph, build_csr
    from repro.graph500 import EdgeList, generate_edges
    from repro.recovery import RecoverableBFS
    from repro.semiext.storage import NVMStore

    scale = 11
    scenario = DRAM_PCIE_FLASH
    n = 1 << scale
    edges = EdgeList(generate_edges(scale, seed=seed), n)
    csr = build_csr(edges)
    forward = ForwardGraph(csr, scenario.topology)
    backward = BackwardGraph(csr, scenario.topology)
    root = int(np.flatnonzero(csr.degrees() > 0)[0])

    def build(subdir: str) -> SemiExternalBFS:
        store = NVMStore(
            workdir / subdir,
            scenario.device,
            concurrency=scenario.topology.n_cores,
        )
        return SemiExternalBFS.offload(
            forward=forward,
            backward=backward,
            policy=FixedPolicy(Direction.TOP_DOWN),
            store=store,
        )

    clean_engine = build("clean")
    t0 = clean_engine.store.clock.now()
    clean_engine.run(root)
    clean_s = clean_engine.store.clock.now() - t0

    ckpt_engine = build("ckpt")
    rec = RecoverableBFS(ckpt_engine, checkpoint_every=2)
    t0 = ckpt_engine.store.clock.now()
    rec.run(root)
    ckpt_s = ckpt_engine.store.clock.now() - t0

    # charge_write never touches the read-side iostats, so total_bytes
    # is exactly the traversal's NVM read traffic.
    traversal_bytes = ckpt_engine.store.iostats.total_bytes
    ckpt_bytes = rec.manager.bytes_written
    amp_pct = 100.0 * ckpt_bytes / traversal_bytes if traversal_bytes else 0.0
    time_pct = 100.0 * (ckpt_s - clean_s) / clean_s if clean_s else 0.0
    metrics = {
        "traversal_nvm_bytes": BenchMetric(
            float(traversal_bytes), "B", False
        ),
        "checkpoint_bytes": BenchMetric(float(ckpt_bytes), "B", False),
        "write_amplification_pct": BenchMetric(
            amp_pct, "%", False, tolerance=0.10
        ),
        "time_overhead_pct": BenchMetric(
            time_pct, "%", False, tolerance=0.25
        ),
        "n_epochs": BenchMetric(float(rec.manager.n_checkpoints), "", False),
    }
    return BenchArtifact(
        name="checkpoint_overhead",
        description="Checkpoint write amplification and modeled-time "
                    "overhead at the default cadence (every 2 levels).",
        seed=seed,
        params={
            "scale": scale, "edge_factor": 16, "checkpoint_every": 2,
            "schedule": "top_down",
        },
        simulated_seconds=clean_s + ckpt_s,
        metrics=metrics,
    )


def run_backward_offload(seed: int, workdir: Path) -> BenchArtifact:
    """The measured §VI-E frontier: DRAM bytes vs TEPS across k.

    The tiered backward store at k = 2 / 8 / 32 on the PCIe-flash
    scenario, schedule pinned bottom-up so *every* level scans through
    the tier (the hybrid schedule's bottom-up share varies with k and
    would blur the curve).  Per k the artifact records the DRAM-resident
    bytes, the per-vertex fallthrough reads actually issued and the
    modeled TEPS — and the runner asserts the frontier's shape before
    the gate even sees it: as k shrinks, DRAM bytes must strictly fall
    and fallthrough reads strictly rise.
    """
    from repro.analysis.offload_ratio import tiered_offload_sweep
    from repro.bfs.metrics import Direction
    from repro.bfs.policies import FixedPolicy
    from repro.csr import BackwardGraph, ForwardGraph, build_csr
    from repro.graph500 import EdgeList, generate_edges, sample_roots

    scale, n_roots = 10, 3
    ks = (2, 8, 32)
    scenario = DRAM_PCIE_FLASH
    n = 1 << scale
    edges = EdgeList(generate_edges(scale, seed=seed), n)
    csr = build_csr(edges)
    points = tiered_offload_sweep(
        ForwardGraph(csr, scenario.topology),
        BackwardGraph(csr, scenario.topology),
        scenario.device,
        workdir,
        sample_roots(csr.degrees(), n_roots=n_roots, seed=seed),
        ks=ks,
        policy=FixedPolicy(Direction.BOTTOM_UP),
    )
    for small, big in zip(points, points[1:]):
        if not small.dram_bytes < big.dram_bytes:
            raise AssertionError(
                f"DRAM bytes not strictly increasing in k: "
                f"k={small.k}:{small.dram_bytes} vs k={big.k}:{big.dram_bytes}"
            )
        if not small.fallthrough_rows > big.fallthrough_rows:
            raise AssertionError(
                f"fallthrough reads not strictly decreasing in k: "
                f"k={small.k}:{small.fallthrough_rows} vs "
                f"k={big.k}:{big.fallthrough_rows}"
            )
    metrics: dict[str, BenchMetric] = {}
    for p in points:
        metrics[f"dram_bytes_k{p.k}"] = BenchMetric(
            float(p.dram_bytes), "B", False
        )
        metrics[f"fallthrough_reads_k{p.k}"] = BenchMetric(
            float(p.fallthrough_rows), "reads", False
        )
        metrics[f"teps_k{p.k}"] = BenchMetric(p.teps, "TEPS", True)
    return BenchArtifact(
        name="backward_offload",
        description="Measured memory-vs-TEPS frontier of the tiered "
                    "backward store (k edges per vertex in DRAM).",
        seed=seed,
        params={
            "scale": scale, "n_roots": n_roots, "edge_factor": 16,
            "ks": list(ks), "schedule": "bottom_up",
        },
        simulated_seconds=sum(p.modeled_time_s for p in points),
        metrics=metrics,
    )


def run_dist_scaling(seed: int, workdir: Path) -> BenchArtifact:
    """Partitioned-traversal scaling curve at 1 / 2 / 4 workers.

    The same Kronecker graph through :class:`~repro.dist.DistributedBFS`
    (local backend, PCIe-flash stores) at each partition count, with a
    single-process :class:`~repro.bfs.semi_external.SemiExternalBFS`
    traversal as the oracle — the runner asserts every partitioned tree
    byte-identical to it before any metric is recorded, so a
    determinism regression fails the bench outright rather than
    drifting a number.  Per partition count the artifact records
    modeled TEPS and speedup vs one partition (level time is the max
    over workers plus merge cost, so speedup reflects the real
    coordination overhead); at four workers it also records the mean
    per-level imbalance (slowest worker over mean worker time).
    """
    from repro.bfs.policies import AlphaBetaPolicy
    from repro.bfs.semi_external import SemiExternalBFS
    from repro.csr import BackwardGraph, ForwardGraph, build_csr
    from repro.dist import ContiguousPartitioner, DistributedBFS
    from repro.graph500 import EdgeList, generate_edges
    from repro.semiext.storage import NVMStore

    scale = 10
    partition_counts = (1, 2, 4)
    scenario = DRAM_PCIE_FLASH
    n = 1 << scale
    edges = EdgeList(generate_edges(scale, seed=seed), n)
    csr = build_csr(edges)
    root = int(np.flatnonzero(csr.degrees() > 0)[0])

    def policy() -> AlphaBetaPolicy:
        return AlphaBetaPolicy(alpha=scenario.alpha, beta=scenario.beta)

    oracle_engine = SemiExternalBFS.offload(
        forward=ForwardGraph(csr, scenario.topology),
        backward=BackwardGraph(csr, scenario.topology),
        policy=policy(),
        store=NVMStore(
            workdir / "oracle",
            scenario.device,
            concurrency=scenario.topology.n_cores,
        ),
        cost_model=scenario.cost_model,
    )
    oracle = oracle_engine.run(root)

    modeled: dict[int, float] = {}
    imbalance = 0.0
    sim_s = 0.0
    for n_parts in partition_counts:
        engine = DistributedBFS.build(
            csr,
            ContiguousPartitioner(n_parts),
            policy(),
            workdir / f"p{n_parts}",
            scenario.device,
            cost_model=scenario.cost_model,
            concurrency=scenario.topology.n_cores,
        )
        try:
            t0 = engine.clock.now()
            result = engine.run(root)
            modeled[n_parts] = engine.clock.now() - t0
            if not np.array_equal(result.parent, oracle.parent):
                raise AssertionError(
                    f"partitioned tree at {n_parts} partitions diverges "
                    f"from SemiExternalBFS (seed {seed})"
                )
            if n_parts == max(partition_counts):
                ratios = [
                    t.worker_max_s / t.worker_mean_s
                    for t in engine.level_imbalance
                    if t.worker_mean_s > 0.0
                ]
                imbalance = float(np.mean(ratios)) if ratios else 1.0
        finally:
            engine.close()
        sim_s += modeled[n_parts]

    traversed = float(oracle.traversed_edges)
    metrics: dict[str, BenchMetric] = {}
    for n_parts in partition_counts:
        t = modeled[n_parts]
        metrics[f"teps_p{n_parts}"] = BenchMetric(
            traversed / t if t else 0.0, "TEPS", True
        )
    for n_parts in partition_counts[1:]:
        metrics[f"speedup_p{n_parts}"] = BenchMetric(
            modeled[1] / modeled[n_parts] if modeled[n_parts] else 0.0,
            "x", True,
        )
    metrics["imbalance_p4"] = BenchMetric(
        imbalance, "x", False, tolerance=0.10
    )
    return BenchArtifact(
        name="dist_scaling",
        description="Partitioned-BFS scaling curve (1/2/4 workers) with "
                    "byte-identity to the single-process engine asserted "
                    "in-runner.",
        seed=seed,
        params={
            "scale": scale, "edge_factor": 16,
            "partitions": list(partition_counts),
            "alpha": scenario.alpha, "beta": scenario.beta,
        },
        simulated_seconds=sim_s,
        metrics=metrics,
    )


def run_profile_overhead(seed: int, workdir: Path) -> BenchArtifact:
    """Simulated-time overhead of distributed trace collection.

    The same Kronecker graph twice through a 4-partition deployment on
    forked workers (PCIe-flash stores): once bare, once with a live
    :class:`~repro.obs.Observability` session — every worker running its
    own tracer and shipping spans/metrics back with each step reply.
    Observability is bookkeeping, not simulated work: spans must never
    advance the simulated clock, so the modeled time of both runs must
    agree within 5 % (in practice exactly — the runner asserts the pin
    before the gate sees the artifact).  The artifact also records how
    many worker-side spans the traced run shipped, so a silently
    dropped collection path fails the gate as a span-count regression.
    """
    from repro.bfs.policies import AlphaBetaPolicy
    from repro.csr import build_csr
    from repro.dist import ContiguousPartitioner, DistributedBFS
    from repro.graph500 import EdgeList, generate_edges
    from repro.obs import Observability
    from repro.obs.profile import track_of

    scale, n_partitions = 10, 4
    scenario = DRAM_PCIE_FLASH
    n = 1 << scale
    edges = EdgeList(generate_edges(scale, seed=seed), n)
    csr = build_csr(edges)
    root = int(np.flatnonzero(csr.degrees() > 0)[0])

    def run_once(subdir: str, obs: Observability | None) -> float:
        engine = DistributedBFS.build(
            csr,
            ContiguousPartitioner(n_partitions),
            AlphaBetaPolicy(alpha=scenario.alpha, beta=scenario.beta),
            workdir / subdir,
            scenario.device,
            cost_model=scenario.cost_model,
            concurrency=scenario.topology.n_cores,
            backend="process",
            obs=obs,
        )
        try:
            t0 = engine.clock.now()
            engine.run(root)
            return engine.clock.now() - t0
        finally:
            engine.close()

    plain_s = run_once("plain", None)
    obs = Observability()
    traced_s = run_once("traced", obs)
    worker_spans = sum(
        1 for s in obs.tracer.spans if track_of(s) != "coordinator"
    )
    worker_tracks = {
        track_of(s) for s in obs.tracer.spans
    } - {"coordinator"}
    if len(worker_tracks) != n_partitions:
        raise AssertionError(
            f"expected worker spans from {n_partitions} partitions, "
            f"got tracks {sorted(worker_tracks)} (seed {seed})"
        )
    overhead_pct = (
        100.0 * (traced_s - plain_s) / plain_s if plain_s else 0.0
    )
    if overhead_pct > 5.0:
        raise AssertionError(
            f"trace collection added {overhead_pct:.2f} % simulated "
            f"time at {n_partitions} partitions (pin: 5 %, seed {seed})"
        )
    metrics = {
        "modeled_s_plain": BenchMetric(plain_s, "s", False),
        "modeled_s_traced": BenchMetric(traced_s, "s", False),
        "time_overhead_pct": BenchMetric(
            overhead_pct, "%", False, tolerance=0.05
        ),
        "worker_spans": BenchMetric(float(worker_spans), "spans", True),
    }
    return BenchArtifact(
        name="profile_overhead",
        description="Simulated-time overhead of worker-side span "
                    "collection and shipping at 4 forked partitions "
                    "(pinned <= 5 %).",
        seed=seed,
        params={
            "scale": scale, "edge_factor": 16,
            "partitions": n_partitions, "backend": "process",
            "alpha": scenario.alpha, "beta": scenario.beta,
        },
        simulated_seconds=plain_s + traced_s,
        metrics=metrics,
    )


def run_incremental_serve(seed: int, workdir: Path) -> BenchArtifact:
    """Repair-vs-recompute modeled latency after a small mutation batch.

    One PCIe-flash catalog graph, a handful of warm queries, then a
    4-edge mutation batch.  Each stale tree is repaired incrementally
    (charged NVM row reads through the delta shards) and the same roots
    are recomputed from scratch by the batched engine on the
    post-mutation graph.  The runner asserts every repaired tree
    byte-identical to its recomputation and that repair is strictly
    faster on the modeled clock — the whole point of serving dynamic
    graphs through :mod:`repro.graphmut` — before the gate sees any
    number.
    """
    from repro.graphmut import GraphMutator, draw_batch

    scale, n_queries = 10, 6
    n_inserts = n_deletes = 2
    catalog = GraphCatalog(workdir=workdir / "cat")
    graph = catalog.build(
        "g", DRAM_PCIE_FLASH, scale=scale, seed=seed, page_cache_bytes=0,
    )
    mutator = GraphMutator(graph, compact_every=1_000_000)
    clock = graph.clock
    roots = [int(r) for r in np.flatnonzero(graph.degrees > 0)[:n_queries]]
    warm = {r: BatchedBFS(graph).run_batch([r])[0].parent for r in roots}

    rng = np.random.default_rng([seed, 20140519])
    batch = draw_batch(mutator.effective_csr, rng, n_inserts, n_deletes)
    from_version = mutator.version
    mutator.apply(batch)

    repaired: dict[int, np.ndarray] = {}
    repair_s: list[float] = []
    rows_read = 0
    for r in roots:
        t0 = clock.now()
        outcome = mutator.repair(warm[r], r, from_version)
        repair_s.append(clock.now() - t0)
        if outcome is None:
            raise AssertionError(
                f"repair fell back on a {batch.n_mutations}-edge delta "
                f"(root {r}, seed {seed})"
            )
        rows_read += outcome.n_rows_read
        repaired[r] = outcome.parent

    recompute_s: list[float] = []
    for r in roots:
        t0 = clock.now()
        result = BatchedBFS(graph).run_batch([r])[0]
        recompute_s.append(clock.now() - t0)
        if not np.array_equal(result.parent, repaired[r]):
            raise AssertionError(
                f"repaired tree diverges from recomputation at root {r} "
                f"(seed {seed})"
            )
    catalog.close()

    mean_repair = float(np.mean(repair_s))
    mean_recompute = float(np.mean(recompute_s))
    speedup = mean_recompute / mean_repair if mean_repair else 0.0
    if speedup <= 1.0:
        raise AssertionError(
            f"incremental repair not faster than recompute: "
            f"{mean_repair:.6f}s vs {mean_recompute:.6f}s (seed {seed})"
        )
    metrics = {
        "modeled_s_recompute_mean": BenchMetric(mean_recompute, "s", False),
        "modeled_s_repair_mean": BenchMetric(mean_repair, "s", False),
        "repair_speedup_x": BenchMetric(speedup, "x", True),
        "repair_rows_read": BenchMetric(
            float(rows_read), "rows", False, tolerance=0.10
        ),
    }
    return BenchArtifact(
        name="incremental_serve",
        description="Incremental BFS-tree repair vs full recompute after "
                    "a 4-edge mutation batch, modeled clock, "
                    "byte-identity asserted in-runner.",
        seed=seed,
        params={
            "scale": scale, "edge_factor": 16, "n_queries": n_queries,
            "n_inserts": n_inserts, "n_deletes": n_deletes,
        },
        simulated_seconds=float(np.sum(repair_s) + np.sum(recompute_s)),
        metrics=metrics,
    )


SCENARIOS: tuple[BenchScenario, ...] = (
    BenchScenario(
        name="fig11_degradation",
        description="TEPS degradation: DRAM vs PCIe flash vs SSD.",
        paper_ref="PAPER.md §V, Fig. 8/11",
        runner=run_degradation,
    ),
    BenchScenario(
        name="serve_batching",
        description="Serving bytes/query amortization, batch 1 vs 8.",
        paper_ref="PAPER.md §V (device-traffic minimization)",
        runner=run_serve_batching,
    ),
    BenchScenario(
        name="checkpoint_overhead",
        description="Crash-recovery checkpoint write amplification "
                    "and time overhead.",
        paper_ref="PAPER.md §V (semi-external durability)",
        runner=run_checkpoint_overhead,
    ),
    BenchScenario(
        name="backward_offload",
        description="Measured memory-vs-TEPS frontier of the tiered "
                    "backward store.",
        paper_ref="PAPER.md §VI-E, Fig. 14",
        runner=run_backward_offload,
    ),
    BenchScenario(
        name="dist_scaling",
        description="Partitioned-BFS scaling at 1/2/4 workers, trees "
                    "byte-identical to the single-process engine.",
        paper_ref="PAPER.md §VII (beyond-paper distributed extension)",
        runner=run_dist_scaling,
    ),
    BenchScenario(
        name="profile_overhead",
        description="Simulated-time overhead of distributed trace "
                    "collection at 4 forked partitions.",
        paper_ref="PAPER.md §VII (observability extension)",
        runner=run_profile_overhead,
    ),
    BenchScenario(
        name="incremental_serve",
        description="Incremental repair vs full recompute after a "
                    "small mutation batch, byte-identity asserted.",
        paper_ref="PAPER.md §VII (dynamic-graph extension)",
        runner=run_incremental_serve,
    ),
)

_BY_NAME = {s.name: s for s in SCENARIOS}


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, registry order."""
    return tuple(s.name for s in SCENARIOS)


def get_scenario(name: str) -> BenchScenario:
    """Look up one scenario (ConfigurationError on unknown names)."""
    scenario = _BY_NAME.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown benchmark scenario {name!r}; "
            f"have {sorted(_BY_NAME)}"
        )
    return scenario
