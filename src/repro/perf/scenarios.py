"""The registry of named, seeded benchmark scenarios.

Each :class:`BenchScenario` wraps one of the repo's benchmark shapes
(``benchmarks/bench_*.py``) into a headless callable: fixed problem
size, seeded inputs, simulated clock only — so a scenario run is a pure
function of its seed and its :class:`~repro.perf.artifact.BenchArtifact`
is byte-reproducible.  ``tools/bench_runner.py`` executes these and
``tools/perf_gate.py`` diffs the artifacts against the committed
baselines in ``benchmarks/baselines/``.

The two stock scenarios cover the paper's two performance claims:

* :func:`run_degradation` — the Fig. 8/11 claim (semi-external TEPS
  degradation on PCIe flash vs SSD relative to DRAM-only);
* :func:`run_serve_batching` — the serving-tier restatement of §V
  device-traffic minimization (bytes/query amortization from batched
  union-frontier fetches).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core import (
    DRAM_ONLY,
    DRAM_PCIE_FLASH,
    DRAM_SSD,
    run_graph500,
)
from repro.errors import ConfigurationError
from repro.perf.artifact import BenchArtifact, BenchMetric
from repro.serve import BatchedBFS, GraphCatalog

__all__ = ["BenchScenario", "SCENARIOS", "get_scenario", "scenario_names"]


@dataclass(frozen=True)
class BenchScenario:
    """One registered benchmark: a seeded artifact factory."""

    name: str
    description: str
    paper_ref: str
    runner: Callable[[int, Path], BenchArtifact]

    def run(self, seed: int, workdir: str | Path) -> BenchArtifact:
        """Execute headlessly; ``workdir`` holds the NVM backing files."""
        return self.runner(seed, Path(workdir))


def run_degradation(seed: int, workdir: Path) -> BenchArtifact:
    """Modeled TEPS for DRAM / PCIe-flash / SSD and their degradation.

    A small-scale analogue of the paper's Fig. 8/11 measurement: the
    same Kronecker graph and roots through all three scenarios, TEPS on
    the simulated clock, degradation as the percentage lost vs
    DRAM-only (paper, SCALE 27: PCIe −19.18 %, SSD −47.1 %).
    """
    scale, n_roots = 11, 4
    teps: dict[str, float] = {}
    sim_s = 0.0
    for key, scenario in (
        ("dram", DRAM_ONLY),
        ("pcie", DRAM_PCIE_FLASH),
        ("ssd", DRAM_SSD),
    ):
        result = run_graph500(
            scenario, scale=scale, n_roots=n_roots, seed=seed,
            validate=False, workdir=workdir / key,
        )
        teps[key] = result.median_teps
        stats = result.output.stats_modeled
        sim_s += stats.mean_time_s * stats.n_runs
    degradation = {
        key: 100.0 * (1.0 - teps[key] / teps["dram"])
        for key in ("pcie", "ssd")
    }
    metrics = {
        "teps_dram": BenchMetric(teps["dram"], "TEPS", True),
        "teps_pcie": BenchMetric(teps["pcie"], "TEPS", True),
        "teps_ssd": BenchMetric(teps["ssd"], "TEPS", True),
        "degradation_pcie_pct": BenchMetric(
            degradation["pcie"], "%", False, tolerance=0.10
        ),
        "degradation_ssd_pct": BenchMetric(
            degradation["ssd"], "%", False, tolerance=0.10
        ),
    }
    return BenchArtifact(
        name="fig11_degradation",
        description="Semi-external TEPS degradation vs DRAM-only "
                    "(PCIe flash and SATA SSD), modeled clock.",
        seed=seed,
        params={"scale": scale, "n_roots": n_roots, "edge_factor": 16},
        simulated_seconds=sim_s,
        metrics=metrics,
    )


def run_serve_batching(seed: int, workdir: Path) -> BenchArtifact:
    """Bytes/query amortization of batched serving (batch 1 vs 8).

    The bench_serve_batching shape at a CI-friendly scale: 8 queries on
    the PCIe-flash scenario with result and page caches disabled, so
    the only sharing left is the union-frontier chunk fetch.
    """
    scale, n_queries = 10, 8
    n = 1 << scale
    alpha = beta = n / 128.0  # keep several levels top-down at this scale

    def run_at(batch_size: int) -> dict:
        catalog = GraphCatalog(workdir=workdir / f"b{batch_size}")
        graph = catalog.build(
            "g", DRAM_PCIE_FLASH, scale=scale, seed=seed,
            alpha=alpha, beta=beta, page_cache_bytes=0,
        )
        roots = [
            int(r) for r in np.flatnonzero(graph.degrees > 0)[:n_queries]
        ]
        engine = BatchedBFS(graph)
        traversed = 0
        t0 = graph.clock.now()
        for i in range(0, len(roots), batch_size):
            for res in engine.run_batch(roots[i:i + batch_size]):
                traversed += res.traversed_edges
        modeled_s = graph.clock.now() - t0
        nvm_bytes = graph.store.iostats.total_bytes
        sharing = (
            engine.rows_requested / engine.rows_fetched
            if engine.rows_fetched else 1.0
        )
        catalog.close()
        return {
            "bytes_per_query": nvm_bytes / n_queries,
            "teps": traversed / modeled_s if modeled_s else 0.0,
            "sharing": sharing,
            "modeled_s": modeled_s,
        }

    solo = run_at(1)
    batched = run_at(8)
    metrics = {
        "bytes_per_query_unbatched": BenchMetric(
            solo["bytes_per_query"], "B", False
        ),
        "bytes_per_query_batch8": BenchMetric(
            batched["bytes_per_query"], "B", False
        ),
        "amortization_x": BenchMetric(
            solo["bytes_per_query"] / batched["bytes_per_query"]
            if batched["bytes_per_query"] else 1.0,
            "x", True,
        ),
        "row_sharing_x": BenchMetric(batched["sharing"], "x", True),
        "teps_batch8": BenchMetric(batched["teps"], "TEPS", True),
    }
    return BenchArtifact(
        name="serve_batching",
        description="NVM bytes/query amortization from batched "
                    "union-frontier fetches (batch 1 vs 8).",
        seed=seed,
        params={
            "scale": scale, "n_queries": n_queries,
            "alpha": alpha, "beta": beta,
        },
        simulated_seconds=solo["modeled_s"] + batched["modeled_s"],
        metrics=metrics,
    )


SCENARIOS: tuple[BenchScenario, ...] = (
    BenchScenario(
        name="fig11_degradation",
        description="TEPS degradation: DRAM vs PCIe flash vs SSD.",
        paper_ref="PAPER.md §V, Fig. 8/11",
        runner=run_degradation,
    ),
    BenchScenario(
        name="serve_batching",
        description="Serving bytes/query amortization, batch 1 vs 8.",
        paper_ref="PAPER.md §V (device-traffic minimization)",
        runner=run_serve_batching,
    ),
)

_BY_NAME = {s.name: s for s in SCENARIOS}


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, registry order."""
    return tuple(s.name for s in SCENARIOS)


def get_scenario(name: str) -> BenchScenario:
    """Look up one scenario (ConfigurationError on unknown names)."""
    scenario = _BY_NAME.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown benchmark scenario {name!r}; "
            f"have {sorted(_BY_NAME)}"
        )
    return scenario
