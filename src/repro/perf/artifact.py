"""Schema-versioned ``BENCH_<name>.json`` artifacts and their diffing.

A :class:`BenchArtifact` is the machine-readable record one benchmark
scenario produces: a named bag of :class:`BenchMetric` values (TEPS,
bytes/query, degradation percentages, …), the seed and parameters that
produced them, and the simulated seconds the run covered.  The JSON
rendering is canonical (sorted keys, fixed indent), so a same-seed
re-run writes a byte-identical file — which is what lets
:func:`compare` treat any difference beyond a metric's declared noise
``tolerance`` as a real regression rather than jitter.

``SCHEMA_VERSION`` gates forward compatibility: :func:`load` refuses an
artifact written by a different schema instead of mis-reading it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "SCHEMA_VERSION",
    "BenchMetric",
    "BenchArtifact",
    "MetricDelta",
    "artifact_path",
    "load",
    "compare",
]

#: Version stamped into (and required of) every artifact.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchMetric:
    """One measured value with its comparison semantics."""

    value: float
    unit: str
    higher_is_better: bool
    tolerance: float = 0.05  # relative change treated as noise

    def to_dict(self) -> dict:
        """JSON-safe rendering."""
        return {
            "value": self.value,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "tolerance": self.tolerance,
        }


@dataclass(frozen=True)
class BenchArtifact:
    """Everything one scenario run measured."""

    name: str
    description: str
    seed: int
    params: dict = field(default_factory=dict)
    simulated_seconds: float = 0.0
    metrics: dict = field(default_factory=dict)  # name -> BenchMetric
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        """Deterministic nested-dict rendering."""
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "params": dict(sorted(self.params.items())),
            "simulated_seconds": self.simulated_seconds,
            "metrics": {
                k: self.metrics[k].to_dict()
                for k in sorted(self.metrics)
            },
        }

    def to_json(self) -> str:
        """Canonical JSON — byte-identical for same-seed runs."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n"

    def write(self, outdir: str | Path) -> Path:
        """Write ``BENCH_<name>.json`` into ``outdir``; returns the path."""
        out = artifact_path(outdir, self.name)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.to_json())
        return out


def artifact_path(outdir: str | Path, name: str) -> Path:
    """Where scenario ``name``'s artifact lives under ``outdir``."""
    return Path(outdir) / f"BENCH_{name}.json"


def load(path: str | Path) -> BenchArtifact:
    """Read an artifact back, refusing unknown schema versions."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read artifact {path}: {exc}")
    version = raw.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigurationError(
            f"{path}: artifact schema_version {version!r} "
            f"!= supported {SCHEMA_VERSION}"
        )
    metrics = {
        k: BenchMetric(
            value=float(m["value"]),
            unit=str(m["unit"]),
            higher_is_better=bool(m["higher_is_better"]),
            tolerance=float(m.get("tolerance", 0.05)),
        )
        for k, m in raw.get("metrics", {}).items()
    }
    return BenchArtifact(
        name=str(raw["name"]),
        description=str(raw.get("description", "")),
        seed=int(raw.get("seed", 0)),
        params=dict(raw.get("params", {})),
        simulated_seconds=float(raw.get("simulated_seconds", 0.0)),
        metrics=metrics,
        schema_version=int(version),
    )


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-candidate verdict."""

    name: str
    unit: str
    baseline: float | None
    candidate: float | None
    rel_change: float  # signed, candidate relative to baseline
    tolerance: float
    higher_is_better: bool
    status: str  # "ok" | "improved" | "regression" | "missing"

    @property
    def is_regression(self) -> bool:
        """True when this delta should fail the gate."""
        return self.status in ("regression", "missing")


def _delta(name: str, base: BenchMetric,
           cand: BenchMetric | None) -> MetricDelta:
    if cand is None:
        return MetricDelta(
            name=name, unit=base.unit, baseline=base.value, candidate=None,
            rel_change=0.0, tolerance=base.tolerance,
            higher_is_better=base.higher_is_better, status="missing",
        )
    if base.value == 0:
        rel = 0.0 if cand.value == 0 else float("inf")
    else:
        rel = (cand.value - base.value) / abs(base.value)
    # The *baseline* declares the comparison semantics: a candidate
    # cannot loosen its own gate by shipping a bigger tolerance.
    worse = -rel if base.higher_is_better else rel
    if worse > base.tolerance:
        status = "regression"
    elif worse < -base.tolerance:
        status = "improved"
    else:
        status = "ok"
    return MetricDelta(
        name=name, unit=base.unit, baseline=base.value,
        candidate=cand.value, rel_change=rel, tolerance=base.tolerance,
        higher_is_better=base.higher_is_better, status=status,
    )


def compare(baseline: BenchArtifact,
            candidate: BenchArtifact) -> list[MetricDelta]:
    """Diff ``candidate`` against ``baseline``, metric by metric.

    Every baseline metric must be present in the candidate (absence is
    a ``missing`` failure — a deleted metric must be removed from the
    baseline deliberately, not silently dropped).  Extra candidate
    metrics are ignored: adding instrumentation is not a regression.
    """
    if baseline.name != candidate.name:
        raise ConfigurationError(
            f"comparing different scenarios: baseline "
            f"{baseline.name!r} vs candidate {candidate.name!r}"
        )
    return [
        _delta(name, baseline.metrics[name], candidate.metrics.get(name))
        for name in sorted(baseline.metrics)
    ]
