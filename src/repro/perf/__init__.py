"""repro.perf — named benchmark scenarios and their BENCH_*.json record.

The performance-trajectory layer: :mod:`repro.perf.scenarios` registers
seeded, headless benchmark scenarios; :mod:`repro.perf.artifact` defines
the schema-versioned ``BENCH_<name>.json`` they emit and the
tolerance-aware diff a perf gate needs.  ``tools/bench_runner.py`` and
``tools/perf_gate.py`` are the command-line front ends; the committed
baselines live in ``benchmarks/baselines/``.
"""

from repro.perf.artifact import (
    SCHEMA_VERSION,
    BenchArtifact,
    BenchMetric,
    MetricDelta,
    artifact_path,
    compare,
    load,
)
from repro.perf.scenarios import (
    SCENARIOS,
    BenchScenario,
    get_scenario,
    scenario_names,
)

__all__ = [
    "SCHEMA_VERSION",
    "BenchArtifact",
    "BenchMetric",
    "MetricDelta",
    "artifact_path",
    "compare",
    "load",
    "SCENARIOS",
    "BenchScenario",
    "get_scenario",
    "scenario_names",
]
