"""DRAM-side cost model for modeled (simulated-clock) TEPS.

Pure-Python BFS cannot approach NETAL's GTEPS wall-clock rates, so the
reproduction separates *what work happens* from *what it costs*: the
engines count edge probes, queue operations and NVM requests exactly, and
this model converts the DRAM-side counts into seconds on the shared
:class:`~repro.semiext.clock.SimulatedClock` (NVM charges come from the
device model directly).

Calibration (defaults)
----------------------
The constants target the paper's DRAM-only machine — 4 × 12-core Opteron
6172, DDR3-1333 — and were chosen to land the paper's absolute anchors:

* a random edge probe costs ``random_access_ns`` and the machine sustains
  ``threads × mlp`` of them concurrently (48 threads with modest
  memory-level parallelism ⇒ ~1.1 G probes/s);
* a pure top-down traversal probing all ``2M ≈ 4.3 G`` directed edges of
  the SCALE 27 graph then takes ~3.9 s ⇒ **0.55 GTEPS**, the paper's
  "top-down only ≈ 0.6 GTEPS";
* the hybrid schedule probes ~10× fewer edges ⇒ ~**5 GTEPS**, the paper's
  5.12 GTEPS DRAM-only peak;
* the reference-code baseline is modeled with degraded parallelism and
  NUMA-blind placement (see :meth:`DramCostModel.reference`), landing its
  0.04 GTEPS.

Shapes (the real reproduction target) are insensitive to these constants;
the ablation bench sweeps them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["DramCostModel"]


@dataclass(frozen=True)
class DramCostModel:
    """Charges DRAM-side BFS work onto the simulated clock.

    Parameters
    ----------
    random_access_ns:
        Latency of one dependent random DRAM access (edge probe, bitmap
        test + tree write amortized in).
    per_vertex_ns:
        Queue push/pop + policy bookkeeping per frontier/discovered vertex.
    threads:
        Worker threads (the paper: 48).
    mlp:
        Average outstanding misses per thread the access pattern achieves
        (CSR rows give short bursts of spatial locality; calibrated 1.25).
    remote_penalty:
        Multiplier on ``random_access_ns`` for an access to a remote NUMA
        node's memory.
    remote_fraction:
        Fraction of probes that cross NUMA boundaries; **0.0 for the
        NUMA-partitioned layouts** (their entire point), > 0 for the
        NUMA-blind reference baseline.
    """

    random_access_ns: float = 55.0
    per_vertex_ns: float = 20.0
    threads: int = 48
    mlp: float = 1.25
    remote_penalty: float = 2.0
    remote_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.random_access_ns <= 0 or self.per_vertex_ns < 0:
            raise ConfigurationError("non-positive access cost")
        if self.threads <= 0:
            raise ConfigurationError(f"threads must be positive: {self.threads}")
        if self.mlp <= 0:
            raise ConfigurationError(f"mlp must be positive: {self.mlp}")
        if self.remote_penalty < 1.0:
            raise ConfigurationError("remote_penalty must be >= 1")
        if not 0.0 <= self.remote_fraction <= 1.0:
            raise ConfigurationError("remote_fraction must be in [0, 1]")

    # -- derived rates ------------------------------------------------------------

    @property
    def probe_throughput_per_s(self) -> float:
        """Sustained random edge probes per second, NUMA-local."""
        return self.threads * self.mlp / (self.random_access_ns * 1e-9)

    @property
    def effective_probe_ns(self) -> float:
        """Mean per-probe cost including the remote-access mix."""
        return self.random_access_ns * (
            1.0 + (self.remote_penalty - 1.0) * self.remote_fraction
        )

    # -- charging -------------------------------------------------------------------

    def level_time_s(
        self,
        edges_scanned: int,
        frontier_size: int,
        next_size: int,
    ) -> float:
        """DRAM-side time of one BFS level.

        ``edges_scanned`` is the exact probe count of the level (all
        frontier out-edges top-down; early-termination counts bottom-up);
        vertex terms cover dequeue of the frontier and enqueue of the
        discovered set.
        """
        if min(edges_scanned, frontier_size, next_size) < 0:
            raise ConfigurationError("negative level statistics")
        probe_s = edges_scanned * self.effective_probe_ns * 1e-9
        vertex_s = (frontier_size + next_size) * self.per_vertex_ns * 1e-9
        return (probe_s + vertex_s) / (self.threads * self.mlp)

    def per_request_think_time_s(self, edges_per_request: float) -> float:
        """CPU time a reader thread spends per NVM request.

        Fed to the device queueing model as closed-system think time: after
        each 4 KB read the thread filters/dedups the fetched destinations
        before issuing the next request.
        """
        if edges_per_request < 0:
            raise ConfigurationError("negative edges per request")
        return edges_per_request * self.effective_probe_ns * 1e-9 / self.mlp

    # -- variants ---------------------------------------------------------------------

    def reference(self) -> "DramCostModel":
        """The Graph500 v2.1.4 reference-code profile.

        NUMA-blind allocation (¾ of probes remote on a 4-socket machine)
        and heavy shared-queue contention (effective parallelism of a
        handful of threads) — calibrated so the reference lands near its
        measured 0.04 GTEPS against NETAL's 0.6 GTEPS top-down.
        """
        return replace(self, threads=8, remote_fraction=0.75)

    def with_topology(self, n_nodes: int, cores_per_node: int) -> "DramCostModel":
        """Rescale the thread count to a different simulated machine."""
        return replace(self, threads=n_nodes * cores_per_node)
