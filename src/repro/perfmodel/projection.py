"""Scale projection of modeled run times.

The reproduction runs at SCALEs far below the paper's 27, which inflates
relative NVM overheads: a BFS has a handful of *constant-cost* levels
(tiny frontiers whose I/O latency does not shrink with the graph) and a
body of *amortizing* levels (whose work grows with the graph).  At small
SCALE the constant levels dominate; at SCALE 27 they vanish into a 0.35 s
run.  This estimator separates the two classes in a measured trace and
projects the run to a larger SCALE:

* a level is **amortizing** when its frontier is at least the worker
  count (the queueing model's saturation regime); its time is scaled by
  the vertex-count ratio ``2^(target−source)`` — Kronecker level
  populations grow ~linearly with ``n`` in the body of the search;
* all other levels are **constant**: their absolute time is kept.

The projection is an *estimator with stated assumptions*, not a
measurement — EXPERIMENTS.md reports it alongside, never instead of, the
measured numbers.  Its value is the asymptotic degradation
(``projected_degradation`` for a DRAM/NVM run pair), which converges to
the amortizing-component ratio the paper's SCALE-27 percentages reflect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bfs.metrics import BFSResult
from repro.errors import ConfigurationError

__all__ = ["ScaleProjection", "project_run", "projected_degradation"]


@dataclass(frozen=True)
class ScaleProjection:
    """Projection of one run to a target SCALE."""

    source_scale: int
    target_scale: int
    amortizing_time_s: float
    constant_time_s: float

    @property
    def ratio(self) -> float:
        """Vertex-count ratio applied to amortizing levels."""
        return float(1 << (self.target_scale - self.source_scale))

    @property
    def projected_time_s(self) -> float:
        """Estimated modeled run time at the target SCALE."""
        return self.amortizing_time_s * self.ratio + self.constant_time_s


def project_run(
    result: BFSResult,
    source_scale: int,
    target_scale: int,
    saturation_frontier: int = 48,
) -> ScaleProjection:
    """Split a run's levels into amortizing/constant and project.

    Parameters
    ----------
    result:
        A modeled run (``modeled_time_s`` populated per level).
    source_scale / target_scale:
        Base-2 logs of the measured and target vertex counts.
    saturation_frontier:
        Minimum frontier size for a level to count as amortizing
        (default: the paper machine's 48 workers).
    """
    if target_scale < source_scale:
        raise ConfigurationError(
            f"target scale {target_scale} below source {source_scale}"
        )
    amortizing = 0.0
    constant = 0.0
    for t in result.traces:
        if t.frontier_size >= saturation_frontier:
            amortizing += t.modeled_time_s
        else:
            constant += t.modeled_time_s
    return ScaleProjection(
        source_scale=source_scale,
        target_scale=target_scale,
        amortizing_time_s=amortizing,
        constant_time_s=constant,
    )


def projected_degradation(
    dram_result: BFSResult,
    nvm_result: BFSResult,
    source_scale: int,
    target_scale: int,
    saturation_frontier: int = 48,
) -> float:
    """Estimated TEPS degradation of the NVM run at the target SCALE.

    Both runs must share graph, root and switching parameters.  Returns
    ``1 − projected_dram_time / projected_nvm_time`` — comparable to the
    paper's 19.18 % / 47.1 % figures, with this module's assumptions.
    """
    dram = project_run(
        dram_result, source_scale, target_scale, saturation_frontier
    )
    nvm = project_run(
        nvm_result, source_scale, target_scale, saturation_frontier
    )
    if nvm.projected_time_s <= 0:
        return 0.0
    return max(0.0, 1.0 - dram.projected_time_s / nvm.projected_time_s)
