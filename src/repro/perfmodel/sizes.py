"""Analytic data-structure size model (Table II, Figure 3).

Reverse-engineering the paper's published sizes pins down NETAL's exact
on-machine layout.  With ``n = 2**SCALE`` vertices, ``M = 16·n`` generated
edges, ``ℓ = 4`` NUMA nodes and **no deduplication** (the value arrays
keep all ``2M`` directed entries):

====================  =========================  ==========================
Structure             Bytes                      Check against the paper
====================  =========================  ==========================
Edge list             ``12·M`` (48-bit packed    SCALE 31: 2³⁵·12 = 384 GB ✓
                      vertex pair)
Forward graph         ``8·2M + 16·n·ℓ``          SCALE 27: 32+8 = 40 GB
                      (value 8 B; index 16 B     (paper: 40.1) ✓ ·
                      per vertex **per node**)   SCALE 31: 512+128 = 640 GB ✓
Backward graph        ``8·2M + 8·n``             SCALE 27: 32+1 = 33 GB
                      (index not duplicated)     (paper: 33.1) ✓ ·
                                                 SCALE 31: 512+16 = 528 GB ✓
BFS status data       ``a·n + b`` with           SCALE 27: 15.1 GB ✓ ·
                      ``a = 68.8 B``,            SCALE 26: 10.8 GB ✓
                      ``b = 6.5 GiB``            (two-point calibration)
====================  =========================  ==========================

The status-data affine fit is the only calibrated component: its slope
covers the tree, queues, candidate lists and bitmaps (~69 B/vertex) and
its intercept the per-thread preallocated buffers of a 48-thread run.

The model also measures *this reproduction's* actual structures
(:meth:`GraphSizeModel.measured`) so benches can report paper-layout and
repro-layout sizes side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.util.units import GIB, format_bytes

__all__ = ["SizeBreakdown", "GraphSizeModel"]


@dataclass(frozen=True)
class SizeBreakdown:
    """Per-structure byte counts for one SCALE (one bar of Figure 3)."""

    scale: int
    edge_list: int
    forward: int
    backward: int
    status: int

    @property
    def graph_total(self) -> int:
        """Edge list + forward + backward (Figure 3's stacked bar)."""
        return self.edge_list + self.forward + self.backward

    @property
    def working_set(self) -> int:
        """Forward + backward + status (Table II's total, 88.3 GB @ 27)."""
        return self.forward + self.backward + self.status

    def format_row(self) -> str:
        """One table row in the paper's unit (binary GB)."""
        return (
            f"SCALE {self.scale:>2}: edge_list={format_bytes(self.edge_list):>9} "
            f"forward={format_bytes(self.forward):>9} "
            f"backward={format_bytes(self.backward):>9} "
            f"status={format_bytes(self.status):>9} "
            f"working_set={format_bytes(self.working_set):>9}"
        )


@dataclass(frozen=True)
class GraphSizeModel:
    """NETAL's layout constants (defaults = the paper's machine).

    Parameters
    ----------
    edge_factor:
        Graph500 edge factor (paper: 16).
    n_numa_nodes:
        ℓ; the forward index array is duplicated per node.
    edge_tuple_bytes:
        Bytes per edge-list tuple (NETAL packs two 48-bit IDs → 12).
    value_bytes:
        Bytes per CSR value entry.
    forward_index_bytes:
        Bytes per vertex per node in the forward index (16: offset+length).
    backward_index_bytes:
        Bytes per vertex in the backward index.
    status_bytes_per_vertex / status_fixed_bytes:
        Affine BFS-status fit calibrated on Table II + the SCALE 26 run.
    """

    edge_factor: int = 16
    n_numa_nodes: int = 4
    edge_tuple_bytes: int = 12
    value_bytes: int = 8
    forward_index_bytes: int = 16
    backward_index_bytes: int = 8
    status_bytes_per_vertex: float = 68.8
    status_fixed_bytes: int = int(6.5 * GIB)

    def __post_init__(self) -> None:
        if self.edge_factor < 1 or self.n_numa_nodes < 1:
            raise ConfigurationError("edge_factor and n_numa_nodes must be >= 1")

    # -- components -----------------------------------------------------------------

    def n_vertices(self, scale: int) -> int:
        """N = 2**SCALE."""
        if scale < 1:
            raise ConfigurationError(f"scale must be >= 1, got {scale}")
        return 1 << scale

    def n_edges(self, scale: int) -> int:
        """M = N · edge_factor (input tuples)."""
        return self.n_vertices(scale) * self.edge_factor

    def edge_list_bytes(self, scale: int) -> int:
        """Tuple-format edge list on NVM."""
        return self.edge_tuple_bytes * self.n_edges(scale)

    def forward_bytes(self, scale: int) -> int:
        """Forward CSR: 2M values + per-node duplicated index."""
        return (
            self.value_bytes * 2 * self.n_edges(scale)
            + self.forward_index_bytes * self.n_vertices(scale) * self.n_numa_nodes
        )

    def backward_bytes(self, scale: int) -> int:
        """Backward CSR: 2M values + single index."""
        return (
            self.value_bytes * 2 * self.n_edges(scale)
            + self.backward_index_bytes * self.n_vertices(scale)
        )

    def status_bytes(self, scale: int) -> int:
        """BFS status data (tree, queues, bitmaps, thread buffers)."""
        return int(
            self.status_bytes_per_vertex * self.n_vertices(scale)
            + self.status_fixed_bytes
        )

    def breakdown(self, scale: int) -> SizeBreakdown:
        """All components for one SCALE (one Figure 3 bar / Table II)."""
        return SizeBreakdown(
            scale=scale,
            edge_list=self.edge_list_bytes(scale),
            forward=self.forward_bytes(scale),
            backward=self.backward_bytes(scale),
            status=self.status_bytes(scale),
        )

    def sweep(self, scales: range) -> list[SizeBreakdown]:
        """Figure 3's x-axis sweep."""
        return [self.breakdown(s) for s in scales]

    def min_dram_only_bytes(self, scale: int) -> int:
        """DRAM needed to run without any offloading (all structures)."""
        b = self.breakdown(scale)
        return b.working_set

    def min_semi_external_bytes(self, scale: int) -> int:
        """DRAM needed with the paper's offloading (forward graph on NVM)."""
        b = self.breakdown(scale)
        return b.backward + b.status

    # -- measuring this reproduction's actual objects ---------------------------------

    @staticmethod
    def measured(forward, backward, state) -> SizeBreakdown:
        """Byte counts of live repro objects (int64 layout, not NETAL's).

        Parameters are a :class:`~repro.csr.partition.ForwardGraph`, a
        :class:`~repro.csr.partition.BackwardGraph` and a
        :class:`~repro.bfs.state.BFSState`.
        """
        return SizeBreakdown(
            scale=int(forward.n_vertices).bit_length() - 1,
            edge_list=0,
            forward=forward.nbytes,
            backward=backward.nbytes,
            status=state.status_nbytes(),
        )
