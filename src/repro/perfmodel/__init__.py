"""Analytic performance, capacity and energy models.

Three models turn the reproduction's *measured structure* (edge scans, I/O
request streams, data-structure sizes) into the paper's *reported units*
(GTEPS, GB, MTEPS/W):

* :mod:`~repro.perfmodel.cost` — per-level simulated time from DRAM access
  counts plus the NVM device charges, yielding modeled TEPS;
* :mod:`~repro.perfmodel.sizes` — the exact data-structure size model that
  reproduces Table II and Figure 3 (it recovers the paper's 40.1 / 33.1 /
  15.1 GB at SCALE 27 and the 1.5 TB total at SCALE 31);
* :mod:`~repro.perfmodel.power` — nameplate power of the Table I machines
  for the Green Graph500 MTEPS/W figure.
"""

from repro.perfmodel.cost import DramCostModel
from repro.perfmodel.power import MachinePowerModel
from repro.perfmodel.projection import (
    ScaleProjection,
    project_run,
    projected_degradation,
)
from repro.perfmodel.sizes import GraphSizeModel, SizeBreakdown

__all__ = [
    "DramCostModel",
    "MachinePowerModel",
    "ScaleProjection",
    "project_run",
    "projected_degradation",
    "GraphSizeModel",
    "SizeBreakdown",
]
