"""Nameplate power model for the Green Graph500 figure (MTEPS/W).

The paper's abstract and §VIII report 4.35 MTEPS/W on a Huawei 4-socket
machine with 500 GB of DRAM and 4 TB of NVM (Green Graph500, Nov 2013, Big
Data category, rank 4).  No power trace is published, so the model sums
component nameplate draws — the standard methodology for list submissions
without wall-socket measurement:

* CPU sockets at their ACP/TDP-derived sustained draw (Opteron 6172:
  80 W ACP);
* DRAM at a per-GiB DDR3 active draw;
* NVM devices at their datasheet active-read draw;
* a base platform constant (board, fans, PSU losses).

With the default constants the paper's DRAM+PCIeFlash machine models at
~0.5 kW and the 4.22 GTEPS run lands within a few percent of the
published 4.35 MTEPS/W (see the Green bench and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.util.units import GIB

__all__ = ["MachinePowerModel"]


@dataclass(frozen=True)
class MachinePowerModel:
    """Component-wise machine power in watts.

    Parameters
    ----------
    n_sockets / watts_per_socket:
        CPU package count and sustained per-package draw.
    dram_bytes / watts_per_dram_gib:
        Installed DRAM and its per-GiB active draw (DDR3 ≈ 0.4 W/GiB
        including the memory controller share).
    nvm_watts:
        Active draw of all installed NVM devices (ioDrive2 ≈ 25 W;
        a SATA SSD ≈ 4 W).
    base_watts:
        Motherboard, fans and PSU conversion losses.
    """

    n_sockets: int = 4
    watts_per_socket: float = 80.0
    dram_bytes: int = 64 * GIB
    watts_per_dram_gib: float = 0.4
    nvm_watts: float = 25.0
    base_watts: float = 90.0

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise ConfigurationError(f"n_sockets must be >= 1: {self.n_sockets}")
        if min(
            self.watts_per_socket,
            self.watts_per_dram_gib,
            self.nvm_watts,
            self.base_watts,
        ) < 0:
            raise ConfigurationError("negative power component")
        if self.dram_bytes <= 0:
            raise ConfigurationError(f"dram_bytes must be positive: {self.dram_bytes}")

    @property
    def total_watts(self) -> float:
        """Machine draw under BFS load."""
        return (
            self.n_sockets * self.watts_per_socket
            + (self.dram_bytes / GIB) * self.watts_per_dram_gib
            + self.nvm_watts
            + self.base_watts
        )

    def mteps_per_watt(self, teps: float) -> float:
        """The Green Graph500 metric for a given TEPS score."""
        if teps < 0:
            raise ConfigurationError(f"negative TEPS: {teps}")
        return teps / 1e6 / self.total_watts

    # -- the machines of the paper ------------------------------------------------------

    @classmethod
    def paper_dram_only(cls) -> "MachinePowerModel":
        """Table I DRAM-only: 128 GB DRAM, no NVM."""
        return cls(dram_bytes=128 * GIB, nvm_watts=0.0)

    @classmethod
    def paper_pcie_flash(cls) -> "MachinePowerModel":
        """Table I DRAM+PCIeFlash: 64 GB DRAM + ioDrive2."""
        return cls(dram_bytes=64 * GIB, nvm_watts=25.0)

    @classmethod
    def paper_sata_ssd(cls) -> "MachinePowerModel":
        """Table I DRAM+SSD: 64 GB DRAM + Intel 320."""
        return cls(dram_bytes=64 * GIB, nvm_watts=4.0)

    @classmethod
    def green_graph500_submission(cls) -> "MachinePowerModel":
        """§VIII's Huawei system: 4-way, 500 GB DRAM, 4 TB NVM."""
        return cls(
            n_sockets=4,
            watts_per_socket=130.0,  # Xeon E5-4650 class TDP
            dram_bytes=500 * GIB,
            watts_per_dram_gib=0.4,
            nvm_watts=115.0,  # 4 TB of PCIe flash across several cards
            base_watts=135.0,
        )
