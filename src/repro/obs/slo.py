"""Declarative SLOs over a session: budgets, burn rates, verdicts.

An :class:`SLOSpec` names a service-level objective over one of three
SLI sources the session already records:

* ``latency`` — the timestamped ``serve.complete`` event stream; a
  request is *good* when its ``latency_s`` is at or under the spec's
  ``threshold_s``;
* ``availability`` — ``serve.complete`` (good) vs ``serve.reject``
  (bad) events;
* ``error_rate`` — the resilient-read fault counters
  (``resilience.transient_errors_total`` over
  ``resilience.attempts_total``, summed across devices).  Counters
  carry no timestamps, so this SLI has one whole-run window: every
  burn-rate column repeats the run-level value.

:func:`evaluate` turns specs + session into an :class:`SLOReport` with
classic error-budget accounting (budget = ``(1 - target) × total``
events) and multi-window burn rates à la the SRE workbook: each window
is a trailing fraction of the run, the burn rate is the bad fraction
inside it divided by the allowed bad fraction, and an alert fires only
when *both* the shortest (fast signal) and longest (sustained signal)
windows burn at or above ``burn_alert``.

Every timestamp involved is simulated-clock time, so two same-seed runs
produce byte-identical :meth:`SLOReport.to_json` output (pinned by
``tests/test_obs_slo.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs.schema import M_RES_ATTEMPTS, M_RES_TRANSIENT

__all__ = [
    "SLOSpec",
    "WindowBurn",
    "SLOResult",
    "SLOReport",
    "DEFAULT_SERVE_SLOS",
    "dist_worker_slos",
    "evaluate",
]

#: SLI kinds :func:`evaluate` knows how to extract.
KINDS = ("latency", "availability", "error_rate")

#: Default trailing windows, as fractions of the run duration.
DEFAULT_WINDOWS = (0.05, 0.25, 1.0)


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective over a recorded session.

    ``target`` is the required good fraction (0.95 → 95 % of events
    good); ``threshold_s`` is the latency cut-off (``latency`` kind
    only); ``windows`` are trailing burn-rate windows as fractions of
    the run duration; ``burn_alert`` is the burn-rate level at which
    the fast+slow window pair pages.

    ``event``/``reject_event`` name the SLI's event streams (the serve
    tier's ``serve.complete``/``serve.reject`` by default; the
    distributed tier points them at ``dist.query``), and ``where``
    filters events by attribute equality — ``(("worker", "2"),)``
    scopes an objective to one partition worker.  Attribute values are
    compared as strings.
    """

    name: str
    description: str
    kind: str
    target: float
    threshold_s: float | None = None
    windows: tuple[float, ...] = DEFAULT_WINDOWS
    burn_alert: float = 2.0
    event: str = "serve.complete"
    reject_event: str = "serve.reject"
    where: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown SLO kind {self.kind!r}; expected one of {KINDS}"
            )
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError(
                f"SLO target must be in (0, 1): {self.target}"
            )
        if self.kind == "latency" and self.threshold_s is None:
            raise ConfigurationError(
                f"latency SLO {self.name!r} needs threshold_s"
            )
        if not self.windows or any(
            not 0.0 < w <= 1.0 for w in self.windows
        ):
            raise ConfigurationError(
                f"windows must be fractions in (0, 1]: {self.windows}"
            )


@dataclass(frozen=True)
class WindowBurn:
    """Burn rate over one trailing window of the run."""

    window_s: float
    total: int
    bad: int
    burn_rate: float

    def to_dict(self) -> dict:
        """JSON-safe rendering."""
        return {
            "window_s": self.window_s,
            "total": self.total,
            "bad": self.bad,
            "burn_rate": round(self.burn_rate, 9),
        }


@dataclass(frozen=True)
class SLOResult:
    """Verdict of one spec: SLI, budget accounting, burn rates."""

    spec: SLOSpec
    total: int
    good: int
    bad: int
    sli: float
    met: bool
    budget_allowed: float  # events the target permits to be bad
    budget_consumed: float  # fraction of that budget spent (may be > 1)
    burns: tuple[WindowBurn, ...]
    alert: bool

    def to_dict(self) -> dict:
        """JSON-safe rendering."""
        return {
            "name": self.spec.name,
            "description": self.spec.description,
            "kind": self.spec.kind,
            "target": self.spec.target,
            "threshold_s": self.spec.threshold_s,
            "event": self.spec.event,
            "where": [list(pair) for pair in self.spec.where],
            "total": self.total,
            "good": self.good,
            "bad": self.bad,
            "sli": round(self.sli, 9),
            "met": self.met,
            "budget_allowed": round(self.budget_allowed, 9),
            "budget_consumed": round(self.budget_consumed, 9),
            "burn_alert": self.spec.burn_alert,
            "burns": [b.to_dict() for b in self.burns],
            "alert": self.alert,
        }


@dataclass(frozen=True)
class SLOReport:
    """All verdicts of one evaluation pass."""

    duration_s: float
    results: tuple[SLOResult, ...] = field(default_factory=tuple)

    @property
    def all_met(self) -> bool:
        """True when every objective held."""
        return all(r.met for r in self.results)

    @property
    def alerting(self) -> tuple[str, ...]:
        """Names of objectives whose burn-rate alert fired."""
        return tuple(r.spec.name for r in self.results if r.alert)

    def to_dict(self) -> dict:
        """Deterministic nested-dict rendering."""
        return {
            "duration_s": self.duration_s,
            "all_met": self.all_met,
            "alerting": list(self.alerting),
            "slos": [r.to_dict() for r in self.results],
        }

    def to_json(self) -> str:
        """Canonical JSON — byte-identical for same-seed sessions."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    def format(self) -> str:
        """The SLO verdict table ``repro-bfs serve --slo`` prints."""
        from repro.analysis.report import ascii_table

        if not self.results:
            return "SLO verdicts: no objectives evaluated"
        windows = self.results[0].spec.windows
        headers = (
            ["slo", "kind", "sli", "target", "met", "budget used"]
            + [f"burn {w * 100:g}%w" for w in windows]
            + ["alert"]
        )
        rows = []
        for r in self.results:
            rows.append(
                [
                    r.spec.name,
                    r.spec.kind,
                    f"{r.sli:.4f}",
                    f"{r.spec.target:.4f}",
                    "yes" if r.met else "NO",
                    f"{r.budget_consumed * 100:.1f}%",
                ]
                + [f"{b.burn_rate:.2f}x" for b in r.burns]
                + ["FIRING" if r.alert else "-"]
            )
        verdict = "all objectives met" if self.all_met else (
            "OBJECTIVES VIOLATED: "
            + ", ".join(r.spec.name for r in self.results if not r.met)
        )
        table = ascii_table(
            headers, rows,
            title=f"SLO verdicts (simulated run of {self.duration_s:.3f} s)",
        )
        return f"{table}\n{verdict}"


#: The serving tier's stock objectives (thresholds in simulated time).
DEFAULT_SERVE_SLOS: tuple[SLOSpec, ...] = (
    SLOSpec(
        name="serve-latency",
        description="95% of served requests complete within 50 ms "
                    "(simulated arrival-to-completion).",
        kind="latency",
        target=0.95,
        threshold_s=0.050,
    ),
    SLOSpec(
        name="serve-availability",
        description="99% of requests are answered rather than shed "
                    "(queue_full or degraded).",
        kind="availability",
        target=0.99,
    ),
    SLOSpec(
        name="device-error-rate",
        description="99% of device read attempts succeed without an "
                    "injected transient error.",
        kind="error_rate",
        target=0.99,
    ),
)


def dist_worker_slos(
    n_workers: int,
    threshold_s: float = 0.050,
    target: float = 0.95,
) -> tuple[SLOSpec, ...]:
    """Latency objectives for a partitioned deployment's query stream.

    Returns one overall objective over every ``dist.query`` event plus
    one per-worker objective scoped with ``where=(("worker", k),)`` —
    replica-routed queries carry their worker id, coordinator-routed
    queries carry ``worker=-1`` and so count only toward the overall
    objective.
    """
    if n_workers < 1:
        raise ConfigurationError(
            f"n_workers must be >= 1, got {n_workers}"
        )
    specs = [
        SLOSpec(
            name="dist-query-latency",
            description=f"{target * 100:g}% of partitioned queries "
                        f"complete within {threshold_s * 1000:g} ms.",
            kind="latency",
            target=target,
            threshold_s=threshold_s,
            event="dist.query",
        )
    ]
    for k in range(n_workers):
        specs.append(
            SLOSpec(
                name=f"dist-worker{k}-latency",
                description=f"{target * 100:g}% of replica queries "
                            f"served by worker {k} complete within "
                            f"{threshold_s * 1000:g} ms.",
                kind="latency",
                target=target,
                threshold_s=threshold_s,
                event="dist.query",
                where=(("worker", str(k)),),
            )
        )
    return tuple(specs)


def _counter_sum(obs, name: str) -> float:
    total = 0.0
    for metric in obs.registry.metrics():
        if metric.name == name:
            total += metric.value
    return total


def _where_matches(event, where: tuple[tuple[str, str], ...]) -> bool:
    return all(
        str(event.attrs.get(key)) == value for key, value in where
    )


def _samples_for(obs, spec: SLOSpec) -> list[tuple[float, bool]]:
    """Timestamped (t_s, good) samples of one spec's SLI."""
    samples: list[tuple[float, bool]] = []
    if spec.kind == "latency":
        for e in obs.tracer.events:
            if e.name == spec.event and _where_matches(e, spec.where):
                lat = float(e.attrs.get("latency_s", 0.0))
                samples.append((e.t_s, lat <= spec.threshold_s))
    elif spec.kind == "availability":
        for e in obs.tracer.events:
            if not _where_matches(e, spec.where):
                continue
            if e.name == spec.event:
                samples.append((e.t_s, True))
            elif e.name == spec.reject_event:
                samples.append((e.t_s, False))
    samples.sort(key=lambda s: s[0])
    return samples


def _evaluate_one(obs, spec: SLOSpec, duration_s: float) -> SLOResult:
    if spec.kind == "error_rate":
        attempts = int(_counter_sum(obs, M_RES_ATTEMPTS))
        errors = int(_counter_sum(obs, M_RES_TRANSIENT))
        total, bad = attempts, min(errors, attempts)
        window_counts = [(total, bad)] * len(spec.windows)
    else:
        samples = _samples_for(obs, spec)
        total = len(samples)
        bad = sum(1 for _, good in samples if not good)
        window_counts = []
        for frac in spec.windows:
            w_start = duration_s - frac * duration_s
            in_w = [(t, g) for t, g in samples if t >= w_start]
            window_counts.append(
                (len(in_w), sum(1 for _, g in in_w if not g))
            )
    good = total - bad
    sli = good / total if total else 1.0
    allowed_frac = 1.0 - spec.target
    budget_allowed = allowed_frac * total
    budget_consumed = bad / budget_allowed if budget_allowed > 0 else 0.0
    burns = []
    for frac, (w_total, w_bad) in zip(spec.windows, window_counts):
        bad_frac = w_bad / w_total if w_total else 0.0
        burns.append(WindowBurn(
            window_s=frac * duration_s,
            total=w_total,
            bad=w_bad,
            burn_rate=bad_frac / allowed_frac,
        ))
    # Multi-window alert: the shortest window says "burning now", the
    # longest says "and it is sustained" — both must exceed the line.
    alert = (
        burns[0].burn_rate >= spec.burn_alert
        and burns[-1].burn_rate >= spec.burn_alert
    )
    return SLOResult(
        spec=spec,
        total=total,
        good=good,
        bad=bad,
        sli=sli,
        met=sli >= spec.target,
        budget_allowed=budget_allowed,
        budget_consumed=budget_consumed,
        burns=tuple(burns),
        alert=alert,
    )


def evaluate(
    obs,
    specs: tuple[SLOSpec, ...] = DEFAULT_SERVE_SLOS,
    duration_s: float | None = None,
) -> SLOReport:
    """Evaluate every spec against one session.

    ``duration_s`` anchors the trailing windows (default: the latest
    simulated timestamp any span or event recorded).
    """
    if duration_s is None:
        duration_s = 0.0
        for s in obs.tracer.spans:
            t = s.t_end_s if s.t_end_s is not None else s.t_start_s
            duration_s = max(duration_s, t)
        for e in obs.tracer.events:
            duration_s = max(duration_s, e.t_s)
    results = tuple(
        _evaluate_one(obs, spec, duration_s) for spec in specs
    )
    return SLOReport(duration_s=duration_s, results=results)
