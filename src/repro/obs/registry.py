"""The metrics registry: counters, gauges and histograms with labels.

One :class:`MetricsRegistry` holds every numeric measurement a run
produces.  The design follows the Prometheus data model — because that is
the schema FlashGraph-style tuning sessions actually consume — restricted
to what a deterministic simulation needs:

* **Counter** — monotonically increasing total (``*_total`` names);
* **Gauge** — a value that can go anywhere (queue depth, resident bytes);
* **Histogram** — cumulative ≤-bucket counts plus count/sum, with a
  vectorized :meth:`Histogram.observe_many` so per-request distributions
  (thousands of observations per BFS level) stay cheap.

Labels are free-form ``key=value`` string pairs; the same metric name may
not be registered as two different kinds.  All iteration orders are
sorted, so two same-seed runs produce byte-identical exports — the
property the determinism tests pin.

The registry is zero-dependency (NumPy aside, which the repo already
requires everywhere) and knows nothing about BFS; the names the
reproduction emits are catalogued in :mod:`repro.obs.schema`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

# Decade buckets wide enough for bytes, sectors, vertices and seconds.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    float(10.0**e) for e in range(-6, 7)
)

Labels = tuple[tuple[str, str], ...]


def _normalize_labels(labels: dict[str, object]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_labels(labels: Labels) -> str:
    """Render labels in Prometheus brace syntax ('' when unlabeled)."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be ≥ 0) to the total."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += float(amount)

    def __repr__(self) -> str:
        return f"Counter({self.name}{format_labels(self.labels)}={self.value})"


class Gauge:
    """A value that may move in either direction."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current value by ``amount``."""
        self.value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the current value by ``-amount``."""
        self.value -= float(amount)

    def __repr__(self) -> str:
        return f"Gauge({self.name}{format_labels(self.labels)}={self.value})"


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ≤ ``buckets[i]``; an implicit
    ``+Inf`` bucket equals :attr:`count`.
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "labels",
        "buckets",
        "bucket_counts",
        "count",
        "sum",
        "exemplars",
    )

    def __init__(
        self, name: str, labels: Labels, buckets: tuple[float, ...]
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError(
                f"histogram {name!r} needs sorted non-empty buckets"
            )
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0
        # OpenMetrics-style exemplars: bucket le-string -> last
        # (trace_id, value) observed in that bucket.  A bad quantile's
        # bucket therefore links straight to a trace to open.
        self.exemplars: dict[str, tuple[str, float]] = {}

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one observation; optionally tag its bucket with a
        trace-id exemplar."""
        value = float(value)
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
        if exemplar is not None:
            self.exemplars[self._exemplar_le(value)] = (
                str(exemplar),
                value,
            )

    def _exemplar_le(self, value: float) -> str:
        """The le-string of the tightest bucket containing ``value``."""
        for bound in self.buckets:
            if value <= bound:
                return _format_bound(bound)
        return "+Inf"

    def observe_many(self, values: np.ndarray) -> None:
        """Record a batch of observations (vectorized)."""
        arr = np.asarray(values, dtype=np.float64).reshape(-1)
        if arr.size == 0:
            return
        self.count += int(arr.size)
        self.sum += float(arr.sum())
        # np.searchsorted with side="left" maps v -> first bucket with
        # bound >= v; cumulative counts follow from the bincount prefix.
        idx = np.searchsorted(np.asarray(self.buckets), arr, side="left")
        per_bucket = np.bincount(idx, minlength=len(self.buckets) + 1)
        below = np.cumsum(per_bucket[: len(self.buckets)])
        for i, n in enumerate(below):
            self.bucket_counts[i] += int(n)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}{format_labels(self.labels)}: "
            f"count={self.count}, sum={self.sum:.6g})"
        )


Metric = Counter | Gauge | Histogram


@dataclass(frozen=True)
class MetricSample:
    """One exported time-series point (histograms expand to several)."""

    name: str
    labels: Labels
    value: float

    @property
    def key(self) -> str:
        """Canonical ``name{labels}`` rendering."""
        return self.name + format_labels(self.labels)


class MetricsRegistry:
    """All metrics of one observability session.

    Metric instances are created lazily on first use and are identified
    by ``(name, labels)``; re-requesting the same pair returns the same
    instance.  Thread-safe: creation takes an internal lock (the storage
    layer's charge lock already serializes the hot increments, but shard
    workers may touch the registry concurrently).
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, Labels], Metric] = {}
        self._kinds: dict[str, str] = {}
        self._lock = threading.Lock()

    # -- metric access -----------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get(name, "counter", labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get(name, "gauge", labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``."""
        return self._get(name, "histogram", labels, buckets)  # type: ignore[return-value]

    def _get(
        self,
        name: str,
        kind: str,
        labels: dict[str, object],
        buckets: tuple[float, ...] | None = None,
    ) -> Metric:
        key = (name, _normalize_labels(labels))
        with self._lock:
            existing = self._kinds.get(name)
            if existing is not None and existing != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {existing}, "
                    f"requested as {kind}"
                )
            metric = self._metrics.get(key)
            if metric is None:
                if kind == "counter":
                    metric = Counter(name, key[1])
                elif kind == "gauge":
                    metric = Gauge(name, key[1])
                else:
                    assert buckets is not None
                    metric = Histogram(name, key[1], buckets)
                self._metrics[key] = metric
                self._kinds[name] = kind
            return metric

    # -- read-side views ---------------------------------------------------------

    def names(self) -> list[str]:
        """Sorted distinct metric names."""
        return sorted(self._kinds)

    def kind_of(self, name: str) -> str | None:
        """Registered kind of ``name`` (``None`` if never used)."""
        return self._kinds.get(name)

    def metrics(self) -> list[Metric]:
        """All metric instances, sorted by (name, labels)."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def value(self, name: str, **labels: object) -> float:
        """Current value of a counter/gauge (0.0 if never touched)."""
        metric = self._metrics.get((name, _normalize_labels(labels)))
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            raise ConfigurationError(
                f"{name!r} is a histogram; read .count/.sum on the instance"
            )
        return metric.value

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across all label sets."""
        return sum(
            m.value
            for m in self.metrics()
            if m.name == name and not isinstance(m, Histogram)
        )

    def samples(self) -> list[MetricSample]:
        """Flatten every metric into exportable samples (sorted).

        Histograms expand Prometheus-style: ``name_bucket{le=...}`` per
        bound (plus ``+Inf``), ``name_count`` and ``name_sum``.
        """
        out: list[MetricSample] = []
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                for bound, count in zip(metric.buckets, metric.bucket_counts):
                    out.append(
                        MetricSample(
                            f"{metric.name}_bucket",
                            metric.labels + (("le", _format_bound(bound)),),
                            float(count),
                        )
                    )
                out.append(
                    MetricSample(
                        f"{metric.name}_bucket",
                        metric.labels + (("le", "+Inf"),),
                        float(metric.count),
                    )
                )
                out.append(
                    MetricSample(
                        f"{metric.name}_count", metric.labels, float(metric.count)
                    )
                )
                out.append(
                    MetricSample(
                        f"{metric.name}_sum", metric.labels, float(metric.sum)
                    )
                )
            else:
                out.append(
                    MetricSample(metric.name, metric.labels, float(metric.value))
                )
        return out

    def as_dict(self) -> dict[str, float]:
        """``{canonical sample key: value}`` — the determinism-test view."""
        return {s.key: s.value for s in self.samples()}

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._kinds)} names, "
            f"{len(self._metrics)} series)"
        )


def _format_bound(bound: float) -> str:
    """Stable rendering of a bucket bound ('0.001', '100.0', ...)."""
    return repr(float(bound))
