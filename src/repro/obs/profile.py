"""Time-attribution profiling over a session's span tree.

Folds any :class:`~repro.obs.session.Observability` session — live, or
reconstructed from ``events.jsonl`` via
:func:`~repro.obs.exporters.read_jsonl` — into the two classic profiler
views:

* **collapsed stacks** (:func:`collapsed_stacks` /
  :func:`write_collapsed`): ``track;span;span;leaf <self-µs>`` lines in
  the format ``flamegraph.pl`` and speedscope ingest directly, so a
  simulated-clock BFS run renders as an ordinary flame graph;
* a **self-time attribution table** (:func:`self_time_table`): per
  ``(track, span name)`` totals of count, inclusive seconds, *self*
  seconds (inclusive minus children) and attributed bytes (summed from
  span ``bytes`` attrs, e.g. ``nvm.charge``).

Tracks partition the tree by execution lane: spans absorbed from
partition workers carry ``track="worker{k}"`` (set by
:meth:`~repro.obs.session.Observability.absorb`) and profile as their
own lane, everything else lands on the coordinator lane.  Because
self-time telescopes, a lane's total self-time equals the summed
duration of its *root* spans — which for a worker lane is exactly the
per-worker busy time the coordinator accounts in
``dist.worker_seconds_total{worker=k}``.  All virtual time: seconds on
the simulated clock, microseconds (rounded) in the collapsed output.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.obs.spans import Span

__all__ = [
    "SelfTimeRow",
    "collapsed_stacks",
    "self_time_table",
    "write_collapsed",
    "track_of",
]

COORDINATOR_TRACK = "coordinator"


def track_of(span: Span) -> str:
    """The execution lane a span profiles under."""
    track = span.attrs.get("track")
    if isinstance(track, str) and track:
        return track
    return COORDINATOR_TRACK


@dataclass(frozen=True)
class SelfTimeRow:
    """Aggregated attribution for one (track, span name) pair."""

    track: str
    name: str
    count: int
    total_s: float
    self_s: float
    bytes: int


def _self_times(spans: list[Span]) -> dict[int, float]:
    """Self time (inclusive minus direct children) per span id.

    Open spans contribute their recorded extent (0.0 when never
    closed); negative self-time is clamped to 0 — it can only arise
    from clock reconciliation artifacts, never from nesting.
    """
    child_sum: dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None:
            child_sum[span.parent_id] = (
                child_sum.get(span.parent_id, 0.0) + span.duration_s
            )
    return {
        s.span_id: max(0.0, s.duration_s - child_sum.get(s.span_id, 0.0))
        for s in spans
    }


def _stack_names(spans: list[Span]) -> dict[int, tuple[str, ...]]:
    """Root-to-leaf name paths per span id (record order is creation
    order, so parents always resolve before their children)."""
    paths: dict[int, tuple[str, ...]] = {}
    for span in spans:
        # A missing parent (e.g. never recorded) makes the span a root
        # of its own stack.
        parent = (
            paths.get(span.parent_id)
            if span.parent_id is not None
            else None
        )
        paths[span.span_id] = (
            parent + (span.name,) if parent else (span.name,)
        )
    return paths


def collapsed_stacks(obs) -> dict[str, int]:
    """Fold the span tree into ``stack -> self-µs`` (flamegraph input).

    Stack frames are ``track;name;name;...``; values are integer
    microseconds of virtual self-time (rounded), aggregated over every
    occurrence of the same stack.
    """
    spans = list(obs.tracer.spans)
    self_s = _self_times(spans)
    paths = _stack_names(spans)
    folded: dict[str, int] = {}
    for span in spans:
        stack = ";".join((track_of(span),) + paths[span.span_id])
        folded[stack] = folded.get(stack, 0) + round(
            self_s[span.span_id] * 1e6
        )
    return folded


def write_collapsed(obs, path: str | Path) -> Path:
    """Write collapsed stacks (``stack value`` per line, sorted)."""
    path = Path(path)
    folded = collapsed_stacks(obs)
    lines = [f"{stack} {value}" for stack, value in sorted(folded.items())]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def self_time_table(obs) -> list[SelfTimeRow]:
    """Aggregate attribution rows per (track, span name).

    Sorted by descending self-time, then track, then name — the first
    row answers "where does the simulated time actually go".
    """
    spans = list(obs.tracer.spans)
    self_s = _self_times(spans)
    agg: dict[tuple[str, str], list] = {}
    for span in spans:
        key = (track_of(span), span.name)
        row = agg.setdefault(key, [0, 0.0, 0.0, 0])
        row[0] += 1
        row[1] += span.duration_s
        row[2] += self_s[span.span_id]
        nbytes = span.attrs.get("bytes")
        if isinstance(nbytes, (int, float)) and not isinstance(nbytes, bool):
            row[3] += int(nbytes)
    rows = [
        SelfTimeRow(
            track=track,
            name=name,
            count=row[0],
            total_s=row[1],
            self_s=row[2],
            bytes=row[3],
        )
        for (track, name), row in agg.items()
    ]
    rows.sort(key=lambda r: (-r.self_s, r.track, r.name))
    return rows
