"""The observability session: one registry + one tracer + exporters.

An :class:`Observability` object is what flows through the system: the
pipeline, the storage layer, the BFS engines and the Graph500 driver all
accept one (default ``None`` → the shared no-op :data:`NULL`) and record
into it.  At the end of a run, :meth:`Observability.export` writes the
three artifacts next to each other::

    out/
      events.jsonl   # lossless log (round-trips via read_jsonl)
      trace.json     # chrome://tracing / Perfetto
      metrics.prom   # Prometheus text snapshot

Disabled sessions (:data:`NULL`, or ``Observability(enabled=False)``)
keep every recording call a cheap no-op so instrumented hot paths need no
conditionals.
"""

from __future__ import annotations

from contextlib import nullcontext
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.exporters import (
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Span, Tracer

__all__ = ["Observability", "NULL"]


class Observability:
    """A live observability session (or a disabled stand-in)."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.registry = MetricsRegistry()
        self.tracer = Tracer()

    # -- clock -----------------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Attach the simulated clock spans should read (first wins)."""
        if self.enabled:
            self.tracer.bind_clock(clock)

    # -- recording pass-throughs ----------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """Registry counter (a no-op sink when disabled)."""
        if not self.enabled:
            return _NULL_COUNTER
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Registry gauge (a no-op sink when disabled)."""
        if not self.enabled:
            return _NULL_GAUGE
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        """Registry histogram (a no-op sink when disabled)."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self.registry.histogram(name, **labels)

    def span(self, name: str, **attrs: object):
        """Context manager opening a tracer span (no-op when disabled)."""
        if not self.enabled:
            return nullcontext(_NULL_SPAN)
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Record an instant event (dropped when disabled)."""
        if self.enabled:
            self.tracer.event(name, **attrs)

    def track(self, name: str, value: float) -> None:
        """Record a counter-track point (dropped when disabled)."""
        if self.enabled:
            self.tracer.counter(name, value)

    def record_span(
        self,
        name: str,
        t_start_s: float,
        t_end_s: float,
        parent: Span | None = None,
        **attrs: object,
    ) -> Span | None:
        """Append an already-timed span (for synthesized intervals,
        e.g. the direction phases reconstructed after a BFS run)."""
        if not self.enabled:
            return None
        tracer = self.tracer
        with tracer._lock:
            span = Span(
                span_id=tracer._next_id,
                parent_id=parent.span_id if parent is not None else None,
                name=name,
                t_start_s=float(t_start_s),
                t_end_s=float(t_end_s),
                attrs=dict(attrs),
            )
            tracer._next_id += 1
            tracer.spans.append(span)
        return span

    # -- export ----------------------------------------------------------------

    def export(self, outdir: str | Path) -> dict[str, Path]:
        """Write all three artifacts into ``outdir``; returns their paths."""
        if not self.enabled:
            raise ConfigurationError(
                "cannot export a disabled observability session"
            )
        outdir = Path(outdir)
        outdir.mkdir(parents=True, exist_ok=True)
        return {
            "jsonl": write_jsonl(self, outdir / "events.jsonl"),
            "chrome_trace": write_chrome_trace(self, outdir / "trace.json"),
            "prometheus": write_prometheus(
                self.registry, outdir / "metrics.prom"
            ),
        }

    def __repr__(self) -> str:
        if not self.enabled:
            return "Observability(disabled)"
        return (
            f"Observability({len(self.registry)} series, "
            f"{len(self.tracer.spans)} spans)"
        )


class _NullMetric:
    """Absorbs every write; never registered anywhere."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: D102
        pass

    def set(self, value: float) -> None:  # noqa: D102
        pass

    def observe(self, value: float) -> None:  # noqa: D102
        pass

    def observe_many(self, values) -> None:  # noqa: D102
        pass


class _NullSpan(Span):
    """A span that forgets its attributes (the disabled-session yield)."""

    def set(self, **attrs: object) -> "Span":  # noqa: D102
        return self


_NULL_COUNTER = _NullMetric()
_NULL_GAUGE = _NullMetric()
_NULL_HISTOGRAM = _NullMetric()
_NULL_SPAN = _NullSpan(span_id=0, parent_id=None, name="null", t_start_s=0.0)

#: The process-wide disabled session instrumented code defaults to.
NULL = Observability(enabled=False)
