"""The observability session: one registry + one tracer + exporters.

An :class:`Observability` object is what flows through the system: the
pipeline, the storage layer, the BFS engines and the Graph500 driver all
accept one (default ``None`` → the shared no-op :data:`NULL`) and record
into it.  At the end of a run, :meth:`Observability.export` writes the
three artifacts next to each other::

    out/
      events.jsonl   # lossless log (round-trips via read_jsonl)
      trace.json     # chrome://tracing / Perfetto
      metrics.prom   # Prometheus text snapshot

Disabled sessions (:data:`NULL`, or ``Observability(enabled=False)``)
keep every recording call a cheap no-op so instrumented hot paths need no
conditionals.
"""

from __future__ import annotations

from contextlib import nullcontext
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.exporters import (
    metric_record,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import CounterPoint, Span, TraceContext, TraceEvent, Tracer

__all__ = ["Observability", "NULL"]


class _RemoteTrack:
    """Merge state for one (worker, generation) stream of drain payloads.

    Keeps the remote→local span-id map (parents drained in an earlier
    payload still resolve) and the last-seen metric snapshot (absorbing
    a *cumulative* worker registry applies only the delta, so repeated
    drains never double-count).  A restarted worker gets a fresh
    instance — its new registry restarts from zero, and its spans must
    not collide with the dead generation's ids.
    """

    __slots__ = ("id_map", "metric_last")

    def __init__(self) -> None:
        self.id_map: dict[int, int] = {}
        self.metric_last: dict[tuple, object] = {}


class Observability:
    """A live observability session (or a disabled stand-in)."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self._trace_seq = 0
        self._remote: dict[tuple[int, int], _RemoteTrack] = {}

    # -- clock -----------------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Attach the simulated clock spans should read (first wins)."""
        if self.enabled:
            self.tracer.bind_clock(clock)

    # -- recording pass-throughs ----------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """Registry counter (a no-op sink when disabled)."""
        if not self.enabled:
            return _NULL_COUNTER
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Registry gauge (a no-op sink when disabled)."""
        if not self.enabled:
            return _NULL_GAUGE
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        """Registry histogram (a no-op sink when disabled)."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self.registry.histogram(name, **labels)

    def span(self, name: str, **attrs: object):
        """Context manager opening a tracer span (no-op when disabled)."""
        if not self.enabled:
            return nullcontext(_NULL_SPAN)
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Record an instant event (dropped when disabled)."""
        if self.enabled:
            self.tracer.event(name, **attrs)

    def track(self, name: str, value: float) -> None:
        """Record a counter-track point (dropped when disabled)."""
        if self.enabled:
            self.tracer.counter(name, value)

    def record_span(
        self,
        name: str,
        t_start_s: float,
        t_end_s: float,
        parent: Span | None = None,
        **attrs: object,
    ) -> Span | None:
        """Append an already-timed span (for synthesized intervals,
        e.g. the direction phases reconstructed after a BFS run)."""
        if not self.enabled:
            return None
        tracer = self.tracer
        with tracer._lock:
            span = Span(
                span_id=tracer._next_id,
                parent_id=parent.span_id if parent is not None else None,
                name=name,
                t_start_s=float(t_start_s),
                t_end_s=float(t_end_s),
                attrs=dict(attrs),
            )
            tracer._next_id += 1
            tracer.spans.append(span)
        return span

    # -- trace context ----------------------------------------------------------

    def new_trace_id(self) -> str:
        """Mint the next deterministic trace id (``t000001``, ...).

        Ids are a session-local sequence, not random: same-seed runs must
        export byte-identical traces, so anything that lands in exported
        bytes has to be reproducible.  Disabled sessions always return
        the zero id (nothing referencing it is ever recorded).
        """
        if not self.enabled:
            return "t000000"
        self._trace_seq += 1
        return f"t{self._trace_seq:06d}"

    def activate(self, ctx: TraceContext | None):
        """Context manager making ``ctx`` the active trace context.

        While active, spans opened on this thread carry ``trace_id``
        (and parent-less spans carry ``flow_parent``) — see
        :meth:`~repro.obs.spans.Tracer.activate`.  No-op when disabled.
        """
        if not self.enabled:
            return nullcontext()
        return self.tracer.activate(ctx)

    def trace(self, trace_id: str, parent_span_id: int | None = None):
        """Shorthand: activate a fresh :class:`TraceContext`."""
        return self.activate(
            TraceContext(trace_id=trace_id, parent_span_id=parent_span_id)
        )

    # -- cross-process collection ----------------------------------------------

    def drain(self) -> dict | None:
        """Take this session's recordings as one picklable payload.

        The worker side of trace collection: spans, instant events and
        counter points recorded since the previous drain are *moved* into
        the payload (incremental), while the metrics registry ships as a
        full cumulative snapshot — the coordinator applies deltas on
        absorb.  Returns ``None`` when disabled (ships as a no-op over
        the Pipe).
        """
        if not self.enabled:
            return None
        tracer = self.tracer
        with tracer._lock:
            spans = [
                (
                    s.span_id,
                    s.parent_id,
                    s.name,
                    s.t_start_s,
                    s.t_end_s,
                    dict(s.attrs),
                )
                for s in tracer.spans
            ]
            events = [(e.name, e.t_s, dict(e.attrs)) for e in tracer.events]
            points = [(p.name, p.t_s, p.value) for p in tracer.counters]
            tracer.spans = []
            tracer.events = []
            tracer.counters = []
        metrics = [metric_record(m) for m in self.registry.metrics()]
        return {
            "spans": spans,
            "events": events,
            "points": points,
            "metrics": metrics,
        }

    def absorb(
        self, payload: dict | None, worker: int, generation: int = 0
    ) -> None:
        """Merge one worker drain payload into this session.

        Spans are re-numbered into this tracer's id space (parent links
        preserved across successive drains of the same generation;
        ``flow_parent`` attrs are *not* remapped — they already name
        spans of this tracer).  Spans and events gain ``worker`` /
        ``generation`` / ``track`` attributes, which is what routes them
        onto per-worker Perfetto process lanes.  Metrics merge by delta:
        counters and histograms accumulate losslessly across drains and
        generations under an added ``worker`` label; gauges overwrite.
        """
        if not self.enabled or payload is None:
            return
        track = self._remote.setdefault(
            (int(worker), int(generation)), _RemoteTrack()
        )
        worker_attrs = {
            "worker": int(worker),
            "generation": int(generation),
            "track": f"worker{int(worker)}",
        }
        tracer = self.tracer
        with tracer._lock:
            for sid, pid, name, t0, t1, attrs in payload["spans"]:
                new_id = tracer._next_id
                tracer._next_id += 1
                track.id_map[sid] = new_id
                merged = dict(attrs)
                merged.update(worker_attrs)
                tracer.spans.append(
                    Span(
                        span_id=new_id,
                        parent_id=(
                            track.id_map.get(pid) if pid is not None else None
                        ),
                        name=name,
                        t_start_s=t0,
                        t_end_s=t1,
                        attrs=merged,
                    )
                )
            for name, t_s, attrs in payload["events"]:
                merged = dict(attrs)
                merged.update(worker_attrs)
                tracer.events.append(
                    TraceEvent(name=name, t_s=t_s, attrs=merged)
                )
            for name, t_s, value in payload["points"]:
                tracer.counters.append(
                    CounterPoint(name=name, t_s=t_s, value=value)
                )
        for record in payload["metrics"]:
            self._absorb_metric(record, track, worker)

    def _absorb_metric(
        self, record: dict, track: _RemoteTrack, worker: int
    ) -> None:
        labels = {str(k): str(v) for k, v in record["labels"].items()}
        labels.setdefault("worker", str(int(worker)))
        key = (record["name"], tuple(sorted(labels.items())))
        kind = record["kind"]
        if kind == "counter":
            value = float(record["value"])
            last = float(track.metric_last.get(key, 0.0))
            if value > last:
                self.registry.counter(record["name"], **labels).inc(
                    value - last
                )
            track.metric_last[key] = value
        elif kind == "gauge":
            self.registry.gauge(record["name"], **labels).set(
                float(record["value"])
            )
        elif kind == "histogram":
            hist = self.registry.histogram(
                record["name"], buckets=tuple(record["buckets"]), **labels
            )
            last = track.metric_last.get(
                key, ([0] * len(record["bucket_counts"]), 0, 0.0)
            )
            last_buckets, last_count, last_sum = last
            for i, c in enumerate(record["bucket_counts"]):
                hist.bucket_counts[i] += int(c) - int(last_buckets[i])
            hist.count += int(record["count"]) - int(last_count)
            hist.sum += float(record["sum"]) - float(last_sum)
            for le, trace_id, value in record.get("exemplars", []):
                hist.exemplars[str(le)] = (str(trace_id), float(value))
            track.metric_last[key] = (
                [int(c) for c in record["bucket_counts"]],
                int(record["count"]),
                float(record["sum"]),
            )
        else:  # pragma: no cover - defensive
            raise ConfigurationError(
                f"cannot absorb metric kind {kind!r}"
            )

    # -- export ----------------------------------------------------------------

    def export(self, outdir: str | Path) -> dict[str, Path]:
        """Write all three artifacts into ``outdir``; returns their paths."""
        if not self.enabled:
            raise ConfigurationError(
                "cannot export a disabled observability session"
            )
        outdir = Path(outdir)
        outdir.mkdir(parents=True, exist_ok=True)
        return {
            "jsonl": write_jsonl(self, outdir / "events.jsonl"),
            "chrome_trace": write_chrome_trace(self, outdir / "trace.json"),
            "prometheus": write_prometheus(
                self.registry, outdir / "metrics.prom"
            ),
        }

    def __repr__(self) -> str:
        if not self.enabled:
            return "Observability(disabled)"
        return (
            f"Observability({len(self.registry)} series, "
            f"{len(self.tracer.spans)} spans)"
        )


class _NullMetric:
    """Absorbs every write; never registered anywhere."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: D102
        pass

    def set(self, value: float) -> None:  # noqa: D102
        pass

    def observe(self, value: float, exemplar: str | None = None) -> None:  # noqa: D102
        pass

    def observe_many(self, values) -> None:  # noqa: D102
        pass


class _NullSpan(Span):
    """A span that forgets its attributes (the disabled-session yield)."""

    def set(self, **attrs: object) -> "Span":  # noqa: D102
        return self


_NULL_COUNTER = _NullMetric()
_NULL_GAUGE = _NullMetric()
_NULL_HISTOGRAM = _NullMetric()
_NULL_SPAN = _NullSpan(span_id=0, parent_id=None, name="null", t_start_s=0.0)

#: The process-wide disabled session instrumented code defaults to.
NULL = Observability(enabled=False)
