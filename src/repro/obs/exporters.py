"""Exporters: JSONL event log, Chrome ``trace_event``, Prometheus text.

Three views of one observability session, each matched to a consumer:

* :func:`write_jsonl` / :func:`read_jsonl` — the lossless archival
  format.  One JSON object per line (``meta`` / ``span`` / ``event`` /
  ``counter_point`` / ``metric``); reading a file back reconstructs the
  registry values and the span list, so analyses can run long after the
  process that produced them is gone.
* :func:`write_chrome_trace` — the Chrome ``trace_event`` JSON array
  format, loadable in ``chrome://tracing`` and https://ui.perfetto.dev.
  Spans become complete (``"ph": "X"``) events, instant events ``"i"``,
  counter tracks ``"C"``; timestamps are virtual microseconds.
* :func:`write_prometheus` / :func:`parse_prometheus` — a text-format
  snapshot of the metrics registry (``# HELP`` / ``# TYPE`` / samples),
  the format every metrics pipeline already ingests.

All outputs iterate in sorted/record order only, so same-seed runs
produce byte-identical files.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry, format_labels
from repro.obs.schema import spec_for
from repro.obs.spans import CounterPoint, Span, TraceEvent

__all__ = [
    "metric_record",
    "write_jsonl",
    "read_jsonl",
    "write_chrome_trace",
    "chrome_trace_events",
    "write_prometheus",
    "prometheus_text",
    "parse_prometheus",
]

JSONL_VERSION = 1


def metric_record(metric) -> dict:
    """One metric as its canonical JSONL record dict.

    Shared by :func:`write_jsonl` and the cross-process drain payloads
    (:meth:`~repro.obs.session.Observability.drain`), so both sides of
    the worker Pipe speak the exact same shape.
    """
    record: dict[str, object] = {
        "type": "metric",
        "kind": metric.kind,
        "name": metric.name,
        "labels": dict(metric.labels),
    }
    if metric.kind == "histogram":
        record["buckets"] = list(metric.buckets)
        record["bucket_counts"] = list(metric.bucket_counts)
        record["count"] = metric.count
        record["sum"] = metric.sum
        if metric.exemplars:
            record["exemplars"] = sorted(
                [le, trace_id, value]
                for le, (trace_id, value) in metric.exemplars.items()
            )
    else:
        record["value"] = metric.value
    return record


# -- JSONL event log ---------------------------------------------------------


def write_jsonl(obs, path: str | Path) -> Path:
    """Write the session as one JSON object per line; returns the path."""
    path = Path(path)
    lines: list[str] = [
        json.dumps(
            {"type": "meta", "version": JSONL_VERSION, "format": "repro.obs"},
            sort_keys=True,
        )
    ]
    for span in obs.tracer.spans:
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "t_start_s": span.t_start_s,
                    "t_end_s": span.t_end_s,
                    "attrs": _jsonable(span.attrs),
                },
                sort_keys=True,
            )
        )
    for evt in obs.tracer.events:
        lines.append(
            json.dumps(
                {
                    "type": "event",
                    "name": evt.name,
                    "t_s": evt.t_s,
                    "attrs": _jsonable(evt.attrs),
                },
                sort_keys=True,
            )
        )
    for point in obs.tracer.counters:
        lines.append(
            json.dumps(
                {
                    "type": "counter_point",
                    "name": point.name,
                    "t_s": point.t_s,
                    "value": point.value,
                },
                sort_keys=True,
            )
        )
    for metric in obs.registry.metrics():
        lines.append(json.dumps(metric_record(metric), sort_keys=True))
    path.write_text("\n".join(lines) + "\n")
    return path


def read_jsonl(path: str | Path):
    """Reconstruct an :class:`~repro.obs.Observability` from a JSONL log.

    The returned session's registry holds the recorded final values and
    its tracer the recorded spans/events/counter points; it is read-only
    in spirit (nothing stops further recording, but ids may collide).
    """
    from repro.obs.session import Observability  # circular at import time

    path = Path(path)
    obs = Observability()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path}:{lineno}: not valid JSON: {exc}"
            ) from None
        kind = record.get("type")
        if kind == "meta":
            if record.get("format") != "repro.obs":
                raise ConfigurationError(
                    f"{path}: not a repro.obs event log"
                )
        elif kind == "span":
            obs.tracer.spans.append(
                Span(
                    span_id=int(record["id"]),
                    parent_id=(
                        int(record["parent"])
                        if record["parent"] is not None
                        else None
                    ),
                    name=record["name"],
                    t_start_s=float(record["t_start_s"]),
                    t_end_s=(
                        float(record["t_end_s"])
                        if record["t_end_s"] is not None
                        else None
                    ),
                    attrs=dict(record.get("attrs", {})),
                )
            )
        elif kind == "event":
            obs.tracer.events.append(
                TraceEvent(
                    name=record["name"],
                    t_s=float(record["t_s"]),
                    attrs=dict(record.get("attrs", {})),
                )
            )
        elif kind == "counter_point":
            obs.tracer.counters.append(
                CounterPoint(
                    name=record["name"],
                    t_s=float(record["t_s"]),
                    value=float(record["value"]),
                )
            )
        elif kind == "metric":
            labels = {str(k): str(v) for k, v in record["labels"].items()}
            if record["kind"] == "counter":
                obs.registry.counter(record["name"], **labels).inc(
                    float(record["value"])
                )
            elif record["kind"] == "gauge":
                obs.registry.gauge(record["name"], **labels).set(
                    float(record["value"])
                )
            elif record["kind"] == "histogram":
                hist = obs.registry.histogram(
                    record["name"],
                    buckets=tuple(record["buckets"]),
                    **labels,
                )
                hist.bucket_counts = [int(c) for c in record["bucket_counts"]]
                hist.count = int(record["count"])
                hist.sum = float(record["sum"])
                for le, trace_id, value in record.get("exemplars", []):
                    hist.exemplars[str(le)] = (str(trace_id), float(value))
            else:
                raise ConfigurationError(
                    f"{path}:{lineno}: unknown metric kind {record['kind']!r}"
                )
        else:
            raise ConfigurationError(
                f"{path}:{lineno}: unknown record type {kind!r}"
            )
    return obs


def _jsonable(attrs: dict[str, object]) -> dict[str, object]:
    """Coerce attribute values to JSON-safe scalars."""
    out: dict[str, object] = {}
    for k, v in attrs.items():
        if isinstance(v, (str, bool, int, float)) or v is None:
            out[k] = v
        elif hasattr(v, "item"):  # numpy scalar
            out[k] = v.item()
        else:
            out[k] = str(v)
    return out


# -- Chrome trace_event ------------------------------------------------------


#: Synthetic coordinator pid.  Exported pids are *deterministic* track
#: ids (1 = coordinator/engine, ``2 + worker`` = partition workers), not
#: OS pids — OS pids differ run to run and would break the byte-identical
#: same-seed export guarantee.  The real OS pid of a live worker is a
#: runtime property of its process handle, never part of the trace bytes.
COORDINATOR_PID = 1


def _track_pid(attrs: dict) -> int:
    """Synthetic pid of a span/event: worker track or coordinator."""
    track = attrs.get("track")
    if isinstance(track, str) and track.startswith("worker"):
        try:
            return 2 + int(track[len("worker"):])
        except ValueError:
            return COORDINATOR_PID
    return COORDINATOR_PID


def chrome_trace_events(obs) -> list[dict]:
    """The session as a list of ``trace_event`` dicts (µs timestamps).

    Leads with ``"ph": "M"`` metadata events naming each process and its
    tracks.  Spans absorbed from partition workers (carrying a
    ``track="worker{k}"`` attribute) render as their own Perfetto
    process lane ``pid = 2 + k``; everything else stays on the
    coordinator process (pid 1), where ``bfs.shard`` spans land on tid
    ``2 + shard``.  Spans with a ``flow_parent`` attribute additionally
    emit a flow-event pair (``"ph": "s"`` → ``"ph": "f"``) drawing the
    arrow from the originating span (e.g. ``dist.step``) into the remote
    child — the cross-process link the ISSUE's Perfetto walkthrough
    follows.
    """
    events: list[dict] = []
    shard_tids: dict[int, int] = {}
    worker_pids: dict[int, int] = {}
    for span in obs.tracer.spans:
        if span.name == "bfs.shard" and "shard" in span.attrs:
            k = int(span.attrs["shard"])
            shard_tids.setdefault(k, 2 + k)
        pid = _track_pid(span.attrs)
        if pid != COORDINATOR_PID:
            worker_pids.setdefault(pid - 2, pid)
    for evt in obs.tracer.events:
        pid = _track_pid(evt.attrs)
        if pid != COORDINATOR_PID:
            worker_pids.setdefault(pid - 2, pid)
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": COORDINATOR_PID,
            "args": {"name": "repro hybrid BFS (simulated clock)"},
        }
    )
    events.append(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": COORDINATOR_PID,
            "tid": 1,
            "args": {"name": "engine"},
        }
    )
    for k in sorted(shard_tids):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": COORDINATOR_PID,
                "tid": shard_tids[k],
                "args": {"name": f"NUMA shard {k}"},
            }
        )
    for k in sorted(worker_pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": worker_pids[k],
                "args": {"name": f"partition worker {k}"},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": worker_pids[k],
                "tid": 1,
                "args": {"name": f"worker {k}"},
            }
        )
    placement: dict[int, tuple[int, int]] = {}
    by_id: dict[int, object] = {}
    for span in obs.tracer.spans:
        pid = _track_pid(span.attrs)
        tid = 1
        if (
            pid == COORDINATOR_PID
            and span.name == "bfs.shard"
            and "shard" in span.attrs
        ):
            tid = shard_tids[int(span.attrs["shard"])]
        placement[span.span_id] = (pid, tid)
        by_id[span.span_id] = span
    for span in obs.tracer.spans:
        end = span.t_end_s if span.t_end_s is not None else span.t_start_s
        pid, tid = placement[span.span_id]
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.t_start_s * 1e6,
                "dur": (end - span.t_start_s) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": _jsonable(span.attrs),
            }
        )
        flow_parent = span.attrs.get("flow_parent")
        if isinstance(flow_parent, int) and flow_parent in placement:
            src_pid, src_tid = placement[flow_parent]
            src_span = by_id[flow_parent]
            events.append(
                {
                    "name": "dist.flow",
                    "cat": "flow",
                    "ph": "s",
                    "id": span.span_id,
                    "ts": src_span.t_start_s * 1e6,
                    "pid": src_pid,
                    "tid": src_tid,
                }
            )
            events.append(
                {
                    "name": "dist.flow",
                    "cat": "flow",
                    "ph": "f",
                    "bp": "e",
                    "id": span.span_id,
                    "ts": span.t_start_s * 1e6,
                    "pid": pid,
                    "tid": tid,
                }
            )
    for evt in obs.tracer.events:
        events.append(
            {
                "name": evt.name,
                "cat": evt.category,
                "ph": "i",
                "ts": evt.t_s * 1e6,
                "pid": _track_pid(evt.attrs),
                "tid": 1,
                "s": "t",
                "args": _jsonable(evt.attrs),
            }
        )
    for point in obs.tracer.counters:
        events.append(
            {
                "name": point.name,
                "ph": "C",
                "ts": point.t_s * 1e6,
                "pid": COORDINATOR_PID,
                "args": {"value": point.value},
            }
        )
    return events


def write_chrome_trace(obs, path: str | Path) -> Path:
    """Write the Chrome/Perfetto trace JSON; returns the path."""
    path = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(obs),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "clock": "simulated"},
    }
    path.write_text(json.dumps(payload, sort_keys=True))
    return path


# -- Prometheus text snapshot ------------------------------------------------


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Metric names keep their dotted spelling except that Prometheus
    requires ``[a-zA-Z_:][a-zA-Z0-9_:]*``, so dots become underscores in
    the rendered names (the schema doc lists both spellings).
    """
    lines: list[str] = []
    seen_headers: set[str] = set()
    for sample in registry.samples():
        base = sample.name
        for suffix in ("_bucket", "_count", "_sum"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
                break
        if base not in seen_headers:
            seen_headers.add(base)
            spec = spec_for(base)
            kind = registry.kind_of(base) or (spec.kind if spec else "untyped")
            if spec is not None:
                lines.append(f"# HELP {_prom_name(base)} {spec.help}")
            lines.append(f"# TYPE {_prom_name(base)} {kind}")
        rendered = _prom_name(sample.name) + _prom_labels(sample.labels)
        lines.append(f"{rendered} {_prom_value(sample.value)}")
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write the text snapshot; returns the path."""
    path = Path(path)
    path.write_text(prometheus_text(registry))
    return path


def _prom_name(name: str) -> str:
    return name.replace(".", "_")


def _prom_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format: backslash,
    double-quote and newline (in that order, so ``\\`` stays unambiguous)."""
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels) -> str:
    """Prometheus brace rendering with escaped values ('' when unlabeled)."""
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in labels
    )
    return "{" + inner + "}"


def _parse_label_pairs(body: str) -> list[tuple[str, str]]:
    """Tokenize a label-block body (``k="v",...``), unescaping values.

    Raises ``ValueError`` on any malformation; the caller wraps it with
    line context.
    """
    pairs: list[tuple[str, str]] = []
    unescape = {"\\": "\\", '"': '"', "n": "\n"}
    i, n = 0, len(body)
    while i < n:
        j = body.index("=", i)
        key = body[i:j]
        if not key or j + 1 >= n or body[j + 1] != '"':
            raise ValueError(f"bad label pair at offset {i}")
        i = j + 2
        buf: list[str] = []
        while True:
            if i >= n:
                raise ValueError("unterminated label value")
            c = body[i]
            if c == "\\":
                if i + 1 >= n or body[i + 1] not in unescape:
                    raise ValueError(f"bad escape at offset {i}")
                buf.append(unescape[body[i + 1]])
                i += 2
            elif c == '"':
                i += 1
                break
            else:
                buf.append(c)
                i += 1
        pairs.append((key, "".join(buf)))
        if i < n:
            if body[i] != ",":
                raise ValueError(f"expected ',' at offset {i}")
            i += 1
    return pairs


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse a text snapshot back into ``{name{labels}: value}``.

    Keys use the registry's *canonical* (unescaped) label rendering, so
    a snapshot round-trips: values containing backslashes, quotes or
    newlines come back exactly as recorded.  Strict line-by-line:
    anything that is neither a comment nor a well-formed sample raises
    :class:`~repro.errors.ConfigurationError`.
    """
    out: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            key, value = line.rsplit(" ", 1)
            parsed = float(value)
            if "{" in key:
                name, rest = key.split("{", 1)
                if not rest.endswith("}"):
                    raise ValueError("unterminated label block")
                pairs = _parse_label_pairs(rest[:-1])
                key = name + format_labels(tuple(pairs))
            out[key] = parsed
        except ValueError:
            raise ConfigurationError(
                f"prometheus text line {lineno} is malformed: {line!r}"
            ) from None
    return out
