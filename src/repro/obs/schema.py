"""The catalogue of every metric and span name the reproduction emits.

This module is the schema the docs, the exporters and the tests all hang
off: ``docs/observability.md`` documents exactly these names (a test
diffs the two), the Prometheus exporter takes its ``# HELP`` strings from
here, and the instrumented call sites import the ``M_*`` constants so a
typo becomes an import error instead of a silently forked time series.

Conventions (Prometheus-flavoured):

* counters end in ``_total`` (``_seconds_total`` when they accumulate
  virtual time);
* gauges and histograms carry unit suffixes (``_bytes``, ``_seconds``,
  ``_vertices``);
* the ``device`` label identifies the device model on storage-layer
  metrics; ``direction`` / ``medium`` split BFS edge work the way the
  paper's Figure 10 does.

Only *virtual* (simulated-clock) time enters the registry — wall-clock
timings stay in :class:`~repro.bfs.metrics.LevelTrace` — which is what
makes two same-seed runs emit identical metric values.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MetricSpec", "METRICS", "SPANS", "metric_names", "span_names",
           "spec_for", "lint_session"]


@dataclass(frozen=True)
class MetricSpec:
    """Declared name, kind, labels and meaning of one metric."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: tuple[str, ...]
    help: str


# -- metric name constants (import these at call sites) -----------------------

M_BFS_RUNS = "bfs.runs_total"
M_BFS_LEVELS = "bfs.levels_total"
M_BFS_EDGES = "bfs.edges_scanned_total"
M_BFS_DISCOVERED = "bfs.discovered_vertices_total"
M_BFS_DEGRADED = "bfs.degraded_levels_total"
M_BFS_TRAVERSED = "bfs.traversed_edges_total"
M_BFS_LEVEL_SECONDS = "bfs.level_seconds"
M_BFS_FRONTIER = "bfs.frontier_vertices"
M_G500_ITERATIONS = "graph500.iterations_total"
M_G500_INVALID = "graph500.validation_failures_total"
M_G500_INPUT_EDGES = "graph500.traversed_input_edges_total"
M_NVM_REQUESTS = "nvm.requests_total"
M_NVM_BATCHES = "nvm.batches_total"
M_NVM_BYTES = "nvm.read_bytes_total"
M_NVM_SECTORS = "nvm.read_sectors_total"
M_NVM_BUSY = "nvm.busy_seconds_total"
M_NVM_QUEUE_SECONDS = "nvm.queue_seconds_total"
M_NVM_SYSCALLS = "nvm.syscalls_total"
M_NVM_QUEUE_DEPTH = "nvm.queue_depth"
M_NVM_REQUEST_BYTES = "nvm.request_bytes"
M_CACHE_HIT_BYTES = "cache.hit_bytes_total"
M_CACHE_MISS_BYTES = "cache.miss_bytes_total"
M_CACHE_RESIDENT = "cache.resident_bytes"
M_RES_ATTEMPTS = "resilience.attempts_total"
M_RES_RETRIES = "resilience.retries_total"
M_RES_TRANSIENT = "resilience.transient_errors_total"
M_RES_TORN = "resilience.torn_reads_total"
M_RES_CHECKSUM = "resilience.checksum_failures_total"
M_RES_TIMEOUTS = "resilience.timeouts_total"
M_RES_GC_PAUSES = "resilience.gc_pauses_total"
M_RES_GC_SECONDS = "resilience.gc_pause_seconds_total"
M_RES_BACKOFF_SECONDS = "resilience.backoff_seconds_total"
M_RES_HARD_FAILURES = "resilience.hard_failures_total"
M_RES_REFUSED = "resilience.refused_reads_total"
M_HEALTH_SCORE = "health.score"
M_HEALTH_CIRCUIT = "health.circuit_open"
M_PIPE_PAGE_CACHE = "pipeline.page_cache_bytes"
M_PIPE_DRAM_BUDGET = "pipeline.dram_budget_bytes"
M_PIPE_DRAM_USED = "pipeline.dram_used_bytes"
M_OFFLOAD_DRAM_BYTES = "offload.dram_resident_bytes"
M_OFFLOAD_NVM_BYTES = "offload.nvm_tail_bytes"
M_OFFLOAD_ROWS = "offload.rows_scanned_total"
M_OFFLOAD_FALLTHROUGH = "offload.fallthrough_rows_total"
M_OFFLOAD_EDGES = "offload.scanned_edges_total"
M_SERVE_REQUESTS = "serve.requests_total"
M_SERVE_REJECTED = "serve.rejected_total"
M_SERVE_SERVED = "serve.served_total"
M_SERVE_BATCHES = "serve.batches_total"
M_SERVE_BATCH_QUERIES = "serve.batch_queries"
M_SERVE_LATENCY = "serve.latency_seconds"
M_SERVE_QUEUE_DEPTH = "serve.queue_depth"
M_SERVE_CACHE_HITS = "serve.cache_hits_total"
M_SERVE_CACHE_MISSES = "serve.cache_misses_total"
M_SERVE_CACHE_EVICTIONS = "serve.cache_evictions_total"
M_SERVE_ROWS_REQUESTED = "serve.rows_requested_total"
M_SERVE_ROWS_FETCHED = "serve.rows_fetched_total"
M_REC_CHECKPOINTS = "recovery.checkpoints_total"
M_REC_CHECKPOINT_BYTES = "recovery.checkpoint_bytes_total"
M_REC_CHECKPOINT_SECONDS = "recovery.checkpoint_seconds_total"
M_REC_RESTORES = "recovery.restores_total"
M_REC_TORN_EPOCHS = "recovery.torn_epochs_total"
M_REC_CRASHES = "recovery.crashes_total"
M_REC_REQUEUES = "recovery.requeued_queries_total"
M_REC_RETRIES = "recovery.retries_total"
M_REC_WATCHDOG = "recovery.watchdog_restarts_total"
M_CONF_TRIALS = "conformance.trials_total"
M_CONF_CHECKS = "conformance.checks_total"
M_CONF_FAILURES = "conformance.failures_total"
M_CONF_SHRINK_EVALS = "conformance.shrink_evals_total"
M_CONF_ARTIFACTS = "conformance.artifacts_total"
M_DIST_WORKERS = "dist.workers"
M_DIST_LEVELS = "dist.levels_total"
M_DIST_BROADCAST = "dist.broadcast_vertices_total"
M_DIST_MERGED = "dist.merged_vertices_total"
M_DIST_MERGE_SECONDS = "dist.merge_seconds_total"
M_DIST_WORKER_SECONDS = "dist.worker_seconds_total"
M_DIST_WORKER_EDGES = "dist.worker_edges_total"
M_DIST_IMBALANCE = "dist.level_imbalance"
M_DIST_RESTARTS = "dist.worker_restarts_total"
M_DIST_QUERIES = "dist.queries_total"
M_DIST_REPLICAS = "dist.replicas"
M_DIST_REPLICATIONS = "dist.replications_total"
M_MUT_APPLIED = "mut.applied_total"
M_MUT_BATCHES = "mut.batches_total"
M_MUT_VERSION = "mut.graph_version"
M_MUT_OVERLAY_BYTES = "mut.overlay_bytes"
M_MUT_COMPACTIONS = "mut.compactions_total"
M_MUT_COMPACT_BYTES = "mut.compact_bytes_total"
M_MUT_REPAIRS = "mut.repairs_total"
M_MUT_REPAIR_ROWS = "mut.repair_rows"
M_MUT_REPAIR_DIRTY = "mut.repair_dirty_vertices"


METRICS: tuple[MetricSpec, ...] = (
    # -- BFS engines ----------------------------------------------------------
    MetricSpec(M_BFS_RUNS, "counter", ("engine",),
               "BFS executions started, by engine class."),
    MetricSpec(M_BFS_LEVELS, "counter", ("direction",),
               "Levels executed per direction (Fig. 10's level split)."),
    MetricSpec(M_BFS_EDGES, "counter", ("direction", "medium"),
               "Edge probes per direction and residence of the adjacency "
               "(medium=dram|nvm); the Fig. 10 traversed-edge split."),
    MetricSpec(M_BFS_DISCOVERED, "counter", ("direction",),
               "Vertices discovered per direction."),
    MetricSpec(M_BFS_DEGRADED, "counter", (),
               "Levels forced bottom-up by an open device circuit."),
    MetricSpec(M_BFS_TRAVERSED, "counter", (),
               "Undirected traversed edges across runs (TEPS numerators)."),
    MetricSpec(M_BFS_LEVEL_SECONDS, "histogram", (),
               "Modeled (simulated-clock) duration of each level."),
    MetricSpec(M_BFS_FRONTIER, "histogram", (),
               "Frontier size entering each level."),
    # -- Graph500 driver ------------------------------------------------------
    MetricSpec(M_G500_ITERATIONS, "counter", (),
               "Benchmark iterations (the spec's 64 roots)."),
    MetricSpec(M_G500_INVALID, "counter", (),
               "Step-4 validations that failed."),
    MetricSpec(M_G500_INPUT_EDGES, "counter", (),
               "Official TEPS numerator: input edge tuples touching the "
               "traversed component, summed over iterations."),
    # -- NVM device / iostat --------------------------------------------------
    MetricSpec(M_NVM_REQUESTS, "counter", ("device",),
               "Merged device requests issued (what iostat r/s counts)."),
    MetricSpec(M_NVM_BATCHES, "counter", ("device",),
               "Charged batches (one per serviced gather attempt)."),
    MetricSpec(M_NVM_BYTES, "counter", ("device",),
               "Bytes read from the device."),
    MetricSpec(M_NVM_SECTORS, "counter", ("device",),
               "512-byte sectors read; avgrq-sz (Fig. 13) = "
               "nvm.read_sectors_total / nvm.requests_total."),
    MetricSpec(M_NVM_BUSY, "counter", ("device",),
               "Modeled seconds the device spent servicing requests."),
    MetricSpec(M_NVM_QUEUE_SECONDS, "counter", ("device",),
               "Queue-length integral over busy time; avgqu-sz (Fig. 12) "
               "= nvm.queue_seconds_total / nvm.busy_seconds_total."),
    MetricSpec(M_NVM_SYSCALLS, "counter", ("device",),
               "Chunked read(2) calls planned (<= 4 KB each, paper §V-C)."),
    MetricSpec(M_NVM_QUEUE_DEPTH, "gauge", ("device",),
               "Mean request-queue length of the most recent batch."),
    MetricSpec(M_NVM_REQUEST_BYTES, "histogram", ("device",),
               "Per-request sizes of the merged device requests."),
    # -- page cache -----------------------------------------------------------
    MetricSpec(M_CACHE_HIT_BYTES, "counter", ("device",),
               "Bytes served from the modeled OS page cache."),
    MetricSpec(M_CACHE_MISS_BYTES, "counter", ("device",),
               "Bytes that missed the page cache and hit the device."),
    MetricSpec(M_CACHE_RESIDENT, "gauge", ("device",),
               "Bytes currently resident in the fill-once page cache."),
    # -- resilient read path --------------------------------------------------
    MetricSpec(M_RES_ATTEMPTS, "counter", ("device",),
               "Device batch submissions, including failed attempts."),
    MetricSpec(M_RES_RETRIES, "counter", ("device",),
               "Attempts that were retries of a failed read."),
    MetricSpec(M_RES_TRANSIENT, "counter", ("device",),
               "Injected transient read errors observed."),
    MetricSpec(M_RES_TORN, "counter", ("device",),
               "Torn reads detected by checksum verification."),
    MetricSpec(M_RES_CHECKSUM, "counter", ("device",),
               "Checksum verification failures (torn + persistent)."),
    MetricSpec(M_RES_TIMEOUTS, "counter", ("device",),
               "Attempts exceeding the retry policy's timeout."),
    MetricSpec(M_RES_GC_PAUSES, "counter", ("device",),
               "Injected device GC stalls absorbed."),
    MetricSpec(M_RES_GC_SECONDS, "counter", ("device",),
               "Virtual seconds lost to GC stalls (device-side)."),
    MetricSpec(M_RES_BACKOFF_SECONDS, "counter", ("device",),
               "Virtual seconds the host waited in retry backoff."),
    MetricSpec(M_RES_HARD_FAILURES, "counter", ("device",),
               "Hard device failures observed."),
    MetricSpec(M_RES_REFUSED, "counter", ("device",),
               "Reads refused because the circuit breaker was open."),
    MetricSpec(M_HEALTH_SCORE, "gauge", ("device",),
               "Device health score in [0, 1] (1 = healthy)."),
    MetricSpec(M_HEALTH_CIRCUIT, "gauge", ("device",),
               "1 while the circuit breaker is open, else 0."),
    # -- pipeline placement ---------------------------------------------------
    MetricSpec(M_PIPE_PAGE_CACHE, "gauge", (),
               "Spare DRAM granted to the page cache (Fig. 9 mechanism)."),
    MetricSpec(M_PIPE_DRAM_BUDGET, "gauge", (),
               "Scenario DRAM budget resolved by the offload planner."),
    MetricSpec(M_PIPE_DRAM_USED, "gauge", (),
               "DRAM the verified placement actually keeps resident."),
    # -- tiered backward-graph offload ---------------------------------------
    MetricSpec(M_OFFLOAD_DRAM_BYTES, "gauge", (),
               "Bytes of the tiered backward store resident in DRAM "
               "(the k-truncated CSR prefixes)."),
    MetricSpec(M_OFFLOAD_NVM_BYTES, "gauge", (),
               "Bytes of the tiered backward store's per-row tails "
               "offloaded to NVM."),
    MetricSpec(M_OFFLOAD_ROWS, "counter", (),
               "Unvisited rows scanned through the tiered store "
               "(the fallthrough-rate denominator)."),
    MetricSpec(M_OFFLOAD_FALLTHROUGH, "counter", (),
               "Rows whose DRAM prefix held no frontier parent and "
               "whose scan fell through to the NVM tail."),
    MetricSpec(M_OFFLOAD_EDGES, "counter", ("tier",),
               "Edge probes through the tiered store by residence of "
               "the probed entry (tier=dram|nvm); the measured Fig. 14 "
               "access split."),
    # -- query serving --------------------------------------------------------
    MetricSpec(M_SERVE_REQUESTS, "counter", ("tenant",),
               "BFS query requests that arrived, by tenant."),
    MetricSpec(M_SERVE_REJECTED, "counter", ("reason",),
               "Requests shed (reason=queue_full|degraded|deadline)."),
    MetricSpec(M_SERVE_SERVED, "counter", ("source",),
               "Requests completed, by answer source "
               "(source=cache|batched|repaired)."),
    MetricSpec(M_SERVE_BATCHES, "counter", (),
               "Batched multi-source traversals executed."),
    MetricSpec(M_SERVE_BATCH_QUERIES, "histogram", (),
               "Distinct traversal queries coalesced per batch."),
    MetricSpec(M_SERVE_LATENCY, "histogram", (),
               "Arrival-to-completion latency per served request "
               "(simulated clock)."),
    MetricSpec(M_SERVE_QUEUE_DEPTH, "gauge", (),
               "Admission-queue depth after each batch was formed."),
    MetricSpec(M_SERVE_CACHE_HITS, "counter", (),
               "Result-cache lookups answered without a traversal."),
    MetricSpec(M_SERVE_CACHE_MISSES, "counter", (),
               "Result-cache lookups that required a traversal."),
    MetricSpec(M_SERVE_CACHE_EVICTIONS, "counter", ("cause",),
               "Result-cache entries dropped "
               "(cause=lru|ttl|stale|version)."),
    MetricSpec(M_SERVE_ROWS_REQUESTED, "counter", (),
               "Forward-graph rows the batched queries asked for "
               "(one count per query per row)."),
    MetricSpec(M_SERVE_ROWS_FETCHED, "counter", (),
               "Unique forward-graph rows actually fetched for those "
               "requests; the requested/fetched ratio is the shared-chunk "
               "amortization factor."),
    # -- crash recovery -------------------------------------------------------
    MetricSpec(M_REC_CHECKPOINTS, "counter", (),
               "Checkpoint epochs persisted to the NVM store."),
    MetricSpec(M_REC_CHECKPOINT_BYTES, "counter", (),
               "Bytes written into checkpoint epochs (the write-"
               "amplification numerator; traversal bytes are the "
               "denominator)."),
    MetricSpec(M_REC_CHECKPOINT_SECONDS, "counter", (),
               "Virtual seconds charged for checkpoint writes."),
    MetricSpec(M_REC_RESTORES, "counter", (),
               "Traversals resumed from a checkpoint."),
    MetricSpec(M_REC_TORN_EPOCHS, "counter", (),
               "Epochs rejected at restore time by CRC framing "
               "(recovery fell back to the previous epoch)."),
    MetricSpec(M_REC_CRASHES, "counter", (),
               "Injected process crashes raised through an engine."),
    MetricSpec(M_REC_REQUEUES, "counter", (),
               "In-flight serve queries requeued after a crash."),
    MetricSpec(M_REC_RETRIES, "counter", (),
               "Serve-tier retry attempts (each preceded by an "
               "exponential-backoff wait with seeded jitter)."),
    MetricSpec(M_REC_WATCHDOG, "counter", (),
               "Watchdog restarts of the batch engine from its last "
               "checkpoint."),
    # -- conformance harness --------------------------------------------------
    MetricSpec(M_CONF_TRIALS, "counter", (),
               "Randomized (graph, scenario, root) triples executed."),
    MetricSpec(M_CONF_CHECKS, "counter", ("engine", "check"),
               "Differential and metamorphic checks evaluated, by engine "
               "and check name."),
    MetricSpec(M_CONF_FAILURES, "counter", ("engine", "check"),
               "Checks that found a disagreement (each one yields a "
               "shrunk repro artifact)."),
    MetricSpec(M_CONF_SHRINK_EVALS, "counter", (),
               "Failing-predicate executions spent shrinking "
               "counterexamples."),
    MetricSpec(M_CONF_ARTIFACTS, "counter", ("engine",),
               "Replayable repro artifacts written to disk."),
    # -- distributed traversal ------------------------------------------------
    MetricSpec(M_DIST_WORKERS, "gauge", (),
               "Worker partitions of the distributed deployment."),
    MetricSpec(M_DIST_LEVELS, "counter", ("direction",),
               "Coordinated lockstep levels executed, by direction."),
    MetricSpec(M_DIST_BROADCAST, "counter", (),
               "Frontier vertices broadcast to workers (frontier size "
               "times worker count, summed over levels)."),
    MetricSpec(M_DIST_MERGED, "counter", (),
               "Per-partition next-frontier vertices merged by the "
               "coordinator (first-parent-wins deltas installed)."),
    MetricSpec(M_DIST_MERGE_SECONDS, "counter", (),
               "Simulated seconds the coordinator spent merging frontiers "
               "and parent deltas."),
    MetricSpec(M_DIST_WORKER_SECONDS, "counter", ("worker",),
               "Per-worker simulated busy seconds, summed over levels "
               "(the coordinator clock advances by the per-level max)."),
    MetricSpec(M_DIST_WORKER_EDGES, "counter", ("worker", "medium"),
               "Edge probes per worker, split by adjacency medium "
               "(medium=dram|nvm)."),
    MetricSpec(M_DIST_IMBALANCE, "histogram", (),
               "Per-level load imbalance: max over workers divided by "
               "mean worker seconds (1.0 = perfectly balanced)."),
    MetricSpec(M_DIST_RESTARTS, "counter", ("worker",),
               "Worker restarts after an injected process crash "
               "(the level re-runs on the rebuilt worker)."),
    MetricSpec(M_DIST_QUERIES, "counter", ("route",),
               "Queries answered by the deployment "
               "(route=partitioned|replica)."),
    MetricSpec(M_DIST_REPLICAS, "gauge", (),
               "Workers holding a full replica of a hot graph."),
    MetricSpec(M_DIST_REPLICATIONS, "counter", (),
               "Hot-graph replication passes executed."),
    # -- dynamic graphs -------------------------------------------------------
    MetricSpec(M_MUT_APPLIED, "counter", ("graph", "kind"),
               "Effective edge mutations applied to the delta overlay "
               "(kind=insert|delete; no-ops are not counted)."),
    MetricSpec(M_MUT_BATCHES, "counter", ("graph",),
               "Mutation batches applied (each bumps the graph version)."),
    MetricSpec(M_MUT_VERSION, "gauge", ("graph",),
               "Current version of a mutable catalog graph (0 = as built)."),
    MetricSpec(M_MUT_OVERLAY_BYTES, "gauge", ("graph",),
               "DRAM resident bytes of the uncompacted delta overlay."),
    MetricSpec(M_MUT_COMPACTIONS, "counter", ("graph",),
               "Delta-overlay compactions folded back into the NVM CSR."),
    MetricSpec(M_MUT_COMPACT_BYTES, "counter", ("graph",),
               "Bytes sequentially written to NVM by compactions "
               "(charged via charge_write)."),
    MetricSpec(M_MUT_REPAIRS, "counter", ("graph", "outcome"),
               "Incremental BFS-tree repair attempts "
               "(outcome=repaired|fallback)."),
    MetricSpec(M_MUT_REPAIR_ROWS, "histogram", ("graph",),
               "Distinct adjacency rows read per successful repair — the "
               "affected-region I/O that replaces a full traversal."),
    MetricSpec(M_MUT_REPAIR_DIRTY, "histogram", ("graph",),
               "Vertices whose BFS level changed per successful repair."),
)


# Span and instant-event names (documented; not part of the metric diff).
SPANS: tuple[str, ...] = (
    "pipeline.generate",
    "pipeline.offload_edges",
    "pipeline.construct",
    "pipeline.offload_forward",
    "pipeline.offload_backward",
    "pipeline.bfs",
    "offload.split",
    "offload.fallthrough",
    "graph500.iteration",
    "graph500.validate",
    "bfs.run",
    "bfs.phase",
    "bfs.level",
    "bfs.shard",
    "nvm.charge",
    "nvm.backoff",
    "cache.fill",
    "serve.batch",
    "serve.traversal",
    "serve.reject",
    "serve.complete",
    "serve.retry",
    "recovery.checkpoint",
    "recovery.restore",
    "recovery.crash",
    "recovery.requeue",
    "conformance.trial",
    "conformance.shrink",
    "conformance.replay",
    "dist.run",
    "dist.level",
    "dist.step",
    "dist.worker",
    "dist.worker_scan",
    "dist.worker_apply",
    "dist.worker_restore",
    "dist.merge",
    "dist.restart",
    "dist.query",
    "dist.replicate",
    "serve.admit",
    "mut.apply",
    "mut.compact",
    "mut.repair",
)


def metric_names() -> frozenset[str]:
    """Every catalogued metric name."""
    return frozenset(s.name for s in METRICS)


def span_names() -> frozenset[str]:
    """Every catalogued span/event name."""
    return frozenset(SPANS)


_BY_NAME = {s.name: s for s in METRICS}


def spec_for(name: str) -> MetricSpec | None:
    """Look up the spec of a metric name (histogram-suffix aware)."""
    spec = _BY_NAME.get(name)
    if spec is not None:
        return spec
    for suffix in ("_bucket", "_count", "_sum"):
        if name.endswith(suffix):
            return _BY_NAME.get(name[: -len(suffix)])
    return None


def lint_session(obs) -> list[str]:
    """Check every name a live session recorded against this catalogue.

    Returns a sorted list of violation strings (empty = clean):

    * metrics registered under an uncatalogued name, or under a kind
      that contradicts the catalogued one;
    * span names absent from :data:`SPANS`;
    * instant-event names absent from :data:`SPANS`;
    * counter-track point names that are neither catalogued metrics nor
      catalogued span names.

    The schema-lint satellite runs this over a full run+serve+dist
    session and fails CI on any output, so a typo'd name at a new call
    site can never silently fork a time series.
    """
    problems: set[str] = set()
    known_metrics = metric_names()
    known_spans = span_names()
    registry = obs.registry
    for name in registry.names():
        spec = _BY_NAME.get(name)
        if spec is None:
            problems.add(f"metric {name!r} is not catalogued in obs.schema")
        elif registry.kind_of(name) != spec.kind:
            problems.add(
                f"metric {name!r} recorded as {registry.kind_of(name)}, "
                f"catalogued as {spec.kind}"
            )
    for span in obs.tracer.spans:
        if span.name not in known_spans:
            problems.add(
                f"span {span.name!r} is not catalogued in obs.schema"
            )
    for evt in obs.tracer.events:
        if evt.name not in known_spans:
            problems.add(
                f"event {evt.name!r} is not catalogued in obs.schema"
            )
    for point in obs.tracer.counters:
        if point.name not in known_metrics and point.name not in known_spans:
            problems.add(
                f"counter track {point.name!r} is not catalogued in "
                f"obs.schema"
            )
    return sorted(problems)
