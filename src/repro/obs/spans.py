"""Span-based tracing on the simulated clock.

A :class:`Span` is one named, attributed interval of *virtual* time: a
BFS level, a direction phase, an NVM charge, a page-cache fill, one NUMA
node's shard scan.  Spans nest — the tracer keeps a per-thread stack, so
an ``nvm.charge`` recorded while a ``bfs.level`` span is open becomes its
child — and carry free-form attributes set at open time or while open.

Time comes from whatever object with a ``now() -> float`` method the
tracer is bound to (normally the run's
:class:`~repro.semiext.clock.SimulatedClock`).  Binding to the simulated
clock is what makes traces deterministic and replayable: two same-seed
runs emit byte-identical span streams, and the Chrome ``trace_event``
export shows modeled time, i.e. the exact quantity the paper's TEPS are
computed from.

Besides spans the tracer records **instant events** (zero-duration marks,
e.g. a retry backoff decision) and **counter tracks** (time-series values
Perfetto plots as graphs, e.g. the frontier size per level).

Traces cross process boundaries through a :class:`TraceContext` — a
picklable (trace_id, parent span id) pair the coordinator ships with
each Pipe command.  A tracer with an active context stamps every span it
opens with the ``trace_id`` attribute, and stamps spans that have *no
local parent* with ``flow_parent`` — the remote span id the Chrome
exporter turns into a flow arrow between process tracks.
"""

from __future__ import annotations

import fnmatch
import threading
from dataclasses import dataclass, field
from typing import Iterator

from contextlib import contextmanager

__all__ = ["Span", "TraceEvent", "CounterPoint", "TraceContext", "Tracer"]


@dataclass(frozen=True)
class TraceContext:
    """Serializable trace propagation state (crosses the worker Pipe).

    ``trace_id`` names the request/run the work belongs to;
    ``parent_span_id`` is the id of the span (in the *originating*
    tracer) that logically encloses the remote work — the link flow
    events are drawn from.
    """

    trace_id: str
    parent_span_id: int | None = None


@dataclass
class Span:
    """One closed (or still open) interval of virtual time."""

    span_id: int
    parent_id: int | None
    name: str
    t_start_s: float
    t_end_s: float | None = None
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Virtual duration (0.0 while still open)."""
        if self.t_end_s is None:
            return 0.0
        return self.t_end_s - self.t_start_s

    def set(self, **attrs: object) -> "Span":
        """Attach/overwrite attributes while the span is open."""
        self.attrs.update(attrs)
        return self

    @property
    def category(self) -> str:
        """Dotted-name prefix ('bfs' for 'bfs.level')."""
        return self.name.split(".", 1)[0]


@dataclass(frozen=True)
class TraceEvent:
    """A zero-duration instant mark."""

    name: str
    t_s: float
    attrs: dict[str, object]

    @property
    def category(self) -> str:
        """Dotted-name prefix."""
        return self.name.split(".", 1)[0]


@dataclass(frozen=True)
class CounterPoint:
    """One sample of a counter track (Perfetto plots these as curves)."""

    name: str
    t_s: float
    value: float


class Tracer:
    """Collects spans, instant events and counter tracks.

    The tracer starts unbound (time reads 0.0); the first component that
    owns a simulated clock binds it via :meth:`bind_clock`.  Span nesting
    uses a thread-local stack, so shard workers cannot corrupt each
    other's parent links; recording appends under a lock.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self.counters: list[CounterPoint] = []
        self._clock = None
        self._next_id = 1
        self._lock = threading.Lock()
        self._stack = threading.local()
        self._ctx = threading.local()

    # -- time ------------------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Attach a ``now() -> float`` time source (first binding wins)."""
        if self._clock is None:
            self._clock = clock

    @property
    def clock_bound(self) -> bool:
        """Whether a time source has been attached."""
        return self._clock is not None

    def now(self) -> float:
        """Current virtual time (0.0 before a clock is bound)."""
        return self._clock.now() if self._clock is not None else 0.0

    # -- recording -------------------------------------------------------------

    def _parents(self) -> list[Span]:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = self._stack.spans = []
        return stack

    # -- trace context -----------------------------------------------------------

    @property
    def active_context(self) -> TraceContext | None:
        """The trace context currently active on this thread (or None)."""
        return getattr(self._ctx, "current", None)

    @contextmanager
    def activate(self, ctx: TraceContext | None) -> Iterator[None]:
        """Make ``ctx`` the active trace context for the block.

        While active, every span opened on this thread gets a
        ``trace_id`` attribute, and spans with no *local* parent get a
        ``flow_parent`` attribute naming the remote parent span id.
        Activating ``None`` is a no-op (callers need not branch).
        """
        prev = getattr(self._ctx, "current", None)
        self._ctx.current = ctx if ctx is not None else prev
        try:
            yield
        finally:
            self._ctx.current = prev

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a span; closes (records t_end) when the block exits.

        >>> tracer = Tracer()
        >>> with tracer.span("bfs.level", level=0) as s:
        ...     _ = s.set(direction="top-down")
        >>> tracer.spans[0].name
        'bfs.level'
        """
        stack = self._parents()
        ctx = getattr(self._ctx, "current", None)
        with self._lock:
            span = Span(
                span_id=self._next_id,
                parent_id=stack[-1].span_id if stack else None,
                name=name,
                t_start_s=self.now(),
                attrs=dict(attrs),
            )
            if ctx is not None:
                span.attrs.setdefault("trace_id", ctx.trace_id)
                if not stack and ctx.parent_span_id is not None:
                    span.attrs.setdefault(
                        "flow_parent", ctx.parent_span_id
                    )
            self._next_id += 1
            self.spans.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            span.t_end_s = self.now()

    def event(self, name: str, **attrs: object) -> TraceEvent:
        """Record an instant event at the current virtual time."""
        evt = TraceEvent(name=name, t_s=self.now(), attrs=dict(attrs))
        with self._lock:
            self.events.append(evt)
        return evt

    def counter(self, name: str, value: float) -> None:
        """Record one point on a counter track."""
        with self._lock:
            self.counters.append(
                CounterPoint(name=name, t_s=self.now(), value=float(value))
            )

    # -- read side -------------------------------------------------------------

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in record order."""
        return [s for s in self.spans if s.name == name]

    def find_prefix(self, prefix: str) -> list[Span]:
        """All spans whose name starts with ``prefix``, in record order.

        The natural way to grab a span family: ``find_prefix("dist.")``
        returns every coordinator *and* worker span without enumerating
        names.
        """
        return [s for s in self.spans if s.name.startswith(prefix)]

    def find_glob(self, pattern: str) -> list[Span]:
        """All spans whose name matches a glob (``dist.worker*``)."""
        return [
            s for s in self.spans if fnmatch.fnmatchcase(s.name, pattern)
        ]

    def __repr__(self) -> str:
        return (
            f"Tracer(spans={len(self.spans)}, events={len(self.events)}, "
            f"counter_points={len(self.counters)})"
        )
