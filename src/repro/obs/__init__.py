"""repro.obs — the unified observability layer.

One zero-dependency subsystem replaces the reproduction's previously
scattered bookkeeping (ad-hoc prints, private counters in
``bfs/metrics.py``, one-off summaries):

* :class:`~repro.obs.registry.MetricsRegistry` — labeled counters,
  gauges and histograms; the names are catalogued in
  :mod:`repro.obs.schema` and documented in ``docs/observability.md``;
* :class:`~repro.obs.spans.Tracer` — spans keyed to the simulated clock
  (BFS levels, direction phases, NVM charges, cache fills, per-NUMA-node
  shard work);
* exporters — JSONL event log (lossless, round-trips),
  Chrome ``trace_event`` JSON (``chrome://tracing`` / Perfetto), and a
  Prometheus text snapshot.

Typical use::

    from repro.obs import Observability

    obs = Observability()
    result = run_graph500(DRAM_PCIE_FLASH, scale=12, n_roots=4, seed=1,
                          obs=obs)
    obs.export("out/")          # events.jsonl, trace.json, metrics.prom

or from the shell: ``python -m repro run --scale 12 --obs out/``.
"""

from repro.obs.derive import DerivedReport, derive
from repro.obs.exporters import (
    chrome_trace_events,
    parse_prometheus,
    prometheus_text,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
)
from repro.obs.profile import (
    SelfTimeRow,
    collapsed_stacks,
    self_time_table,
    write_collapsed,
)
from repro.obs.schema import (
    METRICS,
    SPANS,
    MetricSpec,
    lint_session,
    metric_names,
    span_names,
)
from repro.obs.session import NULL, Observability
from repro.obs.slo import (
    DEFAULT_SERVE_SLOS,
    SLOReport,
    SLOResult,
    SLOSpec,
    dist_worker_slos,
    evaluate,
)
from repro.obs.spans import CounterPoint, Span, TraceContext, TraceEvent, Tracer

__all__ = [
    "Observability",
    "NULL",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "Tracer",
    "Span",
    "TraceEvent",
    "TraceContext",
    "CounterPoint",
    "MetricSpec",
    "METRICS",
    "SPANS",
    "metric_names",
    "span_names",
    "lint_session",
    "collapsed_stacks",
    "self_time_table",
    "write_collapsed",
    "SelfTimeRow",
    "write_jsonl",
    "read_jsonl",
    "write_chrome_trace",
    "chrome_trace_events",
    "write_prometheus",
    "prometheus_text",
    "parse_prometheus",
    "derive",
    "DerivedReport",
    "evaluate",
    "SLOSpec",
    "SLOResult",
    "SLOReport",
    "DEFAULT_SERVE_SLOS",
    "dist_worker_slos",
]
