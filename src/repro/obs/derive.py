"""Derived metrics: the interpretation layer over a raw session.

:mod:`repro.obs` records *what happened* — counters, histograms, spans —
but a raw registry answers no operational question by itself.  This
module turns an exported (or live) :class:`~repro.obs.Observability`
session into the quantities an operator actually reads:

* **percentiles** — Prometheus-style quantile estimation over cumulative
  histogram buckets (:func:`histogram_quantile`) and exact quantiles
  over recorded span durations (:func:`exact_quantile`);
* **windowed rates** — event/span throughput per fixed window of
  simulated time (:func:`windowed_rate`);
* **per-level time series** — the ``bfs.level`` span stream reshaped
  into one :class:`LevelPoint` per level, the Fig. 11 view of a run;
* **anomaly flags** — EWMA-residual z-scores over any numeric series
  (:func:`flag_anomalies`); a pathologically late top-down switch or a
  retry storm shows up as a flagged level.

Everything here is a pure function of the session: no clock reads, no
randomness, sorted iteration only — so two same-seed runs produce
byte-identical :meth:`DerivedReport.to_json` output (pinned by
``tests/test_obs_derive.py``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs.registry import Histogram, format_labels

__all__ = [
    "histogram_quantile",
    "exact_quantile",
    "ewma",
    "flag_anomalies",
    "windowed_rate",
    "span_durations",
    "QuantileRow",
    "SpanStats",
    "LevelPoint",
    "RatePoint",
    "AnomalyFlag",
    "DerivedReport",
    "derive",
]

#: Quantiles every summary reports, in order.
QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99, 1.0)

#: EWMA smoothing factor for the anomaly baseline.
EWMA_ALPHA = 0.3

#: |z| at or above which a point is flagged.
Z_THRESHOLD = 3.0


# -- primitive estimators ----------------------------------------------------


def histogram_quantile(hist: Histogram, q: float) -> float:
    """Estimate the ``q``-quantile of a cumulative-bucket histogram.

    The Prometheus ``histogram_quantile`` rule: find the first bucket
    whose cumulative count reaches ``q * count`` and interpolate
    linearly inside it (the lowest bucket interpolates from 0, the
    overflow bucket clamps to the largest finite bound).

    >>> from repro.obs.registry import MetricsRegistry
    >>> h = MetricsRegistry().histogram("x", buckets=(1.0, 2.0, 4.0))
    >>> for v in (0.5, 1.5, 1.5, 3.0):
    ...     h.observe(v)
    >>> histogram_quantile(h, 0.5)
    1.5
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1]: {q}")
    if hist.count == 0:
        return 0.0
    rank = q * hist.count
    prev_bound = 0.0
    prev_count = 0
    for bound, cum in zip(hist.buckets, hist.bucket_counts):
        if cum >= rank:
            in_bucket = cum - prev_count
            if in_bucket == 0:
                return bound
            frac = (rank - prev_count) / in_bucket
            return prev_bound + (bound - prev_bound) * frac
        prev_bound = bound
        prev_count = cum
    # Overflow (+Inf) bucket: clamp to the largest finite bound.
    return hist.buckets[-1]


def exact_quantile(values: list[float], q: float) -> float:
    """Exact linear-interpolation quantile of a value list.

    >>> exact_quantile([4.0, 1.0, 3.0, 2.0], 0.5)
    2.5
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1]: {q}")
    if not values:
        return 0.0
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return ordered[lo]
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


def ewma(values: list[float], alpha: float = EWMA_ALPHA) -> list[float]:
    """Exponentially weighted moving average (first value seeds it).

    >>> ewma([1.0, 1.0, 5.0], alpha=0.5)
    [1.0, 1.0, 3.0]
    """
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1]: {alpha}")
    out: list[float] = []
    level = None
    for v in values:
        v = float(v)
        level = v if level is None else alpha * v + (1 - alpha) * level
        out.append(level)
    return out


@dataclass(frozen=True)
class AnomalyFlag:
    """One flagged point of a numeric series."""

    series: str
    index: int
    value: float
    baseline: float
    zscore: float

    def to_dict(self) -> dict:
        """JSON-safe rendering."""
        return {
            "series": self.series,
            "index": self.index,
            "value": self.value,
            "baseline": self.baseline,
            "zscore": round(self.zscore, 6),
        }


def flag_anomalies(
    series: str,
    values: list[float],
    alpha: float = EWMA_ALPHA,
    z_threshold: float = Z_THRESHOLD,
    min_points: int = 4,
) -> list[AnomalyFlag]:
    """Flag points whose EWMA residual exceeds ``z_threshold`` sigmas.

    The baseline at index ``i`` is the EWMA of ``values[:i]`` (the point
    under test never smooths itself in), and sigma is the standard
    deviation of all residuals-from-baseline — robust enough for the
    short series a BFS run produces, with no tunable history window.
    Series shorter than ``min_points`` never flag (nothing to learn a
    baseline from).
    """
    if len(values) < min_points:
        return []
    vals = [float(v) for v in values]
    smoothed = ewma(vals, alpha=alpha)
    baselines = [vals[0]] + smoothed[:-1]
    residuals = [v - b for v, b in zip(vals, baselines)]
    mean_r = sum(residuals) / len(residuals)
    var = sum((r - mean_r) ** 2 for r in residuals) / len(residuals)
    sigma = math.sqrt(var)
    if sigma == 0.0:
        return []
    flags: list[AnomalyFlag] = []
    for i, (v, b, r) in enumerate(zip(vals, baselines, residuals)):
        z = (r - mean_r) / sigma
        if abs(z) >= z_threshold:
            flags.append(AnomalyFlag(series, i, v, b, z))
    return flags


@dataclass(frozen=True)
class RatePoint:
    """Event throughput in one window of simulated time."""

    t_start_s: float
    t_end_s: float
    count: int
    rate_per_s: float

    def to_dict(self) -> dict:
        """JSON-safe rendering."""
        return {
            "t_start_s": self.t_start_s,
            "t_end_s": self.t_end_s,
            "count": self.count,
            "rate_per_s": self.rate_per_s,
        }


def windowed_rate(
    timestamps: list[float], window_s: float, t_end_s: float | None = None
) -> list[RatePoint]:
    """Bucket timestamps into fixed windows starting at t = 0.

    The final window is truncated at ``t_end_s`` (default: the last
    timestamp), so its rate still divides by the time actually covered.
    """
    if window_s <= 0:
        raise ConfigurationError(f"window must be positive: {window_s}")
    if not timestamps:
        return []
    ts = sorted(float(t) for t in timestamps)
    end = float(t_end_s) if t_end_s is not None else ts[-1]
    end = max(end, ts[-1])
    n_windows = max(1, int(math.ceil(end / window_s)) if end > 0 else 1)
    counts = [0] * n_windows
    for t in ts:
        idx = min(int(t // window_s), n_windows - 1)
        counts[idx] += 1
    points: list[RatePoint] = []
    for i, count in enumerate(counts):
        lo = i * window_s
        hi = min((i + 1) * window_s, end)
        width = hi - lo
        rate = count / width if width > 0 else 0.0
        points.append(RatePoint(lo, hi, count, rate))
    return points


def span_durations(obs, name: str) -> list[float]:
    """Durations of every *closed* span with ``name``, record order."""
    return [
        s.t_end_s - s.t_start_s
        for s in obs.tracer.spans
        if s.name == name and s.t_end_s is not None
    ]


# -- structured report -------------------------------------------------------


@dataclass(frozen=True)
class QuantileRow:
    """Quantile summary of one histogram series."""

    series: str
    count: int
    sum: float
    quantiles: tuple[tuple[float, float], ...]  # (q, estimate)

    def to_dict(self) -> dict:
        """JSON-safe rendering."""
        return {
            "series": self.series,
            "count": self.count,
            "sum": self.sum,
            "quantiles": {f"p{q * 100:g}": v for q, v in self.quantiles},
        }


@dataclass(frozen=True)
class SpanStats:
    """Exact duration statistics of one span name."""

    name: str
    count: int
    total_s: float
    quantiles: tuple[tuple[float, float], ...]

    def to_dict(self) -> dict:
        """JSON-safe rendering."""
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "quantiles": {f"p{q * 100:g}": v for q, v in self.quantiles},
        }


@dataclass(frozen=True)
class LevelPoint:
    """One BFS level as recorded by its ``bfs.level`` span."""

    ordinal: int  # position in the recorded level stream (across runs)
    level: int
    direction: str
    duration_s: float
    frontier: int
    discovered: int
    edges_scanned: int
    degraded: bool

    def to_dict(self) -> dict:
        """JSON-safe rendering."""
        return {
            "ordinal": self.ordinal,
            "level": self.level,
            "direction": self.direction,
            "duration_s": self.duration_s,
            "frontier": self.frontier,
            "discovered": self.discovered,
            "edges_scanned": self.edges_scanned,
            "degraded": self.degraded,
        }


@dataclass(frozen=True)
class DerivedReport:
    """Everything :func:`derive` computes from one session."""

    duration_s: float
    histogram_quantiles: tuple[QuantileRow, ...]
    span_stats: tuple[SpanStats, ...]
    level_series: tuple[LevelPoint, ...]
    rates: tuple[tuple[str, tuple[RatePoint, ...]], ...]
    anomalies: tuple[AnomalyFlag, ...]

    def to_dict(self) -> dict:
        """Deterministic nested-dict rendering (sorted, JSON-safe)."""
        return {
            "duration_s": self.duration_s,
            "histogram_quantiles": [
                r.to_dict() for r in self.histogram_quantiles
            ],
            "span_stats": [s.to_dict() for s in self.span_stats],
            "level_series": [p.to_dict() for p in self.level_series],
            "rates": {
                name: [p.to_dict() for p in points]
                for name, points in self.rates
            },
            "anomalies": [a.to_dict() for a in self.anomalies],
        }

    def to_json(self) -> str:
        """Canonical JSON — byte-identical for same-seed sessions."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    def format(self) -> str:
        """Aligned text tables (the ``slo`` CLI's derived section)."""
        from repro.analysis.report import ascii_table, format_float

        blocks: list[str] = []
        q_headers = [f"p{q * 100:g}" for q in QUANTILES]
        if self.histogram_quantiles:
            rows = [
                [r.series, r.count]
                + [format_float(v) for _, v in r.quantiles]
                for r in self.histogram_quantiles
            ]
            blocks.append(ascii_table(
                ["histogram", "count"] + q_headers, rows,
                title="histogram quantiles (interpolated)",
            ))
        if self.span_stats:
            rows = [
                [s.name, s.count, format_float(s.total_s)]
                + [format_float(v) for _, v in s.quantiles]
                for s in self.span_stats
            ]
            blocks.append(ascii_table(
                ["span", "count", "total s"] + q_headers, rows,
                title="span durations (exact, simulated seconds)",
            ))
        if self.anomalies:
            rows = [
                [a.series, a.index, format_float(a.value),
                 format_float(a.baseline), f"{a.zscore:+.2f}"]
                for a in self.anomalies
            ]
            blocks.append(ascii_table(
                ["series", "index", "value", "ewma baseline", "z"], rows,
                title="anomaly flags (|z| >= "
                      f"{Z_THRESHOLD:g} vs EWMA baseline)",
            ))
        else:
            blocks.append("anomaly flags: none")
        return "\n\n".join(blocks)


def _level_series(obs) -> tuple[LevelPoint, ...]:
    points = []
    ordinal = 0
    for span in obs.tracer.spans:
        if span.name != "bfs.level" or span.t_end_s is None:
            continue
        a = span.attrs
        points.append(LevelPoint(
            ordinal=ordinal,
            level=int(a.get("level", 0)),
            direction=str(a.get("direction", "")),
            duration_s=span.t_end_s - span.t_start_s,
            frontier=int(a.get("frontier", 0)),
            discovered=int(a.get("discovered", 0)),
            edges_scanned=int(a.get("edges_scanned", 0)),
            degraded=bool(a.get("degraded", False)),
        ))
        ordinal += 1
    return tuple(points)


def derive(
    obs,
    rate_window_s: float | None = None,
    quantiles: tuple[float, ...] = QUANTILES,
) -> DerivedReport:
    """Compute the full derived-metrics report of one session.

    ``rate_window_s`` sizes the throughput windows (default: a tenth of
    the session duration, so every run gets a ten-point rate series).
    """
    spans = obs.tracer.spans
    events = obs.tracer.events
    t_end = 0.0
    for s in spans:
        t_end = max(t_end, s.t_end_s if s.t_end_s is not None else s.t_start_s)
    for e in events:
        t_end = max(t_end, e.t_s)

    hist_rows = []
    for metric in obs.registry.metrics():
        if isinstance(metric, Histogram):
            hist_rows.append(QuantileRow(
                series=metric.name + format_labels(metric.labels),
                count=metric.count,
                sum=metric.sum,
                quantiles=tuple(
                    (q, histogram_quantile(metric, q)) for q in quantiles
                ),
            ))

    stats = []
    for name in sorted({s.name for s in spans}):
        durations = span_durations(obs, name)
        if not durations:
            continue
        stats.append(SpanStats(
            name=name,
            count=len(durations),
            total_s=sum(durations),
            quantiles=tuple(
                (q, exact_quantile(durations, q)) for q in quantiles
            ),
        ))

    levels = _level_series(obs)

    window = rate_window_s
    if window is None:
        window = t_end / 10.0 if t_end > 0 else 1.0
    rate_streams: list[tuple[str, tuple[RatePoint, ...]]] = []
    event_names = sorted({e.name for e in events})
    for name in event_names:
        ts = [e.t_s for e in events if e.name == name]
        rate_streams.append(
            (name, tuple(windowed_rate(ts, window, t_end_s=t_end)))
        )
    for name in ("nvm.charge", "serve.batch"):
        ts = [s.t_start_s for s in spans if s.name == name]
        if ts:
            rate_streams.append(
                (name, tuple(windowed_rate(ts, window, t_end_s=t_end)))
            )
    rate_streams.sort(key=lambda kv: kv[0])

    anomalies: list[AnomalyFlag] = []
    anomalies += flag_anomalies(
        "bfs.level.duration_s", [p.duration_s for p in levels]
    )
    anomalies += flag_anomalies(
        "bfs.level.edges_scanned", [float(p.edges_scanned) for p in levels]
    )
    backoffs = span_durations(obs, "nvm.backoff")
    anomalies += flag_anomalies("nvm.backoff.duration_s", backoffs)

    return DerivedReport(
        duration_s=t_end,
        histogram_quantiles=tuple(hist_rows),
        span_stats=tuple(stats),
        level_series=levels,
        rates=tuple(rate_streams),
        anomalies=tuple(anomalies),
    )
