"""Graph500 benchmark substrate.

Implements the four benchmark steps of the Graph500 specification the paper
builds on (§II): Kronecker edge-list generation, graph construction (in
:mod:`repro.csr`), BFS (in :mod:`repro.bfs`), and result validation — plus
the 64-root driver loop and the official result statistics.
"""

from repro.graph500.driver import (
    BenchmarkOutput,
    BenchmarkRun,
    Graph500Driver,
    count_traversed_input_edges,
)
from repro.graph500.edgelist import EdgeList
from repro.graph500.io import (
    read_int64_pairs,
    read_packed48,
    write_int64_pairs,
    write_packed48,
)
from repro.graph500.kronecker import (
    KroneckerParams,
    generate_edge_batches,
    generate_edges,
    sample_roots,
)
from repro.graph500.stats import Graph500Stats, teps_from_times
from repro.graph500.validate import ValidationResult, validate_bfs_tree

__all__ = [
    "BenchmarkOutput",
    "BenchmarkRun",
    "Graph500Driver",
    "count_traversed_input_edges",
    "EdgeList",
    "read_int64_pairs",
    "read_packed48",
    "write_int64_pairs",
    "write_packed48",
    "KroneckerParams",
    "generate_edges",
    "generate_edge_batches",
    "sample_roots",
    "Graph500Stats",
    "teps_from_times",
    "ValidationResult",
    "validate_bfs_tree",
]
