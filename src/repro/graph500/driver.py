"""The Graph500 benchmark driver loop (Steps 3–4 iterated 64 times).

Runs any BFS engine (an object with ``run(root) -> BFSResult``) from the
spec's 64 sampled search keys, validates each resulting tree against the
input edge list, and aggregates the official statistics.  The TEPS
numerator follows the specification: the number of *input edge tuples*
with at least one endpoint in the traversed component (self-loops and
duplicates count, exactly as ``validate.c`` tallies them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.bfs.metrics import BFSResult
from repro.errors import ConfigurationError
from repro.graph500.edgelist import EdgeList
from repro.graph500.kronecker import sample_roots
from repro.graph500.stats import Graph500Stats
from repro.graph500.validate import ValidationResult, validate_bfs_tree
from repro.obs.schema import (
    M_G500_INPUT_EDGES,
    M_G500_INVALID,
    M_G500_ITERATIONS,
)
from repro.obs.session import NULL

__all__ = ["BFSEngine", "BenchmarkRun", "BenchmarkOutput", "Graph500Driver",
           "count_traversed_input_edges"]


class BFSEngine(Protocol):
    """Anything the driver can benchmark."""

    def run(self, root: int) -> BFSResult:
        """Execute one BFS from ``root``."""
        ...


def count_traversed_input_edges(edges: EdgeList, parent: np.ndarray) -> int:
    """Input edge tuples incident to the traversed component.

    The reference validator counts an input tuple when either endpoint was
    visited (both endpoints are visited in a valid tree unless the tuple
    is entirely outside the component), so duplicates and self-loops
    inflate the numerator exactly as on the official lists.
    """
    visited = np.asarray(parent) >= 0
    u, v = edges.endpoints
    return int(np.count_nonzero(visited[u] | visited[v]))


@dataclass(frozen=True)
class BenchmarkRun:
    """One of the 64 iterations."""

    root: int
    result: BFSResult
    validation: ValidationResult
    input_edges_traversed: int

    def teps(self, modeled: bool = True) -> float:
        """Official-numerator TEPS for this run."""
        t = self.result.modeled_time_s if modeled else self.result.wall_time_s
        if t <= 0:
            return 0.0
        return self.input_edges_traversed / t


@dataclass(frozen=True)
class BenchmarkOutput:
    """Everything a benchmark configuration produced."""

    runs: tuple[BenchmarkRun, ...]
    stats_modeled: Graph500Stats
    stats_wall: Graph500Stats

    @property
    def median_teps_modeled(self) -> float:
        """The paper's headline number for this configuration."""
        return self.stats_modeled.median_teps

    @property
    def all_valid(self) -> bool:
        """Did every iteration pass Step 4?"""
        return all(r.validation.ok for r in self.runs)


class Graph500Driver:
    """Benchmark loop: sample roots, iterate BFS + validation, aggregate.

    Parameters
    ----------
    edges:
        The input edge list (kept for root sampling and validation; in the
        offloaded pipeline this wraps the NVM-resident copy).
    n_roots:
        Iterations; the spec says 64 (tests use fewer).
    seed:
        Root-sampling seed.
    validate:
        Run Step 4 after every BFS (the spec does; expensive sweeps may
        disable it after a first validated pass).
    obs:
        Observability session for the ``graph500.*`` counters and the
        per-iteration ``graph500.iteration`` / ``graph500.validate``
        spans.  Defaults to the disabled :data:`~repro.obs.NULL`.
    """

    def __init__(
        self,
        edges: EdgeList,
        n_roots: int = 64,
        seed: int | None = None,
        validate: bool = True,
        obs=None,
    ) -> None:
        if n_roots < 1:
            raise ConfigurationError(f"n_roots must be >= 1: {n_roots}")
        self.edges = edges
        self.n_roots = int(n_roots)
        self.seed = seed
        self.validate = validate
        self.obs = obs if obs is not None else NULL
        self.roots = sample_roots(edges.degrees(), n_roots=self.n_roots, seed=seed)

    def run(self, engine: BFSEngine) -> BenchmarkOutput:
        """Benchmark ``engine`` over the sampled roots."""
        obs = self.obs
        runs: list[BenchmarkRun] = []
        for i, root in enumerate(self.roots):
            with obs.span("graph500.iteration", iteration=i, root=int(root)):
                result = engine.run(int(root))
                obs.counter(M_G500_ITERATIONS).inc()
                if self.validate:
                    with obs.span("graph500.validate", root=int(root)):
                        validation = validate_bfs_tree(
                            self.edges, result.parent, int(root)
                        )
                    if not validation.ok:
                        obs.counter(M_G500_INVALID).inc()
                    validation.raise_if_invalid()
                else:
                    validation = ValidationResult(ok=True)
                traversed_input = count_traversed_input_edges(
                    self.edges, result.parent
                )
                obs.counter(M_G500_INPUT_EDGES).inc(traversed_input)
            runs.append(
                BenchmarkRun(
                    root=int(root),
                    result=result,
                    validation=validation,
                    input_edges_traversed=traversed_input,
                )
            )
        edges_arr = np.array([r.input_edges_traversed for r in runs], dtype=np.float64)
        modeled = np.array([r.result.modeled_time_s for r in runs])
        wall = np.array([r.result.wall_time_s for r in runs])
        stats_wall = Graph500Stats.from_runs(edges_arr, wall)
        if modeled.min() > 0:
            stats_modeled = Graph500Stats.from_runs(edges_arr, modeled)
        else:
            # Engine ran without a cost model: only wall time exists.
            stats_modeled = stats_wall
        return BenchmarkOutput(
            runs=tuple(runs),
            stats_modeled=stats_modeled,
            stats_wall=stats_wall,
        )
