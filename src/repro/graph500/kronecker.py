"""Graph500-compliant Kronecker (R-MAT) edge-list generation.

Implements the stochastic Kronecker generator of the Graph500 reference
code (v2.1.4 ``octave/kronecker_generator.m``): an undirected graph with
``N = 2**SCALE`` vertices and ``M = N * edge_factor`` edges, initiator
matrix ``[[A, B], [C, D]] = [[0.57, 0.19], [0.19, 0.05]]``, followed by a
random relabeling of vertices and a random shuffle of the edge order (both
required by the spec so that locality cannot be inferred from IDs).

The per-edge quadrant walk is vectorized across all edges of a batch: one
boolean draw per (edge, bit-level) pair, so generation is ``O(SCALE)``
NumPy passes regardless of edge count.  Batched generation
(:func:`generate_edge_batches`) bounds peak memory and mirrors the paper's
Step 1, which streams the edge list to NVM as it is produced (§V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.util.rng import derive_rng

__all__ = [
    "KroneckerParams",
    "generate_edges",
    "generate_edge_batches",
    "sample_roots",
]


@dataclass(frozen=True)
class KroneckerParams:
    """Kronecker generator parameters.

    Defaults are the Graph500 standard initiator (A=0.57, B=0.19, C=0.19,
    D=0.05) and edge factor 16 — the paper uses exactly these for every
    experiment (SCALE 26/27, edge factor 16).
    """

    scale: int
    edge_factor: int = 16
    a: float = 0.57
    b: float = 0.19
    c: float = 0.19

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ConfigurationError(f"scale must be >= 1, got {self.scale}")
        if self.edge_factor < 1:
            raise ConfigurationError(
                f"edge_factor must be >= 1, got {self.edge_factor}"
            )
        if min(self.a, self.b, self.c) < 0 or self.a + self.b + self.c >= 1.0:
            raise ConfigurationError(
                f"invalid initiator: A={self.a} B={self.b} C={self.c}"
            )

    @property
    def d(self) -> float:
        """Fourth initiator entry (1 - A - B - C)."""
        return 1.0 - self.a - self.b - self.c

    @property
    def n_vertices(self) -> int:
        """N = 2**SCALE."""
        return 1 << self.scale

    @property
    def n_edges(self) -> int:
        """M = N * edge_factor (undirected input edges)."""
        return self.n_vertices * self.edge_factor


def _sample_quadrants(params: KroneckerParams, m: int, rng) -> np.ndarray:
    """Draw ``m`` edge endpoints via the recursive quadrant walk.

    Returns a ``(2, m)`` int64 array of (start, end) vertex IDs *before*
    permutation.  Follows the reference Octave code: at each of the SCALE
    bit levels, choose the row bit with probability ``C + D`` and, given
    the row bit, the column bit with the conditional probability.
    """
    ab = params.a + params.b
    c_norm = params.c / (1.0 - ab)
    a_norm = params.a / ab
    ij = np.zeros((2, m), dtype=np.int64)
    for bit in range(params.scale):
        ii = rng.random(m) > ab
        jj = rng.random(m) > (c_norm * ii + a_norm * ~ii)
        ij[0] += (np.int64(1) << bit) * ii
        ij[1] += (np.int64(1) << bit) * jj
    return ij


def _permutation(params: KroneckerParams, seed) -> np.ndarray:
    """The spec-mandated random vertex relabeling (stable per seed)."""
    rng = derive_rng(seed, "kronecker", "vertex-permutation")
    return rng.permutation(params.n_vertices).astype(np.int64)


def generate_edges(
    scale: int,
    edge_factor: int = 16,
    seed: int | None = None,
    params: KroneckerParams | None = None,
) -> np.ndarray:
    """Generate the full edge list as a ``(2, M)`` int64 array.

    Deterministic in ``seed``; the same seed yields the same graph across
    processes and platforms.  Use :func:`generate_edge_batches` for graphs
    that should not be materialized at once.

    >>> edges = generate_edges(scale=6, edge_factor=4, seed=1)
    >>> edges.shape
    (2, 256)
    """
    p = params if params is not None else KroneckerParams(scale, edge_factor)
    rng = derive_rng(seed, "kronecker", "quadrants")
    ij = _sample_quadrants(p, p.n_edges, rng)
    perm = _permutation(p, seed)
    ij = perm[ij]
    order = derive_rng(seed, "kronecker", "edge-shuffle").permutation(p.n_edges)
    return np.ascontiguousarray(ij[:, order])


def generate_edge_batches(
    scale: int,
    edge_factor: int = 16,
    seed: int | None = None,
    batch_edges: int = 1 << 22,
    params: KroneckerParams | None = None,
) -> Iterator[np.ndarray]:
    """Yield the edge list in ``(2, batch_edges)`` pieces.

    The stream is deterministic in ``(seed, batch_edges)`` and draws the
    same total edge count from the same Kronecker distribution and vertex
    permutation as :func:`generate_edges`; the concrete edge multiset
    differs because the monolithic generator consumes its random stream
    bit-level-major while the batched one consumes it batch-major (the
    Graph500 spec fixes the distribution, not the stream order).  Peak
    memory is
    ``O(batch_edges + N)`` — the ``N`` term being the vertex permutation —
    which is what lets Step 1 of the paper's pipeline stream an
    edge list larger than DRAM directly onto NVM.
    """
    if batch_edges < 1:
        raise ConfigurationError(f"batch_edges must be >= 1, got {batch_edges}")
    p = params if params is not None else KroneckerParams(scale, edge_factor)
    rng = derive_rng(seed, "kronecker", "quadrants")
    perm = _permutation(p, seed)
    remaining = p.n_edges
    batch_idx = 0
    while remaining > 0:
        m = min(batch_edges, remaining)
        ij = _sample_quadrants(p, m, rng)
        ij = perm[ij]
        order = derive_rng(seed, "kronecker", f"batch-shuffle-{batch_idx}").permutation(m)
        yield np.ascontiguousarray(ij[:, order])
        remaining -= m
        batch_idx += 1


def sample_roots(
    degrees: np.ndarray,
    n_roots: int = 64,
    seed: int | None = None,
) -> np.ndarray:
    """Sample BFS roots per the Graph500 rules.

    Roots are drawn uniformly from vertices with **at least one edge that
    is not a self-loop** (the reference driver rejects isolated vertices
    and resamples), without replacement when possible.

    Parameters
    ----------
    degrees:
        Per-vertex degree *excluding self-loops* (from the constructed
        graph).
    n_roots:
        Number of search keys; the benchmark specifies 64.
    """
    if n_roots < 1:
        raise ConfigurationError(f"n_roots must be >= 1, got {n_roots}")
    candidates = np.flatnonzero(np.asarray(degrees) > 0)
    if candidates.size == 0:
        raise ConfigurationError("graph has no non-isolated vertices to root at")
    rng = derive_rng(seed, "graph500", "roots")
    replace = candidates.size < n_roots
    return np.sort(rng.choice(candidates, size=n_roots, replace=replace)).astype(
        np.int64
    )
