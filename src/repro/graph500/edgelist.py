"""Edge-list container (the paper's tuple-format *Edge List* structure).

NETAL keeps the generated Kronecker edge list "in a tuple format" (§IV-A)
and the proposed pipeline immediately offloads it to NVM (§V-A Step 1),
reading it back only for graph construction and validation.
:class:`EdgeList` wraps the ``(2, M)`` endpoint array, knows its vertex
universe, computes the structural statistics the size model needs, and can
round-trip itself through an :class:`~repro.semiext.storage.NVMStore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import GraphFormatError
from repro.semiext.storage import ExternalArray, NVMStore

__all__ = ["EdgeList"]


@dataclass(frozen=True)
class EdgeList:
    """An undirected multigraph given as endpoint tuples.

    Attributes
    ----------
    endpoints:
        ``(2, M)`` int64 array; row 0 = start vertices, row 1 = end
        vertices.  Self-loops and duplicate edges are allowed (the
        Kronecker generator produces both; construction filters them).
    n_vertices:
        Size of the vertex universe (``2**SCALE`` for Graph500 inputs).
    """

    endpoints: np.ndarray
    n_vertices: int

    def __post_init__(self) -> None:
        ep = self.endpoints
        if ep.ndim != 2 or ep.shape[0] != 2:
            raise GraphFormatError(f"endpoints must be (2, M), got {ep.shape}")
        if ep.dtype != np.int64:
            raise GraphFormatError(f"endpoints must be int64, got {ep.dtype}")
        if self.n_vertices <= 0:
            raise GraphFormatError(f"n_vertices must be positive: {self.n_vertices}")
        if ep.size and (ep.min() < 0 or int(ep.max()) >= self.n_vertices):
            raise GraphFormatError(
                f"endpoint outside [0, {self.n_vertices}): "
                f"min={ep.min()}, max={ep.max()}"
            )

    # -- basic properties ---------------------------------------------------------

    @property
    def n_edges(self) -> int:
        """Number of input edge tuples, M (incl. self-loops/duplicates)."""
        return int(self.endpoints.shape[1])

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the tuple array (what Figure 3 plots)."""
        return int(self.endpoints.nbytes)

    def degrees(self) -> np.ndarray:
        """Per-vertex degree counting both endpoints, self-loops excluded.

        This is the degree notion used by root sampling and by the size
        model's isolated-vertex count.
        """
        u, v = self.endpoints
        not_loop = u != v
        deg = np.bincount(u[not_loop], minlength=self.n_vertices)
        deg += np.bincount(v[not_loop], minlength=self.n_vertices)
        return deg.astype(np.int64)

    def n_self_loops(self) -> int:
        """Number of self-loop tuples."""
        u, v = self.endpoints
        return int(np.count_nonzero(u == v))

    def n_unique_undirected(self) -> int:
        """Number of distinct undirected non-loop edges."""
        return int(self.sorted_edge_keys.size)

    @cached_property
    def sorted_edge_keys(self) -> np.ndarray:
        """Sorted unique keys ``min(u,v)·n + max(u,v)`` of non-loop edges.

        Cached: the Graph500 validator consults this on every one of the
        64 iterations (tree-edge membership, rule 3), and the sort is the
        single most expensive validation step.
        """
        u, v = self.endpoints
        not_loop = u != v
        lo = np.minimum(u[not_loop], v[not_loop])
        hi = np.maximum(u[not_loop], v[not_loop])
        return np.unique(lo * np.int64(self.n_vertices) + hi)

    # -- persistence -----------------------------------------------------------------

    def offload(self, store: NVMStore, name: str = "edge_list") -> ExternalArray:
        """Write the tuple array to NVM (pipeline Step 1), returning the handle.

        The layout is the flattened ``(2, M)`` array (starts then ends),
        matching a C struct-of-arrays dump.
        """
        return store.put_array(name, self.endpoints.ravel())

    @classmethod
    def from_external(
        cls, ext: ExternalArray, n_vertices: int, charged: bool = True
    ) -> "EdgeList":
        """Reload an offloaded edge list.

        With ``charged=True`` (default) the read is a charged sequential
        NVM scan, as in pipeline Step 2 ("construct the forward graph by
        directly reading the edge list from NVM").
        """
        if ext.size % 2 != 0:
            raise GraphFormatError(
                f"external edge list has odd element count {ext.size}"
            )
        flat = (
            ext.read_slice(0, ext.size) if charged else ext.to_ndarray()
        )
        return cls(flat.reshape(2, -1).astype(np.int64), n_vertices)

    def __repr__(self) -> str:
        return f"EdgeList(n_vertices={self.n_vertices}, n_edges={self.n_edges})"
