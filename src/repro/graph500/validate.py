"""Graph500 BFS-tree validation (benchmark Step 4).

Implements the five validation rules of the Graph500 specification, which
the paper runs after every one of the 64 BFS iterations (§II Step 4, §V-A
Step 4 — using the tree on DRAM and the edge list on NVM):

1. the BFS tree has no cycles and every parent pointer eventually reaches
   the root (checked by computing levels with breadth-wise propagation);
2. each tree edge connects vertices whose BFS levels differ by exactly one;
3. every tree edge (vertex, parent) appears in the input edge list;
4. every input edge connects vertices whose levels differ by at most one,
   or joins two unvisited vertices (no edge may cross from the visited
   component to an unvisited vertex);
5. exactly the vertices of the root's connected component are in the tree.

All rules are evaluated with vectorized passes over the edge list; the
validator never rebuilds adjacency, so it can validate against an edge list
resident on (simulated) NVM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.graph500.edgelist import EdgeList

__all__ = ["ValidationResult", "compute_levels", "validate_bfs_tree"]

UNVISITED = np.int64(-1)
"""Parent value marking a vertex not reached by the BFS."""


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of validating one BFS tree."""

    ok: bool
    violations: tuple[str, ...] = ()
    levels: np.ndarray | None = field(default=None, compare=False)
    n_tree_vertices: int = 0

    def raise_if_invalid(self) -> None:
        """Raise :class:`ValidationError` with the first violation."""
        if not self.ok:
            raise ValidationError(self.violations[0])


def compute_levels(parent: np.ndarray, root: int) -> tuple[np.ndarray, str | None]:
    """Derive BFS levels from parent pointers.

    Returns ``(levels, error)`` where ``levels[v]`` is the hop count from
    the root (``-1`` for unvisited vertices) and ``error`` is a diagnostic
    string when the pointers contain a cycle or a dangling parent.

    Levels are propagated breadth-wise: at round ``k`` every vertex whose
    parent got level ``k-1`` receives level ``k``.  With valid input this
    terminates in (eccentricity) rounds; a vertex never reached while
    claiming a parent exposes a cycle.
    """
    n = parent.shape[0]
    levels = np.full(n, -1, dtype=np.int64)
    if not 0 <= root < n:
        return levels, f"root {root} outside [0, {n})"
    if parent[root] != root:
        return levels, f"tree[root] must equal root, got {parent[root]}"
    out_of_range = (parent != UNVISITED) & ((parent < 0) | (parent >= n))
    if out_of_range.any():
        v = int(np.flatnonzero(out_of_range)[0])
        return levels, (
            f"{int(np.count_nonzero(out_of_range))} parent pointers outside "
            f"[0, {n}), e.g. parent[{v}] = {int(parent[v])}"
        )
    levels[root] = 0
    visited_mask = parent != UNVISITED
    pending = np.flatnonzero(visited_mask & (levels == -1))
    level = 0
    while pending.size:
        parents_of_pending = parent[pending]
        ready = levels[parents_of_pending] == level
        if not ready.any():
            return levels, (
                f"{pending.size} vertices have parent pointers that never "
                f"reach the root (cycle or dangling parent), e.g. vertex "
                f"{int(pending[0])}"
            )
        levels[pending[ready]] = level + 1
        pending = pending[~ready]
        level += 1
    return levels, None


def validate_bfs_tree(
    edges: EdgeList,
    parent: np.ndarray,
    root: int,
    collect_all: bool = False,
) -> ValidationResult:
    """Validate a BFS parent array against the input edge list.

    Parameters
    ----------
    edges:
        The original (multigraph) edge list; self-loops and duplicates are
        handled per the spec (ignored for connectivity rules).
    parent:
        ``int64[n]`` parent pointers, ``-1`` = unvisited, ``parent[root]
        == root``.
    root:
        The search key of this BFS run.
    collect_all:
        When true, keep checking after the first violation and report all
        of them (used by tests); the default stops at the first for speed.
    """
    parent = np.asarray(parent)
    violations: list[str] = []
    n = edges.n_vertices
    if parent.shape != (n,):
        return ValidationResult(
            ok=False,
            violations=(f"parent array shape {parent.shape} != ({n},)",),
        )

    def fail(msg: str) -> ValidationResult | None:
        violations.append(msg)
        if not collect_all:
            return ValidationResult(ok=False, violations=tuple(violations))
        return None

    # Rule 1: acyclic pointers reaching the root; derive levels.
    levels, err = compute_levels(parent, root)
    if err is not None:
        res = fail(f"rule1: {err}")
        if res is not None:
            return res
    visited = levels >= 0

    # Rule 2: tree edges span exactly one level.  Out-of-range parent
    # pointers were already reported by rule 1; excluding them here keeps
    # the collect_all path free of wild indexing.
    in_range = (parent != UNVISITED) & (parent >= 0) & (parent < n)
    tree_vertices = np.flatnonzero(in_range & (np.arange(n) != root))
    if tree_vertices.size:
        dl = levels[tree_vertices] - levels[parent[tree_vertices]]
        bad = tree_vertices[(dl != 1) & visited[tree_vertices]]
        if bad.size:
            res = fail(
                f"rule2: {bad.size} tree edges do not span one level, "
                f"e.g. vertex {int(bad[0])} (level {int(levels[bad[0]])}) with "
                f"parent {int(parent[bad[0]])} (level {int(levels[parent[bad[0]]])})"
            )
            if res is not None:
                return res

    # Rule 3: every tree edge exists in the input edge list.
    if tree_vertices.size:
        edge_keys = edges.sorted_edge_keys  # cached across iterations
        tv = tree_vertices
        tp = parent[tv]
        tlo = np.minimum(tv, tp)
        thi = np.maximum(tv, tp)
        tree_keys = tlo * np.int64(n) + thi
        if edge_keys.size:
            pos = np.searchsorted(edge_keys, tree_keys)
            pos = np.minimum(pos, edge_keys.size - 1)
            missing = tv[edge_keys[pos] != tree_keys]
        else:  # self-loop-only or edgeless graph: every tree edge is bogus
            missing = tv
        if missing.size:
            res = fail(
                f"rule3: {missing.size} tree edges absent from the graph, "
                f"e.g. ({int(missing[0])}, {int(parent[missing[0]])})"
            )
            if res is not None:
                return res

    # Rule 4: no input edge spans more than one level or leaves the
    # visited component half-visited.
    u, v = edges.endpoints
    not_loop = u != v
    uu, vv = u[not_loop], v[not_loop]
    lu, lv = levels[uu], levels[vv]
    both_visited = (lu >= 0) & (lv >= 0)
    span_bad = both_visited & (np.abs(lu - lv) > 1)
    if span_bad.any():
        i = int(np.flatnonzero(span_bad)[0])
        res = fail(
            f"rule4: edge ({int(uu[i])}, {int(vv[i])}) spans levels "
            f"{int(lu[i])} and {int(lv[i])}"
        )
        if res is not None:
            return res
    half = both_visited ^ ((lu >= 0) | (lv >= 0))
    if half.any():
        i = int(np.flatnonzero(half)[0])
        res = fail(
            f"rule5: edge ({int(uu[i])}, {int(vv[i])}) connects a visited "
            f"vertex to an unvisited one — the tree does not span the "
            f"root's component"
        )
        if res is not None:
            return res

    ok = not violations
    return ValidationResult(
        ok=ok,
        violations=tuple(violations),
        levels=levels,
        n_tree_vertices=int(np.count_nonzero(visited)),
    )
