"""Edge-list file formats.

Two on-disk encodings are supported:

* **int64 pairs** — the Graph500 reference code's format: each edge as
  two little-endian 8-byte integers (16 B/edge);
* **packed 48-bit pairs** — NETAL's format, implied by the paper's sizes
  (Figure 3's 384 GB edge list at SCALE 31 is exactly 12 B × 2³⁵ edges):
  each endpoint packed into 6 bytes, supporting up to 2⁴⁸ vertices —
  comfortably past SCALE 36.

Both round-trip losslessly through :class:`~repro.graph500.edgelist.EdgeList`
and can stream through an :class:`~repro.semiext.storage.NVMStore` (the
packed file is what the pipeline's Step 1 writes at paper fidelity).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph500.edgelist import EdgeList

__all__ = [
    "PACKED_EDGE_BYTES",
    "write_int64_pairs",
    "read_int64_pairs",
    "pack_edges_48",
    "unpack_edges_48",
    "write_packed48",
    "read_packed48",
]

PACKED_EDGE_BYTES = 12
"""Bytes per edge in NETAL's packed format (2 × 48-bit vertex IDs)."""

_MAX_48 = (1 << 48) - 1


def write_int64_pairs(edges: EdgeList, path: str | Path) -> int:
    """Write the reference-code format; returns bytes written."""
    pairs = np.ascontiguousarray(edges.endpoints.T)  # (M, 2) interleaved
    pairs.astype("<i8").tofile(path)
    return pairs.nbytes


def read_int64_pairs(path: str | Path, n_vertices: int) -> EdgeList:
    """Read the reference-code format back into an :class:`EdgeList`."""
    flat = np.fromfile(path, dtype="<i8")
    if flat.size % 2 != 0:
        raise GraphFormatError(f"{path}: odd int64 count {flat.size}")
    return EdgeList(
        np.ascontiguousarray(flat.reshape(-1, 2).T.astype(np.int64)),
        n_vertices,
    )


def pack_edges_48(edges: EdgeList) -> np.ndarray:
    """Pack the endpoint pairs into NETAL's 12-byte records.

    Layout per edge: 6 little-endian bytes of the start vertex followed
    by 6 of the end vertex.  Vectorized: the int64 endpoints are viewed
    as 8-byte rows and the top two (zero) bytes dropped.
    """
    ep = edges.endpoints
    if ep.size and int(ep.max()) > _MAX_48:
        raise GraphFormatError("vertex id exceeds 48 bits")
    # (M, 2) little-endian int64 -> (M, 2, 8) bytes -> keep low 6 of each.
    pairs = np.ascontiguousarray(ep.T.astype("<i8"))
    as_bytes = pairs.view(np.uint8).reshape(-1, 2, 8)
    return np.ascontiguousarray(as_bytes[:, :, :6]).reshape(-1)


def unpack_edges_48(raw: np.ndarray, n_vertices: int) -> EdgeList:
    """Inverse of :func:`pack_edges_48`."""
    raw = np.asarray(raw, dtype=np.uint8)
    if raw.size % PACKED_EDGE_BYTES != 0:
        raise GraphFormatError(
            f"packed edge stream of {raw.size} bytes is not a multiple "
            f"of {PACKED_EDGE_BYTES}"
        )
    m = raw.size // PACKED_EDGE_BYTES
    six = raw.reshape(m, 2, 6).astype(np.int64)
    weights = (np.int64(1) << (8 * np.arange(6, dtype=np.int64)))
    endpoints = (six * weights).sum(axis=2).T
    return EdgeList(np.ascontiguousarray(endpoints), n_vertices)


def write_packed48(edges: EdgeList, path: str | Path) -> int:
    """Write NETAL's packed format; returns bytes written.

    The byte count is exactly ``12 × M`` — the quantity
    :class:`~repro.perfmodel.sizes.GraphSizeModel` charges for the edge
    list (384 GB at SCALE 31).
    """
    packed = pack_edges_48(edges)
    packed.tofile(path)
    return packed.nbytes


def read_packed48(path: str | Path, n_vertices: int) -> EdgeList:
    """Read NETAL's packed format back into an :class:`EdgeList`."""
    return unpack_edges_48(np.fromfile(path, dtype=np.uint8), n_vertices)
