"""Official Graph500 result statistics.

The benchmark reports, over the 64 BFS iterations, order statistics of the
per-run TEPS values plus their *harmonic* mean and its standard error (TEPS
is a rate, so runs are averaged harmonically — mean of times, not of
rates).  The paper quotes the **median** TEPS (e.g. 5.12 GTEPS DRAM-only,
4.22 GTEPS DRAM+PCIeFlash at SCALE 27); :class:`Graph500Stats` computes the
full official tuple so any number in the evaluation can be cross-checked.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["teps_from_times", "Graph500Stats"]


def teps_from_times(n_traversed_edges: np.ndarray, times_s: np.ndarray) -> np.ndarray:
    """Per-run TEPS: traversed input edges / elapsed seconds."""
    edges = np.asarray(n_traversed_edges, dtype=np.float64)
    times = np.asarray(times_s, dtype=np.float64)
    if edges.shape != times.shape:
        raise ConfigurationError("edge/time arrays must have matching shape")
    if times.size and times.min() <= 0:
        raise ConfigurationError("non-positive BFS time")
    return edges / times


@dataclass(frozen=True)
class Graph500Stats:
    """The official statistics block for one benchmark configuration."""

    n_runs: int
    min_teps: float
    firstquartile_teps: float
    median_teps: float
    thirdquartile_teps: float
    max_teps: float
    harmonic_mean_teps: float
    harmonic_stddev_teps: float
    mean_time_s: float
    median_time_s: float

    @classmethod
    def from_runs(
        cls, n_traversed_edges: np.ndarray, times_s: np.ndarray
    ) -> "Graph500Stats":
        """Compute the block from per-run edge counts and times.

        Quartiles use linear interpolation (the reference code's
        ``statistics.c`` does the same).  The harmonic standard deviation
        follows the reference: the standard error of ``1/TEPS`` mapped back
        through the harmonic mean.
        """
        teps = teps_from_times(n_traversed_edges, times_s)
        if teps.size == 0:
            raise ConfigurationError("no runs to summarize")
        times = np.asarray(times_s, dtype=np.float64)
        q = np.quantile(teps, [0.0, 0.25, 0.5, 0.75, 1.0])
        inv = 1.0 / teps
        hmean = 1.0 / inv.mean()
        if teps.size > 1:
            # Reference formula: stddev of the reciprocals, scaled.
            inv_std = inv.std(ddof=1) / np.sqrt(teps.size - 1)
            hstd = inv_std * hmean * hmean
        else:
            hstd = 0.0
        return cls(
            n_runs=int(teps.size),
            min_teps=float(q[0]),
            firstquartile_teps=float(q[1]),
            median_teps=float(q[2]),
            thirdquartile_teps=float(q[3]),
            max_teps=float(q[4]),
            harmonic_mean_teps=float(hmean),
            harmonic_stddev_teps=float(hstd),
            mean_time_s=float(times.mean()),
            median_time_s=float(np.median(times)),
        )

    def format(self) -> str:
        """Render in the reference driver's output style."""
        return "\n".join(
            [
                f"num_bfs_runs:            {self.n_runs}",
                f"min_TEPS:                {self.min_teps:.6g}",
                f"firstquartile_TEPS:      {self.firstquartile_teps:.6g}",
                f"median_TEPS:             {self.median_teps:.6g}",
                f"thirdquartile_TEPS:      {self.thirdquartile_teps:.6g}",
                f"max_TEPS:                {self.max_teps:.6g}",
                f"harmonic_mean_TEPS:      {self.harmonic_mean_teps:.6g}",
                f"harmonic_stddev_TEPS:    {self.harmonic_stddev_teps:.6g}",
                f"mean_time:               {self.mean_time_s:.6g}",
                f"median_time:             {self.median_time_s:.6g}",
            ]
        )
