"""Command-line interface.

``repro-bfs`` (or ``python -m repro``) exposes the pipeline and the main
analyses::

    repro-bfs run --scenario pcie --scale 16 --roots 8
    repro-bfs sweep --scale 14
    repro-bfs sizes --scales 20 31
    repro-bfs green --teps 4.22e9
    repro-bfs compare --scale 14

Every command prints the same rows/series the paper's corresponding table
or figure reports.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro._version import __version__

__all__ = ["main", "build_parser"]

_SCENARIOS = {"dram": "DRAM_ONLY", "pcie": "DRAM_PCIE_FLASH", "ssd": "DRAM_SSD"}


def _parse_offload_k(spec: str):
    """argparse type for ``--offload-k``: an int >= 0 or ``auto``."""
    if spec == "auto":
        return "auto"
    try:
        k = int(spec)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 0 or 'auto', got {spec!r}"
        ) from None
    if k < 0:
        raise argparse.ArgumentTypeError(f"K must be >= 0, got {k}")
    return k


def _parse_faults(spec: str):
    """argparse type for ``--faults``: a clean usage error, not a traceback."""
    from repro.errors import ConfigurationError
    from repro.semiext.faults import FaultPlan

    try:
        return FaultPlan.parse(spec)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_crash(spec: str):
    """argparse type for ``--crash``: ``level=2[,at_s=0.5][,torn=1][,seed=7]``.

    Returns a :class:`~repro.semiext.faults.FaultPlan` carrying only the
    crash fields; :func:`_cmd_run` merges it into the scenario's plan.
    """
    from repro.errors import ConfigurationError
    from repro.semiext.faults import FaultPlan

    aliases = {"level": "crash_at_level", "at_s": "crash_at_s",
               "torn": "crash_torn", "seed": "seed"}
    parts = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or key not in aliases:
            raise argparse.ArgumentTypeError(
                f"crash spec item {item!r} is not one of "
                f"{sorted(aliases)}=value"
            )
        parts.append(f"{aliases[key]}={value.strip()}")
    try:
        plan = FaultPlan.parse(",".join(parts))
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    if not plan.crashes:
        raise argparse.ArgumentTypeError(
            "crash spec needs level=N or at_s=T"
        )
    return plan


def _parse_partitions(spec: str):
    """argparse type for ``--partitions``: an int >= 1."""
    try:
        n = int(spec)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 1, got {spec!r}"
        ) from None
    if n < 1:
        raise argparse.ArgumentTypeError(f"partitions must be >= 1, got {n}")
    return n


def _parse_workload(spec: str):
    """argparse type for ``--workload``: a clean usage error, not a traceback."""
    from repro.errors import ConfigurationError
    from repro.serve.workload import WorkloadSpec

    try:
        return WorkloadSpec.parse(spec)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_mutations(spec: str):
    """argparse type for ``--mutations``: ``rate=50,ins=4,del=4``.

    Returns the ``WorkloadSpec`` field overrides the flag layers on top
    of ``--workload`` (mutations ride the same request stream).
    """
    keys = {"rate": "mut_rate", "ins": "mut_inserts", "del": "mut_deletes"}
    out = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, eq, raw = part.partition("=")
        field = keys.get(key.strip())
        if not eq or field is None:
            raise argparse.ArgumentTypeError(
                f"unknown mutation key {key.strip()!r} "
                f"(expected rate=, ins=, del=)"
            )
        try:
            out[field] = (float(raw) if field == "mut_rate" else int(raw))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"mutation key {key.strip()!r} needs a number, got {raw!r}"
            ) from None
    if "mut_rate" not in out:
        raise argparse.ArgumentTypeError("--mutations needs rate=<batches/s>")
    return out


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    p = argparse.ArgumentParser(
        prog="repro-bfs",
        description="Hybrid BFS with semi-external memory (IPDPS-W 2014 reproduction)",
    )
    p.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the Graph500 pipeline for one scenario")
    run.add_argument("--scenario", choices=sorted(_SCENARIOS), default="dram")
    run.add_argument("--scale", type=int, default=14)
    run.add_argument("--edge-factor", type=int, default=16)
    run.add_argument("--roots", type=int, default=8)
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--no-validate", action="store_true")
    run.add_argument(
        "--faults",
        type=_parse_faults,
        default=None,
        metavar="SPEC",
        help="fault-injection plan for the CSR device, e.g. "
             "'error_rate=0.02,gc_rate=0.01,gc_pause_ms=5,seed=7' "
             "(semi-external scenarios only)",
    )
    run.add_argument(
        "--offload-k",
        type=_parse_offload_k,
        default=None,
        metavar="K",
        help="tier the backward graph (§VI-E): keep only the first K "
             "edges per vertex in DRAM, serve each row's tail from the "
             "device; 'auto' lets the health-aware policy pick K from a "
             "placement proof (semi-external scenarios only; see "
             "docs/offload.md)",
    )
    run.add_argument(
        "--obs",
        type=str,
        default=None,
        metavar="DIR",
        help="capture the run's observability session and write "
             "events.jsonl, trace.json (chrome://tracing / Perfetto) and "
             "metrics.prom into DIR (see docs/observability.md)",
    )
    run.add_argument(
        "--crash",
        type=_parse_crash,
        default=None,
        metavar="SPEC",
        help="inject a seeded process crash and demonstrate checkpoint "
             "recovery, e.g. 'level=2,torn=1,seed=5' or 'at_s=0.001' "
             "(semi-external scenarios only; see docs/recovery.md)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint the traversal every N levels (0 = off); with "
             "--crash, the run resumes from the newest valid checkpoint "
             "and verifies the recovered tree is bit-identical",
    )
    run.add_argument(
        "--partitions",
        type=_parse_partitions,
        default=1,
        metavar="N",
        help="run the traversal 1D vertex-partitioned across N "
             "coordinator-driven workers and verify the tree "
             "byte-identical to the single-process engine "
             "(semi-external scenarios only; see docs/partitioning.md)",
    )
    run.add_argument(
        "--backend",
        choices=("local", "process"),
        default="local",
        help="worker backend with --partitions: in-process workers "
             "(default) or forked processes over shared-memory CSR "
             "segments; with --obs, both ship worker-side spans back "
             "to the coordinator's trace",
    )

    sweep = sub.add_parser("sweep", help="alpha x beta sweep (Figure 7 data)")
    sweep.add_argument("--scenario", choices=sorted(_SCENARIOS), default="dram")
    sweep.add_argument("--scale", type=int, default=13)
    sweep.add_argument("--roots", type=int, default=4)
    sweep.add_argument("--seed", type=int, default=None)

    sizes = sub.add_parser("sizes", help="graph size breakdown (Fig. 3 / Table II)")
    sizes.add_argument("--scales", type=int, nargs=2, default=(20, 31),
                       metavar=("LO", "HI"))

    green = sub.add_parser("green", help="MTEPS/W of the Green Graph500 machine")
    green.add_argument("--teps", type=float, default=4.22e9)

    compare = sub.add_parser(
        "compare", help="scenario comparison (Figure 8/9 data)"
    )
    compare.add_argument("--scale", type=int, default=13)
    compare.add_argument("--roots", type=int, default=4)
    compare.add_argument("--seed", type=int, default=None)

    iostat = sub.add_parser(
        "iostat", help="device I/O statistics during BFS (Figure 12/13 data)"
    )
    iostat.add_argument("--scenario", choices=("pcie", "ssd"), default="pcie")
    iostat.add_argument("--scale", type=int, default=13)
    iostat.add_argument("--roots", type=int, default=4)
    iostat.add_argument("--seed", type=int, default=None)

    locality = sub.add_parser(
        "locality", help="NUMA locality audit of the partitioned layouts"
    )
    locality.add_argument("--scale", type=int, default=13)
    locality.add_argument("--nodes", type=int, default=4)
    locality.add_argument("--seed", type=int, default=None)

    offload = sub.add_parser(
        "offload",
        help="measured backward-graph offload frontier "
             "(tiered store k-sweep; Figure 14 data)",
    )
    offload.add_argument("--scale", type=int, default=12)
    offload.add_argument("--ks", type=int, nargs="+",
                         default=[2, 4, 8, 16, 32, 64])
    offload.add_argument("--seed", type=int, default=None)

    serve = sub.add_parser(
        "serve",
        help="replay a query workload through the batched serving layer",
    )
    serve.add_argument("--scenario", choices=sorted(_SCENARIOS),
                       default="pcie")
    serve.add_argument("--scale", type=int, default=12)
    serve.add_argument("--edge-factor", type=int, default=16)
    serve.add_argument(
        "--workload",
        type=_parse_workload,
        default=None,
        metavar="SPEC",
        help="synthetic workload spec, e.g. "
             "'n=200,rate=1000,zipf=1.2,tenants=4,pool=64,seed=7' "
             "(defaults: 200 requests, 1000 req/s, zipf 1.1, 4 tenants)",
    )
    serve.add_argument(
        "--mutations",
        type=_parse_mutations,
        default=None,
        metavar="SPEC",
        help="mutate the graph under load, e.g. 'rate=50,ins=4,del=4' "
             "(Poisson batches per simulated second, layered onto "
             "--workload; queries after each batch see the new version)",
    )
    serve.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="FILE",
        help="replay a JSONL request trace instead of generating one "
             "(traces may carry mutation events)",
    )
    serve.add_argument("--batch", type=int, default=8,
                       help="max queries coalesced per traversal batch")
    serve.add_argument("--queue", type=int, default=64,
                       help="admission queue capacity (backpressure bound)")
    serve.add_argument("--cache", type=int, default=256,
                       help="result cache capacity (0 disables)")
    serve.add_argument("--cache-ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="result cache TTL in simulated seconds")
    serve.add_argument("--alpha", type=float, default=None,
                       help="direction threshold override "
                            "(default: scaled to graph size)")
    serve.add_argument("--beta", type=float, default=None,
                       help="direction threshold override "
                            "(default: scaled to graph size)")
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument(
        "--faults",
        type=_parse_faults,
        default=None,
        metavar="SPEC",
        help="fault-injection plan for the CSR device (see 'run --faults')",
    )
    serve.add_argument(
        "--obs",
        type=str,
        default=None,
        metavar="DIR",
        help="capture the serving session's observability exports into DIR",
    )
    serve.add_argument(
        "--slo",
        action="store_true",
        help="evaluate the serving SLOs (latency, availability, device "
             "error rate) on the simulated clock and print the verdict "
             "section with error budgets and burn rates",
    )
    serve.add_argument(
        "--partitions",
        type=_parse_partitions,
        default=1,
        metavar="N",
        help="register the graph as a partitioned deployment across N "
             "coordinator-driven workers and route queries through the "
             "coordinator (semi-external scenarios only; see "
             "docs/partitioning.md)",
    )

    profile = sub.add_parser(
        "profile",
        help="time-attribution profile of an exported obs session "
             "(self-time table + collapsed stacks)",
    )
    profile.add_argument(
        "--obs",
        required=True,
        metavar="DIR",
        help="an --obs export directory (or an events.jsonl path) to "
             "profile",
    )
    profile.add_argument(
        "--collapsed",
        type=str,
        default=None,
        metavar="FILE",
        help="also write collapsed stacks (flamegraph.pl / speedscope "
             "input) to FILE",
    )

    slo = sub.add_parser(
        "slo",
        help="derived metrics + SLO verdicts for an exported obs session",
    )
    slo.add_argument(
        "path",
        help="an exported events.jsonl, or the --obs directory holding one",
    )
    slo.add_argument(
        "--json",
        action="store_true",
        help="print the canonical JSON report (byte-identical for "
             "same-seed runs) instead of the text dashboard",
    )

    perf = sub.add_parser(
        "perf",
        help="run registered benchmark scenarios; write BENCH_*.json",
    )
    perf.add_argument("--list", action="store_true",
                      help="list registered scenarios and exit")
    perf.add_argument("--scenario", action="append", default=None,
                      metavar="NAME",
                      help="run one scenario (repeatable; default: all)")
    perf.add_argument("--out", type=str, default="bench-out", metavar="DIR",
                      help="artifact output directory (default: %(default)s)")
    perf.add_argument("--seed", type=int, default=7,
                      help="scenario seed (default: %(default)s, the "
                           "committed baselines' seed)")
    perf.add_argument("--baseline", type=str, default=None, metavar="DIR",
                      help="also gate the run against the baselines in DIR "
                           "(exit 1 on regression)")

    conformance = sub.add_parser(
        "conformance",
        help="cross-engine differential + metamorphic conformance harness",
    )
    conformance.add_argument(
        "--seeds", type=int, nargs="+", default=[7, 19, 101],
        metavar="SEED",
        help="harness seeds; each seed drives its own trial stream "
             "(default: %(default)s)",
    )
    conformance.add_argument(
        "--trials", type=int, default=3,
        help="randomized (graph, scenario, root) triples per seed "
             "(default: %(default)s)",
    )
    conformance.add_argument(
        "--scale", type=int, default=8,
        help="largest graph scale drawn (n <= 2^SCALE; "
             "default: %(default)s)",
    )
    conformance.add_argument(
        "--engines", type=str, nargs="+", default=None, metavar="NAME",
        help="engines to check (default: every registered engine)",
    )
    conformance.add_argument(
        "--out", type=str, default="conformance", metavar="DIR",
        help="directory for repro_*.json artifacts on failure "
             "(default: %(default)s)",
    )
    conformance.add_argument(
        "--quick", action="store_true",
        help="CI preset: 2 trials per seed, scale capped at 6",
    )
    conformance.add_argument(
        "--replay", type=str, default=None, metavar="FILE",
        help="re-execute one repro_*.json artifact instead of running "
             "the harness (exit 1 when the failure reproduces)",
    )
    conformance.add_argument(
        "--obs", type=str, default=None, metavar="DIR",
        help="export the harness's observability session "
             "(conformance.* metrics and spans) into DIR",
    )

    reproduce = sub.add_parser(
        "reproduce",
        help="run the full evaluation and write report.json / report.md",
    )
    reproduce.add_argument("--scale", type=int, default=14)
    reproduce.add_argument("--roots", type=int, default=4)
    reproduce.add_argument("--seed", type=int, default=20140519)
    reproduce.add_argument("--out", type=str, default="reproduction")
    return p


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_teps
    from repro.core import PAPER_SCENARIOS, run_graph500

    scenario = {s.name: s for s in PAPER_SCENARIOS}[
        {"dram": "DRAM-only", "pcie": "DRAM+PCIeFlash", "ssd": "DRAM+SSD"}[
            args.scenario
        ]
    ]
    if args.faults is not None:
        from dataclasses import replace

        from repro.errors import ConfigurationError

        try:
            scenario = replace(scenario, fault_plan=args.faults)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.offload_k is not None:
        from dataclasses import replace

        from repro.errors import ConfigurationError

        try:
            scenario = replace(scenario, offload_k=args.offload_k)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.partitions > 1:
        return _cmd_run_partitioned(scenario, args)
    if args.crash is not None or args.checkpoint_every:
        return _cmd_run_recovery(scenario, args)
    obs = None
    if args.obs is not None:
        from repro.obs import Observability

        obs = Observability()
    result = run_graph500(
        scenario,
        scale=args.scale,
        edge_factor=args.edge_factor,
        n_roots=args.roots,
        seed=args.seed,
        validate=not args.no_validate,
        obs=obs,
    )
    print(f"scenario:        {scenario.name}")
    print(f"scale/ef:        {args.scale} / {args.edge_factor}")
    print(f"valid:           {result.output.all_valid}")
    print(f"median TEPS:     {format_teps(result.median_teps)} (modeled)")
    print(result.output.stats_modeled.format())
    if result.bfs_iostats is not None:
        st = result.bfs_iostats
        print(
            f"nvm:             {st.n_requests} reqs, "
            f"avgrq-sz={st.avgrq_sz:.1f} sectors, avgqu-sz={st.avgqu_sz():.1f}"
        )
    if result.backward_store is not None:
        from repro.util.units import format_bytes

        tiered = result.backward_store
        rate = (
            tiered.fallthrough_rows / tiered.rows_scanned
            if tiered.rows_scanned
            else 0.0
        )
        print(
            f"offload:         k={result.offload_k} "
            f"(backward: {format_bytes(tiered.dram_nbytes)} DRAM + "
            f"{format_bytes(tiered.nvm_nbytes)} NVM tails, "
            f"{tiered.fallthrough_rows} fallthroughs / "
            f"{tiered.rows_scanned} rows = {rate:.1%})"
        )
    if scenario.fault_plan is not None and scenario.fault_plan.active:
        from repro.analysis.resilience import ResilienceSummary

        print()
        print(
            ResilienceSummary.from_parts(
                result.resilience, result.health
            ).format()
        )
    if obs is not None:
        from repro.analysis.report import metrics_table

        paths = obs.export(args.obs)
        print()
        print(metrics_table(obs.registry, prefix="bfs.",
                            title="bfs.* metrics (full set in metrics.prom)"))
        print()
        for kind in ("jsonl", "chrome_trace", "prometheus"):
            print(f"obs {kind}:       {paths[kind]}")
    return 0


def _cmd_run_partitioned(scenario, args: argparse.Namespace) -> int:
    """The ``--partitions N`` demo: distributed traversal, verified.

    Runs every sampled root through a coordinator over N partition
    workers (each with its own NVM store) and through the single-process
    semi-external engine, and verifies the trees byte-identical — the
    determinism contract docs/partitioning.md walks through.
    """
    from pathlib import Path

    import numpy as np

    from repro.analysis.report import format_teps
    from repro.bfs.policies import AlphaBetaPolicy
    from repro.bfs.semi_external import SemiExternalBFS
    from repro.csr import BackwardGraph, ForwardGraph, build_csr
    from repro.dist import ContiguousPartitioner, DistributedBFS
    from repro.graph500 import EdgeList, generate_edges, sample_roots
    from repro.semiext.storage import NVMStore
    from repro.util.units import format_bytes

    if scenario.device is None:
        print(
            "error: --partitions needs a semi-external scenario "
            "(pcie or ssd)",
            file=sys.stderr,
        )
        return 2
    n = 1 << args.scale
    edges = EdgeList(
        generate_edges(args.scale, args.edge_factor, seed=args.seed), n
    )
    csr = build_csr(edges)
    roots = sample_roots(csr.degrees(), n_roots=args.roots, seed=args.seed)

    def policy() -> AlphaBetaPolicy:
        return AlphaBetaPolicy(alpha=scenario.alpha, beta=scenario.beta)

    obs = None
    if args.obs is not None:
        from repro.obs import Observability

        obs = Observability()
    identical = True
    teps: list[float] = []
    with tempfile.TemporaryDirectory(prefix="repro-dist-") as td:
        workdir = Path(td)
        engine = DistributedBFS.build(
            csr,
            ContiguousPartitioner(args.partitions),
            policy(),
            workdir / "dist",
            scenario.device,
            cost_model=scenario.cost_model,
            fault_plans=scenario.fault_plan,
            concurrency=scenario.topology.n_cores,
            backend=args.backend,
            obs=obs,
        )
        oracle = SemiExternalBFS.offload(
            forward=ForwardGraph(csr, scenario.topology),
            backward=BackwardGraph(csr, scenario.topology),
            policy=policy(),
            store=NVMStore(
                workdir / "oracle",
                scenario.device,
                concurrency=scenario.topology.n_cores,
            ),
            cost_model=scenario.cost_model,
        )
        try:
            for root in roots:
                result = engine.run(int(root))
                if result.modeled_time_s > 0:
                    teps.append(
                        result.traversed_edges / result.modeled_time_s
                    )
                if not np.array_equal(
                    result.parent, oracle.run(int(root)).parent
                ):
                    identical = False
            per_worker = engine.nvm_bytes_per_worker()
            restarts = engine.restarts
            degraded = engine.degraded_mode
        finally:
            engine.close()
    print(f"scenario:        {scenario.name}")
    print(f"scale/ef:        {args.scale} / {args.edge_factor}")
    print(f"partitions:      {args.partitions}")
    print(f"roots:           {len(roots)}")
    print(f"trees identical: {identical} (vs single-process semi-external)")
    if teps:
        print(
            f"median TEPS:     {format_teps(float(np.median(teps)))} "
            f"(modeled)"
        )
    print(
        "nvm per worker:  "
        + ", ".join(format_bytes(b) for b in per_worker)
    )
    if restarts or degraded:
        print(f"restarts:        {restarts} (degraded={degraded})")
    if obs is not None:
        from repro.obs.profile import track_of

        paths = obs.export(args.obs)
        per_track: dict[str, int] = {}
        for span in obs.tracer.spans:
            track = track_of(span)
            per_track[track] = per_track.get(track, 0) + 1
        print()
        print(
            "trace spans:     "
            + ", ".join(
                f"{track}={count}"
                for track, count in sorted(per_track.items())
            )
        )
        for kind in ("jsonl", "chrome_trace", "prometheus"):
            print(f"obs {kind}:       {paths[kind]}")
        print(
            "profile with:    repro-bfs profile --obs "
            f"{args.obs}"
        )
    return 0 if identical else 1


def _cmd_run_recovery(scenario, args: argparse.Namespace) -> int:
    """The ``--crash`` / ``--checkpoint-every`` demo: crash, resume, verify.

    Runs one checkpointed semi-external traversal under the scenario's
    fault plan (plus the ``--crash`` injection), resumes after the crash
    and verifies the recovered tree is bit-identical to an uninterrupted
    run and passes Graph500 validation.  Exit status 0 only when both
    hold.
    """
    from dataclasses import replace
    from pathlib import Path

    import numpy as np

    from repro.bfs.policies import AlphaBetaPolicy
    from repro.bfs.semi_external import SemiExternalBFS
    from repro.core.config import ScenarioKind
    from repro.csr import BackwardGraph, ForwardGraph, build_csr
    from repro.errors import ProcessCrashError
    from repro.graph500 import EdgeList, generate_edges
    from repro.graph500.validate import validate_bfs_tree
    from repro.recovery import RecoverableBFS, load_run
    from repro.semiext.storage import NVMStore

    if scenario.kind is not ScenarioKind.SEMI_EXTERNAL:
        print(
            "error: crash recovery needs a semi-external scenario "
            "(use --scenario pcie or --scenario ssd)",
            file=sys.stderr,
        )
        return 2
    plan = scenario.fault_plan
    if args.crash is not None:
        crash = args.crash
        if plan is None:
            plan = crash
        else:
            plan = replace(
                plan,
                crash_at_s=crash.crash_at_s,
                crash_at_level=crash.crash_at_level,
                crash_torn=crash.crash_torn,
            )
    every = args.checkpoint_every if args.checkpoint_every > 0 else 2
    obs = None
    if args.obs is not None:
        from repro.obs import Observability

        obs = Observability()

    n = 1 << args.scale
    edges = EdgeList(
        generate_edges(args.scale, edge_factor=args.edge_factor,
                       seed=args.seed),
        n,
    )
    csr = build_csr(edges)
    forward = ForwardGraph(csr, scenario.topology)
    backward = BackwardGraph(csr, scenario.topology)
    root = int(np.flatnonzero(csr.degrees() > 0)[0])

    def build_engine(workdir: Path, subdir: str, fault_plan):
        # Only the crashed run is instrumented: the clean run exists to
        # diff against, and giving both stores one session would
        # interleave two unrelated simulated clocks in the trace.
        store = NVMStore(
            workdir / subdir,
            scenario.device,
            concurrency=scenario.topology.n_cores,
            fault_plan=fault_plan,
            obs=obs if subdir == "crashed" else None,
        )
        return SemiExternalBFS.offload(
            forward=forward,
            backward=backward,
            policy=AlphaBetaPolicy(alpha=scenario.alpha, beta=scenario.beta),
            store=store,
        )

    with tempfile.TemporaryDirectory(prefix="repro-recovery-") as tmp:
        workdir = Path(tmp)
        clean = build_engine(workdir, "clean", None).run(root)
        rec = RecoverableBFS(
            build_engine(workdir, "crashed", plan), checkpoint_every=every
        )
        print(f"scenario:         {scenario.name}")
        print(f"scale/ef:         {args.scale} / {args.edge_factor}")
        print(f"root:             {root}")
        print(f"checkpoint every: {every} levels")
        crash_exc = None
        try:
            result = rec.run(root)
        except ProcessCrashError as exc:
            crash_exc = exc
            restored = load_run(rec.manager.dir)
            print(
                f"crashed:          after level {exc.level} "
                f"at t={exc.crashed_at_s:.6f}s"
            )
            if restored.epoch >= 0:
                print(
                    f"restore:          epoch {restored.epoch} "
                    f"({restored.n_epochs_seen} seen, "
                    f"{restored.n_torn} torn)"
                )
            else:
                print("restore:          no valid epoch; restarting")
            result = rec.resume()
        if crash_exc is None:
            print("crashed:          no (crash point never reached)")
        print(
            f"checkpoints:      {rec.manager.n_checkpoints} epochs, "
            f"{rec.manager.bytes_written} bytes"
        )
        identical = result.parent.tobytes() == clean.parent.tobytes()
        validation = validate_bfs_tree(edges, result.parent, root)
        print(f"byte-identical:   {identical}")
        print(f"valid:            {validation.ok}")
        if not validation.ok:
            for v in validation.violations:
                print(f"  violation: {v}")
        if obs is not None:
            paths = obs.export(args.obs)
            for kind in ("jsonl", "chrome_trace", "prometheus"):
                print(f"obs {kind}:       {paths[kind]}")
        return 0 if identical and validation.ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.perfcompare import build_engine
    from repro.analysis.sweep import alpha_beta_sweep
    from repro.core import PAPER_SCENARIOS
    from repro.csr import BackwardGraph, ForwardGraph, build_csr
    from repro.graph500 import EdgeList, generate_edges

    scenario = {s.name: s for s in PAPER_SCENARIOS}[
        {"dram": "DRAM-only", "pcie": "DRAM+PCIeFlash", "ssd": "DRAM+SSD"}[
            args.scenario
        ]
    ]
    n = 1 << args.scale
    edges = EdgeList(generate_edges(args.scale, seed=args.seed), n)
    csr = build_csr(edges)
    fwd = ForwardGraph(csr, scenario.topology)
    bwd = BackwardGraph(csr, scenario.topology)
    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as workdir:
        result = alpha_beta_sweep(
            lambda a, b: build_engine(scenario, fwd, bwd, a, b, workdir),
            edges,
            scenario.name,
            n_roots=args.roots,
            seed=args.seed,
        )
    print(result.format())
    from repro.analysis.report import ascii_heatmap

    print()
    print(
        ascii_heatmap(
            result.teps,
            [f"a={a:.3g}" for a in result.alphas],
            [f"{f}*a" for f in result.beta_factors],
            title="(TEPS intensity)",
        )
    )
    a, b, t = result.best()
    print(f"best: alpha={a:.3g} beta={b:.3g} -> {t / 1e9:.3f} GTEPS")
    return 0


def _cmd_sizes(args: argparse.Namespace) -> int:
    from repro.perfmodel import GraphSizeModel

    lo, hi = args.scales
    model = GraphSizeModel()
    for b in model.sweep(range(lo, hi + 1)):
        print(b.format_row())
    return 0


def _cmd_green(args: argparse.Namespace) -> int:
    from repro.perfmodel import MachinePowerModel

    model = MachinePowerModel.green_graph500_submission()
    print(f"machine power:   {model.total_watts:.0f} W")
    print(f"TEPS:            {args.teps:.3g}")
    print(f"MTEPS/W:         {model.mteps_per_watt(args.teps):.2f}")
    print("paper (Green Graph500 Nov 2013, Big Data, rank 4): 4.35 MTEPS/W")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.perfcompare import compare_scenarios
    from repro.analysis.report import ascii_table, format_teps
    from repro.analysis.sweep import scaled_alpha_grid
    from repro.core import PAPER_SCENARIOS
    from repro.csr import BackwardGraph, ForwardGraph, build_csr
    from repro.graph500 import EdgeList, generate_edges

    n = 1 << args.scale
    edges = EdgeList(generate_edges(args.scale, seed=args.seed), n)
    csr = build_csr(edges)
    topo = PAPER_SCENARIOS[0].topology
    fwd = ForwardGraph(csr, topo)
    bwd = BackwardGraph(csr, topo)
    alphas = scaled_alpha_grid(n)
    points = tuple((a, f * a) for a in alphas for f in (0.1, 1.0, 10.0))
    with tempfile.TemporaryDirectory(prefix="repro-compare-") as workdir:
        series = compare_scenarios(
            edges, csr, fwd, bwd, PAPER_SCENARIOS, points, workdir,
            n_roots=args.roots, seed=args.seed,
        )
    headers = ["series"] + [f"a={a:.2g},b={b:.2g}" for a, b in points]
    rows = [
        [s.name] + [format_teps(t) for t in s.teps]
        for s in series
    ]
    print(ascii_table(headers, rows, title=f"Figure 8/9 data @ SCALE {args.scale}"))
    return 0


def _cmd_iostat(args: argparse.Namespace) -> int:
    from repro.analysis.iotrace import summarize_iostats
    from repro.bfs import AlphaBetaPolicy, SemiExternalBFS
    from repro.csr import BackwardGraph, ForwardGraph, build_csr
    from repro.graph500 import EdgeList, Graph500Driver, generate_edges
    from repro.numa import NumaTopology
    from repro.perfmodel import DramCostModel
    from repro.semiext import NVMStore, PCIE_FLASH, SATA_SSD

    n = 1 << args.scale
    edges = EdgeList(generate_edges(args.scale, seed=args.seed), n)
    csr = build_csr(edges)
    topo = NumaTopology(4, 12)
    device = PCIE_FLASH if args.scenario == "pcie" else SATA_SSD
    with tempfile.TemporaryDirectory(prefix="repro-iostat-") as workdir:
        store = NVMStore(workdir, device, concurrency=topo.n_cores)
        engine = SemiExternalBFS.offload(
            ForwardGraph(csr, topo),
            BackwardGraph(csr, topo),
            AlphaBetaPolicy(alpha=30.0 * n / (1 << 15) or 30.0,
                            beta=30.0 * n / (1 << 15) or 30.0),
            store,
            cost_model=DramCostModel(),
        )
        Graph500Driver(edges, n_roots=args.roots, seed=args.seed,
                       validate=False).run(engine)
        summary = summarize_iostats(store.iostats)
    print(summary.format())
    print("paper (Fig. 12/13): avgqu-sz 36.1 PCIe / 56.1 SSD; "
          "avgrq-sz 22.6 / 22.7 sectors")
    return 0


def _cmd_locality(args: argparse.Namespace) -> int:
    from repro.analysis import audit_locality
    from repro.csr import BackwardGraph, ForwardGraph, build_csr
    from repro.graph500 import EdgeList, generate_edges
    from repro.numa import NumaTopology

    n = 1 << args.scale
    edges = EdgeList(generate_edges(args.scale, seed=args.seed), n)
    csr = build_csr(edges)
    topo = NumaTopology(n_nodes=args.nodes)
    audit = audit_locality(
        csr, ForwardGraph(csr, topo), BackwardGraph(csr, topo), topo
    )
    print(f"edges audited:        {audit.n_edges_audited:,}")
    print(f"NETAL layout remote:  {audit.netal_remote_fraction:.1%}")
    print(f"naive layout remote:  {audit.naive_remote_fraction:.1%}")
    print(f"traffic kept local:   {audit.traffic_saved:.1%}")
    return 0


def _cmd_offload(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import backward_offload_sweep, tiered_offload_sweep
    from repro.analysis.report import ascii_table, format_teps
    from repro.csr import BackwardGraph, ForwardGraph, build_csr
    from repro.graph500 import EdgeList, generate_edges, sample_roots
    from repro.numa import NumaTopology
    from repro.semiext import PCIE_FLASH
    from repro.util.units import format_bytes

    n = 1 << args.scale
    edges = EdgeList(generate_edges(args.scale, seed=args.seed), n)
    csr = build_csr(edges)
    topo = NumaTopology(4, 12)
    forward = ForwardGraph(csr, topo)
    backward = BackwardGraph(csr, topo)
    roots = sample_roots(csr.degrees(), n_roots=3, seed=args.seed)
    with tempfile.TemporaryDirectory(prefix="repro-offload-") as workdir:
        measured = tiered_offload_sweep(
            forward,
            backward,
            PCIE_FLASH,
            Path(workdir) / "tiered",
            roots,
            ks=tuple(args.ks),
            alpha=n / 128,
            beta=n / 128,
        )
        points = backward_offload_sweep(
            forward,
            backward,
            PCIE_FLASH,
            Path(workdir) / "estimate",
            roots,
            ks=tuple(args.ks),
            alpha=n / 128,
            beta=n / 128,
        )
    rows = [
        [p.k, format_bytes(p.dram_bytes), f"{p.dram_reduction:.1%}",
         p.fallthrough_rows, f"{p.fallthrough_rate:.1%}",
         format_teps(p.teps)]
        for p in measured
    ]
    print(ascii_table(
        ["k", "DRAM resident", "saved", "fallthroughs", "rate",
         "modeled TEPS"],
        rows,
        title="Measured memory-vs-TEPS frontier (TieredBackwardStore)",
    ))
    print()
    rows = [
        [p.strategy, p.k, f"{p.dram_reduction:.1%}",
         f"{p.nvm_access_ratio:.1%}"]
        for p in points
    ]
    print(ascii_table(
        ["strategy", "k", "DRAM reduction", "NVM access ratio"], rows,
        title="Figure 14's two readings of k (repro.semiext.cache)",
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.analysis.serving import ServeSummary
    from repro.core import PAPER_SCENARIOS
    from repro.errors import ConfigurationError
    from repro.serve import (
        BFSServer,
        GraphCatalog,
        WorkloadSpec,
        generate_workload,
        load_trace,
    )

    scenario = {s.name: s for s in PAPER_SCENARIOS}[
        {"dram": "DRAM-only", "pcie": "DRAM+PCIeFlash", "ssd": "DRAM+SSD"}[
            args.scenario
        ]
    ]
    if args.mutations is not None and args.partitions > 1:
        print("error: --mutations attaches to locally pinned graphs; "
              "partitioned deployments are static (see docs/dynamic.md)",
              file=sys.stderr)
        return 2
    if args.mutations is not None and args.trace is not None:
        print("error: --mutations generates a workload; a --trace already "
              "carries its own mutation events", file=sys.stderr)
        return 2
    if args.faults is not None:
        from dataclasses import replace

        scenario = replace(scenario, fault_plan=args.faults)
    obs = None
    if args.obs is not None or args.slo:
        from repro.obs import Observability

        obs = Observability()
    n = 1 << args.scale
    # The Table I thresholds target SCALE 27; at CLI scales they would
    # pin every level after the first to bottom-up, leaving no top-down
    # traffic to batch.  Scale them down unless the user overrides.
    alpha = args.alpha if args.alpha is not None else n / 128.0
    beta = args.beta if args.beta is not None else n / 128.0
    catalog = GraphCatalog(obs=obs)
    try:
        if args.partitions > 1:
            try:
                graph = catalog.build_partitioned(
                    "default",
                    scenario,
                    scale=args.scale,
                    n_partitions=args.partitions,
                    edge_factor=args.edge_factor,
                    seed=args.seed,
                    alpha=alpha,
                    beta=beta,
                )
            except ConfigurationError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        else:
            graph = catalog.build(
                "default",
                scenario,
                scale=args.scale,
                edge_factor=args.edge_factor,
                seed=args.seed,
                alpha=alpha,
                beta=beta,
            )
        if args.trace is not None:
            try:
                requests = load_trace(args.trace)
            except ConfigurationError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        else:
            spec = args.workload if args.workload is not None else WorkloadSpec()
            if args.mutations is not None:
                from dataclasses import replace as _replace

                spec = _replace(spec, **args.mutations)
            mut_csr = None
            if spec.mut_rate > 0:
                from repro.csr import build_csr

                mut_csr = build_csr(graph.edges)
            requests = generate_workload(spec.with_seed(args.seed),
                                         graph.degrees, csr=mut_csr)
        server = BFSServer(
            catalog,
            batch_size=args.batch,
            queue_capacity=args.queue,
            cache_capacity=args.cache,
            cache_ttl_s=args.cache_ttl,
            obs=obs,
        )
        report = server.serve(requests)
    finally:
        catalog.close()
    print(f"scenario:        {scenario.name}")
    print(f"scale/ef:        {args.scale} / {args.edge_factor}")
    print(f"batch/queue:     {args.batch} / {args.queue}")
    if args.partitions > 1:
        print(f"partitions:      {args.partitions}")
    print(ServeSummary.from_report(report).format())
    if args.slo:
        from repro.obs import evaluate

        print()
        print(evaluate(obs).format())
    if args.obs is not None:
        from repro.analysis.report import metrics_table

        paths = obs.export(args.obs)
        print()
        print(metrics_table(obs.registry, prefix="serve.",
                            title="serve.* metrics (full set in metrics.prom)"))
        print()
        for kind in ("jsonl", "chrome_trace", "prometheus"):
            print(f"obs {kind}:       {paths[kind]}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.report import ascii_table
    from repro.errors import ConfigurationError
    from repro.obs import read_jsonl, self_time_table, write_collapsed

    path = Path(args.obs)
    if path.is_dir():
        path = path / "events.jsonl"
    try:
        obs = read_jsonl(path)
    except (OSError, ConfigurationError) as exc:
        print(f"error: cannot read obs export: {exc}", file=sys.stderr)
        return 2
    rows = self_time_table(obs)
    if not rows:
        print(f"no spans in {path}")
        return 0
    print(ascii_table(
        ["track", "span", "count", "total s", "self s", "bytes"],
        [
            [r.track, r.name, r.count, f"{r.total_s:.6f}",
             f"{r.self_s:.6f}", r.bytes]
            for r in rows
        ],
        title=f"self-time attribution — {path} (simulated clock)",
    ))
    by_track: dict[str, float] = {}
    for r in rows:
        by_track[r.track] = by_track.get(r.track, 0.0) + r.self_s
    print()
    print(
        "lane totals:     "
        + ", ".join(
            f"{track}={total:.6f}s"
            for track, total in sorted(by_track.items())
        )
    )
    if args.collapsed is not None:
        out = write_collapsed(obs, args.collapsed)
        print(f"collapsed:       {out} (flamegraph.pl / speedscope)")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.dashboard import render_dashboard
    from repro.errors import ConfigurationError
    from repro.obs import derive, evaluate, read_jsonl

    path = Path(args.path)
    if path.is_dir():
        path = path / "events.jsonl"
    try:
        obs = read_jsonl(path)
    except (OSError, ConfigurationError) as exc:
        print(f"error: cannot read obs export: {exc}", file=sys.stderr)
        return 2
    derived = derive(obs)
    slo = evaluate(obs)
    if args.json:
        import json

        print(json.dumps(
            {"slo": slo.to_dict(), "derived": derived.to_dict()},
            sort_keys=True, indent=1,
        ))
    else:
        print(render_dashboard(
            obs, slo=slo, derived=derived,
            title=f"run dashboard — {path}",
        ))
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.errors import ConfigurationError
    from repro.perf import SCENARIOS, compare, get_scenario, load

    if args.list:
        for s in SCENARIOS:
            print(f"{s.name:24s} {s.description}  [{s.paper_ref}]")
        return 0
    try:
        scenarios = (
            [get_scenario(n) for n in args.scenario]
            if args.scenario else list(SCENARIOS)
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    outdir = Path(args.out)
    artifacts = []
    for scenario in scenarios:
        with tempfile.TemporaryDirectory(prefix="repro-perf-") as td:
            artifact = scenario.run(args.seed, Path(td))
        path = artifact.write(outdir)
        artifacts.append(artifact)
        print(f"{scenario.name}: wrote {path} "
              f"({len(artifact.metrics)} metrics, "
              f"{artifact.simulated_seconds:.4f} simulated s)")
    if args.baseline is None:
        return 0
    failures = 0
    for artifact in artifacts:
        baseline_path = Path(args.baseline) / f"BENCH_{artifact.name}.json"
        try:
            deltas = compare(load(baseline_path), artifact)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for d in deltas:
            if d.is_regression:
                failures += 1
                print(f"{artifact.name}.{d.name}: REGRESSION "
                      f"{d.baseline:g} -> {d.candidate} {d.unit} "
                      f"({d.rel_change:+.2%}, tol {d.tolerance:.0%})")
    if failures:
        print(f"perf gate: FAIL ({failures} regressing metric(s))")
        return 1
    print("perf gate: PASS")
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.conformance import ConformanceConfig, ReproArtifact, run_conformance
    from repro.errors import ConfigurationError
    from repro.obs.session import NULL

    obs = None
    if args.obs is not None:
        from repro.obs import Observability

        obs = Observability()

    if args.replay is not None:
        try:
            artifact = ReproArtifact.load(args.replay)
        except (OSError, ValueError, ConfigurationError) as exc:
            print(f"error: cannot load artifact: {exc}", file=sys.stderr)
            return 2
        print(f"replaying {args.replay}: engine={artifact.engine} "
              f"check={artifact.check} seed={artifact.seed} "
              f"n={artifact.n_vertices} m={len(artifact.edges_u)}")
        if obs is not None:
            span = obs.span("conformance.replay", engine=artifact.engine,
                            check=artifact.check)
        else:
            from contextlib import nullcontext

            span = nullcontext()
        try:
            with span:
                outcome = artifact.replay()
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(outcome)
        if obs is not None:
            obs.export(args.obs)
        return 1 if outcome.reproduced else 0

    trials = 2 if args.quick else args.trials
    max_scale = min(args.scale, 6) if args.quick else args.scale
    try:
        config = ConformanceConfig(
            seeds=tuple(args.seeds),
            trials=trials,
            max_scale=max_scale,
            engines=tuple(args.engines) if args.engines else (),
            artifact_dir=args.out,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_conformance(config, obs=obs if obs is not None else NULL)
    print(report.render())
    if obs is not None:
        obs.export(args.obs)
    return 0 if report.ok else 1


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.core.experiment import EvaluationRunner

    runner = EvaluationRunner(
        scale=args.scale, seed=args.seed, n_roots=args.roots
    )
    try:
        runner.run_all(progress=lambda key: print(f"running {key} ..."))
        json_path, md_path = runner.write(args.out)
    finally:
        runner.close()
    print(f"wrote {json_path}")
    print(f"wrote {md_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "sizes": _cmd_sizes,
        "green": _cmd_green,
        "compare": _cmd_compare,
        "iostat": _cmd_iostat,
        "locality": _cmd_locality,
        "offload": _cmd_offload,
        "serve": _cmd_serve,
        "profile": _cmd_profile,
        "slo": _cmd_slo,
        "perf": _cmd_perf,
        "conformance": _cmd_conformance,
        "reproduce": _cmd_reproduce,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
