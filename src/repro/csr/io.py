"""CSR graphs resident on semi-external memory.

The paper stores an offloaded CSR as two files per NUMA shard — the *array
file* (index) and the *value file* (§V-B1) — and reads rows on demand with
``read(2)`` in ≤4 KB chunks (§V-C): for each dequeued frontier vertex a
thread "reads an element in the array file and calculates the position in
the value file, then reads the value file in a max chunk size 4KB".
:class:`ExternalCSR` reproduces that access pattern exactly on top of
:class:`repro.semiext.storage.ExternalArray`.
"""

from __future__ import annotations

import numpy as np

from repro.csr.graph import CSRGraph
from repro.errors import StorageError
from repro.semiext.storage import ExternalArray, NVMStore

__all__ = ["ExternalCSR", "offload_csr"]


class ExternalCSR:
    """A CSR whose index and value arrays live on (simulated) NVM.

    Constructed by :func:`offload_csr`.  All read APIs charge the owning
    store's device model; planning/validation helpers that must not perturb
    the I/O statistics use the explicitly-named ``*_uncharged`` variants.
    """

    def __init__(
        self, index: ExternalArray, value: ExternalArray, n_cols: int
    ) -> None:
        if index.size < 1:
            raise StorageError("index file must hold at least one offset")
        self.index = index
        self.value = value
        self.n_cols = int(n_cols)

    # -- shape ---------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of source rows."""
        return self.index.size - 1

    @property
    def n_directed_edges(self) -> int:
        """Entries in the value file."""
        return self.value.size

    @property
    def nbytes(self) -> int:
        """Bytes on device across both files."""
        return self.index.nbytes + self.value.nbytes

    # -- charged access (the BFS hot path) -------------------------------------

    def row_extents(
        self, rows: np.ndarray, think_time_s: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Charged index-file lookups: ``(starts, counts)`` per row.

        Reads ``index[v]`` and ``index[v+1]`` for every row — the "element
        in the array file" step of §V-C — as one 16-byte request per row.
        """
        rows = np.asarray(rows, dtype=np.int64)
        pairs = self.index.read_elements(rows, width=2, think_time_s=think_time_s)
        starts = pairs[:, 0].astype(np.int64)
        counts = (pairs[:, 1] - pairs[:, 0]).astype(np.int64)
        return starts, counts

    def gather_rows(
        self, rows: np.ndarray, think_time_s: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Charged full-row gather: ``(concatenated destinations, counts)``.

        The value-file reads are chunked to the store's request size
        (default 4 KB), exactly like the paper's reader.
        """
        starts, counts = self.row_extents(rows, think_time_s=think_time_s)
        values = self.value.read_rows(starts, counts, think_time_s=think_time_s)
        return values.astype(np.int64), counts

    def gather_rows_deferred(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, list]:
        """Full-row gather with the device charges deferred.

        Returns ``(destinations, counts, charges)`` where ``charges``
        holds the index-file and value-file
        :class:`~repro.semiext.storage.DeferredCharge` objects, to be
        applied by the caller in a deterministic order (the parallel
        engine's commit phase).
        """
        rows = np.asarray(rows, dtype=np.int64)
        pairs, idx_charge = self.index.read_elements_deferred(rows, width=2)
        starts = pairs[:, 0].astype(np.int64)
        counts = (pairs[:, 1] - pairs[:, 0]).astype(np.int64)
        values, val_charge = self.value.read_rows_deferred(starts, counts)
        return values.astype(np.int64), counts, [idx_charge, val_charge]

    # -- uncharged access (planning, validation, tests) --------------------------

    def to_csr_uncharged(self) -> CSRGraph:
        """Materialize the full CSR in memory without touching the meter."""
        return CSRGraph(
            indptr=self.index.to_ndarray().astype(np.int64),
            adj=self.value.to_ndarray().astype(np.int64),
            n_cols=self.n_cols,
        )

    def degrees_uncharged(self) -> np.ndarray:
        """Row degrees without charging the device (offload planning)."""
        return np.diff(self.index.to_ndarray().astype(np.int64))

    def __repr__(self) -> str:
        return (
            f"ExternalCSR(n_rows={self.n_rows}, nnz={self.n_directed_edges}, "
            f"device={self.index.store.device.name!r})"
        )


def offload_csr(
    csr: CSRGraph, store: NVMStore, prefix: str
) -> ExternalCSR:
    """Write a CSR's index/value arrays to ``store`` as two files.

    ``prefix`` names the files (``{prefix}.index`` / ``{prefix}.value``);
    a NUMA-sharded forward graph offloads each shard under its own prefix,
    giving the paper's "twice as many files as the number of NUMA nodes".
    """
    index = store.put_array(f"{prefix}.index", csr.indptr)
    value = store.put_array(f"{prefix}.value", csr.adj)
    return ExternalCSR(index=index, value=value, n_cols=csr.n_cols)
